"""Tests for view specifications and binding annotations."""

import pytest

from repro.common.errors import AdviceError
from repro.caql.parser import parse_query
from repro.advice.view_spec import Binding, ViewSpecification, annotate


def d2():
    return parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")


class TestConstruction:
    def test_annotation_count_checked(self):
        with pytest.raises(AdviceError):
            ViewSpecification(d2(), (Binding.PRODUCER,))

    def test_annotate_helper(self):
        view = annotate(d2(), "^?")
        assert view.annotations == (Binding.PRODUCER, Binding.CONSUMER)

    def test_annotate_unknown(self):
        view = annotate(d2(), "^.")
        assert view.annotations[1] is Binding.UNKNOWN

    def test_annotate_bad_char(self):
        with pytest.raises(AdviceError):
            annotate(d2(), "^!")

    def test_constant_position_cannot_be_annotated(self):
        bound = d2().bind_answers({1: "c6"})
        with pytest.raises(AdviceError):
            annotate(bound, "^?")
        annotate(bound, "^.")  # unannotated constant is fine

    def test_name_and_arity(self):
        view = annotate(d2(), "^?")
        assert view.name == "d2"
        assert view.arity == 2


class TestAnnotationQueries:
    def test_consumer_positions(self):
        assert annotate(d2(), "^?").consumer_positions() == (1,)

    def test_producer_positions(self):
        assert annotate(d2(), "^?").producer_positions() == (0,)

    def test_pure_producer(self):
        assert annotate(d2(), "^^").is_pure_producer()
        assert not annotate(d2(), "^?").is_pure_producer()

    def test_unknown_positions_in_neither(self):
        view = annotate(d2(), "..")
        assert view.consumer_positions() == ()
        assert view.producer_positions() == ()
        assert view.is_pure_producer()


class TestRendering:
    def test_paper_example_form(self):
        # d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?)  -- Section 4.2.1.
        view = annotate(d2(), "^?", rule_ids=("R2",))
        text = str(view)
        assert text.startswith("d2(X^, Y?) =def ")
        assert "b2(X, Z) & b3(Z, c2, Y)" in text
        assert "(R2)" in text

    def test_rule_ids_optional(self):
        assert "(" not in str(annotate(parse_query("d(X) :- b(X)"), "^")).split("=def")[0].replace("d(X^)", "")
