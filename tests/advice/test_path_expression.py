"""Tests for path expression structures."""

import pytest

from repro.common.errors import AdviceError
from repro.advice.path_expression import (
    Alternation,
    Cardinality,
    QueryPattern,
    Sequence,
    iter_patterns,
    sequence_companions,
    view_names,
)

d1 = QueryPattern("d1", ("Y^",))
d2 = QueryPattern("d2", ("X^", "Y?"))
d3 = QueryPattern("d3", ("X^", "Y?"))


def example1():
    """Paper example 1: (d1(Y^), (d2(X^,Y?), d3(X^,Y?))^<0,|Y|>)^<1,1>."""
    inner = Sequence((d2, d3), lower=0, upper=Cardinality("Y"))
    return Sequence((d1, inner), lower=1, upper=1)


def example2():
    """Paper example 2: alternation instead of inner sequence."""
    inner = Sequence((Alternation((d2, d3)),), lower=0, upper=Cardinality("Y"))
    return Sequence((d1, inner), lower=1, upper=1)


class TestConstruction:
    def test_empty_sequence_rejected(self):
        with pytest.raises(AdviceError):
            Sequence(())

    def test_negative_lower_rejected(self):
        with pytest.raises(AdviceError):
            Sequence((d1,), lower=-1)

    def test_upper_below_lower_rejected(self):
        with pytest.raises(AdviceError):
            Sequence((d1,), lower=3, upper=2)

    def test_empty_alternation_rejected(self):
        with pytest.raises(AdviceError):
            Alternation(())

    def test_selection_range_checked(self):
        with pytest.raises(AdviceError):
            Alternation((d1, d2), selection=3)
        with pytest.raises(AdviceError):
            Alternation((d1, d2), selection=0)

    def test_mutually_exclusive(self):
        assert Alternation((d1, d2), selection=1).mutually_exclusive
        assert not Alternation((d1, d2)).mutually_exclusive


class TestRendering:
    def test_example1_rendering(self):
        text = str(example1())
        assert text == "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))^<0,|Y|>)^<1,1>"

    def test_alternation_rendering(self):
        assert str(Alternation((d2, d3), selection=1)) == "[d2(X^, Y?), d3(X^, Y?)]^1"

    def test_unbounded_rendering(self):
        assert str(Sequence((d1,), lower=0, upper=None)) == "(d1(Y^))^<0,*>"

    def test_pattern_no_args(self):
        assert str(QueryPattern("halt")) == "halt"


class TestTraversal:
    def test_iter_patterns_in_order(self):
        assert [p.view for p in iter_patterns(example1())] == ["d1", "d2", "d3"]

    def test_view_names(self):
        assert view_names(example2()) == {"d1", "d2", "d3"}

    def test_consumer_arg_positions(self):
        assert d2.consumer_arg_positions() == (1,)
        assert d1.consumer_arg_positions() == ()


class TestSequenceCompanions:
    def test_sequence_members_are_companions(self):
        assert sequence_companions(example1(), "d2") == {"d3"}
        assert sequence_companions(example1(), "d3") == {"d2"}

    def test_outer_sequence_groups_with_inner(self):
        # d1 shares the outer sequence with the inner group's promises... but
        # the inner sequence has lower bound 0 so its names still count as
        # sequence-level companions of d1 (they are in the same ordered
        # group; the repetition bound is a run-time question).
        companions = sequence_companions(example1(), "d1")
        assert companions == {"d2", "d3"}

    def test_alternation_members_not_companions(self):
        companions = sequence_companions(example2(), "d2")
        assert "d3" not in companions

    def test_unknown_view(self):
        assert sequence_companions(example1(), "zzz") == set()
