"""Tests for path expression tracking and prediction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.advice.path_expression import (
    Alternation,
    Cardinality,
    QueryPattern,
    Sequence,
)
from repro.advice.tracker import PathTracker

d1, d2, d3, d4, d5 = (QueryPattern(f"d{i}") for i in range(1, 6))


def example1():
    inner = Sequence((d2, d3), lower=0, upper=Cardinality("Y"))
    return Sequence((d1, inner), lower=1, upper=1)


def example2():
    inner = Sequence((Alternation((d2, d3)),), lower=0, upper=Cardinality("Y"))
    return Sequence((d1, inner), lower=1, upper=1)


def excerpt():
    """The tracking excerpt of Section 4.2.2:

    (...(d1, [(d2, d3), (d4, d5)]^1)^<0,|X|> ...)^<0,1>
    """
    alternation = Alternation(
        (Sequence((d2, d3)), Sequence((d4, d5))), selection=1
    )
    return Sequence((Sequence((d1, alternation), lower=0, upper=Cardinality("X")),), lower=0, upper=1)


class TestExample1:
    def test_first_query_is_d1(self):
        tracker = PathTracker(example1())
        assert tracker.predicted_next() == {"d1"}

    def test_after_d1_comes_d2_or_nothing(self):
        tracker = PathTracker(example1())
        tracker.observe("d1")
        assert tracker.predicted_next() == {"d2"}

    def test_no_second_d1(self):
        # "No additional d1(Y^) queries will occur since the repetition
        # term is <1,1>."
        tracker = PathTracker(example1())
        tracker.observe("d1")
        assert not tracker.expects("d1")

    def test_full_run(self):
        tracker = PathTracker(example1())
        for view in ["d1", "d2", "d3", "d2", "d3"]:
            assert tracker.observe(view)

    def test_d3_before_d2_rejected(self):
        tracker = PathTracker(example1())
        tracker.observe("d1")
        assert not tracker.observe("d3")
        assert tracker.lost


class TestExample2:
    def test_after_d1_either_alternative(self):
        # "the query d1 may be followed by either d2(X,c) or d3(X,c)".
        tracker = PathTracker(example2())
        tracker.observe("d1")
        assert tracker.predicted_next() == {"d2", "d3"}

    def test_alternation_repeats(self):
        tracker = PathTracker(example2())
        for view in ["d1", "d3", "d2", "d2", "d3"]:
            assert tracker.observe(view)


class TestExcerpt:
    """The paper's tracking walkthrough."""

    def test_after_d1_predicts_d2_or_d4(self):
        # The paper says "the next query (if any) will involve either d2 or
        # d4"; a repeated d1 is also possible (an iteration may contribute
        # no alternation query), which the paper itself acknowledges one
        # step later ("d1 could be repeated").
        tracker = PathTracker(excerpt())
        tracker.observe("d1")
        assert {"d2", "d4"} <= tracker.predicted_next() <= {"d1", "d2", "d4"}

    def test_after_d1_d2_predicts_d3_or_d1(self):
        tracker = PathTracker(excerpt())
        tracker.observe("d1")
        tracker.observe("d2")
        assert tracker.predicted_next() == {"d3", "d1"}

    def test_after_d3_only_d1(self):
        # "if the next query involves d3 then the query after that (if
        # any) will involve d1 (since the alternation is mutually
        # exclusive)".
        tracker = PathTracker(excerpt())
        for view in ["d1", "d2", "d3"]:
            tracker.observe(view)
        assert tracker.predicted_next() == {"d1"}

    def test_valid_sequences_from_paper(self):
        for sequence in (
            ["d1", "d2", "d3"],
            ["d1", "d4", "d1", "d2", "d3", "d1"],
            ["d1", "d2", "d3", "d1", "d4", "d5"],
        ):
            tracker = PathTracker(excerpt())
            for view in sequence:
                assert tracker.observe(view), sequence

    def test_d1_needed_within_two(self):
        # "Thus, d1 will be required for one of the next two queries" —
        # after observing d1, d2.
        tracker = PathTracker(excerpt())
        tracker.observe("d1")
        tracker.observe("d2")
        assert tracker.distance_to("d1") <= 2


class TestDistance:
    def test_distance_one_for_immediate(self):
        tracker = PathTracker(example1())
        assert tracker.distance_to("d1") == 1

    def test_distance_two_through_sequence(self):
        tracker = PathTracker(example1())
        assert tracker.distance_to("d2") == 2
        assert tracker.distance_to("d3") == 3

    def test_unreachable_view_is_none(self):
        tracker = PathTracker(example1())
        tracker.observe("d1")
        tracker.observe("d2")
        tracker.observe("d3")
        assert tracker.distance_to("d1") is None

    def test_unknown_view_is_none(self):
        assert PathTracker(example1()).distance_to("zzz") is None


class TestLifecycle:
    def test_observe_records_history(self):
        tracker = PathTracker(example1())
        tracker.observe("d1")
        tracker.observe("d2")
        assert tracker.observed == ["d1", "d2"]

    def test_lost_stays_lost(self):
        tracker = PathTracker(example1())
        assert not tracker.observe("d9")
        assert not tracker.observe("d1")
        assert tracker.predicted_next() == set()

    def test_reset_reanchors(self):
        tracker = PathTracker(example1())
        tracker.observe("d9")
        tracker.reset()
        assert not tracker.lost
        assert tracker.predicted_next() == {"d1"}


class TestBounds:
    def test_bounded_repetition_enforced(self):
        tracker = PathTracker(Sequence((d1,), lower=1, upper=2))
        assert tracker.observe("d1")
        assert tracker.observe("d1")
        assert not tracker.observe("d1")

    def test_lower_bound_zero_allows_skip(self):
        expr = Sequence((Sequence((d1,), lower=0, upper=1), d2))
        tracker = PathTracker(expr)
        assert tracker.predicted_next() == {"d1", "d2"}

    def test_huge_bound_treated_as_unbounded(self):
        tracker = PathTracker(Sequence((d1,), lower=1, upper=10_000))
        for _ in range(50):
            assert tracker.observe("d1")


# -- property test: prediction soundness ------------------------------------------

expressions = st.recursive(
    st.sampled_from([d1, d2, d3]),
    lambda children: st.one_of(
        st.builds(
            lambda els, lo, extra: Sequence(
                tuple(els), lower=lo, upper=max(1, lo + extra)
            ),
            st.lists(children, min_size=1, max_size=3),
            st.integers(0, 2),
            st.integers(0, 2),
        ),
        st.builds(lambda els: Alternation(tuple(els)), st.lists(children, min_size=1, max_size=3)),
    ),
    max_leaves=6,
)


@given(expressions, st.lists(st.sampled_from(["d1", "d2", "d3"]), max_size=8))
def test_observe_only_accepts_predicted(expr, sequence):
    """observe() accepts exactly the views in predicted_next()."""
    tracker = PathTracker(expr)
    for view in sequence:
        predicted = tracker.predicted_next()
        accepted = tracker.observe(view)
        assert accepted == (view in predicted)
        if not accepted:
            break


@given(expressions)
def test_distance_one_iff_predicted(expr):
    tracker = PathTracker(expr)
    for view in ("d1", "d2", "d3"):
        if view in tracker.predicted_next():
            assert tracker.distance_to(view) == 1
