"""Tests for advice sets."""

import pytest

from repro.common.errors import AdviceError
from repro.caql.parser import parse_query
from repro.advice.language import EMPTY_ADVICE, AdviceSet
from repro.advice.path_expression import QueryPattern, Sequence
from repro.advice.view_spec import annotate


def views():
    return [
        annotate(parse_query("d1(Y) :- b1(c1, Y)"), "^", rule_ids=("R1",)),
        annotate(parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)"), "^?", rule_ids=("R2",)),
    ]


class TestConstruction:
    def test_from_views(self):
        advice = AdviceSet.from_views(views())
        assert advice.view("d1") is not None
        assert advice.view("d9") is None

    def test_duplicate_views_rejected(self):
        v = views()
        with pytest.raises(AdviceError):
            AdviceSet.from_views([v[0], v[0]])

    def test_path_expression_views_must_be_defined(self):
        path = Sequence((QueryPattern("d9"),))
        with pytest.raises(AdviceError):
            AdviceSet.from_views(views(), path_expression=path)

    def test_valid_path_expression(self):
        path = Sequence((QueryPattern("d1"), QueryPattern("d2")))
        advice = AdviceSet.from_views(views(), path_expression=path)
        assert advice.path_expression is path

    def test_empty(self):
        assert EMPTY_ADVICE.is_empty()
        assert not AdviceSet.from_views(views()).is_empty()

    def test_relevant_relations_only(self):
        advice = AdviceSet(relevant_relations=(("b1", 2), ("b2", 2)))
        assert not advice.is_empty()


class TestRendering:
    def test_str_lists_everything(self):
        path = Sequence((QueryPattern("d1"),))
        advice = AdviceSet.from_views(
            views(), path_expression=path, relevant_relations=(("b1", 2),)
        )
        text = str(advice)
        assert "b1/2" in text
        assert "d1(Y^)" in text
        assert "path:" in text

    def test_empty_str(self):
        assert str(EMPTY_ADVICE) == "(no advice)"
