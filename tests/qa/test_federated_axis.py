"""The federation axis of the differential fuzzer.

``CaseConfig.federated()`` spreads each case's tables over 2-3 pure-Python
backends; the ``federated`` variant runs the full CMS behind a
:class:`~repro.federation.interface.FederatedInterface` and must agree
with every single-backend variant and the oracle, byte for byte across
reruns.
"""

from repro.qa import (
    FEDERATED_VARIANT,
    VARIANTS,
    CaseConfig,
    CaseGenerator,
    FuzzCase,
    run_case,
    run_corpus,
)
from repro.qa.differential import _build_federation

CORPUS = 6  # small on purpose: this runs on every push
AXIS = VARIANTS + (FEDERATED_VARIANT,)


def federated_generator(seed=0):
    return CaseGenerator(seed, CaseConfig.federated())


class TestGenerator:
    def test_cases_assign_every_table_a_backend(self):
        case = federated_generator().generate(0)
        tables = {t["name"] for t in case.tables}
        assert set(case.backends) == tables
        assert 1 <= len(set(case.backends.values())) <= 3

    def test_backend_assignment_round_trips_json(self):
        case = federated_generator().generate(3)
        clone = FuzzCase.from_dict(case.to_dict())
        assert clone.backends == case.backends
        assert clone.fingerprint() == case.fingerprint()

    def test_single_backend_profiles_draw_nothing(self):
        # The default profile never draws for backends, so pre-federation
        # corpora are bit-identical: same fingerprint, no assignments.
        case = CaseGenerator(0).generate(0)
        assert case.backends == {}

    def test_build_federation_groups_by_assignment(self):
        case = federated_generator().generate(1)
        federation = _build_federation(case)
        assert set(federation.backends()) == set(case.backends.values())
        for table, backend in case.backends.items():
            assert federation.catalog.home_of(table) == backend


class TestFederatedVariant:
    def test_corpus_is_clean_across_the_axis(self):
        cases = federated_generator().corpus(CORPUS)
        report = run_corpus(cases, seed=0, variants=AXIS)
        assert report.clean, (
            f"divergences={report.divergences} violations={report.violations} "
            f"failed={report.failed_cases}"
        )
        assert report.degraded_answers == 0  # healthy backends never degrade

    def test_outcomes_cover_the_federated_variant(self):
        case = federated_generator().generate(0)
        report = run_case(case, variants=AXIS)
        federated = [o for o in report.outcomes if o.variant == FEDERATED_VARIANT]
        assert len(federated) == len(case.queries)
        assert all(o.status == "ok" for o in federated)

    def test_report_fingerprint_is_deterministic(self):
        generator = federated_generator(11)
        first = run_corpus(generator.corpus(3), seed=11, variants=AXIS)
        second = run_corpus(generator.corpus(3), seed=11, variants=AXIS)
        assert first.fingerprint() == second.fingerprint()
