"""Acceptance: a planted canonicalizer bug is caught by the variants fuzz.

Mirror of ``test_differential.TestPlantedBugIsCaught`` for the canonical
cache tier: replace the interval-folding seam with a mutant that drops
upper-bound conjuncts, and ``--profile variants`` must surface it as a
``wrong-rows`` divergence and shrink it to a minimal repro.

The bug is exactly the failure class the ``variants`` profile exists to
catch: dropping ``X < c`` during folding collides inequivalent spellings
(``X < 3`` vs ``X < 7`` over the same template body) onto one canonical
key, so the canonical tier serves one query's cached rows for the other.
"""

import pytest

import repro.core.canonical as canonical_module
from repro.core.canonical import _fold_upper as real_fold_upper
from repro.qa import CaseConfig, CaseGenerator, case_failure, run_case, shrink

CORPUS = 8  # the CI smoke corpus size


def _conjunct_dropping_fold_upper(interval, value, strict):
    """The planted bug: the upper-bound conjunct silently vanishes.

    Sound interval folding may only *tighten*; forgetting a bound makes
    the canonical key too coarse, which is invisible to every unit test
    of the fold itself and only observable as cross-query row reuse.
    """
    return


@pytest.fixture
def planted_bug(monkeypatch):
    # Patch the module attribute: ``canonicalize`` resolves the fold
    # seam at call time and memoizes per seam function, so the mutant
    # gets its own cache rows.  Clear anyway so no prior form lingers.
    monkeypatch.setattr(
        canonical_module, "_fold_upper", _conjunct_dropping_fold_upper
    )
    canonical_module.clear_cache()
    yield
    canonical_module.clear_cache()


def _failing_case():
    # Seed 0 is the CI smoke seed; the collision fires within the first
    # few cases (a template re-asked with a different hole constant).
    for case in CaseGenerator(0, CaseConfig.variants()).corpus(CORPUS):
        if case_failure(case) is not None:
            return case
    pytest.fail("planted bound-dropping bug escaped the variants corpus")


class TestPlantedCanonicalBugIsCaught:
    def test_detected_as_wrong_rows_divergence(self, planted_bug):
        case = _failing_case()
        report = run_case(case)
        assert report.failed
        kinds = {d.kind for d in report.divergences}
        assert "wrong-rows" in kinds
        # Only the cache-carrying variant can serve a colliding key's
        # rows; the oracle and cache-less baselines define the truth.
        assert {d.variant for d in report.divergences} <= {"full"}

    def test_shrinks_to_a_tiny_repro(self, planted_bug):
        case = _failing_case()
        result = shrink(case, case_failure)
        assert result.queries <= 3, (
            f"shrunk case still has {result.queries} queries "
            f"(from {result.original_queries})"
        )
        assert result.queries < result.original_queries
        assert "wrong-rows" in result.reason
        assert case_failure(result.case) == result.reason

    def test_clean_again_once_the_bug_is_fixed(self, planted_bug, monkeypatch):
        case = _failing_case()
        monkeypatch.setattr(canonical_module, "_fold_upper", real_fold_upper)
        canonical_module.clear_cache()
        assert case_failure(case) is None
