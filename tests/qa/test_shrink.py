"""Shrinking and repro files: ddmin, structure reduction, replay."""

import pytest

from repro.qa import (
    CaseGenerator,
    FuzzCase,
    load_repro,
    replay,
    run_case,
    shrink,
    write_repro,
)
from repro.qa.generator import CaseConfig
from repro.qa.shrink import REPRO_FORMAT


def synthetic_case(queries):
    """A case whose failure we can define synthetically (never executed)."""
    return FuzzCase(
        seed=0,
        index=0,
        tables=[{"name": "b0", "columns": ["int"], "rows": [[1], [2]]}],
        queries=list(queries),
    )


class TestDdmin:
    def test_single_culprit_query_is_isolated(self):
        queries = [f"q(X) :- b0(X), X > {i}" for i in range(10)]
        culprit = queries[6]

        def failing(case):
            return "boom" if culprit in case.queries else None

        result = shrink(synthetic_case(queries), failing)
        assert result.case.queries == [culprit]
        assert result.original_queries == 10
        assert result.reason == "boom"

    def test_pairwise_interaction_is_preserved(self):
        queries = [f"q(X) :- b0(X), X > {i}" for i in range(8)]
        a, b = queries[1], queries[6]

        def failing(case):
            return "pair" if a in case.queries and b in case.queries else None

        result = shrink(synthetic_case(queries), failing)
        assert sorted(result.case.queries) == sorted([a, b])

    def test_shrinking_is_deterministic(self):
        queries = [f"q(X) :- b0(X), X > {i}" for i in range(9)]

        def failing(case):
            return "odd" if len(case.queries) % 2 == 1 else None

        first = shrink(synthetic_case(queries), failing)
        second = shrink(synthetic_case(queries), failing)
        assert first.case.to_dict() == second.case.to_dict()
        assert first.attempts == second.attempts

    def test_shrink_requires_a_failing_case(self):
        with pytest.raises(AssertionError):
            shrink(synthetic_case(["q(X) :- b0(X)"]), lambda case: None)


class TestStructureReduction:
    def test_advice_fault_and_unused_tables_are_stripped(self):
        case = FuzzCase(
            seed=0,
            index=0,
            tables=[
                {"name": "b0", "columns": ["int"], "rows": [[1]]},
                {"name": "b1", "columns": ["int"], "rows": [[2]]},
            ],
            queries=["q(X) :- b0(X)", "p(X) :- b1(X)"],
            advice_views=["v(X) :- b0(X)"],
            advice_annotations=["?"],
            path_views=["v"],
            fault={"seed": 1, "transient_rate": 0.5},
            fault_onset=1,
        )

        def failing(candidate):
            return "q" if "q(X) :- b0(X)" in candidate.queries else None

        result = shrink(case, failing)
        assert result.case.queries == ["q(X) :- b0(X)"]
        assert result.case.advice_views == []
        assert result.case.path_views == []
        assert result.case.fault is None
        # b1 is no longer referenced by any query or view: collected.
        assert [t["name"] for t in result.case.tables] == ["b0"]

    def test_structure_needed_for_the_failure_is_kept(self):
        case = FuzzCase(
            seed=0,
            index=0,
            tables=[{"name": "b0", "columns": ["int"], "rows": [[1]]}],
            queries=["q(X) :- b0(X)"],
            fault={"seed": 1, "transient_rate": 0.5},
        )

        def failing(candidate):
            return "needs-fault" if candidate.fault is not None else None

        result = shrink(case, failing)
        assert result.case.fault is not None


class TestReproFiles:
    def test_round_trip_preserves_the_case(self, tmp_path):
        case = CaseGenerator(0).generate(3)
        path = tmp_path / "repro.json"
        write_repro(path, case, reason="demo")
        loaded = load_repro(path)
        assert loaded.to_dict() == case.to_dict()
        assert loaded.fingerprint() == case.fingerprint()

    def test_replay_runs_the_differential_oracle(self, tmp_path):
        case = CaseGenerator(0).generate(0)
        path = tmp_path / "repro.json"
        write_repro(path, case)
        report = replay(path)
        assert not report.failed
        assert report.case_fingerprint == run_case(case).case_fingerprint

    def test_format_marker_is_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something/else", "case": {}}')
        with pytest.raises(ValueError, match=REPRO_FORMAT):
            load_repro(path)

    def test_repro_files_are_byte_identical_for_the_same_case(self, tmp_path):
        case = CaseGenerator(5, CaseConfig.faulty()).generate(7)
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_repro(first, case, reason="x")
        write_repro(second, case, reason="x")
        assert first.read_bytes() == second.read_bytes()
