"""The differential fuzzer's engine axis: columnar ≡ tuple ≡ oracle.

The columnar variant is the full CMS with ``CMSFeatures.columnar`` on;
every fuzz case must produce tuple-set-identical answers to the tuple
engine and the direct-evaluation oracle, and same-seed reruns must be
byte-identical (report fingerprints compare equal as strings).
"""

import pytest

from repro.qa import (
    COLUMNAR_VARIANT,
    VARIANTS,
    CaseConfig,
    CaseGenerator,
    run_case,
    run_corpus,
    variants_for,
)

CORPUS = 8  # mirrors the smoke corpus of tests/qa/test_differential.py


class TestVariantsFor:
    def test_tuple_is_the_historical_set(self):
        assert variants_for("tuple") == VARIANTS
        assert COLUMNAR_VARIANT not in VARIANTS

    def test_both_appends_the_columnar_engine(self):
        assert variants_for("both") == VARIANTS + (COLUMNAR_VARIANT,)

    def test_columnar_is_the_head_to_head_pair(self):
        assert variants_for("columnar") == ("full", COLUMNAR_VARIANT)

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError):
            variants_for("vectorwise")


class TestEngineAxisIsClean:
    def test_healthy_corpus_with_engine_axis(self):
        cases = CaseGenerator(0).corpus(CORPUS)
        report = run_corpus(cases, seed=0, variants=variants_for("both"))
        assert report.clean, (
            f"divergences={report.divergences} violations={report.violations} "
            f"failed={report.failed_cases}"
        )

    def test_faulty_corpus_with_engine_axis(self):
        # Only "full" is ever faulted; the columnar variant stays healthy
        # and keeps defining the expected answers through the outage.
        cases = CaseGenerator(3, CaseConfig.faulty()).corpus(CORPUS)
        report = run_corpus(cases, seed=3, variants=variants_for("both"))
        assert report.clean

    def test_outcomes_cover_the_columnar_variant(self):
        case = CaseGenerator(0).generate(0)
        report = run_case(case, variants=variants_for("both"))
        variants_seen = {o.variant for o in report.outcomes}
        assert COLUMNAR_VARIANT in variants_seen
        per_variant = len(case.queries)
        columnar = [o for o in report.outcomes if o.variant == COLUMNAR_VARIANT]
        assert len(columnar) == per_variant
        assert all(o.status == "ok" for o in columnar)

    def test_same_seed_reports_are_byte_identical(self):
        generator = CaseGenerator(7)
        first = run_corpus(generator.corpus(4), seed=7, variants=variants_for("both"))
        second = run_corpus(generator.corpus(4), seed=7, variants=variants_for("both"))
        assert first.fingerprint() == second.fingerprint()
