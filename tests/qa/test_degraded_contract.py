"""The degraded-mode equality contract, fuzzed over PR-1 fault schedules.

The contract (ROADMAP / PR-1): while the remote link is failing, the CMS
may serve answers from cached or archived state — but every such answer
must be *tagged* ``degraded``, and every answer it does NOT tag degraded
must still be tuple-set-equal to the oracle.  Degradation is never an
excuse for silently wrong rows, and a healthy link must never degrade.
"""

from repro.qa import CaseGenerator, FuzzCase, run_case, run_corpus
from repro.qa.generator import CaseConfig

#: Corpus size for the faulty-profile sweep (case 5 of seed 0 is the
#: first to exercise a degraded answer, so 20 covers the interesting mix).
CORPUS = 20


def faulty_reports():
    cases = CaseGenerator(0, CaseConfig.faulty()).corpus(CORPUS)
    report = run_corpus(cases, seed=0, keep_reports=True)
    return {case.index: case for case in cases}, report


class TestDegradedContract:
    def test_faulted_corpus_has_no_divergences(self):
        _, report = faulty_reports()
        assert report.clean, (
            f"divergences={report.divergences} violations={report.violations}"
        )

    def test_degradation_actually_occurs(self):
        # The contract is vacuous if the fuzzer never reaches the degraded
        # paths; the outage-window model guarantees it does.
        _, report = faulty_reports()
        assert report.degraded_answers >= 1

    def test_only_the_faulted_variant_degrades_and_only_after_onset(self):
        cases, report = faulty_reports()
        for case_report in report.reports:
            case = cases[case_report.case_index]
            for outcome in case_report.outcomes:
                if outcome.status in ("degraded", "error"):
                    assert outcome.variant == "full"
                    assert case.fault is not None
                    assert outcome.query_index >= case.fault_onset

    def test_non_degraded_answers_are_oracle_equal(self):
        # Zero divergences already implies this; spell the contract out by
        # re-deriving the oracle digests for one case that degraded.
        cases, report = faulty_reports()
        degraded_case = next(
            case_report
            for case_report in report.reports
            if any(o.status == "degraded" for o in case_report.outcomes)
        )
        case = cases[degraded_case.case_index]
        from repro.caql.eval import evaluate_conjunctive
        from repro.qa import encode_rows, fingerprint

        database = case.database()
        expected = [
            fingerprint(encode_rows(evaluate_conjunctive(q, database.__getitem__).rows))
            for q in case.parsed_queries()
        ]
        for outcome in degraded_case.outcomes:
            if outcome.status == "ok":
                assert outcome.digest == expected[outcome.query_index]

    def test_removing_the_fault_removes_the_degradation(self):
        cases, report = faulty_reports()
        degraded_index = next(
            case_report.case_index
            for case_report in report.reports
            if any(o.status == "degraded" for o in case_report.outcomes)
        )
        healed = FuzzCase.from_dict(cases[degraded_index].to_dict())
        healed.fault = None
        healed_report = run_case(healed)
        assert not healed_report.failed
        assert healed_report.degraded_answers == 0
