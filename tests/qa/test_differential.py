"""Differential runner: clean corpora, determinism, and bug detection.

The last class is the acceptance test for the whole subsystem: plant a
real bug (the executor's full-match derivation silently drops residual
conditions), and the fuzzer must catch it as a ``wrong-rows`` divergence
and shrink the failing case to a handful of queries.
"""

from dataclasses import replace

import pytest

import repro.core.subsumption as subsumption_module
from repro.core.subsumption import derive_full as real_derive_full
from repro.qa import (
    CaseGenerator,
    case_failure,
    run_case,
    run_corpus,
    shrink,
)

CORPUS = 8  # small on purpose: this runs on every push


class TestCleanCorpus:
    def test_healthy_corpus_is_clean(self):
        cases = CaseGenerator(0).corpus(CORPUS)
        report = run_corpus(cases, seed=0)
        assert report.clean, (
            f"divergences={report.divergences} violations={report.violations} "
            f"failed={report.failed_cases}"
        )
        assert report.cases == CORPUS
        assert report.degraded_answers == 0  # healthy links never degrade

    def test_report_fingerprint_is_deterministic(self):
        generator = CaseGenerator(42)
        first = run_corpus(generator.corpus(4), seed=42)
        second = run_corpus(generator.corpus(4), seed=42)
        assert first.corpus_fingerprint == second.corpus_fingerprint
        assert first.fingerprint() == second.fingerprint()

    def test_outcomes_cover_every_query_and_variant(self):
        case = CaseGenerator(0).generate(0)
        report = run_case(case)
        from repro.qa import VARIANTS

        assert len(report.outcomes) == len(case.queries) * len(VARIANTS)

    def test_case_failure_is_none_for_clean_case(self):
        assert case_failure(CaseGenerator(0).generate(1)) is None


def _residual_dropping_derive_full(match, query, prefiltered=None):
    """The planted bug: forget to re-apply residual selection conditions.

    This is exactly the class of subtle subsumption bug the differential
    fuzzer exists to catch — answers are a superset of the truth, only on
    queries served from a more general cached element.
    """
    if match.residual_conditions:
        match = replace(match, residual_conditions=())
    return real_derive_full(match, query, prefiltered=prefiltered)


@pytest.fixture
def planted_bug(monkeypatch):
    # Patch the subsumption module itself: the tuple engine resolves
    # ``subsumption.derive_full`` at call time, so the bug lands on the
    # derivation seam both cache-using variants actually execute.
    monkeypatch.setattr(
        subsumption_module, "derive_full", _residual_dropping_derive_full
    )


class TestPlantedBugIsCaught:
    """Acceptance: an injected planner/executor bug is found and shrunk."""

    def _failing_case(self):
        # Seed 0 is the CI smoke seed; the bug fires within the first few
        # cases (a subsumed re-instantiation of a cached template).
        for case in CaseGenerator(0).corpus(CORPUS):
            if case_failure(case) is not None:
                return case
        pytest.fail("planted residual-dropping bug escaped the smoke corpus")

    def test_detected_as_wrong_rows_divergence(self, planted_bug):
        case = self._failing_case()
        report = run_case(case)
        assert report.failed
        kinds = {d.kind for d in report.divergences}
        assert "wrong-rows" in kinds
        # Only the variants with subsumption caching can be wrong; the
        # oracle and the cache-less baselines define the truth.
        assert {d.variant for d in report.divergences} <= {"full", "nocache"}

    def test_shrinks_to_a_tiny_repro(self, planted_bug):
        case = self._failing_case()
        result = shrink(case, case_failure)
        assert result.queries <= 3, (
            f"shrunk case still has {result.queries} queries "
            f"(from {result.original_queries})"
        )
        assert result.queries < result.original_queries
        assert "wrong-rows" in result.reason
        # The shrunk case must still fail, for the same class of reason.
        assert case_failure(result.case) == result.reason

    def test_clean_again_once_the_bug_is_fixed(self, planted_bug, monkeypatch):
        case = self._failing_case()
        monkeypatch.setattr(subsumption_module, "derive_full", real_derive_full)
        assert case_failure(case) is None
