"""Order-theoretic properties of subsumption over generated PSJ expressions.

Subsumption ("element derives query") is a preorder induced by condition
implication; these hypothesis suites check the laws that make the cache
sound — and any counterexample hypothesis shrinks to is ALSO written out
as a standard repro.qa repro file (``BRAID_QA_REPRO_DIR``, default
``.qa-repros``), replayable with ``scripts/braid_fuzz.py --replay``.

* **reflexivity** — every expression fully subsumes itself, and deriving
  it from itself reproduces the oracle rows exactly;
* **transitivity** — conditions generated as literal subset chains
  C1 ⊆ C2 ⊆ C3 must full-match at every hop, including the transitive
  one (on this fragment the bounds engine is complete, so a miss is a
  bug, not incompleteness);
* **antisymmetry up to equivalence** — whenever the engine claims mutual
  full subsumption between two expressions, their extensions are equal
  (a soundness property: mutual derivation of different row sets would
  mean one direction manufactured or lost rows).
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.core.cache import Cache
from repro.core.subsumption import derive_full, match_element
from repro.qa import write_repro
from repro.qa.generator import case_from_relations
from repro.relational.relation import Relation

R_ROWS = [(x, y, z) for x in range(5) for y in range(5) for z in range(3)]
DB = {"r": Relation(result_schema("r", 3), R_ROWS)}

#: Atomic conditions over the single occurrence's variables — the bounds
#: fragment (column op int-literal) the implication engine decides fully.
CONDITIONS = [
    f"{var} {op} {lit}"
    for var in ("X", "Y", "Z")
    for op in ("<", "=<", ">", ">=", "=")
    for lit in (0, 2, 4)
]

condition_sets = st.lists(st.sampled_from(CONDITIONS), unique=True, max_size=3)


def query_text(conditions, name="q"):
    body = ", ".join(["r(X, Y, Z)"] + list(conditions))
    return f"{name}(X, Y, Z) :- {body}"


def element_for(text):
    cache = Cache()
    psj = psj_of(parse_query(text))
    return psj, cache.store(psj, evaluate_psj(psj, DB.__getitem__))


def full_matches(element, query_psj):
    return [m for m in match_element(element, query_psj) if m.is_full]


def save_counterexample(reason, *texts):
    """Persist the (shrunk) failing inputs as a replayable repro file."""
    directory = os.environ.get("BRAID_QA_REPRO_DIR", ".qa-repros")
    os.makedirs(directory, exist_ok=True)
    case = case_from_relations(DB, list(texts))
    path = os.path.join(directory, f"repro-property-{case.fingerprint()[:12]}.json")
    write_repro(path, case, reason=reason)
    return path


@settings(max_examples=80, deadline=None)
@given(condition_sets)
def test_reflexivity(conditions):
    text = query_text(conditions)
    psj, element = element_for(text)
    matches = full_matches(element, psj)
    if not matches:
        save_counterexample("property: reflexivity (no full self-match)", text)
        raise AssertionError(f"no full self-match for {text}")
    derived = {set(derive_full(m, psj).rows) == set(element.relation.rows)
               for m in matches}
    if derived != {True}:
        save_counterexample("property: reflexivity (self-derivation differs)", text)
        raise AssertionError(f"self-derivation differs from extension for {text}")


@settings(max_examples=80, deadline=None)
@given(condition_sets, condition_sets, condition_sets)
def test_transitivity_on_subset_chains(base, extra1, extra2):
    # Build a literal chain C1 ⊆ C2 ⊆ C3: each query is at least as
    # restrictive as the previous, so subsumption must hold at every hop.
    c1 = list(base)
    c2 = c1 + [c for c in extra1 if c not in c1]
    c3 = c2 + [c for c in extra2 if c not in c2]
    loose = query_text(c1, "e1")
    middle = query_text(c2, "e2")
    tight = query_text(c3, "e3")

    _, loose_element = element_for(loose)
    _, middle_element = element_for(middle)
    middle_psj = psj_of(parse_query(middle))
    tight_psj = psj_of(parse_query(tight))

    hops = {
        "loose derives middle": full_matches(loose_element, middle_psj),
        "middle derives tight": full_matches(middle_element, tight_psj),
        "loose derives tight (transitive)": full_matches(loose_element, tight_psj),
    }
    for hop, matches in hops.items():
        if not matches:
            save_counterexample(
                f"property: transitivity ({hop} failed)", loose, middle, tight
            )
            raise AssertionError(f"{hop} failed: {loose} | {middle} | {tight}")

    # And the transitive derivation must agree with the oracle.
    oracle = set(evaluate_psj(tight_psj, DB.__getitem__).rows)
    for match in hops["loose derives tight (transitive)"]:
        derived = set(derive_full(match, tight_psj).rows)
        if derived != oracle:
            save_counterexample(
                "property: transitivity (transitive derivation diverges)",
                loose, middle, tight,
            )
            raise AssertionError(f"bad transitive derivation: {loose} -> {tight}")


@settings(max_examples=80, deadline=None)
@given(condition_sets, condition_sets)
def test_antisymmetry_up_to_equivalence(conditions_a, conditions_b):
    a_text = query_text(conditions_a, "ea")
    b_text = query_text(conditions_b, "eb")
    a_psj, a_element = element_for(a_text)
    b_psj, b_element = element_for(b_text)

    if full_matches(a_element, b_psj) and full_matches(b_element, a_psj):
        a_rows = set(evaluate_psj(a_psj, DB.__getitem__).rows)
        b_rows = set(evaluate_psj(b_psj, DB.__getitem__).rows)
        if a_rows != b_rows:
            save_counterexample(
                "property: antisymmetry (mutual subsumption, unequal extensions)",
                a_text, b_text,
            )
            raise AssertionError(
                f"mutual subsumption with different extensions: {a_text} | {b_text}"
            )


def test_counterexamples_become_replayable_repros(tmp_path, monkeypatch):
    """The auto-save path itself: written files load and replay cleanly."""
    monkeypatch.setenv("BRAID_QA_REPRO_DIR", str(tmp_path))
    path = save_counterexample("demo", query_text(["X < 2"]))
    from repro.qa import load_repro, replay

    loaded = load_repro(path)
    assert loaded.queries == [query_text(["X < 2"])]
    assert not replay(path).failed
