"""Seeded case generation: determinism, round-trips, well-formedness."""

import json

from repro.caql.parser import parse_query
from repro.qa import CaseConfig, CaseGenerator, FuzzCase, canonical_json, encode_rows
from repro.qa.generator import case_from_relations
from repro.relational.relation import Relation
from repro.relational.schema import Schema


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        first = CaseGenerator(7).corpus(20)
        second = CaseGenerator(7).corpus(20)
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]
        assert [c.fingerprint() for c in first] == [c.fingerprint() for c in second]

    def test_different_seeds_differ(self):
        a = CaseGenerator(0).generate(0)
        b = CaseGenerator(1).generate(0)
        assert a.fingerprint() != b.fingerprint()

    def test_different_indices_differ(self):
        generator = CaseGenerator(0)
        assert generator.generate(0).fingerprint() != generator.generate(1).fingerprint()

    def test_cases_independent_of_corpus_position(self):
        # Case 5 is the same whether generated alone or inside a corpus.
        alone = CaseGenerator(3).generate(5)
        in_corpus = CaseGenerator(3).corpus(10)[5]
        assert alone.to_dict() == in_corpus.to_dict()

    def test_faulty_profile_is_a_different_stream_knob(self):
        healthy = CaseGenerator(0, CaseConfig()).corpus(30)
        faulty = CaseGenerator(0, CaseConfig.faulty()).corpus(30)
        assert all(c.fault is None for c in healthy)
        assert any(c.fault is not None for c in faulty)


class TestRoundTrip:
    def test_json_round_trip_preserves_fingerprint(self):
        for case in CaseGenerator(11).corpus(10):
            wire = json.dumps(case.to_dict())
            back = FuzzCase.from_dict(json.loads(wire))
            assert back.to_dict() == case.to_dict()
            assert back.fingerprint() == case.fingerprint()

    def test_from_dict_tolerates_missing_optionals(self):
        case = FuzzCase.from_dict(
            {"seed": 0, "index": 0, "tables": [], "queries": []}
        )
        assert case.fault is None
        assert case.fault_onset == 0
        assert case.build_advice() is None


class TestWellFormedness:
    def test_every_generated_query_parses(self):
        for case in CaseGenerator(5).corpus(25):
            for text in case.queries:
                parse_query(text)
            for text in case.advice_views:
                parse_query(text)

    def test_tables_build_and_match_declared_arity(self):
        for case in CaseGenerator(5).corpus(10):
            for table, relation in zip(case.tables, case.build_tables()):
                assert relation.schema.arity == len(table["columns"])
                for row in relation.rows:
                    assert len(row) == len(table["columns"])

    def test_advice_and_fault_policy_materialize(self):
        built_advice = built_fault = 0
        for case in CaseGenerator(9, CaseConfig.faulty()).corpus(40):
            advice = case.build_advice()
            if advice is not None:
                built_advice += 1
                assert len(case.advice_annotations) == len(case.advice_views)
            policy = case.build_fault_policy()
            if policy is not None:
                built_fault += 1
                assert 0 <= case.fault_onset < max(len(case.queries), 1)
        assert built_advice > 0
        assert built_fault > 0


class TestEncoding:
    def test_encode_rows_keeps_collapsing_types_distinct(self):
        # 1, 1.0, True are Python-equal; "1" repr-collides with 1 — the
        # (type, repr) encoding must keep all four apart.
        encoded = encode_rows([(1,), (1.0,), ("1",), (True,)])
        assert len({tuple(map(tuple, row)) for row in encoded}) == 4

    def test_encode_rows_is_order_insensitive(self):
        assert encode_rows([(1, "a"), (2, "b")]) == encode_rows([(2, "b"), (1, "a")])

    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestCaseFromRelations:
    def test_hand_built_case_round_trips(self):
        relation = Relation(Schema("r", ("a0", "a1")), [(1, "x"), (2, "y")])
        case = case_from_relations({"r": relation}, ["q(X) :- r(X, Y)"])
        rebuilt = case.database()["r"]
        assert set(rebuilt.rows) == set(relation.rows)
        assert case.parsed_queries()[0].name == "q"
