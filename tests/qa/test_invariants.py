"""The invariant hooks must actually catch corruption.

Every ``check_invariants`` the fuzzer calls is exercised here twice: once
on a healthy object (no raise) and once after deliberately corrupting the
internal structures it guards (must raise).  Without these tests a hook
could silently rot into a no-op and the fuzzer would audit nothing.
"""

import pytest

from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.common.metrics import Metrics
from repro.core.cache import Cache
from repro.core.executor import ResultStream
from repro.core.plan import BindingSpec, QueryPlan, RemotePart
from repro.qa import InvariantViolation, audit, audit_cms, collect_violations
from repro.relational.generator import GeneratorRelation
from repro.relational.relation import Relation
from repro.relational.schema import Schema

DB = {
    "r": Relation(result_schema("r", 2), [(1, 2), (2, 3), (3, 4)]),
    "s": Relation(result_schema("s", 2), [(2, 9), (3, 8)]),
}


def stored_cache():
    cache = Cache()
    psj = psj_of(parse_query("e(X, Y) :- r(X, Y)"))
    element = cache.store(psj, evaluate_psj(psj, DB.__getitem__))
    return cache, element


class TestCacheInvariants:
    def test_healthy_cache_passes(self):
        cache, _ = stored_cache()
        cache.check_invariants()

    def test_negative_pin_count(self):
        cache, element = stored_cache()
        element.pin_count = -1
        with pytest.raises(InvariantViolation, match="pin count"):
            cache.check_invariants()

    def test_live_element_flagged_condemned(self):
        cache, element = stored_cache()
        element.condemned = True
        with pytest.raises(InvariantViolation, match="condemned"):
            cache.check_invariants()

    def test_element_missing_from_predicate_index(self):
        cache, element = stored_cache()
        cache._by_predicate["r"].pop(element.element_id, None)
        with pytest.raises(InvariantViolation, match="predicate index"):
            cache.check_invariants()

    def test_stray_key_index_entry(self):
        cache, element = stored_cache()
        cache._by_key[("bogus",)] = element.element_id
        with pytest.raises(InvariantViolation, match="key index"):
            cache.check_invariants()

    def test_predicate_bucket_referencing_retired_element(self):
        cache, _ = stored_cache()
        cache._by_predicate["ghost"] = {"e999": None}
        with pytest.raises(InvariantViolation, match="retired"):
            cache.check_invariants()

    def test_empty_predicate_bucket(self):
        cache, _ = stored_cache()
        cache._by_predicate["ghost"] = {}
        with pytest.raises(InvariantViolation, match="empty"):
            cache.check_invariants()


def remote_part(psj, tags, **kwargs):
    return RemotePart(
        sub_query=psj, columns=tuple(psj.projection), tags=frozenset(tags), **kwargs
    )


class TestPlanInvariants:
    PSJ = psj_of(parse_query("q(X, Z) :- r(X, Y), s(Y, Z)"))
    TAGS = sorted(occ.tag for occ in PSJ.occurrences)

    def test_remote_plan_covering_everything_passes(self):
        plan = QueryPlan(self.PSJ, "remote", parts=(remote_part(self.PSJ, self.TAGS),))
        plan.check_invariants()

    def test_terminal_strategies_are_always_consistent(self):
        QueryPlan(self.PSJ, "unsatisfiable").check_invariants()
        QueryPlan(self.PSJ, "unit").check_invariants()

    def test_uncovered_occurrence(self):
        plan = QueryPlan(
            self.PSJ, "remote", parts=(remote_part(self.PSJ, self.TAGS[:1]),)
        )
        with pytest.raises(InvariantViolation, match="covered by no part"):
            plan.check_invariants()

    def test_unknown_tag(self):
        plan = QueryPlan(
            self.PSJ, "remote", parts=(remote_part(self.PSJ, ["t9"]),)
        )
        with pytest.raises(InvariantViolation, match="unknown tags"):
            plan.check_invariants()

    def test_double_coverage(self):
        plan = QueryPlan(
            self.PSJ,
            "remote",
            parts=(
                remote_part(self.PSJ, self.TAGS),
                remote_part(self.PSJ, self.TAGS[:1]),
            ),
        )
        with pytest.raises(InvariantViolation, match="more than one"):
            plan.check_invariants()

    def test_lazy_plan_touching_remote(self):
        plan = QueryPlan(
            self.PSJ, "remote", parts=(remote_part(self.PSJ, self.TAGS),), lazy=True
        )
        with pytest.raises(InvariantViolation, match="lazy"):
            plan.check_invariants()

    def test_cache_full_without_full_match(self):
        plan = QueryPlan(self.PSJ, "cache-full", epoch=0)
        with pytest.raises(InvariantViolation, match="no full match"):
            plan.check_invariants()

    def test_exact_plan_without_epoch_stamp(self):
        plan = QueryPlan(self.PSJ, "exact")  # epoch left at -1
        with pytest.raises(InvariantViolation, match="epoch"):
            plan.check_invariants()
        plan.epoch = 0
        plan.check_invariants()

    def test_binding_from_a_column_no_cache_part_exposes(self):
        remote_column = sorted(self.PSJ.all_columns())[0]
        part = remote_part(
            self.PSJ,
            self.TAGS,
            bind_columns=(
                BindingSpec(remote_column=remote_column, cache_column="t9.a9"),
            ),
        )
        plan = QueryPlan(self.PSJ, "hybrid", parts=(part,), epoch=0)
        with pytest.raises(InvariantViolation):
            plan.check_invariants()


class TestMetricsInvariants:
    def test_healthy_ledger_passes(self):
        metrics = Metrics()
        metrics.incr("remote.requests")
        metrics.observe("latency", 1.5)
        metrics.scope("session").incr("cache.hits")
        metrics.check_invariants()

    def test_negative_counter(self):
        metrics = Metrics()
        metrics.counters["x"] = -1
        with pytest.raises(InvariantViolation, match="negative"):
            metrics.check_invariants()

    def test_non_finite_counter(self):
        metrics = Metrics()
        metrics.counters["x"] = float("inf")
        with pytest.raises(InvariantViolation, match="non-finite"):
            metrics.check_invariants()

    def test_non_finite_observation(self):
        metrics = Metrics()
        metrics.observe("h", 1.0)
        metrics.histograms["h"].values.append(float("nan"))
        with pytest.raises(InvariantViolation, match="non-finite"):
            metrics.check_invariants()

    def test_child_scope_with_broken_parent_pointer(self):
        metrics = Metrics()
        child = metrics.scope("child")
        child.parent = None
        with pytest.raises(InvariantViolation, match="parent"):
            metrics.check_invariants()

    def test_corruption_in_a_child_scope_is_found(self):
        metrics = Metrics()
        metrics.scope("child").counters["x"] = -5
        with pytest.raises(InvariantViolation, match="child"):
            metrics.check_invariants()


class TestStreamInvariants:
    SCHEMA = Schema("q", ("a0", "a1"))

    def test_healthy_stream_passes(self):
        stream = ResultStream(Relation(self.SCHEMA, [(1, 2), (3, 4)]), "q")
        stream.fetch_all()
        stream.check_invariants()

    def test_duplicate_production(self):
        relation = Relation(self.SCHEMA, [(1, 2), (3, 4)])
        relation._rows.append((1, 2))  # bypass the dedup path
        with pytest.raises(InvariantViolation, match="duplicate"):
            ResultStream(relation, "q").check_invariants()

    def test_arity_violation(self):
        relation = Relation(self.SCHEMA, [(1, 2)])
        relation._rows.append((1, 2, 3))
        relation._row_set.add((1, 2, 3))
        with pytest.raises(InvariantViolation, match="arity"):
            ResultStream(relation, "q").check_invariants()

    def test_drained_generator_replays_exactly(self):
        generated = GeneratorRelation(
            self.SCHEMA, lambda: iter([(1, 2), (3, 4), (1, 2)])
        )
        stream = ResultStream(generated, "q")
        rows = stream.fetch_all()
        assert len(rows) == 2  # deduplicated
        stream.check_invariants()  # exhausted: replay must produce nothing new


class TestAggregators:
    def test_audit_skips_objects_without_hooks(self):
        audit(object(), None, 42)  # nothing to check, nothing raised

    def test_audit_raises_on_first_violation(self):
        metrics = Metrics()
        metrics.counters["x"] = -1
        with pytest.raises(InvariantViolation):
            audit(Metrics(), metrics)

    def test_collect_violations_gathers_messages(self):
        bad_metrics = Metrics()
        bad_metrics.counters["x"] = -1
        cache, element = stored_cache()
        element.pin_count = -3
        messages = collect_violations(Metrics(), bad_metrics, cache)
        assert len(messages) == 2
        assert any("negative" in m for m in messages)

    def test_audit_cms_covers_a_real_system(self):
        from repro.qa import CaseGenerator
        from repro.qa.differential import build_variant

        case = CaseGenerator(0).generate(0)
        cms = build_variant(case, "full")
        cms.begin_session(case.build_advice())
        for query in case.parsed_queries():
            cms.query(query).fetch_all()
        audit_cms(cms)  # healthy run: every hook passes
