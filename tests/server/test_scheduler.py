"""Tests for the cooperative scheduler: policies, fairness, determinism."""

import pytest

from repro.caql.parser import parse_query
from repro.common.errors import ServerError
from repro.server import BraidServer, ServerConfig
from repro.server.scheduler import (
    RoundRobinPolicy,
    Scheduler,
    WeightedFairPolicy,
)
from repro.server.session import Session
from repro.workloads.synthetic import selection_universe


def stub_session(name, weight=1.0):
    session = Session.__new__(Session)
    session.name = name
    session.weight = weight
    session.open = True
    return session


class TestRoundRobin:
    def test_takes_turns_in_opening_order(self):
        policy = RoundRobinPolicy()
        sessions = [stub_session(n) for n in ("a", "b", "c")]
        for session in sessions:
            policy.note_session(session)
        picks = [policy.pick(sessions).name for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_skips_ineligible_sessions(self):
        policy = RoundRobinPolicy()
        a, b, c = (stub_session(n) for n in ("a", "b", "c"))
        for session in (a, b, c):
            policy.note_session(session)
        assert policy.pick([a, c]).name == "a"
        assert policy.pick([a, c]).name == "c"
        assert policy.pick([a, c]).name == "a"

    def test_forget_keeps_rotation_stable(self):
        policy = RoundRobinPolicy()
        a, b, c = (stub_session(n) for n in ("a", "b", "c"))
        for session in (a, b, c):
            policy.note_session(session)
        assert policy.pick([a, b, c]).name == "a"
        policy.forget_session("a")
        assert [policy.pick([b, c]).name for _ in range(4)] == ["b", "c", "b", "c"]

    def test_empty_pick_rejected(self):
        with pytest.raises(ServerError):
            RoundRobinPolicy().pick([])


class TestWeightedFair:
    def test_equal_weights_share_equally(self):
        policy = WeightedFairPolicy(seed=1)
        sessions = [stub_session(n) for n in ("a", "b")]
        for session in sessions:
            policy.note_session(session)
        picks = [policy.pick(sessions).name for _ in range(40)]
        assert picks.count("a") == picks.count("b") == 20

    def test_steps_proportional_to_weight(self):
        policy = WeightedFairPolicy(seed=1)
        heavy = stub_session("heavy", weight=3.0)
        light = stub_session("light", weight=1.0)
        policy.note_session(heavy)
        policy.note_session(light)
        picks = [policy.pick([heavy, light]).name for _ in range(80)]
        assert picks.count("heavy") == 60
        assert picks.count("light") == 20

    def test_latecomer_joins_at_current_floor(self):
        policy = WeightedFairPolicy(seed=1)
        a, b = stub_session("a"), stub_session("b")
        policy.note_session(a)
        for _ in range(10):
            policy.pick([a])
        policy.note_session(b)
        # b starts at a's accumulated pass, so it neither monopolizes the
        # scheduler catching up nor waits for a to lap it.
        picks = [policy.pick([a, b]).name for _ in range(20)]
        assert picks.count("a") == picks.count("b") == 10

    def test_same_seed_same_tie_breaks(self):
        def sequence(seed):
            policy = WeightedFairPolicy(seed=seed)
            sessions = [stub_session(n) for n in ("a", "b", "c")]
            for session in sessions:
                policy.note_session(session)
            return [policy.pick(sessions).name for _ in range(30)]

        assert sequence(7) == sequence(7)


class TestSchedulerWrapper:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ServerError):
            Scheduler(policy="lottery")
        with pytest.raises(ServerError):
            ServerConfig(scheduler_policy="lottery")

    def test_empty_pick_rejected(self):
        with pytest.raises(ServerError):
            Scheduler().pick([])


class TestServerDeterminism:
    def run_server(self, policy, seed):
        server = BraidServer(
            tables=selection_universe(rows=40, seed=5).tables,
            config=ServerConfig(scheduler_policy=policy, scheduler_seed=seed),
        )
        server.open_session("alice", weight=2.0)
        server.open_session("bob")
        for i in range(5):
            server.submit("alice", parse_query(f"a{i}(I, V) :- item(I, cat{i}, V)"))
            server.submit("bob", parse_query(f"b{i}(I, V) :- item(I, cat{i}, V)"))
        server.run_until_idle()
        return server

    @pytest.mark.parametrize("policy", ["round-robin", "weighted-fair"])
    def test_same_seed_byte_identical(self, policy):
        first = self.run_server(policy, seed=3)
        second = self.run_server(policy, seed=3)
        assert first.schedule_lines() == second.schedule_lines()
        assert first.schedule_fingerprint() == second.schedule_fingerprint()
        assert first.session_results_snapshot() == second.session_results_snapshot()

    def test_trace_lines_are_well_formed(self):
        server = self.run_server("round-robin", seed=0)
        for index, line in enumerate(server.schedule_lines()):
            fields = line.split("|")
            assert len(fields) == 5
            assert int(fields[0]) == index
            assert fields[1] in ("execute", "drain")
            assert fields[2] in ("alice", "bob")

    def test_every_request_executes_then_drains(self):
        server = self.run_server("weighted-fair", seed=9)
        seen: dict[str, list[str]] = {}
        for record in server.schedule_trace:
            seen.setdefault(record.request_id, []).append(record.phase)
        assert all(phases == ["execute", "drain"] for phases in seen.values())

    def test_weighted_fair_respects_weights_in_steps(self):
        server = self.run_server("weighted-fair", seed=3)
        report = server.fairness_report()
        # Both sessions completed everything and latencies stayed within
        # a sane band of each other.
        assert report["sessions"]["alice"]["completed"] == 5
        assert report["sessions"]["bob"]["completed"] == 5
        assert report["max_min_latency_ratio"] < 3.0
