"""Shared multi-query optimization: registry unit tests plus the
end-to-end contract that sharing in-flight subplans is invisible in
every answer."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.metrics import SERVER_SHARED_SUBPLANS
from repro.relational.relation import Relation
from repro.caql.parser import parse_query
from repro.caql.eval import psj_of, result_schema
from repro.core.cms import CMSFeatures
from repro.server import BraidServer, ServerConfig
from repro.server.mqo import SharedSubplanRegistry
from repro.workloads.multisession import (
    MultiSessionSpec,
    client_streams,
    submit_interleaved,
)
from repro.workloads.synthetic import retail_universe


def make_psj(text):
    return psj_of(parse_query(text))


def make_relation(name, n, width=2):
    schema = result_schema(name, width)
    return Relation(
        schema, [tuple(f"{name}{i}_{j}" for j in range(width)) for i in range(n)]
    )


class TestSharedSubplanRegistry:
    def test_publish_then_lookup(self):
        registry = SharedSubplanRegistry()
        psj = make_psj("v1(X, Y) :- b1(X, Y), X >= 3")
        relation = make_relation("v1", 4)
        registry.publish(psj, relation)
        # A structurally identical definition hits even under renaming.
        twin = make_psj("other(A, B) :- b1(A, B), A >= 3")
        assert registry.lookup(twin) is relation
        assert registry.publications == 1
        assert registry.hits == 1
        registry.check_invariants()

    def test_miss_on_different_definition(self):
        registry = SharedSubplanRegistry()
        registry.publish(make_psj("v1(X, Y) :- b1(X, Y), X >= 3"), make_relation("v1", 4))
        assert registry.lookup(make_psj("v2(X, Y) :- b1(X, Y), X >= 4")) is None
        assert registry.hits == 0

    def test_fifo_bound_evicts_oldest(self):
        registry = SharedSubplanRegistry(max_entries=2)
        queries = [make_psj(f"v{i}(X, Y) :- b{i}(X, Y)") for i in range(3)]
        for index, psj in enumerate(queries):
            registry.publish(psj, make_relation(f"v{index}", 2))
        assert len(registry) == 2
        assert registry.lookup(queries[0]) is None  # oldest dropped
        assert registry.lookup(queries[1]) is not None
        assert registry.lookup(queries[2]) is not None
        registry.check_invariants()

    def test_republish_refreshes_without_consuming_capacity(self):
        registry = SharedSubplanRegistry(max_entries=2)
        psj = make_psj("v1(X, Y) :- b1(X, Y)")
        registry.publish(psj, make_relation("v1", 2))
        replacement = make_relation("v1", 3)
        registry.publish(psj, replacement)
        assert len(registry) == 1
        assert registry.lookup(psj) is replacement
        assert registry.publications == 2

    def test_clear_drops_everything(self):
        registry = SharedSubplanRegistry()
        psj = make_psj("v1(X, Y) :- b1(X, Y)")
        registry.publish(psj, make_relation("v1", 2))
        registry.clear()
        assert len(registry) == 0
        assert registry.lookup(psj) is None

    def test_invariants_catch_corruption(self):
        registry = SharedSubplanRegistry(max_entries=1)
        registry.publish(make_psj("v1(X, Y) :- b1(X, Y)"), make_relation("v1", 2))
        registry._entries["bogus"] = "not a relation"
        with pytest.raises(InvariantViolation):
            registry.check_invariants()


# -- end-to-end: the E21 churn regime, shrunk to a test ----------------------------

TABLES = retail_universe(rows=300, orders=600, domain=1000, seed=5).tables
SPEC = MultiSessionSpec(
    clients=6,
    requests_per_client=16,
    shared_fraction=0.7,
    hot_pool_size=9,
    private_pool_size=10,
    seed=21,
    join_fraction=0.667,
    zipf_skew=1.0,
)
CHURN_BYTES = 3_000


def run_server(mqo: bool, serial: bool = False):
    server = BraidServer(
        tables=TABLES,
        config=ServerConfig(
            cache_capacity_bytes=CHURN_BYTES,
            features=CMSFeatures(intermediates=True, mqo=mqo),
            mqo=mqo,
            max_queue_depth=SPEC.clients * SPEC.requests_per_client + 16,
            scheduler_seed=21,
        ),
    )
    streams = client_streams(SPEC)
    for name in streams:
        server.open_session(name)
    if serial:
        for name, stream in streams.items():
            for query in stream:
                server.submit(name, query)
            server.run_until_idle()
    else:
        submit_interleaved(server, streams)
        server.run_until_idle()
    snapshot = server.session_results_snapshot()
    answers = {
        name: sorted(
            (request_id, query_name, rows)
            for request_id, query_name, _lat, _deg, _err, rows in results
        )
        for name, results in snapshot.items()
    }
    return server, answers


class TestMQOEndToEnd:
    @pytest.fixture(scope="class")
    def with_mqo(self):
        return run_server(mqo=True)

    @pytest.fixture(scope="class")
    def without_mqo(self):
        return run_server(mqo=False)

    @pytest.fixture(scope="class")
    def serial_mqo(self):
        return run_server(mqo=True, serial=True)

    def test_subplans_shared_under_churn(self, with_mqo, without_mqo):
        server, _ = with_mqo
        baseline, _ = without_mqo
        assert server.metrics.get(SERVER_SHARED_SUBPLANS) > 0
        assert baseline.metrics.get(SERVER_SHARED_SUBPLANS) == 0

    def test_disabled_server_has_no_registry(self, without_mqo):
        server, _ = without_mqo
        assert server.subplan_registry is None

    def test_registry_cleared_at_idle(self, with_mqo):
        """The registry is a per-burst structure: going idle empties it,
        so stale rows can never leak into the next burst."""
        server, _ = with_mqo
        assert len(server.subplan_registry) == 0
        server.subplan_registry.check_invariants()

    def test_sharing_never_changes_answers(self, with_mqo, without_mqo):
        _, shared = with_mqo
        _, unshared = without_mqo
        assert shared == unshared

    def test_concurrent_answers_match_serial(self, with_mqo, serial_mqo):
        """The MQO correctness contract: a session's rows are exactly what
        it would have received running alone, one client at a time."""
        _, concurrent = with_mqo
        _, serial = serial_mqo
        assert concurrent == serial
