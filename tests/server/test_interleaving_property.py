"""Property test: scheduling must never change answers.

Whatever order the scheduler interleaves session steps in — any policy,
any seed, any submission order, even a cache small enough to force
evictions mid-run — every session must receive exactly the rows it would
have received running alone against its own private CMS.  This is the
server's core correctness contract: concurrency is a performance feature,
never a semantic one.
"""

import random

import pytest

from repro.core.cms import CacheManagementSystem
from repro.remote.server import RemoteDBMS
from repro.server import BraidServer, ServerConfig
from repro.workloads.multisession import MultiSessionSpec, client_streams
from repro.workloads.synthetic import selection_universe

WORKLOAD = selection_universe(rows=120, domain=400, seed=5)


def serial_answers(streams):
    """Each client alone against a fresh single-session CMS."""
    answers = {}
    for name, stream in streams.items():
        remote = RemoteDBMS()
        for table in WORKLOAD.tables:
            remote.load_table(table)
        cms = CacheManagementSystem(remote)
        cms.begin_session()
        answers[name] = [sorted(cms.query(q).fetch_all()) for q in stream]
    return answers


def server_answers(streams, policy, seed, submit_order, capacity_bytes=4_000_000):
    server = BraidServer(
        tables=WORKLOAD.tables,
        config=ServerConfig(
            cache_capacity_bytes=capacity_bytes,
            scheduler_policy=policy,
            scheduler_seed=seed,
            max_queue_depth=1024,
        ),
    )
    rng = random.Random(seed)
    for index, name in enumerate(streams):
        server.open_session(name, weight=1.0 + (index % 3))
    slots = [name for name, s in streams.items() for _ in s]
    if submit_order == "shuffled":
        # Shuffle arrival order across clients; within one client the
        # stream order still holds (a session's stream is a sequence).
        rng.shuffle(slots)
    cursor: dict[str, int] = {}
    for name in slots:
        position = cursor.get(name, 0)
        cursor[name] = position + 1
        server.submit(name, streams[name][position])
    server.run_until_idle()
    answers = {}
    for name in streams:
        completed = server.results(name)
        assert all(request.error is None for request in completed)
        by_id = {request.request_id: request for request in completed}
        answers[name] = [
            sorted(by_id[f"{name}#{i + 1}"].rows) for i in range(len(streams[name]))
        ]
    return answers


def spec(seed):
    return MultiSessionSpec(
        clients=3,
        requests_per_client=5,
        shared_fraction=0.6,
        hot_pool_size=4,
        private_pool_size=5,
        domain=400,
        seed=seed,
    )


@pytest.mark.parametrize("workload_seed", [2, 9, 23])
@pytest.mark.parametrize("policy", ["round-robin", "weighted-fair"])
@pytest.mark.parametrize("submit_order", ["interleaved", "shuffled"])
def test_any_interleaving_matches_serial(workload_seed, policy, submit_order):
    streams = client_streams(spec(workload_seed))
    expected = serial_answers(streams)
    got = server_answers(streams, policy, seed=workload_seed, submit_order=submit_order)
    assert got == expected


@pytest.mark.parametrize("scheduler_seed", range(5))
def test_tie_break_seeds_never_change_answers(scheduler_seed):
    streams = client_streams(spec(4))
    expected = serial_answers(streams)
    got = server_answers(
        streams, "weighted-fair", seed=scheduler_seed, submit_order="interleaved"
    )
    assert got == expected


def test_eviction_pressure_does_not_change_answers():
    # A cache small enough that elements are evicted during the run: the
    # pin/epoch machinery must keep in-flight streams correct anyway.
    streams = client_streams(spec(7))
    expected = serial_answers(streams)
    got = server_answers(
        streams,
        "round-robin",
        seed=7,
        submit_order="interleaved",
        capacity_bytes=6_000,
    )
    assert got == expected
