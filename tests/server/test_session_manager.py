"""Tests for sessions and the session manager (shared cache, private state)."""

import pytest

from repro.advice.language import AdviceSet
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.common.errors import ServerError, SessionStateError, UnknownSessionError
from repro.common.metrics import (
    CACHE_HITS_EXACT,
    CACHE_MISSES,
    SERVER_SESSIONS_CLOSED,
    SERVER_SESSIONS_OPENED,
    Metrics,
)
from repro.core.cache import Cache
from repro.remote.server import RemoteDBMS
from repro.server.session import SessionManager
from repro.workloads.synthetic import selection_universe


def make_manager(**kwargs):
    remote = RemoteDBMS()
    for table in selection_universe(rows=50, seed=5).tables:
        remote.load_table(table)
    return SessionManager(remote, Cache(), **kwargs)


QUERY = parse_query("q(I, V) :- item(I, cat0, V)")


class TestLifecycle:
    def test_open_and_get(self):
        manager = make_manager()
        session = manager.open("alice")
        assert manager.get("alice") is session
        assert session.open
        assert "alice" in manager
        assert len(manager) == 1

    def test_duplicate_open_rejected(self):
        manager = make_manager()
        manager.open("alice")
        with pytest.raises(SessionStateError):
            manager.open("alice")

    def test_unknown_session_rejected(self):
        manager = make_manager()
        with pytest.raises(UnknownSessionError) as excinfo:
            manager.get("nobody")
        assert excinfo.value.name == "nobody"

    def test_close_removes_and_reopens(self):
        manager = make_manager()
        manager.open("alice")
        closed = manager.close("alice")
        assert not closed.open
        assert "alice" not in manager
        manager.open("alice")  # the name is free again

    def test_sessions_in_opening_order(self):
        manager = make_manager()
        for name in ("c", "a", "b"):
            manager.open(name)
        assert [s.name for s in manager.sessions()] == ["c", "a", "b"]

    def test_lifecycle_counters(self):
        manager = make_manager()
        manager.open("alice")
        manager.open("bob")
        manager.close("alice")
        assert manager.metrics.get(SERVER_SESSIONS_OPENED) == 2
        assert manager.metrics.get(SERVER_SESSIONS_CLOSED) == 1

    def test_nonpositive_weight_rejected(self):
        manager = make_manager()
        with pytest.raises(ServerError):
            manager.open("alice", weight=0.0)


class TestSharedState:
    def test_sessions_share_one_cache(self):
        manager = make_manager()
        alice = manager.open("alice")
        bob = manager.open("bob")
        assert alice.cms.cache is bob.cms.cache is manager.cache
        assert alice.cms.shares_cache and bob.cms.shares_cache

    def test_cross_session_exact_reuse(self):
        manager = make_manager()
        alice = manager.open("alice")
        bob = manager.open("bob")
        alice.cms.query(QUERY).fetch_all()
        bob.cms.query(QUERY).fetch_all()
        # Bob's structurally identical query hit Alice's cached answer,
        # and the hit is accounted to Bob's scope.
        assert bob.metrics.get(CACHE_HITS_EXACT) == 1
        assert alice.metrics.get(CACHE_HITS_EXACT) == 0

    def test_advice_contexts_are_private(self):
        manager = make_manager()
        advice = AdviceSet.from_views(
            [annotate(parse_query("v(I) :- item(I, C, V)"), "^")]
        )
        alice = manager.open("alice", advice=advice)
        bob = manager.open("bob")
        assert alice.cms.advice_manager is not bob.cms.advice_manager
        assert alice.cms.advice_manager.has_advice
        assert not bob.cms.advice_manager.has_advice


class TestMetricsIsolation:
    """Satellite: no global-registry cross-talk between sessions."""

    def test_sessions_get_child_scopes(self):
        root = Metrics()
        manager = make_manager(metrics=root)
        alice = manager.open("alice")
        assert alice.metrics is root.scope("alice")
        assert alice.metrics.scope_name == "alice"

    def test_scope_counts_own_share_root_aggregates(self):
        root = Metrics()
        manager = make_manager(metrics=root)
        alice = manager.open("alice")
        bob = manager.open("bob")
        alice.cms.query(QUERY).fetch_all()
        bob.cms.query(QUERY).fetch_all()
        a, b = alice.metrics.snapshot(), bob.metrics.snapshot()
        # Alice took the miss; Bob hit her cached answer.  Neither ledger
        # contains the other's events, and the root holds the sums.
        assert a.get(CACHE_MISSES, 0) == 1
        assert b.get(CACHE_MISSES, 0) == 0
        assert b.get(CACHE_HITS_EXACT, 0) == 1
        assert a.get(CACHE_HITS_EXACT, 0) == 0
        for name in set(a) | set(b):
            assert root.get(name) == a.get(name, 0) + b.get(name, 0)

    def test_close_detaches_scope(self):
        root = Metrics()
        manager = make_manager(metrics=root)
        session = manager.open("alice")
        session.cms.query(QUERY).fetch_all()
        before = root.get(CACHE_MISSES)
        detached = session.metrics
        manager.close("alice")
        assert "alice" not in root.scopes()
        detached.incr(CACHE_MISSES)  # a zombie ledger
        assert root.get(CACHE_MISSES) == before

    def test_two_standalone_systems_do_not_share_metrics(self):
        # The historical bug this satellite fixes: two independently
        # constructed CMS instances recording into one global ledger.
        one = make_manager().open("main")
        other = make_manager().open("main")
        one.cms.query(QUERY).fetch_all()
        assert one.metrics.get(CACHE_MISSES) == 1
        assert other.metrics.get(CACHE_MISSES) == 0


class TestCloseReleasesPins:
    def test_close_drains_in_flight_streams(self):
        manager = make_manager(pin_streams=True)
        session = manager.open("alice")
        stream = session.cms.query(QUERY)
        # Simulate the server's execute phase: the undrained stream sits
        # on the in-flight queue when the session goes away.
        from repro.server.session import Request

        session.in_flight.append(
            Request(
                request_id=session.new_request_id(),
                session_name="alice",
                query=QUERY,
                submitted_at=0.0,
                stream=stream,
            )
        )
        manager.close("alice")
        assert all(e.pin_count == 0 for e in manager.cache._elements.values())
        assert not manager.cache.condemned_elements()
