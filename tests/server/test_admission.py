"""Tests for admission control: queue bounds, backpressure, in-flight limits."""

import pytest

from repro.caql.parser import parse_query
from repro.common.errors import ServerOverloadError
from repro.common.metrics import (
    SERVER_REQUESTS_ACCEPTED,
    SERVER_REQUESTS_REJECTED,
    Metrics,
)
from repro.server import BraidServer, ServerConfig
from repro.server.admission import AdmissionController
from repro.server.session import Request, Session
from repro.workloads.synthetic import selection_universe


def stub_session(name="s"):
    # Admission only reads queue state, so a bare object with the
    # Session queue attributes is enough.
    session = Session.__new__(Session)
    session.name = name
    session.open = True
    session.backlog = []
    session.in_flight = []
    return session


def stub_request(session, n):
    return Request(
        request_id=f"{session.name}#{n}",
        session_name=session.name,
        query=None,
        submitted_at=0.0,
    )


class TestController:
    def test_rejects_beyond_queue_depth(self):
        metrics = Metrics()
        controller = AdmissionController(max_queue_depth=2, metrics=metrics)
        session = stub_session()
        controller.admit(session)
        controller.admit(session)
        with pytest.raises(ServerOverloadError) as excinfo:
            controller.admit(session)
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.max_queue_depth == 2
        assert metrics.get(SERVER_REQUESTS_ACCEPTED) == 2
        assert metrics.get(SERVER_REQUESTS_REJECTED) == 1

    def test_release_reopens_admission(self):
        controller = AdmissionController(max_queue_depth=1)
        session = stub_session()
        controller.admit(session)
        controller.release()
        controller.admit(session)  # does not raise

    def test_unmatched_release_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController().release()

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(max_inflight_per_session=0)

    def test_may_start_caps_in_flight(self):
        controller = AdmissionController(max_inflight_per_session=2)
        session = stub_session()
        assert controller.may_start(session)
        session.in_flight = [stub_request(session, 1), stub_request(session, 2)]
        assert not controller.may_start(session)

    def test_eligibility(self):
        controller = AdmissionController(max_inflight_per_session=1)
        session = stub_session()
        assert not controller.is_eligible(session)  # nothing to do
        session.backlog = [stub_request(session, 1)]
        assert controller.is_eligible(session)  # can start
        session.in_flight = [stub_request(session, 2)]
        assert controller.is_eligible(session)  # can drain (but not start)
        assert not controller.may_start(session)
        session.backlog = []
        session.in_flight = []
        session.open = False
        assert not controller.is_eligible(session)

    def test_utilization(self):
        controller = AdmissionController(max_queue_depth=4)
        session = stub_session()
        controller.admit(session)
        assert controller.utilization() == 0.25


class TestServerBackpressure:
    def make_server(self, **overrides):
        config = ServerConfig(max_queue_depth=3, max_inflight_per_session=1, **overrides)
        return BraidServer(
            tables=selection_universe(rows=30, seed=5).tables, config=config
        )

    def queries(self, n):
        return [
            parse_query(f"q{i}(I, V) :- item(I, cat{i % 10}, V)") for i in range(n)
        ]

    def test_submit_beyond_bound_raises(self):
        server = self.make_server()
        server.open_session("alice")
        for query in self.queries(3):
            server.submit("alice", query)
        with pytest.raises(ServerOverloadError):
            server.submit("alice", self.queries(4)[3])

    def test_backpressure_clears_as_work_completes(self):
        server = self.make_server()
        server.open_session("alice")
        queries = self.queries(4)
        for query in queries[:3]:
            server.submit("alice", query)
        server.run_until_idle()
        server.submit("alice", queries[3])  # the queue drained
        server.run_until_idle()
        assert len(server.results("alice")) == 4

    def test_in_flight_limit_forces_drain_before_next_start(self):
        server = self.make_server()
        server.open_session("alice")
        for query in self.queries(2):
            server.submit("alice", query)
        server.run_until_idle()
        # With max_inflight=1 the only legal schedule for one session is
        # strict execute/drain alternation.
        phases = [record.phase for record in server.schedule_trace]
        assert phases == ["execute", "drain", "execute", "drain"]

    def test_close_releases_abandoned_admissions(self):
        server = self.make_server()
        server.open_session("alice")
        for query in self.queries(3):
            server.submit("alice", query)
        server.close_session("alice")
        assert server.admission.queued == 0
        server.open_session("bob")
        server.submit("bob", self.queries(1)[0])  # capacity is back
