"""Server-side observability: per-session trace scoping, high-water
gauges, admission rejection events, and trace determinism."""

import json

import pytest

from repro.caql.parser import parse_query
from repro.common.errors import ServerOverloadError
from repro.common.metrics import (
    SERVER_QUEUE_DEPTH_HIGH_WATER,
    SERVER_SESSION_INFLIGHT_HIGH_WATER,
)
from repro.server import BraidServer, ServerConfig
from repro.workloads.synthetic import selection_universe

TABLES = selection_universe(rows=60, domain=100, seed=5).tables


def make_server(tracing: bool = True, **overrides) -> BraidServer:
    return BraidServer(
        tables=TABLES,
        config=ServerConfig(tracing=tracing, scheduler_seed=3, **overrides),
    )


def queries(count: int, tag: str = "q"):
    return [
        parse_query(f"{tag}{i}(I, V) :- item(I, cat0, V), V >= {i}")
        for i in range(count)
    ]


def run_workload(server: BraidServer, per_session: int = 3) -> None:
    server.open_session("alice")
    server.open_session("bob")
    for query in queries(per_session, tag="qa"):
        server.submit("alice", query)
    for query in queries(per_session, tag="qb"):
        server.submit("bob", query)
    server.run_until_idle()


def spans_of(server: BraidServer) -> list[dict]:
    return [
        json.loads(line)
        for line in server.trace_jsonl().splitlines()
        if "\"span\"" in line
    ]


class TestSessionScoping:
    def test_server_steps_carry_phase_session_and_request(self):
        server = make_server()
        run_workload(server)
        steps = [s for s in spans_of(server) if s["name"] == "server.step"]
        assert steps
        assert {s["attributes"]["session"] for s in steps} == {"alice", "bob"}
        assert {s["attributes"]["phase"] for s in steps} == {"execute", "drain"}
        for step in steps:
            assert step["attributes"]["request"]
            assert "eligible" in step["attributes"]

    def test_step_spans_mirror_the_schedule_trace(self):
        server = make_server()
        run_workload(server)
        steps = [s for s in spans_of(server) if s["name"] == "server.step"]
        records = server.schedule_trace
        assert len(steps) == len(records)
        for step, record in zip(steps, records):
            assert step["attributes"]["index"] == record.index
            assert step["attributes"]["phase"] == record.phase
            assert step["attributes"]["session"] == record.session
            assert step["attributes"]["request"] == record.request_id

    def test_query_spans_nest_under_steps_with_session_attr(self):
        server = make_server()
        run_workload(server)
        spans = spans_of(server)
        by_id = {s["span"]: s for s in spans}
        cms_queries = [s for s in spans if s["name"] == "cms.query"]
        assert cms_queries
        for span in cms_queries:
            parent = by_id[span["parent"]]
            assert parent["name"] == "server.step"
            assert span["attributes"]["session"] == parent["attributes"]["session"]


class TestGauges:
    def test_queue_depth_high_water(self):
        server = make_server(tracing=False)
        server.open_session("alice")
        for query in queries(4):
            server.submit("alice", query)
        assert server.metrics.get(SERVER_QUEUE_DEPTH_HIGH_WATER) == 4
        server.run_until_idle()
        # Draining never lowers a high-water mark.
        assert server.metrics.get(SERVER_QUEUE_DEPTH_HIGH_WATER) == 4

    def test_per_session_inflight_peaks(self):
        server = make_server(tracing=False, max_inflight_per_session=2)
        run_workload(server, per_session=4)
        alice = server.sessions.get("alice")
        assert 1 <= alice.in_flight_peak <= 2
        assert (
            alice.metrics.get(SERVER_SESSION_INFLIGHT_HIGH_WATER)
            == alice.in_flight_peak
        )
        # The server root keeps the max over sessions, not the sum.
        peaks = [s.in_flight_peak for s in server.sessions.sessions()]
        assert server.metrics.get(SERVER_SESSION_INFLIGHT_HIGH_WATER) == max(peaks)


class TestAdmissionEvents:
    def test_rejection_emits_a_trace_event(self):
        server = make_server(max_queue_depth=2)
        server.open_session("alice")
        for query in queries(2):
            server.submit("alice", query)
        with pytest.raises(ServerOverloadError):
            server.submit("alice", queries(3)[2])
        rejected = [
            json.loads(line)
            for line in server.trace_jsonl().splitlines()
            if '"event":"server.rejected"' in line
        ]
        assert len(rejected) == 1
        attributes = rejected[0]["attributes"]
        assert attributes["session"] == "alice"
        assert attributes["queue_depth"] == 2
        assert attributes["max_queue_depth"] == 2


class TestDeterminism:
    def test_same_seed_traces_are_byte_identical(self):
        def run():
            server = make_server()
            run_workload(server)
            return server.trace_jsonl(), server.trace_fingerprint()

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[0]  # non-empty: the trace actually recorded spans

    def test_tracing_does_not_perturb_the_run(self):
        def run(tracing: bool):
            server = make_server(tracing=tracing)
            run_workload(server)
            return (
                server.clock.now,
                server.metrics.snapshot(),
                server.schedule_fingerprint(),
                server.session_results_snapshot(),
            )

        assert run(tracing=True) == run(tracing=False)

    def test_untraced_server_exports_nothing(self):
        server = make_server(tracing=False)
        run_workload(server)
        assert server.trace_jsonl() == ""
