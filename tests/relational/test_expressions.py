"""Tests for row expressions and conditions."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.expressions import (
    Col,
    Comparison,
    Lit,
    col_eq,
    compile_conjunction,
    eq,
)
from repro.relational.schema import Schema

SCHEMA = Schema("emp", ("id", "age", "dept"))


class TestComparison:
    def test_unknown_operator_rejected(self):
        with pytest.raises(SchemaError):
            Comparison(Col("a"), "~", Lit(1))

    def test_compile_col_const(self):
        predicate = eq("dept", "sw").compile(SCHEMA)
        assert predicate((1, 30, "sw"))
        assert not predicate((1, 30, "hw"))

    def test_compile_col_col(self):
        predicate = col_eq("id", "age").compile(SCHEMA)
        assert predicate((5, 5, "sw"))
        assert not predicate((5, 6, "sw"))

    def test_compile_range(self):
        predicate = Comparison(Col("age"), ">=", Lit(18)).compile(SCHEMA)
        assert predicate((1, 18, "sw"))
        assert not predicate((1, 17, "sw"))

    def test_incomparable_types_false(self):
        predicate = Comparison(Col("age"), "<", Lit(18)).compile(SCHEMA)
        assert not predicate((1, "unknown", "sw"))

    def test_unknown_column_raises_at_compile(self):
        with pytest.raises(SchemaError):
            eq("salary", 1).compile(SCHEMA)


class TestNormalization:
    def test_const_moves_right(self):
        norm = Comparison(Lit(5), "<", Col("age")).normalized()
        assert norm == Comparison(Col("age"), ">", Lit(5))

    def test_col_col_ordered_by_name(self):
        norm = Comparison(Col("b"), "<", Col("a")).normalized()
        assert norm == Comparison(Col("a"), ">", Col("b"))

    def test_already_normalized_unchanged(self):
        condition = Comparison(Col("age"), "<=", Lit(9))
        assert condition.normalized() == condition

    def test_equality_flip_preserved(self):
        norm = Comparison(Lit(5), "=", Col("age")).normalized()
        assert norm == Comparison(Col("age"), "=", Lit(5))

    def test_is_col_const(self):
        assert Comparison(Lit(5), "<", Col("age")).is_col_const()
        assert not col_eq("a", "b").is_col_const()

    def test_negated(self):
        assert eq("a", 1).negated().op == "!="
        assert Comparison(Col("a"), "<", Lit(1)).negated().op == ">="


class TestHelpers:
    def test_columns(self):
        assert col_eq("a", "b").columns() == {"a", "b"}
        assert eq("a", 1).columns() == {"a"}

    def test_rename_columns(self):
        renamed = col_eq("a", "b").rename_columns({"a": "x"})
        assert renamed == col_eq("x", "b")

    def test_rename_ignores_literals(self):
        renamed = eq("a", 1).rename_columns({"a": "x"})
        assert renamed == eq("x", 1)


class TestConjunction:
    def test_empty_conjunction_is_true(self):
        predicate = compile_conjunction([], SCHEMA)
        assert predicate((1, 2, "any"))

    def test_all_must_hold(self):
        predicate = compile_conjunction(
            [eq("dept", "sw"), Comparison(Col("age"), ">", Lit(25))], SCHEMA
        )
        assert predicate((1, 30, "sw"))
        assert not predicate((1, 20, "sw"))
        assert not predicate((1, 30, "hw"))

    def test_single_condition_fast_path(self):
        predicate = compile_conjunction([eq("id", 1)], SCHEMA)
        assert predicate((1, 0, ""))
