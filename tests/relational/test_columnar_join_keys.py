"""Mixed-type keys through the local hash joins (tuple and columnar).

The local mirror of ``tests/remote/test_mixed_type_bindings.py``: Python
lets ``1 == 1.0 == True`` while ``1 != "1"`` even though their reprs
collide.  :func:`repro.core.rdi.canonical_bindings` dedups binding sets
by exactly those equality classes, so the local hash joins must bucket
keys the same way — a join keyed by ``(type, repr)`` would *split* the
classes and silently lose join rows that the remote semijoin (and the
tuple engine's dict-based join) would produce.
"""

import pytest

from repro.core.rdi import canonical_bindings
from repro.relational.columnar import ColumnarBatch, hash_join_batch
from repro.relational.operators import join
from repro.relational.relation import relation_from_columns


def left_keys():
    return relation_from_columns(
        "l", key=[1, 2, 3, "1", "2"], tag=["a", "b", "c", "d", "e"]
    )


def right_keys():
    return relation_from_columns("r", key=[1.0, "1", True, 2], val=[10, 20, 30, 40])


def batch_join(left, right, pairs):
    return hash_join_batch(
        ColumnarBatch.from_relation(left),
        ColumnarBatch.from_relation(right),
        pairs,
        name="j",
    )


class TestColumnarJoinEqualityClasses:
    def test_float_key_matches_equal_int_key(self):
        out = batch_join(left_keys(), right_keys(), [("key", "key")])
        # 1 == 1.0 == True: the int-1 left row matches three right rows.
        assert {(r[2], r[3]) for r in out.rows if r[0] == 1 and r[0] is not True} >= {
            (1.0, 10),
            (True, 30),
        }

    def test_string_key_does_not_match_numeric_key(self):
        out = batch_join(left_keys(), right_keys(), [("key", "key")])
        string_matches = {tuple(r) for r in out.rows if r[0] == "1"}
        assert string_matches == {("1", "d", "1", 20)}

    def test_matches_the_tuple_engine_join_exactly(self):
        expected = join(left_keys(), right_keys(), [("key", "key")], name="j")
        got = batch_join(left_keys(), right_keys(), [("key", "key")])
        assert got.to_relation() == expected

    def test_multi_key_equality_classes(self):
        left = relation_from_columns("l", a=[1, "1"], b=[2.0, 2.0])
        right = relation_from_columns("r", a=[1.0, "1"], b=[2, "2"], c=[7, 8])
        pairs = [("a", "a"), ("b", "b")]
        expected = join(left, right, pairs, name="j")
        got = batch_join(left, right, pairs)
        assert got.to_relation() == expected
        # (1, 2.0) joins (1.0, 2) — both components collapse by equality —
        # while ("1", 2.0) matches nothing ("2" != 2.0).
        assert set(got.rows) == {(1, 2.0, 1.0, 2, 7)}

    def test_build_side_swap_preserves_equality_classes(self):
        # The kernel builds on the smaller side; growing one side must
        # never change which equality classes match.
        left = left_keys()
        small = relation_from_columns("r", key=[1.0], val=[99])
        a = batch_join(left, small, [("key", "key")])
        b = batch_join(small, left, [("key", "key")])
        assert {(r[0], r[1]) for r in a.rows} == {(r[2], r[3]) for r in b.rows}

    def test_same_classes_as_canonical_bindings(self):
        # The join's bucket count for a key column equals the size of the
        # canonical (deduplicated) binding set for that column.
        values = (1, 1.0, True, "1", 2, 2.0, "2")
        canonical = canonical_bindings({"key": values})["key"]
        left = relation_from_columns(
            "l", key=list(values), pos=list(range(len(values)))
        )
        probe = relation_from_columns("r", key=list(canonical))
        out = batch_join(left, probe, [("key", "key")])
        # Every left row joins exactly one canonical representative: the
        # classes coincide, neither side splits or merges differently.
        assert len(out) == len(left.rows)
        tuple_out = join(left, probe, [("key", "key")], name="j")
        assert out.to_relation() == tuple_out


class TestRegressionOneVersusOnePointZero:
    """The headline fix: 1 and 1.0 must land in the same hash bucket."""

    @pytest.mark.parametrize("spelling", [1, 1.0, True])
    def test_each_spelling_probes_the_same_bucket(self, spelling):
        left = relation_from_columns("l", key=[1], tag=["only"])
        right = relation_from_columns("r", key=[spelling], val=[5])
        out = batch_join(left, right, [("key", "key")])
        assert len(out) == 1
        assert out.rows[0][:2] == (1, "only")

    def test_distinct_spellings_in_one_column_share_matches(self):
        left = relation_from_columns("l", key=[1, 1.0], tag=["int", "float"])
        # Relation dedups (1,) vs (1.0,)? No: tags differ, rows distinct.
        assert len(left) == 2
        right = relation_from_columns("r", key=[True], val=[5])
        out = batch_join(left, right, [("key", "key")])
        assert {tuple(r) for r in out.rows} == {
            (1, "int", True, 5),
            (1.0, "float", True, 5),
        }
