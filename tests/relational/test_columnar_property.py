"""Property suite: compiled predicates ≡ the interpreter, always.

Hypothesis drives randomized conjuncts (mixed int/float/str constants,
column-to-column comparisons, every operator) over randomized value soups
including empty relations and repr-colliding values (``1`` vs ``1.0`` vs
``"1"`` vs ``True``).  The compiled closure and filter kernel must agree
with :func:`repro.relational.expressions.compile_conjunction` row for
row, and ``select_batch`` must agree with tuple-engine ``select``.

Counterexamples hypothesis shrinks to are ALSO written out as standard
repro.qa repro files (``BRAID_QA_REPRO_DIR``, default ``.qa-repros``),
replayable with ``scripts/braid_fuzz.py --replay`` — the same pattern as
the subsumption property suite.  Conjuncts whose constants have no CAQL
spelling (the parser has no quoted strings) are saved as a full-scan
query over the same rows, with the conjunct recorded in the reason.
"""

import os
import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caql.eval import result_schema
from repro.qa import write_repro
from repro.qa.generator import case_from_relations
from repro.relational.columnar import (
    ColumnarBatch,
    compile_batch_predicate,
    select_batch,
)
from repro.relational.expressions import (
    Col,
    Comparison,
    Lit,
    compile_conjunction,
)
from repro.relational.operators import select
from repro.relational.relation import Relation

SCHEMA = result_schema("r", 3)  # attributes a0, a1, a2

#: The value soup: repr-colliders on purpose.  1 == 1.0 == True but
#: 1 != "1"; "one" is a CAQL-spellable atom, "1" is not.
VALUES = [0, 1, 2, -1, 1.0, 2.5, -0.5, "1", "one", "b", True, False, None]

OPS = ["=", "!=", "<", ">", "<=", ">="]

values = st.sampled_from(VALUES)
columns = st.sampled_from([Col(a) for a in SCHEMA.attributes])
operands = st.one_of(columns, values.map(Lit))
conditions = st.builds(Comparison, columns, st.sampled_from(OPS), operands)
conjunctions = st.lists(conditions, max_size=3)
rows = st.lists(
    st.tuples(values, values, values), max_size=12
)

ATOM = re.compile(r"[a-z][a-z0-9_]*\Z")


def _caql_constant(value) -> str | None:
    """The CAQL spelling of a constant, or None when it has none."""
    if type(value) is int:
        return repr(value)
    if type(value) is float:
        return repr(value)
    if isinstance(value, str) and ATOM.match(value):
        return value
    return None  # bools, None, non-atom strings: not spellable


def _caql_query(conjunction) -> str | None:
    """The conjunction as a CAQL query over r/3, or None if unspellable."""
    var_of = {a: f"X{i}" for i, a in enumerate(SCHEMA.attributes)}
    rendered = []
    for condition in conjunction:
        sides = []
        for operand in (condition.left, condition.right):
            if isinstance(operand, Col):
                sides.append(var_of[operand.name])
            else:
                spelled = _caql_constant(operand.value)
                if spelled is None:
                    return None
                sides.append(spelled)
        op = "=<" if condition.op == "<=" else condition.op
        rendered.append(f"{sides[0]} {op} {sides[1]}")
    body = ", ".join(["r(X0, X1, X2)"] + rendered)
    return f"q(X0, X1, X2) :- {body}"


def save_counterexample(reason, conjunction, row_list):
    """Persist the (shrunk) failing inputs as a replayable repro file."""
    directory = os.environ.get("BRAID_QA_REPRO_DIR", ".qa-repros")
    os.makedirs(directory, exist_ok=True)
    relation = Relation(SCHEMA, row_list)
    text = _caql_query(conjunction)
    if text is None:
        # No CAQL spelling for some constant: a full-scan repro over the
        # same rows, with the exact conjunct preserved in the reason.
        conjunct = " AND ".join(str(c) for c in conjunction) or "<empty>"
        reason = f"{reason} [conjunct: {conjunct}]"
        text = "q(X0, X1, X2) :- r(X0, X1, X2)"
    case = case_from_relations({"r": relation}, [text])
    path = os.path.join(
        directory, f"repro-columnar-{case.fingerprint()[:12]}.json"
    )
    write_repro(path, case, reason=reason)
    return path


@settings(max_examples=200, deadline=None)
@given(conjunctions, rows)
def test_compiled_row_predicate_matches_interpreter(conjunction, row_list):
    compiled = compile_batch_predicate(conjunction, SCHEMA)
    interpreted = compile_conjunction(conjunction, SCHEMA)
    for row in dict.fromkeys(row_list):
        if bool(compiled.row(row)) != bool(interpreted(row)):
            save_counterexample(
                "property: compiled row predicate diverges from interpreter",
                conjunction, row_list,
            )
            raise AssertionError(
                f"compiled != interpreted on {row!r} for {conjunction}"
            )


@settings(max_examples=200, deadline=None)
@given(conjunctions, rows)
def test_filter_kernel_selects_interpreter_rows(conjunction, row_list):
    distinct = list(dict.fromkeys(row_list))
    batch = ColumnarBatch.from_rows(SCHEMA, distinct, distinct=True)
    compiled = compile_batch_predicate(conjunction, SCHEMA)
    interpreted = compile_conjunction(conjunction, SCHEMA)
    expected = [i for i, row in enumerate(distinct) if interpreted(row)]
    got = compiled.filter(batch.columns)
    if got != expected:
        save_counterexample(
            "property: filter kernel index set diverges from interpreter",
            conjunction, row_list,
        )
        raise AssertionError(f"filter {got} != {expected} for {conjunction}")


@settings(max_examples=150, deadline=None)
@given(conjunctions, rows)
def test_select_batch_matches_tuple_select(conjunction, row_list):
    relation = Relation(SCHEMA, row_list)
    expected = select(relation, conjunction)
    got = select_batch(ColumnarBatch.from_relation(relation), conjunction)
    if got.to_relation() != expected or got.rows != expected.rows:
        save_counterexample(
            "property: select_batch diverges from tuple-engine select",
            conjunction, row_list,
        )
        raise AssertionError(f"select_batch != select for {conjunction}")


def test_empty_relation_survives_every_kernel():
    conjunction = [Comparison(Col("a0"), ">", Lit(1))]
    batch = ColumnarBatch.from_relation(Relation(SCHEMA))
    out = select_batch(batch, conjunction)
    assert len(out) == 0
    assert out.to_relation() == Relation(SCHEMA)


def test_repr_colliders_follow_python_equality():
    # 1 == 1.0 == True, but 1 != "1": the compiled path must preserve the
    # exact equality classes canonical_bindings dedups by.
    relation = Relation(SCHEMA, [(1, 0, 0), (1.0, 1, 1), ("1", 2, 2), (True, 3, 3)])
    # 1.0 and True dedup against 1 only when ALL columns collide; here the
    # other columns differ so all four rows survive as distinct.
    assert len(relation) == 4
    conjunction = [Comparison(Col("a0"), "=", Lit(1))]
    got = select_batch(ColumnarBatch.from_relation(relation), conjunction)
    assert got.to_relation() == select(relation, conjunction)
    assert ("1", 2, 2) not in set(got.rows)
    assert len(got) == 3  # 1, 1.0, True all equal 1


def test_counterexamples_become_replayable_repros(tmp_path, monkeypatch):
    """The auto-save path itself: written files load and replay cleanly."""
    monkeypatch.setenv("BRAID_QA_REPRO_DIR", str(tmp_path))
    from repro.qa import load_repro, replay

    spellable = [Comparison(Col("a0"), "<=", Lit(2))]
    path = save_counterexample(
        "demo", spellable, [(0, 1, 2), (3, 4, 5)]
    )
    assert load_repro(path).queries == ["q(X0, X1, X2) :- r(X0, X1, X2), X0 =< 2"]
    assert not replay(path).failed

    unspellable = [Comparison(Col("a0"), "=", Lit("1"))]
    path = save_counterexample("demo", unspellable, [(0, 1, 2)])
    loaded = load_repro(path)
    assert loaded.queries == ["q(X0, X1, X2) :- r(X0, X1, X2)"]
    import json

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert "a0 = '1'" in payload["reason"]  # the conjunct survives in the reason
    assert not replay(path).failed
