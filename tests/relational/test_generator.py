"""Tests for the generator (lazy) relation representation."""

from repro.relational.generator import (
    GeneratorRelation,
    generator_from_relation,
    generator_from_rows,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema("p", ("a", "b"))
ROWS = [(1, "x"), (2, "y"), (3, "z")]


def counting_source(rows, counter):
    """A source that counts how many rows the underlying computation yields."""

    def factory():
        for row in rows:
            counter.append(row)
            yield row

    return factory


class TestLaziness:
    def test_nothing_produced_on_construction(self):
        pulled = []
        gen = GeneratorRelation(SCHEMA, counting_source(ROWS, pulled))
        assert pulled == []
        assert gen.produced_count == 0

    def test_take_produces_only_what_is_needed(self):
        pulled = []
        gen = GeneratorRelation(SCHEMA, counting_source(ROWS, pulled))
        assert gen.take(1) == [(1, "x")]
        assert len(pulled) == 1

    def test_take_more_than_available(self):
        gen = generator_from_rows(SCHEMA, ROWS)
        assert len(gen.take(10)) == 3

    def test_exhausted_flag(self):
        gen = generator_from_rows(SCHEMA, ROWS)
        assert not gen.exhausted
        list(gen)
        assert gen.exhausted


class TestMemoization:
    def test_second_iteration_replays_memo(self):
        pulled = []
        gen = GeneratorRelation(SCHEMA, counting_source(ROWS, pulled))
        assert list(gen) == ROWS
        assert list(gen) == ROWS
        assert len(pulled) == 3  # source consumed exactly once

    def test_interleaved_readers_share_production(self):
        pulled = []
        gen = GeneratorRelation(SCHEMA, counting_source(ROWS, pulled))
        first = iter(gen)
        second = iter(gen)
        assert next(first) == (1, "x")
        assert next(second) == (1, "x")  # replayed from memo
        assert len(pulled) == 1

    def test_duplicates_eliminated(self):
        gen = generator_from_rows(SCHEMA, [(1, "x"), (1, "x"), (2, "y")])
        assert list(gen) == [(1, "x"), (2, "y")]

    def test_on_produce_hook_fires_once_per_new_row(self):
        produced = []
        gen = generator_from_rows(SCHEMA, [(1, "x"), (1, "x"), (2, "y")])
        gen.on_produce = produced.append
        list(gen)
        list(gen)
        assert produced == [(1, "x"), (2, "y")]


class TestPromotion:
    def test_to_extension_drains(self):
        gen = generator_from_rows(SCHEMA, ROWS)
        extension = gen.to_extension()
        assert isinstance(extension, Relation)
        assert extension.rows == ROWS

    def test_to_extension_idempotent(self):
        pulled = []
        gen = GeneratorRelation(SCHEMA, counting_source(ROWS, pulled))
        first = gen.to_extension()
        second = gen.to_extension()
        assert first is second
        assert len(pulled) == 3

    def test_partial_consumption_then_promotion(self):
        gen = generator_from_rows(SCHEMA, ROWS)
        gen.take(1)
        extension = gen.to_extension()
        assert len(extension) == 3

    def test_restart_recomputes(self):
        pulled = []
        gen = GeneratorRelation(SCHEMA, counting_source(ROWS, pulled))
        list(gen)
        gen.restart()
        assert gen.produced_count == 0
        assert list(gen) == ROWS
        assert len(pulled) == 6


class TestFromRelation:
    def test_generator_view(self):
        relation = Relation(SCHEMA, ROWS)
        gen = generator_from_relation(relation)
        assert list(gen) == ROWS

    def test_snapshot_semantics_of_rows_copy(self):
        relation = Relation(SCHEMA, ROWS)
        gen = generator_from_relation(relation)
        first = gen.take(1)
        assert first == [(1, "x")]
