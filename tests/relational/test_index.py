"""Tests for hash indexes."""

from repro.relational.index import HashIndex, IndexSet
from repro.relational.relation import relation_from_columns


def make_emp():
    return relation_from_columns(
        "emp",
        id=[1, 2, 3, 4],
        name=["ann", "bob", "cat", "dan"],
        dept=["hw", "sw", "sw", "hw"],
    )


class TestHashIndex:
    def test_lookup_single_attribute(self):
        index = HashIndex(make_emp(), ("dept",))
        assert len(index.lookup(("sw",))) == 2

    def test_lookup_scalar_convenience(self):
        index = HashIndex(make_emp(), ("dept",))
        assert len(index.lookup("sw")) == 2

    def test_lookup_missing_key(self):
        index = HashIndex(make_emp(), ("dept",))
        assert index.lookup(("xx",)) == []

    def test_composite_key(self):
        index = HashIndex(make_emp(), ("dept", "name"))
        assert index.lookup(("sw", "bob")) == [(2, "bob", "sw")]

    def test_contains(self):
        index = HashIndex(make_emp(), ("dept",))
        assert ("sw",) in index
        assert ("xx",) not in index

    def test_probe_count(self):
        index = HashIndex(make_emp(), ("dept",))
        index.lookup(("sw",))
        index.lookup(("hw",))
        assert index.probe_count == 2

    def test_key_count(self):
        index = HashIndex(make_emp(), ("dept",))
        assert index.key_count == 2

    def test_build_size(self):
        index = HashIndex(make_emp(), ("id",))
        assert index.build_size == 4

    def test_lookup_iter(self):
        index = HashIndex(make_emp(), ("dept",))
        assert len(list(index.lookup_iter(("hw",)))) == 2


class TestIndexSet:
    def test_ensure_builds_once(self):
        indexes = IndexSet(make_emp())
        first = indexes.ensure(("dept",))
        second = indexes.ensure(("dept",))
        assert first is second
        assert len(indexes) == 1

    def test_get_absent(self):
        indexes = IndexSet(make_emp())
        assert indexes.get(("dept",)) is None

    def test_find_covering_subset(self):
        indexes = IndexSet(make_emp())
        indexes.ensure(("dept",))
        found = indexes.find_covering({"dept", "name"})
        assert found is not None
        assert found.attributes == ("dept",)

    def test_find_covering_prefers_widest(self):
        indexes = IndexSet(make_emp())
        indexes.ensure(("dept",))
        indexes.ensure(("dept", "name"))
        found = indexes.find_covering({"dept", "name"})
        assert found.attributes == ("dept", "name")

    def test_find_covering_none(self):
        indexes = IndexSet(make_emp())
        indexes.ensure(("dept",))
        assert indexes.find_covering({"name"}) is None

    def test_attribute_sets(self):
        indexes = IndexSet(make_emp())
        indexes.ensure(("id",))
        assert indexes.attribute_sets == [("id",)]
