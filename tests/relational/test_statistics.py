"""Tests for cardinality and selectivity statistics."""

import pytest

from repro.relational.expressions import Col, Comparison, Lit, col_eq, eq
from repro.relational.relation import relation_from_columns
from repro.relational.statistics import (
    DEFAULT_SELECTIVITY,
    AttributeStats,
    RelationStatistics,
    estimate_join_size,
)


@pytest.fixture
def stats():
    relation = relation_from_columns(
        "emp",
        id=[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        dept=["a", "a", "a", "a", "a", "b", "b", "b", "c", "c"],
        age=[20, 25, 30, 35, 40, 45, 50, 55, 60, 65],
    )
    return RelationStatistics.from_relation(relation)


class TestFromRelation:
    def test_cardinality(self, stats):
        assert stats.cardinality == 10

    def test_distinct_counts(self, stats):
        assert stats.attribute("id").distinct == 10
        assert stats.attribute("dept").distinct == 3

    def test_min_max_numeric(self, stats):
        assert stats.attribute("age").minimum == 20
        assert stats.attribute("age").maximum == 65

    def test_min_max_strings(self, stats):
        assert stats.attribute("dept").minimum == "a"
        assert stats.attribute("dept").maximum == "c"

    def test_unknown_attribute_defaults(self, stats):
        assert stats.attribute("nope").distinct == 0


class TestSelectivity:
    def test_equality_uses_distinct(self, stats):
        assert stats.selectivity(eq("id", 5)) == pytest.approx(0.1)
        assert stats.selectivity(eq("dept", "a")) == pytest.approx(1 / 3)

    def test_inequality_complement(self, stats):
        assert stats.selectivity(eq("id", 5).negated()) == pytest.approx(0.9)

    def test_range_interpolation(self, stats):
        half = stats.selectivity(Comparison(Col("age"), "<", Lit(42.5)))
        assert half == pytest.approx(0.5)

    def test_range_clamped(self, stats):
        assert stats.selectivity(Comparison(Col("age"), "<", Lit(0))) == 0.0
        assert stats.selectivity(Comparison(Col("age"), "<", Lit(1000))) == 1.0

    def test_range_on_string_falls_back(self, stats):
        got = stats.selectivity(Comparison(Col("dept"), "<", Lit("b")))
        assert got == DEFAULT_SELECTIVITY

    def test_normalization_applied(self, stats):
        # Literal on the left must behave like the flipped form.
        flipped = stats.selectivity(Comparison(Lit(42.5), ">", Col("age")))
        assert flipped == pytest.approx(0.5)

    def test_col_col_equality(self, stats):
        got = stats.selectivity(col_eq("id", "age"))
        assert got == pytest.approx(0.1)

    def test_conjunction_independence(self, stats):
        sel = stats.conjunction_selectivity([eq("id", 5), eq("dept", "a")])
        assert sel == pytest.approx(0.1 / 3)

    def test_estimate_selection(self, stats):
        assert stats.estimate_selection([eq("dept", "a")]) == pytest.approx(10 / 3)


class TestAttributeStats:
    def test_eq_selectivity_zero_distinct(self):
        assert AttributeStats().eq_selectivity() > 0

    def test_constant_attribute_range(self):
        attr = AttributeStats(distinct=1, minimum=5, maximum=5)
        assert attr.range_selectivity("<", 6) == 1.0
        assert attr.range_selectivity("<", 5) == 0.0
        assert attr.range_selectivity("<=", 5) == 1.0
        assert attr.range_selectivity(">", 4) == 1.0


class TestJoinEstimate:
    def test_equi_join(self, stats):
        size = estimate_join_size(stats, stats, "dept", "dept")
        assert size == pytest.approx(100 / 3)

    def test_cross_product(self, stats):
        assert estimate_join_size(stats, stats) == 100.0

    def test_zero_distinct_fallback(self):
        empty = RelationStatistics(cardinality=10)
        size = estimate_join_size(empty, empty, "a", "a")
        assert size > 0
