"""Tests for relation extensions."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.relation import Relation, relation_from_columns
from repro.relational.schema import Schema


@pytest.fixture
def emp():
    return relation_from_columns(
        "emp",
        id=[1, 2, 3],
        name=["ann", "bob", "cat"],
        dept=["hw", "sw", "sw"],
    )


class TestInsert:
    def test_insert_new(self):
        r = Relation(Schema("p", ("a",)))
        assert r.insert((1,))
        assert len(r) == 1

    def test_insert_duplicate_ignored(self):
        r = Relation(Schema("p", ("a",)))
        r.insert((1,))
        assert not r.insert((1,))
        assert len(r) == 1

    def test_arity_checked(self):
        r = Relation(Schema("p", ("a",)))
        with pytest.raises(SchemaError):
            r.insert((1, 2))

    def test_insert_all_counts_new(self):
        r = Relation(Schema("p", ("a",)))
        assert r.insert_all([(1,), (2,), (1,)]) == 2

    def test_list_rows_coerced(self):
        r = Relation(Schema("p", ("a", "b")))
        r.insert([1, 2])
        assert (1, 2) in r

    def test_order_stable(self):
        r = Relation(Schema("p", ("a",)), [(3,), (1,), (2,)])
        assert r.rows == [(3,), (1,), (2,)]


class TestAccess:
    def test_contains(self, emp):
        assert (1, "ann", "hw") in emp
        assert (9, "zed", "hw") not in emp

    def test_column(self, emp):
        assert emp.column("name") == ["ann", "bob", "cat"]

    def test_distinct_values(self, emp):
        assert emp.distinct_values("dept") == {"hw", "sw"}

    def test_sorted_by(self, emp):
        ordered = emp.sorted_by(["name"], reverse=True)
        assert ordered.column("name") == ["cat", "bob", "ann"]

    def test_sorted_does_not_mutate(self, emp):
        emp.sorted_by(["name"], reverse=True)
        assert emp.column("id") == [1, 2, 3]


class TestEquality:
    def test_set_semantics(self):
        r1 = Relation(Schema("p", ("a",)), [(1,), (2,)])
        r2 = Relation(Schema("q", ("a",)), [(2,), (1,)])
        assert r1 == r2  # names differ, attributes and rows agree

    def test_different_rows_unequal(self):
        r1 = Relation(Schema("p", ("a",)), [(1,)])
        r2 = Relation(Schema("p", ("a",)), [(2,)])
        assert r1 != r2

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation(Schema("p", ("a",))))


class TestDerivation:
    def test_renamed_shares_rows(self, emp):
        staff = emp.renamed("staff")
        emp.insert((4, "dan", "hw"))
        assert len(staff) == 4

    def test_copy_is_independent(self, emp):
        dup = emp.copy()
        emp.insert((4, "dan", "hw"))
        assert len(dup) == 3

    def test_estimated_bytes_monotonic(self):
        small = Relation(Schema("p", ("a",)), [(1,)])
        big = Relation(Schema("p", ("a",)), [(i,) for i in range(100)])
        assert big.estimated_bytes() > small.estimated_bytes()

    def test_estimated_bytes_counts_strings(self):
        short = Relation(Schema("p", ("a",)), [("x",)])
        long = Relation(Schema("p", ("a",)), [("x" * 100,)])
        assert long.estimated_bytes() > short.estimated_bytes()


class TestHelpers:
    def test_from_columns_mismatched_lengths(self):
        with pytest.raises(SchemaError):
            relation_from_columns("p", a=[1], b=[1, 2])

    def test_from_columns_empty(self):
        with pytest.raises(SchemaError):
            relation_from_columns("p")

    def test_pretty_contains_data(self, emp):
        text = emp.pretty()
        assert "ann" in text
        assert "name" in text

    def test_pretty_truncates(self):
        r = Relation(Schema("p", ("a",)), [(i,) for i in range(50)])
        assert "more rows" in r.pretty(limit=5)
