"""Tests for relational algebra operators (eager and pipelined)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import EvaluationError, SchemaError
from repro.relational.expressions import Col, Comparison, Lit, eq
from repro.relational.index import HashIndex
from repro.relational.operators import (
    aggregate,
    cross,
    difference,
    intersection,
    join,
    join_iter,
    project,
    project_iter,
    select,
    select_iter,
    select_via_index,
    transitive_closure,
    union,
)
from repro.relational.relation import Relation, relation_from_columns
from repro.relational.schema import Schema


@pytest.fixture
def emp():
    return relation_from_columns(
        "emp",
        id=[1, 2, 3, 4],
        name=["ann", "bob", "cat", "dan"],
        dept=["hw", "sw", "sw", "hw"],
    )


@pytest.fixture
def dept():
    return relation_from_columns("dept", code=["hw", "sw"], site=["nj", "ca"])


class TestSelect:
    def test_filters_rows(self, emp):
        out = select(emp, [eq("dept", "sw")])
        assert out.column("name") == ["bob", "cat"]

    def test_preserves_schema(self, emp):
        assert select(emp, [eq("dept", "sw")]).schema.attributes == emp.schema.attributes

    def test_empty_conditions_is_copy(self, emp):
        assert len(select(emp, [])) == len(emp)

    def test_select_iter_lazy(self, emp):
        rows = select_iter(iter(emp), emp.schema, [eq("dept", "hw")])
        assert next(rows) == (1, "ann", "hw")

    def test_select_via_index(self, emp):
        index = HashIndex(emp, ("dept",))
        out = select_via_index(emp, index, ("sw",))
        assert len(out) == 2

    def test_select_via_index_with_residual(self, emp):
        index = HashIndex(emp, ("dept",))
        out = select_via_index(emp, index, ("sw",), [eq("name", "cat")])
        assert out.column("id") == [3]


class TestProject:
    def test_projects_and_dedups(self, emp):
        out = project(emp, ["dept"])
        assert sorted(out.column("dept")) == ["hw", "sw"]

    def test_reorders(self, emp):
        out = project(emp, ["name", "id"])
        assert out.rows[0] == ("ann", 1)

    def test_project_iter_streaming_dedup(self, emp):
        rows = list(project_iter(iter(emp), emp.schema, ["dept"]))
        assert rows == [("hw",), ("sw",)]


class TestJoin:
    def test_equi_join(self, emp, dept):
        out = join(emp, dept, [("dept", "code")], name="j")
        assert len(out) == 4
        assert out.schema.attributes == ("id", "name", "dept", "code", "site")

    def test_join_values_line_up(self, emp, dept):
        out = join(emp, dept, [("dept", "code")])
        for row in out:
            assert row[2] == row[3]

    def test_join_with_extra_condition(self, emp, dept):
        out = join(emp, dept, [("dept", "code")], conditions=[eq("site", "ca")])
        assert {row[1] for row in out} == {"bob", "cat"}

    def test_empty_pairs_is_cross(self, emp, dept):
        assert len(join(emp, dept, [])) == len(emp) * len(dept)

    def test_cross(self, emp, dept):
        assert len(cross(emp, dept)) == 8

    def test_join_sides_swappable(self, emp, dept):
        small_left = join(dept, emp, [("code", "dept")])
        assert len(small_left) == 4

    def test_schema_clash_disambiguated(self):
        left = relation_from_columns("l", x=[1], y=[2])
        right = relation_from_columns("r", y=[2], z=[3])
        out = join(left, right, [("y", "y")])
        assert len(set(out.schema.attributes)) == 4

    def test_join_iter_streams_left(self, emp, dept):
        rows = join_iter(iter(emp), emp.schema, dept, [("dept", "code")])
        first = next(rows)
        assert first[:3] == (1, "ann", "hw")

    def test_join_iter_unconsumed_costs_nothing(self, dept):
        def exploding():
            raise AssertionError("left side should not be pulled")
            yield  # pragma: no cover

        rows = join_iter(exploding(), Schema("l", ("a",)), dept, [("a", "code")])
        # Creating the pipeline must not pull anything.
        assert rows is not None


class TestSetOperations:
    def test_union(self):
        a = Relation(Schema("p", ("x",)), [(1,), (2,)])
        b = Relation(Schema("p", ("x",)), [(2,), (3,)])
        assert len(union(a, b)) == 3

    def test_difference(self):
        a = Relation(Schema("p", ("x",)), [(1,), (2,)])
        b = Relation(Schema("p", ("x",)), [(2,)])
        assert difference(a, b).rows == [(1,)]

    def test_intersection(self):
        a = Relation(Schema("p", ("x",)), [(1,), (2,)])
        b = Relation(Schema("p", ("x",)), [(2,), (3,)])
        assert intersection(a, b).rows == [(2,)]

    def test_arity_mismatch_rejected(self):
        a = Relation(Schema("p", ("x",)), [(1,)])
        b = Relation(Schema("q", ("x", "y")), [(1, 2)])
        with pytest.raises(SchemaError):
            union(a, b)


class TestAggregate:
    def test_group_count(self, emp):
        out = aggregate(emp, ["dept"], [("count", "", "n")])
        assert dict(out.rows) == {"hw": 2, "sw": 2}

    def test_group_min_max(self, emp):
        out = aggregate(emp, ["dept"], [("min", "id", "lo"), ("max", "id", "hi")])
        as_dict = {row[0]: row[1:] for row in out}
        assert as_dict == {"hw": (1, 4), "sw": (2, 3)}

    def test_global_aggregate(self, emp):
        out = aggregate(emp, [], [("sum", "id", "total")])
        assert out.rows == [(10,)]

    def test_global_count_of_empty(self):
        empty = Relation(Schema("p", ("x",)))
        out = aggregate(empty, [], [("count", "", "n")])
        assert out.rows == [(0,)]

    def test_avg(self, emp):
        out = aggregate(emp, [], [("avg", "id", "mean")])
        assert out.rows == [(2.5,)]

    def test_unknown_function_rejected(self, emp):
        with pytest.raises(EvaluationError):
            aggregate(emp, [], [("median", "id", "m")])

    def test_sum_over_empty_group_rejected(self):
        empty = Relation(Schema("p", ("x",)))
        with pytest.raises(EvaluationError):
            aggregate(empty, [], [("sum", "x", "s")])


class TestTransitiveClosure:
    def test_chain(self):
        edges = Relation(Schema("e", ("a", "b")), [(1, 2), (2, 3), (3, 4)])
        closure = transitive_closure(edges)
        assert (1, 4) in closure
        assert len(closure) == 6

    def test_cycle_terminates(self):
        edges = Relation(Schema("e", ("a", "b")), [(1, 2), (2, 1)])
        closure = transitive_closure(edges)
        assert len(closure) == 4  # (1,2),(2,1),(1,1),(2,2)

    def test_non_binary_rejected(self):
        bad = Relation(Schema("e", ("a", "b", "c")), [(1, 2, 3)])
        with pytest.raises(EvaluationError):
            transitive_closure(bad)

    def test_empty(self):
        edges = Relation(Schema("e", ("a", "b")))
        assert len(transitive_closure(edges)) == 0


# -- property-based tests -----------------------------------------------------

rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=20
)


@given(rows)
def test_select_then_union_partition(pairs):
    """select(P) ∪ select(¬P) == original."""
    r = Relation(Schema("p", ("x", "y")), pairs)
    cond = Comparison(Col("x"), "<", Lit(3))
    low = select(r, [cond])
    high = select(r, [cond.negated()])
    assert union(low, high) == r


@given(rows)
def test_project_cardinality_bounds(pairs):
    r = Relation(Schema("p", ("x", "y")), pairs)
    out = project(r, ["x"])
    assert len(out) <= len(r)
    assert len(out) == len(r.distinct_values("x"))


@given(rows, rows)
def test_join_matches_nested_loop(left_pairs, right_pairs):
    left = Relation(Schema("l", ("a", "b")), left_pairs)
    right = Relation(Schema("r", ("c", "d")), right_pairs)
    out = join(left, right, [("b", "c")])
    expected = {l + r for l in left for r in right if l[1] == r[0]}
    assert set(out.rows) == expected


@given(rows)
def test_closure_is_transitive(pairs):
    r = Relation(Schema("e", ("a", "b")), pairs)
    closure = transitive_closure(r)
    rows_set = set(closure.rows)
    for a, b in rows_set:
        for c, d in rows_set:
            if b == c:
                assert (a, d) in rows_set


@given(rows, rows)
def test_difference_disjoint_from_right(left_pairs, right_pairs):
    left = Relation(Schema("p", ("x", "y")), left_pairs)
    right = Relation(Schema("p", ("x", "y")), right_pairs)
    out = difference(left, right)
    assert not (set(out.rows) & set(right.rows))
