"""Tests for relation schemas."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import Schema, generic_schema


class TestConstruction:
    def test_basic(self):
        schema = Schema("emp", ("id", "name", "dept"))
        assert schema.arity == 3
        assert schema.attributes == ("id", "name", "dept")

    def test_attributes_coerced_to_tuple(self):
        schema = Schema("emp", ["id", "name"])
        assert isinstance(schema.attributes, tuple)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("emp", ("id", "id"))

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("emp", ())

    def test_key_must_be_attribute(self):
        with pytest.raises(SchemaError):
            Schema("emp", ("id",), key=("name",))

    def test_valid_key(self):
        schema = Schema("emp", ("id", "name"), key=("id",))
        assert schema.key == ("id",)


class TestAccess:
    def test_position(self):
        schema = Schema("emp", ("id", "name"))
        assert schema.position("name") == 1

    def test_unknown_attribute(self):
        schema = Schema("emp", ("id",))
        with pytest.raises(SchemaError):
            schema.position("salary")

    def test_positions(self):
        schema = Schema("emp", ("id", "name", "dept"))
        assert schema.positions(("dept", "id")) == (2, 0)

    def test_has(self):
        schema = Schema("emp", ("id",))
        assert schema.has("id")
        assert not schema.has("name")


class TestDerivation:
    def test_renamed(self):
        schema = Schema("emp", ("id", "name")).renamed("staff")
        assert schema.name == "staff"
        assert schema.attributes == ("id", "name")

    def test_project(self):
        schema = Schema("emp", ("id", "name", "dept")).project(("dept", "id"))
        assert schema.attributes == ("dept", "id")

    def test_project_unknown_rejected(self):
        with pytest.raises(SchemaError):
            Schema("emp", ("id",)).project(("salary",))

    def test_concat_disjoint(self):
        left = Schema("a", ("x", "y"))
        right = Schema("b", ("z",))
        combined = left.concat(right, "ab")
        assert combined.attributes == ("x", "y", "z")

    def test_concat_clash_prefixes_right(self):
        left = Schema("a", ("x", "y"))
        right = Schema("b", ("y", "z"))
        combined = left.concat(right, "ab")
        assert combined.attributes == ("x", "y", "b_y", "z")

    def test_concat_unresolvable_clash_prefixes_both(self):
        left = Schema("a", ("x", "b_x"))
        right = Schema("b", ("x",))
        combined = left.concat(right, "ab")
        assert len(set(combined.attributes)) == 3

    def test_generic_schema(self):
        schema = generic_schema("q1", 3)
        assert schema.attributes == ("a0", "a1", "a2")

    def test_str(self):
        assert str(Schema("emp", ("id", "name"))) == "emp(id, name)"
