"""ColumnarBatch: representation, kernels, compilation cache, invariants."""

import pytest

from repro.common.errors import InvariantViolation, SchemaError
from repro.relational.columnar import (
    ColumnarBatch,
    compile_batch_predicate,
    compile_stats,
    hash_join_batch,
    predicate_cache_size,
    project_batch,
    project_entries_batch,
    reset_predicate_cache,
    select_batch,
)
from repro.relational.expressions import Col, Comparison, Lit, col_eq, eq
from repro.relational.operators import join, project, select
from repro.relational.relation import Relation, relation_from_columns
from repro.relational.schema import Schema


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_predicate_cache()


def sample():
    return relation_from_columns(
        "r", x=[1, 2, 3, 4, 5], y=[10, 20, 30, 40, 50], tag=["a", "b", "a", "b", "a"]
    )


class TestRepresentation:
    def test_round_trip_preserves_rows_and_order(self):
        relation = sample()
        batch = ColumnarBatch.from_relation(relation)
        assert batch.rows == relation.rows
        assert batch.to_relation() == relation
        assert batch.to_relation().rows == relation.rows  # stable order too

    def test_len_iter_and_row_access(self):
        batch = ColumnarBatch.from_relation(sample())
        assert len(batch) == 5
        assert next(iter(batch)) == (1, 10, "a")
        assert batch.row(2) == (3, 30, "a")
        assert batch.column("y")[:2] == [10, 20]

    def test_iteration_is_lazy_single_tuple_pull(self):
        batch = ColumnarBatch.from_relation(sample())
        it = iter(batch)
        assert next(it) == (1, 10, "a")
        assert next(it) == (2, 20, "b")  # pulls one row at a time

    def test_empty_relation_round_trips(self):
        schema = Schema("e", ("a", "b"))
        batch = ColumnarBatch.from_relation(Relation(schema))
        assert len(batch) == 0
        assert batch.rows == []
        assert batch.to_relation() == Relation(schema)

    def test_from_rows_deduplicates_unless_vouched(self):
        schema = Schema("d", ("a",))
        batch = ColumnarBatch.from_rows(schema, [(1,), (2,), (1,)])
        assert batch.rows == [(1,), (2,)]

    def test_from_rows_rejects_wrong_arity(self):
        with pytest.raises(SchemaError):
            ColumnarBatch.from_rows(Schema("d", ("a",)), [(1, 2)])

    def test_wrong_column_count_rejected(self):
        with pytest.raises(SchemaError):
            ColumnarBatch(Schema("d", ("a", "b")), [[1, 2]])

    def test_set_equality_against_batches_and_relations(self):
        relation = sample()
        batch = ColumnarBatch.from_relation(relation)
        reversed_batch = ColumnarBatch.from_rows(
            relation.schema, list(reversed(relation.rows)), distinct=True
        )
        assert batch == reversed_batch  # order-insensitive
        assert batch == relation


class TestTypedColumns:
    def test_compact_converts_homogeneous_numeric_columns(self):
        batch = ColumnarBatch.from_relation(sample()).compact()
        assert batch.memoryview_of("x") is not None
        assert batch.memoryview_of("x").tolist() == [1, 2, 3, 4, 5]
        assert batch.memoryview_of("tag") is None  # strings stay objects

    def test_compact_floats(self):
        batch = ColumnarBatch.from_relation(
            relation_from_columns("f", v=[0.5, 1.5, 2.5])
        ).compact()
        assert batch.memoryview_of("v").tolist() == [0.5, 1.5, 2.5]

    def test_bool_columns_are_not_coerced(self):
        # bool is an int subclass, but array('q') would change True -> 1,
        # altering the value's type; bools must stay object columns.
        batch = ColumnarBatch.from_relation(
            relation_from_columns("b", flag=[True, False])
        ).compact()
        assert batch.memoryview_of("flag") is None
        assert batch.rows == [(True,), (False,)]

    def test_mixed_and_oversized_ints_stay_lists(self):
        batch = ColumnarBatch.from_relation(
            relation_from_columns("m", a=[1, 2.0], b=[2**100, 1])
        ).compact()
        assert batch.memoryview_of("a") is None  # mixed int/float
        assert batch.memoryview_of("b") is None  # beyond 64 bits
        assert batch.rows == [(1, 2**100), (2.0, 1)]

    def test_kernels_work_on_compacted_batches(self):
        batch = ColumnarBatch.from_relation(sample()).compact()
        out = select_batch(batch, [Comparison(Col("x"), ">", Lit(3))])
        assert set(out.rows) == {(4, 40, "b"), (5, 50, "a")}


class TestSelectKernel:
    def test_matches_tuple_select(self):
        relation = sample()
        conditions = [Comparison(Col("x"), ">", Lit(1)), eq("tag", "a")]
        expected = select(relation, conditions)
        got = select_batch(ColumnarBatch.from_relation(relation), conditions)
        assert got.to_relation() == expected

    def test_no_conditions_returns_same_batch(self):
        batch = ColumnarBatch.from_relation(sample())
        assert select_batch(batch, []) is batch

    def test_full_selection_reuses_the_batch(self):
        batch = ColumnarBatch.from_relation(sample())
        assert select_batch(batch, [Comparison(Col("x"), ">", Lit(0))]) is batch

    def test_type_clash_excludes_the_row(self):
        relation = relation_from_columns("t", v=[1, "two", 3])
        out = select_batch(
            ColumnarBatch.from_relation(relation),
            [Comparison(Col("v"), ">", Lit(1))],
        )
        assert out.rows == [(3,)]  # "two" > 1 raises TypeError -> excluded

    def test_column_to_column_comparison(self):
        relation = relation_from_columns("c", a=[1, 5, 3], b=[2, 4, 3])
        out = select_batch(
            ColumnarBatch.from_relation(relation),
            [Comparison(Col("a"), "<", Col("b"))],
        )
        assert out.rows == [(1, 2)]


class TestProjectKernels:
    def test_matches_tuple_project_including_dedup_order(self):
        relation = sample()
        expected = project(relation, ["tag"])
        got = project_batch(ColumnarBatch.from_relation(relation), ["tag"])
        assert got.to_relation().rows == expected.rows  # first-occurrence order

    def test_multi_column_projection(self):
        relation = sample()
        got = project_batch(ColumnarBatch.from_relation(relation), ["tag", "x"])
        assert got.to_relation() == project(relation, ["tag", "x"])

    def test_project_entries_with_constants(self):
        batch = ColumnarBatch.from_relation(sample())
        schema = Schema("out", ("k", "x"))
        out = project_entries_batch(batch, [("const", 9), ("col", 0)], schema)
        assert out.rows == [(9, 1), (9, 2), (9, 3), (9, 4), (9, 5)]

    def test_project_entries_deduplicates(self):
        batch = ColumnarBatch.from_relation(sample())
        schema = Schema("out", ("tag",))
        out = project_entries_batch(batch, [("col", 2)], schema)
        assert out.rows == [("a",), ("b",)]


class TestHashJoinKernel:
    def test_matches_tuple_join(self):
        left = sample()
        right = relation_from_columns("s", y=[10, 30, 60], z=["p", "q", "r"])
        expected = join(left, right, [("y", "y")], name="j")
        got = hash_join_batch(
            ColumnarBatch.from_relation(left),
            ColumnarBatch.from_relation(right),
            [("y", "y")],
            name="j",
        )
        assert got.to_relation() == expected

    def test_multi_key_join(self):
        left = relation_from_columns("l", a=[1, 1, 2], b=["x", "y", "x"])
        right = relation_from_columns("r", a=[1, 2], b=["x", "x"], c=[7, 8])
        expected = join(left, right, [("a", "a"), ("b", "b")], name="j")
        got = hash_join_batch(
            ColumnarBatch.from_relation(left),
            ColumnarBatch.from_relation(right),
            [("a", "a"), ("b", "b")],
            name="j",
        )
        assert got.to_relation() == expected

    def test_empty_pairs_is_cross_product(self):
        left = relation_from_columns("l", a=[1, 2])
        right = relation_from_columns("r", b=["x", "y"])
        got = hash_join_batch(
            ColumnarBatch.from_relation(left),
            ColumnarBatch.from_relation(right),
            [],
            name="j",
        )
        assert set(got.rows) == {(1, "x"), (1, "y"), (2, "x"), (2, "y")}

    def test_extra_conditions_filter_the_joined_rows(self):
        left = sample()
        right = relation_from_columns("s", y=[10, 30, 50], z=[100, 1, 100])
        conditions = [Comparison(Col("x"), "<", Col("z"))]
        expected = join(left, right, [("y", "y")], name="j", conditions=conditions)
        got = hash_join_batch(
            ColumnarBatch.from_relation(left),
            ColumnarBatch.from_relation(right),
            [("y", "y")],
            name="j",
            conditions=conditions,
        )
        assert got.to_relation() == expected

    def test_build_side_choice_does_not_change_the_answer(self):
        small = relation_from_columns("small", k=[1, 2])
        big = relation_from_columns("big", k=[1, 1, 2, 3, 4, 5, 2])
        a = hash_join_batch(
            ColumnarBatch.from_relation(small),
            ColumnarBatch.from_relation(big),
            [("k", "k")],
            name="j",
        )
        b = hash_join_batch(
            ColumnarBatch.from_relation(big),
            ColumnarBatch.from_relation(small),
            [("k", "k")],
            name="j",
        )
        assert {tuple(r) for r in a.rows} == {(r[1], r[0]) for r in b.rows}


class TestCompilationCache:
    def test_cache_hit_on_identical_conjunct(self):
        schema = sample().schema
        conditions = [Comparison(Col("x"), ">", Lit(2))]
        first = compile_batch_predicate(conditions, schema)
        second = compile_batch_predicate(list(conditions), schema)
        assert first is second
        assert compile_stats["misses"] == 1
        assert compile_stats["hits"] == 1
        assert predicate_cache_size() == 1

    def test_distinct_literal_spellings_get_distinct_entries(self):
        # 1 and 1.0 compare equal but are different constants; caching by
        # value would conflate predicates that behave differently under
        # e.g. string comparisons. Keys use (type, repr).
        schema = sample().schema
        a = compile_batch_predicate([eq("x", 1)], schema)
        b = compile_batch_predicate([eq("x", 1.0)], schema)
        assert a is not b
        assert predicate_cache_size() == 2

    def test_unsupported_literal_falls_back_to_interpreter(self):
        schema = Schema("t", ("v",))
        compiled = compile_batch_predicate([eq("v", (1, 2))], schema)
        assert compiled.fallback
        assert compile_stats["fallbacks"] == 1
        assert compiled.row(((1, 2),)) is True
        assert compiled.filter([[(1, 2), (3, 4)]]) == [0]

    def test_unknown_column_raises_the_interpreter_schema_error(self):
        # Same behaviour as tuple-engine select(): unknown columns fail at
        # predicate-compile time with the interpreter's SchemaError.
        schema = Schema("t", ("v",))
        with pytest.raises(SchemaError, match="missing"):
            compile_batch_predicate(
                [Comparison(Col("missing"), "=", Lit(1))], schema
            )

    def test_compiled_row_predicate_matches_interpreter_on_type_clash(self):
        schema = Schema("t", ("v",))
        compiled = compile_batch_predicate([Comparison(Col("v"), "<", Lit(5))], schema)
        assert not compiled.fallback
        assert compiled.row(("str",)) is False
        assert compiled.row((3,)) is True


class TestBatchInvariants:
    def test_clean_batch_passes(self):
        ColumnarBatch.from_relation(sample()).check_invariants()

    def test_ragged_columns_raise(self):
        batch = ColumnarBatch.from_relation(sample())
        batch.columns[1] = batch.columns[1][:-1]
        with pytest.raises(InvariantViolation, match="ragged"):
            batch.check_invariants()

    def test_duplicate_rows_raise(self):
        schema = Schema("d", ("a",))
        batch = ColumnarBatch.from_rows(schema, [(1,), (2,)], distinct=True)
        batch.columns[0].append(1)
        with pytest.raises(InvariantViolation, match="duplicate"):
            batch.check_invariants()

    def test_column_count_mismatch_raises(self):
        batch = ColumnarBatch.from_relation(sample())
        batch.columns.pop()
        with pytest.raises(InvariantViolation, match="arity"):
            batch.check_invariants()

    def test_estimated_bytes_matches_relation_heuristic(self):
        relation = relation_from_columns("e", s=["short", "a-rather-long-string"])
        batch = ColumnarBatch.from_relation(relation)
        assert batch.estimated_bytes() == relation.estimated_bytes()
