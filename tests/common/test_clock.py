"""Tests for the simulated clock and cost profile."""

import pytest

from repro.common.clock import CostProfile, SimClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now == 0.0


class TestParallelRegion:
    def test_parallel_takes_max_of_tracks(self):
        clock = SimClock()
        with clock.parallel():
            clock.charge("remote", 5.0)
            clock.charge("local", 2.0)
        assert clock.now == 5.0

    def test_parallel_accumulates_per_track(self):
        clock = SimClock()
        with clock.parallel():
            clock.charge("remote", 1.0)
            clock.charge("remote", 1.0)
            clock.charge("local", 1.5)
        assert clock.now == 2.0

    def test_plain_advance_inside_region_is_local_track(self):
        clock = SimClock()
        with clock.parallel():
            clock.advance(4.0)
            clock.charge("remote", 1.0)
        assert clock.now == 4.0

    def test_empty_region_adds_nothing(self):
        clock = SimClock()
        with clock.parallel():
            pass
        assert clock.now == 0.0

    def test_regions_do_not_nest(self):
        clock = SimClock()
        with clock.parallel():
            with pytest.raises(RuntimeError):
                with clock.parallel():
                    pass

    def test_sequential_after_parallel(self):
        clock = SimClock()
        with clock.parallel():
            clock.charge("remote", 3.0)
        clock.advance(1.0)
        assert clock.now == 4.0

    def test_charge_outside_region_is_sequential(self):
        clock = SimClock()
        clock.charge("anything", 2.0)
        assert clock.now == 2.0

    def test_tracks_readable_inside_region(self):
        clock = SimClock()
        with clock.parallel() as region:
            clock.charge("remote", 1.0)
            assert region.tracks == {"remote": 1.0}

    def test_reset_inside_region_rejected(self):
        clock = SimClock()
        with clock.parallel():
            with pytest.raises(RuntimeError):
                clock.reset()


class TestCostProfile:
    def test_remote_dominates_local(self):
        profile = CostProfile()
        assert profile.remote_latency > profile.transfer_per_tuple > profile.cache_per_tuple

    def test_scaled(self):
        profile = CostProfile().scaled(2.0)
        base = CostProfile()
        assert profile.remote_latency == 2 * base.remote_latency
        assert profile.cache_per_tuple == 2 * base.cache_per_tuple
