"""Tests for the metrics ledger."""

from repro.common.metrics import Metrics


class TestCounters:
    def test_unset_counter_is_zero(self):
        assert Metrics().get("remote.requests") == 0

    def test_incr_default_amount(self):
        m = Metrics()
        m.incr("remote.requests")
        m.incr("remote.requests")
        assert m.get("remote.requests") == 2

    def test_incr_fractional(self):
        m = Metrics()
        m.incr("time.remote", 0.25)
        m.incr("time.remote", 0.5)
        assert m.get("time.remote") == 0.75

    def test_reset(self):
        m = Metrics()
        m.incr("a")
        m.reset()
        assert m.get("a") == 0


class TestAggregation:
    def test_by_prefix_matches_dotted_children(self):
        m = Metrics()
        m.incr("cache.hits.exact", 3)
        m.incr("cache.hits.subsumed", 2)
        m.incr("cache.misses", 1)
        assert m.by_prefix("cache.hits") == {
            "cache.hits.exact": 3,
            "cache.hits.subsumed": 2,
        }

    def test_by_prefix_does_not_match_name_prefixes(self):
        m = Metrics()
        m.incr("cache.hits", 1)
        m.incr("cache.hitsrate", 9)
        assert m.by_prefix("cache.hits") == {"cache.hits": 1}

    def test_total(self):
        m = Metrics()
        m.incr("remote.requests", 4)
        m.incr("remote.tuples_shipped", 100)
        assert m.total("remote") == 104

    def test_snapshot_and_diff(self):
        m = Metrics()
        m.incr("a", 1)
        before = m.snapshot()
        m.incr("a", 2)
        m.incr("b", 5)
        assert m.diff(before) == {"a": 2, "b": 5}

    def test_diff_ignores_unchanged(self):
        m = Metrics()
        m.incr("a", 1)
        before = m.snapshot()
        assert m.diff(before) == {}

    def test_iteration_sorted(self):
        m = Metrics()
        m.incr("z", 1)
        m.incr("a", 1)
        assert [name for name, _ in m] == ["a", "z"]

    def test_format_empty(self):
        assert Metrics().format() == "(no metrics)"

    def test_format_contains_names_and_values(self):
        m = Metrics()
        m.incr("remote.requests", 7)
        out = m.format()
        assert "remote.requests" in out
        assert "7" in out


class TestScopes:
    def test_scope_created_on_first_use_and_memoized(self):
        root = Metrics()
        child = root.scope("alice")
        assert root.scope("alice") is child
        assert root.scopes() == {"alice": child}

    def test_scope_names_are_dotted_paths(self):
        root = Metrics()
        child = root.scope("alice")
        assert child.scope_name == "alice"
        assert child.scope("phase1").scope_name == "alice.phase1"

    def test_child_increments_propagate_to_ancestors(self):
        root = Metrics()
        inner = root.scope("alice").scope("phase1")
        inner.incr("cache.misses", 3)
        assert inner.get("cache.misses") == 3
        assert root.scope("alice").get("cache.misses") == 3
        assert root.get("cache.misses") == 3

    def test_parent_holds_aggregate_children_hold_shares(self):
        root = Metrics()
        root.scope("alice").incr("remote.requests", 2)
        root.scope("bob").incr("remote.requests", 5)
        assert root.scope("alice").get("remote.requests") == 2
        assert root.scope("bob").get("remote.requests") == 5
        assert root.get("remote.requests") == 7

    def test_sibling_scopes_never_cross_talk(self):
        root = Metrics()
        alice, bob = root.scope("alice"), root.scope("bob")
        alice.incr("cache.misses")
        assert bob.get("cache.misses") == 0
        assert bob.snapshot() == {}

    def test_root_increments_stay_out_of_scopes(self):
        root = Metrics()
        child = root.scope("alice")
        root.incr("remote.requests")
        assert child.get("remote.requests") == 0

    def test_drop_scope_detaches_propagation(self):
        root = Metrics()
        child = root.scope("alice")
        child.incr("a")
        root.drop_scope("alice")
        assert "alice" not in root.scopes()
        assert root.get("a") == 1  # history stays in the aggregate
        child.incr("a")  # the zombie no longer reaches the root
        assert root.get("a") == 1
        assert child.get("a") == 2

    def test_drop_unknown_scope_is_noop(self):
        Metrics().drop_scope("nobody")

    def test_reset_recurses_into_scopes(self):
        root = Metrics()
        child = root.scope("alice")
        child.incr("a", 4)
        root.reset()
        assert root.get("a") == 0
        assert child.get("a") == 0
        assert root.scope("alice") is child  # structure survives a reset


class TestEdgeCases:
    """Satellite regressions: diff-after-reset, by_prefix corners,
    drop-then-re-scope, and format alignment."""

    def test_diff_after_reset_reports_negative_deltas(self):
        m = Metrics()
        m.incr("a", 3)
        m.incr("b", 1)
        before = m.snapshot()
        m.reset()
        m.incr("b", 5)
        # The drop shows up; it is not silently "no change".
        assert m.diff(before) == {"a": -3, "b": 4}

    def test_by_prefix_empty_prefix_returns_all_counters(self):
        m = Metrics()
        m.incr("cache.misses", 2)
        m.incr("remote.requests", 1)
        assert m.by_prefix("") == {"cache.misses": 2, "remote.requests": 1}
        assert m.by_prefix("") == m.snapshot()

    def test_by_prefix_when_prefix_equals_a_counter_name(self):
        m = Metrics()
        m.incr("remote.requests", 4)
        m.incr("remote.requests.retried", 1)
        assert m.by_prefix("remote.requests") == {
            "remote.requests": 4,
            "remote.requests.retried": 1,
        }

    def test_drop_scope_then_rescope_same_name_gets_a_fresh_child(self):
        root = Metrics()
        old = root.scope("alice")
        old.incr("a", 2)
        root.drop_scope("alice")
        fresh = root.scope("alice")
        assert fresh is not old
        assert fresh.get("a") == 0
        fresh.incr("a", 1)
        assert root.get("a") == 3  # old history plus the new child's share
        old.incr("a")  # the detached zombie no longer reaches the root
        assert root.get("a") == 3

    def test_format_aligns_integer_and_float_values(self):
        m = Metrics()
        m.incr("long.counter.name", 1234)
        m.incr("t", 0.125)
        lines = m.format().splitlines()
        # One right-aligned value column: every line is equally wide.
        assert len({len(line) for line in lines}) == 1
        assert lines[0].endswith("1234")
        assert lines[1].endswith("0.125")

    def test_format_prints_integer_valued_floats_as_integers(self):
        m = Metrics()
        m.incr("a", 2.0)
        assert m.format().endswith("2")
        m.incr("a", 0.5)
        assert m.format().endswith("2.5")


class TestGauges:
    def test_gauge_max_keeps_the_high_water_mark(self):
        m = Metrics()
        m.gauge_max("server.queue_depth_high_water", 3)
        m.gauge_max("server.queue_depth_high_water", 1)
        assert m.get("server.queue_depth_high_water") == 3
        m.gauge_max("server.queue_depth_high_water", 7)
        assert m.get("server.queue_depth_high_water") == 7

    def test_gauge_max_propagates_the_max_not_the_sum(self):
        root = Metrics()
        root.scope("alice").gauge_max("g", 2)
        root.scope("bob").gauge_max("g", 5)
        root.scope("alice").gauge_max("g", 3)
        assert root.scope("alice").get("g") == 3
        assert root.scope("bob").get("g") == 5
        assert root.get("g") == 5  # not 8


class TestHistograms:
    def test_observe_creates_on_first_use(self):
        m = Metrics()
        assert m.histogram("lat") is None
        m.observe("lat", 0.5)
        assert m.histogram("lat").count == 1

    def test_summary_statistics(self):
        m = Metrics()
        for value in [1, 2, 3, 4, 5]:
            m.observe("lat", value)
        summary = m.histogram("lat").summary()
        assert summary["count"] == 5
        assert summary["total"] == 15
        assert summary["min"] == 1
        assert summary["max"] == 5
        assert summary["mean"] == 3
        assert summary["p50"] == 3

    def test_nearest_rank_percentiles(self):
        m = Metrics()
        for value in range(1, 101):
            m.observe("lat", value)
        h = m.histogram("lat")
        assert h.percentile(50) == 50
        assert h.percentile(90) == 90
        assert h.percentile(99) == 99
        assert h.percentile(100) == 100

    def test_empty_histogram_summary_is_zeros(self):
        from repro.common.metrics import Histogram

        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_observations_propagate_to_ancestor_scopes(self):
        root = Metrics()
        root.scope("alice").observe("lat", 1.0)
        root.scope("bob").observe("lat", 3.0)
        assert root.histogram("lat").count == 2
        assert root.scope("alice").histogram("lat").count == 1

    def test_reset_clears_histograms(self):
        m = Metrics()
        m.observe("lat", 1.0)
        m.reset()
        assert m.histogram("lat") is None

    def test_histogram_summaries_sorted_by_name(self):
        m = Metrics()
        m.observe("z", 1)
        m.observe("a", 2)
        assert list(m.histogram_summaries()) == ["a", "z"]
