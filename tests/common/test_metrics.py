"""Tests for the metrics ledger."""

from repro.common.metrics import Metrics


class TestCounters:
    def test_unset_counter_is_zero(self):
        assert Metrics().get("remote.requests") == 0

    def test_incr_default_amount(self):
        m = Metrics()
        m.incr("remote.requests")
        m.incr("remote.requests")
        assert m.get("remote.requests") == 2

    def test_incr_fractional(self):
        m = Metrics()
        m.incr("time.remote", 0.25)
        m.incr("time.remote", 0.5)
        assert m.get("time.remote") == 0.75

    def test_reset(self):
        m = Metrics()
        m.incr("a")
        m.reset()
        assert m.get("a") == 0


class TestAggregation:
    def test_by_prefix_matches_dotted_children(self):
        m = Metrics()
        m.incr("cache.hits.exact", 3)
        m.incr("cache.hits.subsumed", 2)
        m.incr("cache.misses", 1)
        assert m.by_prefix("cache.hits") == {
            "cache.hits.exact": 3,
            "cache.hits.subsumed": 2,
        }

    def test_by_prefix_does_not_match_name_prefixes(self):
        m = Metrics()
        m.incr("cache.hits", 1)
        m.incr("cache.hitsrate", 9)
        assert m.by_prefix("cache.hits") == {"cache.hits": 1}

    def test_total(self):
        m = Metrics()
        m.incr("remote.requests", 4)
        m.incr("remote.tuples_shipped", 100)
        assert m.total("remote") == 104

    def test_snapshot_and_diff(self):
        m = Metrics()
        m.incr("a", 1)
        before = m.snapshot()
        m.incr("a", 2)
        m.incr("b", 5)
        assert m.diff(before) == {"a": 2, "b": 5}

    def test_diff_ignores_unchanged(self):
        m = Metrics()
        m.incr("a", 1)
        before = m.snapshot()
        assert m.diff(before) == {}

    def test_iteration_sorted(self):
        m = Metrics()
        m.incr("z", 1)
        m.incr("a", 1)
        assert [name for name, _ in m] == ["a", "z"]

    def test_format_empty(self):
        assert Metrics().format() == "(no metrics)"

    def test_format_contains_names_and_values(self):
        m = Metrics()
        m.incr("remote.requests", 7)
        out = m.format()
        assert "remote.requests" in out
        assert "7" in out


class TestScopes:
    def test_scope_created_on_first_use_and_memoized(self):
        root = Metrics()
        child = root.scope("alice")
        assert root.scope("alice") is child
        assert root.scopes() == {"alice": child}

    def test_scope_names_are_dotted_paths(self):
        root = Metrics()
        child = root.scope("alice")
        assert child.scope_name == "alice"
        assert child.scope("phase1").scope_name == "alice.phase1"

    def test_child_increments_propagate_to_ancestors(self):
        root = Metrics()
        inner = root.scope("alice").scope("phase1")
        inner.incr("cache.misses", 3)
        assert inner.get("cache.misses") == 3
        assert root.scope("alice").get("cache.misses") == 3
        assert root.get("cache.misses") == 3

    def test_parent_holds_aggregate_children_hold_shares(self):
        root = Metrics()
        root.scope("alice").incr("remote.requests", 2)
        root.scope("bob").incr("remote.requests", 5)
        assert root.scope("alice").get("remote.requests") == 2
        assert root.scope("bob").get("remote.requests") == 5
        assert root.get("remote.requests") == 7

    def test_sibling_scopes_never_cross_talk(self):
        root = Metrics()
        alice, bob = root.scope("alice"), root.scope("bob")
        alice.incr("cache.misses")
        assert bob.get("cache.misses") == 0
        assert bob.snapshot() == {}

    def test_root_increments_stay_out_of_scopes(self):
        root = Metrics()
        child = root.scope("alice")
        root.incr("remote.requests")
        assert child.get("remote.requests") == 0

    def test_drop_scope_detaches_propagation(self):
        root = Metrics()
        child = root.scope("alice")
        child.incr("a")
        root.drop_scope("alice")
        assert "alice" not in root.scopes()
        assert root.get("a") == 1  # history stays in the aggregate
        child.incr("a")  # the zombie no longer reaches the root
        assert root.get("a") == 1
        assert child.get("a") == 2

    def test_drop_unknown_scope_is_noop(self):
        Metrics().drop_scope("nobody")

    def test_reset_recurses_into_scopes(self):
        root = Metrics()
        child = root.scope("alice")
        child.incr("a", 4)
        root.reset()
        assert root.get("a") == 0
        assert child.get("a") == 0
        assert root.scope("alice") is child  # structure survives a reset
