"""Tests for the metrics ledger."""

from repro.common.metrics import Metrics


class TestCounters:
    def test_unset_counter_is_zero(self):
        assert Metrics().get("remote.requests") == 0

    def test_incr_default_amount(self):
        m = Metrics()
        m.incr("remote.requests")
        m.incr("remote.requests")
        assert m.get("remote.requests") == 2

    def test_incr_fractional(self):
        m = Metrics()
        m.incr("time.remote", 0.25)
        m.incr("time.remote", 0.5)
        assert m.get("time.remote") == 0.75

    def test_reset(self):
        m = Metrics()
        m.incr("a")
        m.reset()
        assert m.get("a") == 0


class TestAggregation:
    def test_by_prefix_matches_dotted_children(self):
        m = Metrics()
        m.incr("cache.hits.exact", 3)
        m.incr("cache.hits.subsumed", 2)
        m.incr("cache.misses", 1)
        assert m.by_prefix("cache.hits") == {
            "cache.hits.exact": 3,
            "cache.hits.subsumed": 2,
        }

    def test_by_prefix_does_not_match_name_prefixes(self):
        m = Metrics()
        m.incr("cache.hits", 1)
        m.incr("cache.hitsrate", 9)
        assert m.by_prefix("cache.hits") == {"cache.hits": 1}

    def test_total(self):
        m = Metrics()
        m.incr("remote.requests", 4)
        m.incr("remote.tuples_shipped", 100)
        assert m.total("remote") == 104

    def test_snapshot_and_diff(self):
        m = Metrics()
        m.incr("a", 1)
        before = m.snapshot()
        m.incr("a", 2)
        m.incr("b", 5)
        assert m.diff(before) == {"a": 2, "b": 5}

    def test_diff_ignores_unchanged(self):
        m = Metrics()
        m.incr("a", 1)
        before = m.snapshot()
        assert m.diff(before) == {}

    def test_iteration_sorted(self):
        m = Metrics()
        m.incr("z", 1)
        m.incr("a", 1)
        assert [name for name, _ in m] == ["a", "z"]

    def test_format_empty(self):
        assert Metrics().format() == "(no metrics)"

    def test_format_contains_names_and_values(self):
        m = Metrics()
        m.incr("remote.requests", 7)
        out = m.format()
        assert "remote.requests" in out
        assert "7" in out
