"""Coverage for small contracts not exercised elsewhere."""

import pytest

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import ParseError
from repro.common.metrics import Metrics
from repro.remote.network import NetworkModel


@pytest.fixture
def network():
    return NetworkModel(SimClock(), CostProfile(), Metrics())


class TestNetworkValidation:
    def test_negative_server_work_rejected(self, network):
        with pytest.raises(ValueError):
            network.charge_server_work(-1)

    def test_negative_transfer_rejected(self, network):
        with pytest.raises(ValueError):
            network.charge_transfer(-1)

    def test_zero_charges_allowed(self, network):
        network.charge_server_work(0)
        network.charge_transfer(0)
        assert network.clock.now == 0.0

    def test_request_cost_composition(self, network):
        profile = network.profile
        cost = network.request_cost(10, 5)
        assert cost == pytest.approx(
            profile.remote_latency
            + 10 * profile.server_per_tuple
            + 5 * profile.transfer_per_tuple
        )


class TestParseErrorRendering:
    def test_snippet_included(self):
        error = ParseError("boom", text="p(a) @ q(b)", position=5)
        assert "offset 5" in str(error)
        assert "@" in str(error)

    def test_plain_message_without_position(self):
        assert str(ParseError("boom")) == "boom"


class TestAdviceManagerLostTracker:
    def test_lost_tracker_falls_back_to_lru(self):
        from repro.advice.language import AdviceSet
        from repro.advice.path_expression import QueryPattern, Sequence
        from repro.advice.view_spec import annotate
        from repro.caql.parser import parse_query
        from repro.core.advice_manager import AdviceManager
        from repro.core.cache import lru_scorer

        view = annotate(parse_query("d1(X) :- b1(X)"), "^")
        path = Sequence((QueryPattern("d1"),), lower=1, upper=1)
        manager = AdviceManager()
        manager.begin_session(AdviceSet.from_views([view], path_expression=path))
        manager.observe_query("unexpected_view")  # tracker goes lost
        assert manager.tracker.lost
        scorer = manager.replacement_scorer()
        # With a lost tracker the scorer degenerates to LRU ordering.
        from tests.core.test_advice_manager import element_for

        old = element_for("d1(X) :- b1(X)")
        old.sequence = 1
        new = element_for("d1(X) :- b1(X)", "E2")
        new.sequence = 9
        assert scorer(old) > scorer(new)
        assert scorer(new) == lru_scorer(new)

    def test_lost_tracker_keeps_companions_unfiltered(self):
        from repro.advice.language import AdviceSet
        from repro.advice.path_expression import QueryPattern, Sequence
        from repro.advice.view_spec import annotate
        from repro.caql.parser import parse_query
        from repro.core.advice_manager import AdviceManager

        views = [
            annotate(parse_query("d1(X) :- b1(X)"), "^"),
            annotate(parse_query("d2(X) :- b2(X)"), "^"),
        ]
        path = Sequence((QueryPattern("d1"), QueryPattern("d2")))
        manager = AdviceManager()
        manager.begin_session(AdviceSet.from_views(views, path_expression=path))
        manager.observe_query("zzz")
        # Lost prediction: companions still suggested (static grouping).
        assert manager.prefetch_candidates("d1") == ["d2"]


class TestCostProfileScaling:
    def test_scaled_profile_scales_simulation(self):
        from repro.relational.relation import relation_from_columns
        from repro.remote.server import RemoteDBMS
        from repro.remote.sql import FetchTableQuery

        def run(profile):
            server = RemoteDBMS(profile=profile)
            server.load_table(relation_from_columns("t", a=[1, 2, 3]))
            server.execute(FetchTableQuery("t"))
            return server.clock.now

        base = run(CostProfile())
        doubled = run(CostProfile().scaled(2.0))
        assert doubled == pytest.approx(2 * base)
