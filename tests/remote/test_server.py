"""Tests for the remote DBMS facade: cost accounting, streams, catalog."""

import pytest

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import UnknownRelationError
from repro.common.metrics import (
    REMOTE_REQUESTS,
    REMOTE_SERVER_TUPLES,
    REMOTE_TUPLES,
    Metrics,
)
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.remote.sql import FetchTableQuery, SelectQuery, SqlCol, SqlCondition, SqlLit, TableRef


@pytest.fixture
def server():
    dbms = RemoteDBMS(clock=SimClock(), profile=CostProfile(), metrics=Metrics())
    dbms.load_table(
        relation_from_columns(
            "emp",
            id=[1, 2, 3, 4],
            name=["ann", "bob", "cat", "dan"],
            dept=["hw", "sw", "sw", "hw"],
        )
    )
    return dbms


SW_QUERY = SelectQuery(
    tables=(TableRef("emp", "e"),),
    select=(SqlCol("e", "id"), SqlCol("e", "name")),
    where=(SqlCondition(SqlCol("e", "dept"), "=", SqlLit("sw")),),
)


class TestCostAccounting:
    def test_execute_counts_one_request(self, server):
        server.execute(SW_QUERY)
        assert server.metrics.get(REMOTE_REQUESTS) == 1

    def test_execute_counts_shipped_tuples(self, server):
        server.execute(SW_QUERY)
        assert server.metrics.get(REMOTE_TUPLES) == 2

    def test_execute_counts_server_work(self, server):
        server.execute(SW_QUERY)
        assert server.metrics.get(REMOTE_SERVER_TUPLES) >= 4

    def test_clock_advances(self, server):
        before = server.clock.now
        server.execute(SW_QUERY)
        elapsed = server.clock.now - before
        expected_min = server.profile.remote_latency
        assert elapsed >= expected_min

    def test_two_requests_cost_two_latencies(self, server):
        server.execute(SW_QUERY)
        first = server.clock.now
        server.execute(SW_QUERY)
        assert server.clock.now - first >= server.profile.remote_latency

    def test_schema_lookup_charged(self, server):
        server.schema_of("emp")
        assert server.metrics.get(REMOTE_REQUESTS) == 1

    def test_statistics_lookup_charged(self, server):
        stats = server.statistics_of("emp")
        assert server.metrics.get(REMOTE_REQUESTS) == 1
        assert stats.cardinality == 4

    def test_load_table_not_charged(self, server):
        assert server.metrics.get(REMOTE_REQUESTS) == 0
        assert server.clock.now == 0.0

    def test_request_cost_estimation_charges_nothing(self, server):
        cost = server.network.request_cost(100, 10)
        assert cost > 0
        assert server.clock.now == 0.0


class TestCatalogAccess:
    def test_schema_of(self, server):
        assert server.schema_of("emp").attributes == ("id", "name", "dept")

    def test_unknown_schema(self, server):
        with pytest.raises(UnknownRelationError):
            server.schema_of("ghost")

    def test_has_table(self, server):
        assert server.has_table("emp")
        assert not server.has_table("ghost")


class TestStreams:
    def test_pipelined_stream_pays_per_buffer(self, server):
        stream = server.execute_stream(FetchTableQuery("emp"), buffer_size=2)
        shipped_before = server.metrics.get(REMOTE_TUPLES)
        assert shipped_before == 0  # nothing shipped until pulled
        first = stream.next_buffer()
        assert len(first) == 2
        assert server.metrics.get(REMOTE_TUPLES) == 2

    def test_stream_stops_early_saves_transfer(self, server):
        stream = server.execute_stream(FetchTableQuery("emp"), buffer_size=1)
        stream.next_buffer()
        # Abandon the stream after one row: only 1 tuple shipped.
        assert server.metrics.get(REMOTE_TUPLES) == 1

    def test_stream_exhaustion(self, server):
        stream = server.execute_stream(FetchTableQuery("emp"), buffer_size=3)
        buffers = []
        while not stream.exhausted:
            buffers.append(stream.next_buffer())
        assert sum(len(b) for b in buffers) == 4
        assert stream.next_buffer() == []

    def test_non_pipelined_ships_everything_upfront(self):
        dbms = RemoteDBMS(supports_pipelining=False)
        dbms.load_table(relation_from_columns("t", a=[1, 2, 3]))
        dbms.execute_stream(FetchTableQuery("t"), buffer_size=1)
        assert dbms.metrics.get(REMOTE_TUPLES) == 3

    def test_stream_total_rows(self, server):
        stream = server.execute_stream(FetchTableQuery("emp"))
        assert stream.total_rows == 4

    def test_stream_schema(self, server):
        stream = server.execute_stream(FetchTableQuery("emp"))
        assert stream.schema.attributes == ("id", "name", "dept")


class TestParallelTrack:
    def test_remote_work_lands_on_remote_track(self, server):
        clock = server.clock
        with clock.parallel() as region:
            server.execute(SW_QUERY)
            assert "remote" in region.tracks
        assert clock.now > 0
