"""Tests for the DML structures and SQL rendering."""

import pytest

from repro.common.errors import TranslationError
from repro.remote.sql import (
    SelectQuery,
    SqlCol,
    SqlCondition,
    SqlLit,
    TableRef,
    render_literal,
    render_sql,
)


def simple_query():
    return SelectQuery(
        tables=(TableRef("emp", "e"), TableRef("dept", "d")),
        select=(SqlCol("e", "name"), SqlCol("d", "site")),
        where=(
            SqlCondition(SqlCol("e", "dept"), "=", SqlCol("d", "code")),
            SqlCondition(SqlCol("d", "site"), "=", SqlLit("ca")),
        ),
    )


class TestValidation:
    def test_needs_tables(self):
        with pytest.raises(TranslationError):
            SelectQuery(tables=(), select=(SqlCol("e", "x"),))

    def test_needs_columns(self):
        with pytest.raises(TranslationError):
            SelectQuery(tables=(TableRef("emp", "e"),), select=())

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(TranslationError):
            SelectQuery(
                tables=(TableRef("emp", "e"), TableRef("dept", "e")),
                select=(SqlCol("e", "x"),),
            )

    def test_select_alias_must_exist(self):
        with pytest.raises(TranslationError):
            SelectQuery(tables=(TableRef("emp", "e"),), select=(SqlCol("z", "x"),))

    def test_where_alias_must_exist(self):
        with pytest.raises(TranslationError):
            SelectQuery(
                tables=(TableRef("emp", "e"),),
                select=(SqlCol("e", "x"),),
                where=(SqlCondition(SqlCol("z", "x"), "=", SqlLit(1)),),
            )

    def test_bad_operator_rejected(self):
        with pytest.raises(TranslationError):
            SqlCondition(SqlCol("e", "x"), "LIKE", SqlLit("%a%"))

    def test_self_join_aliases(self):
        query = SelectQuery(
            tables=(TableRef("emp", "e1"), TableRef("emp", "e2")),
            select=(SqlCol("e1", "name"),),
        )
        assert query.referenced_tables() == {"emp"}


class TestRendering:
    def test_render_basic(self):
        sql = render_sql(simple_query())
        assert sql == (
            "SELECT DISTINCT e.name, d.site FROM emp AS e, dept AS d "
            "WHERE e.dept = d.code AND d.site = 'ca'"
        )

    def test_render_without_where(self):
        query = SelectQuery(tables=(TableRef("emp", "e"),), select=(SqlCol("e", "x"),))
        assert render_sql(query) == "SELECT DISTINCT e.x FROM emp AS e"

    def test_render_non_distinct(self):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),), select=(SqlCol("e", "x"),), distinct=False
        )
        assert render_sql(query).startswith("SELECT e.x")

    def test_alias_same_as_table(self):
        query = SelectQuery(
            tables=(TableRef("emp", "emp"),), select=(SqlCol("emp", "x"),)
        )
        assert "AS" not in render_sql(query)

    def test_str_is_sql(self):
        assert str(simple_query()) == render_sql(simple_query())


class TestLiterals:
    def test_string_quoted(self):
        assert render_literal("ca") == "'ca'"

    def test_quote_escaped(self):
        assert render_literal("o'hare") == "'o''hare'"

    def test_numbers(self):
        assert render_literal(42) == "42"
        assert render_literal(2.5) == "2.5"

    def test_bool_as_int(self):
        assert render_literal(True) == "1"

    def test_none_as_null(self):
        assert render_literal(None) == "NULL"

    def test_unsupported_type_rejected(self):
        with pytest.raises(TranslationError):
            render_literal([1, 2])
