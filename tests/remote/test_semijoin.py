"""Tests for shipped IN-lists (semijoin bindings) and batched round trips."""

import pytest

from repro.common.errors import TranslationError, TransientRemoteError
from repro.common.metrics import (
    REMOTE_BATCHED_REQUESTS,
    REMOTE_BINDINGS_SHIPPED,
    REMOTE_REQUESTS,
)
from repro.relational.relation import relation_from_columns
from repro.remote.engine import PurePythonEngine
from repro.remote.faults import FaultPolicy
from repro.remote.server import RemoteDBMS
from repro.remote.sql import (
    FetchTableQuery,
    SelectQuery,
    SqlCol,
    SqlCondition,
    SqlInList,
    SqlLit,
    TableRef,
    render_sql,
)
from repro.remote.sqlite_backend import SqliteEngine


def load_sample(engine):
    engine.create_table(
        relation_from_columns(
            "emp",
            id=[1, 2, 3, 4],
            name=["ann", "bob", "cat", "dan"],
            dept=["hw", "sw", "sw", "hw"],
        )
    )
    engine.create_table(
        relation_from_columns("dept", code=["hw", "sw"], site=["nj", "ca"])
    )
    return engine


@pytest.fixture(params=["pure", "sqlite"])
def engine(request):
    if request.param == "pure":
        yield load_sample(PurePythonEngine())
        return
    backend = load_sample(SqliteEngine())
    yield backend
    backend.close()


def in_list_query(values=(1, 3), extra_where=()):
    return SelectQuery(
        tables=(TableRef("emp", "e"),),
        select=(SqlCol("e", "id"), SqlCol("e", "name")),
        where=(SqlInList(SqlCol("e", "id"), tuple(values)),) + tuple(extra_where),
    )


class TestSqlInList:
    def test_empty_values_rejected(self):
        # An empty binding set proves the join empty; shipping it is a bug.
        with pytest.raises(TranslationError):
            SqlInList(SqlCol("e", "id"), ())

    def test_duplicate_values_rejected(self):
        # The sender must deduplicate: duplicates inflate the uplink charge.
        with pytest.raises(TranslationError):
            SqlInList(SqlCol("e", "id"), (1, 2, 1))

    def test_renders_as_sql(self):
        term = SqlInList(SqlCol("e", "dept"), ("sw", "hw"))
        assert str(term) == "e.dept IN ('sw', 'hw')"

    def test_render_sql_includes_in_list(self):
        sql = render_sql(in_list_query())
        assert "e.id IN (1, 3)" in sql

    def test_alias_must_exist(self):
        with pytest.raises(TranslationError):
            SelectQuery(
                tables=(TableRef("emp", "e"),),
                select=(SqlCol("e", "id"),),
                where=(SqlInList(SqlCol("ghost", "id"), (1,)),),
            )

    def test_binding_values_shipped_sums_all_in_lists(self):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "id"),),
            where=(
                SqlInList(SqlCol("e", "id"), (1, 2, 3)),
                SqlInList(SqlCol("e", "dept"), ("sw",)),
                SqlCondition(SqlCol("e", "id"), ">", SqlLit(0)),
            ),
        )
        assert query.binding_values_shipped() == 4

    def test_no_in_list_ships_no_bindings(self):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),), select=(SqlCol("e", "id"),)
        )
        assert query.binding_values_shipped() == 0


class TestEngineInList:
    def test_filters_to_listed_values(self, engine):
        result = engine.execute(in_list_query()).relation
        assert set(result.rows) == {(1, "ann"), (3, "cat")}

    def test_composes_with_conditions(self, engine):
        query = in_list_query(
            values=(1, 2, 3),
            extra_where=(SqlCondition(SqlCol("e", "dept"), "=", SqlLit("sw")),),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {(2, "bob"), (3, "cat")}

    def test_join_with_in_list(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"), TableRef("dept", "d")),
            select=(SqlCol("e", "name"), SqlCol("d", "site")),
            where=(
                SqlCondition(SqlCol("e", "dept"), "=", SqlCol("d", "code")),
                SqlInList(SqlCol("e", "id"), (2, 4)),
            ),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {("bob", "ca"), ("dan", "nj")}

    def test_engine_parity(self):
        pure = load_sample(PurePythonEngine())
        lite = load_sample(SqliteEngine())
        query = in_list_query(values=(4, 2))
        try:
            assert set(pure.execute(query).relation.rows) == set(
                lite.execute(query).relation.rows
            )
        finally:
            lite.close()


class TestUplinkCharging:
    def test_execute_charges_uplink_per_binding(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        before = server.network.charged_seconds
        server.execute(in_list_query(values=(1, 3)))
        charged = server.network.charged_seconds - before
        assert server.metrics.get(REMOTE_BINDINGS_SHIPPED) == 2
        baseline = (
            server.profile.remote_latency
            + server.profile.server_per_tuple * 4
            + server.profile.transfer_per_tuple * 2
        )
        assert charged == pytest.approx(baseline + 2 * server.profile.uplink_per_value)

    def test_plain_request_ships_no_bindings(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        server.execute(FetchTableQuery("emp"))
        assert server.metrics.get(REMOTE_BINDINGS_SHIPPED) == 0

    def test_streamed_request_charges_uplink_too(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        stream = server.execute_stream(in_list_query(values=(1,)))
        while stream.next_buffer():
            pass
        assert server.metrics.get(REMOTE_BINDINGS_SHIPPED) == 1

    def test_negative_count_rejected(self):
        server = RemoteDBMS()
        with pytest.raises(ValueError):
            server.network.charge_uplink(-1)


class TestExecuteBatch:
    def requests(self):
        return [FetchTableQuery("emp"), FetchTableQuery("dept")]

    def test_batch_is_one_round_trip(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        streams = server.execute_batch(self.requests())
        for stream in streams:
            while stream.next_buffer():
                pass
        assert server.metrics.get(REMOTE_REQUESTS) == 1
        assert server.metrics.get(REMOTE_BATCHED_REQUESTS) == 2

    def test_batch_cheaper_than_sequential_requests(self):
        batched = RemoteDBMS()
        load_sample(batched.engine)
        for stream in batched.execute_batch(self.requests()):
            while stream.next_buffer():
                pass

        sequential = RemoteDBMS()
        load_sample(sequential.engine)
        for request in self.requests():
            stream = sequential.execute_stream(request)
            while stream.next_buffer():
                pass

        saved = sequential.network.charged_seconds - batched.network.charged_seconds
        assert saved == pytest.approx(batched.profile.remote_latency)

    def test_empty_batch_is_free(self):
        server = RemoteDBMS()
        assert server.execute_batch([]) == []
        assert server.metrics.get(REMOTE_REQUESTS) == 0

    def test_single_request_batch_not_counted_as_batched(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        server.execute_batch([FetchTableQuery("emp")])
        assert server.metrics.get(REMOTE_BATCHED_REQUESTS) == 0

    def test_batch_results_in_request_order(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        streams = server.execute_batch(self.requests())
        assert streams[0].schema.name == "emp"
        assert streams[1].schema.name == "dept"

    def test_batch_carries_uplink_bindings(self):
        server = RemoteDBMS()
        load_sample(server.engine)
        server.execute_batch([in_list_query(values=(1, 2)), FetchTableQuery("dept")])
        assert server.metrics.get(REMOTE_BINDINGS_SHIPPED) == 2

    def test_injected_fault_fails_the_whole_batch(self):
        server = RemoteDBMS(faults=FaultPolicy(seed=3, transient_rate=1.0))
        load_sample(server.engine)
        with pytest.raises(TransientRemoteError):
            server.execute_batch(self.requests())
