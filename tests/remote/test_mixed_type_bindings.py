"""Mixed-type join keys through IN-lists and binding canonicalization.

Python lets ``1 == 1.0 == True`` while ``1 != "1"`` even though their
reprs collide — exactly the value soup a semijoin binding set can carry
when join columns hold heterogeneous data.  These tests pin down:

* :func:`repro.core.rdi.canonical_bindings` — a total, deterministic
  order; deduplication by *equality* with an input-order-independent
  choice of representative;
* :class:`repro.remote.sql.SqlInList` — the duplicate guard uses the
  same equality notion the membership check will;
* engine parity — both engines answer mixed-type IN-lists identically
  (sqlite columns are declared without affinity on purpose, so ``1``
  never silently equals ``'1'`` on one engine but not the other).
"""

import pytest

from repro.core.rdi import canonical_bindings
from repro.common.errors import TranslationError
from repro.relational.relation import relation_from_columns
from repro.remote.engine import PurePythonEngine
from repro.remote.sql import SelectQuery, SqlCol, SqlInList, TableRef
from repro.remote.sqlite_backend import SqliteEngine


class TestCanonicalBindings:
    def test_total_order_over_mixed_types(self):
        out = canonical_bindings({"c": (2, "v1", 0.5, "v0", 7)})
        assert out["c"] == (0.5, 2, 7, "v0", "v1")  # floats, ints, strs

    def test_repr_colliding_values_stay_distinct(self):
        # repr(1) == "1" == repr("1")[1:-1]; the (type, repr) key keeps them.
        out = canonical_bindings({"c": ("1", 1, "2", 2)})
        assert out["c"] == (1, 2, "1", "2")

    def test_equal_values_collapse_to_one_representative(self):
        out = canonical_bindings({"c": (1, 1.0)})
        assert len(out["c"]) == 1

    def test_representative_is_independent_of_input_order(self):
        # 1 == 1.0 collapses either way; the survivor must not depend on
        # which spelling the cache happened to produce first.
        forward = canonical_bindings({"c": (1, 1.0, 3)})
        backward = canonical_bindings({"c": (3, 1.0, 1)})
        assert forward == backward
        assert repr(forward["c"]) == repr(backward["c"])

    def test_output_contains_no_equal_pair(self):
        # SqlInList rejects duplicates by equality; canonical bindings must
        # never hand it one.
        out = canonical_bindings({"c": (True, 1, 1.0, 2, 2.0, "1")})
        values = out["c"]
        assert len(set(values)) == len(values)
        SqlInList(SqlCol("t", "c"), values)  # does not raise

    def test_columns_sorted_and_empty_input_passthrough(self):
        assert list(canonical_bindings({"b": (1,), "a": (2,)})) == ["a", "b"]
        assert canonical_bindings(None) == {}
        assert canonical_bindings({}) == {}


class TestSqlInListGuards:
    def test_empty_binding_set_is_rejected(self):
        with pytest.raises(TranslationError, match="empty"):
            SqlInList(SqlCol("t", "c"), ())

    def test_equal_mixed_type_values_count_as_duplicates(self):
        # 1 and 1.0 are one membership test, not two values.
        with pytest.raises(TranslationError, match="duplicate"):
            SqlInList(SqlCol("t", "c"), (1, 1.0))

    def test_repr_colliding_values_are_not_duplicates(self):
        SqlInList(SqlCol("t", "c"), (1, "1"))  # distinct under equality


def load_keys(engine):
    engine.create_table(
        relation_from_columns("k", key=[1, 2, 3, "1", "2"], tag=["a", "b", "c", "d", "e"])
    )
    return engine


@pytest.fixture(params=["pure", "sqlite"])
def engine(request):
    if request.param == "pure":
        yield load_keys(PurePythonEngine())
        return
    backend = load_keys(SqliteEngine())
    yield backend
    backend.close()


def in_list_query(values):
    return SelectQuery(
        tables=(TableRef("k", "k"),),
        select=(SqlCol("k", "key"), SqlCol("k", "tag")),
        where=(SqlInList(SqlCol("k", "key"), values),),
    )


class TestEngineParityOnMixedKeys:
    def test_int_binding_does_not_match_stringly_key(self, engine):
        result = engine.execute(in_list_query((1, 2))).relation
        assert set(result.rows) == {(1, "a"), (2, "b")}

    def test_string_binding_does_not_match_numeric_key(self, engine):
        result = engine.execute(in_list_query(("1",))).relation
        assert set(result.rows) == {("1", "d")}

    def test_float_binding_matches_equal_int_key(self, engine):
        result = engine.execute(in_list_query((3.0,))).relation
        assert set(result.rows) == {(3, "c")}

    def test_mixed_list_matches_exactly_its_equality_classes(self, engine):
        result = engine.execute(in_list_query((2.0, "1"))).relation
        assert set(result.rows) == {(2, "b"), ("1", "d")}

    def test_canonicalized_bindings_are_engine_stable(self):
        values = canonical_bindings({"key": (2, "1", 3.0)})["key"]
        pure = load_keys(PurePythonEngine())
        lite = load_keys(SqliteEngine())
        try:
            assert set(pure.execute(in_list_query(values)).relation.rows) == set(
                lite.execute(in_list_query(values)).relation.rows
            )
        finally:
            lite.close()
