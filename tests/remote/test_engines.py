"""Tests for both remote engines — shared behaviour via parametrization."""

import pytest

from repro.common.errors import UnknownRelationError
from repro.relational.relation import relation_from_columns
from repro.remote.engine import PurePythonEngine
from repro.remote.sql import (
    FetchTableQuery,
    SelectQuery,
    SqlCol,
    SqlCondition,
    SqlLit,
    TableRef,
)
from repro.remote.sqlite_backend import SqliteEngine


def load_sample(engine):
    engine.create_table(
        relation_from_columns(
            "emp",
            id=[1, 2, 3, 4],
            name=["ann", "bob", "cat", "dan"],
            dept=["hw", "sw", "sw", "hw"],
        )
    )
    engine.create_table(
        relation_from_columns("dept", code=["hw", "sw"], site=["nj", "ca"])
    )
    return engine


@pytest.fixture(params=["pure", "sqlite"])
def engine(request):
    if request.param == "pure":
        yield load_sample(PurePythonEngine())
        return
    backend = load_sample(SqliteEngine())
    yield backend
    backend.close()


class TestFetchTable:
    def test_whole_table(self, engine):
        result = engine.execute(FetchTableQuery("emp"))
        assert len(result.relation) == 4
        assert result.tuples_touched == 4

    def test_unknown_table(self, engine):
        with pytest.raises(UnknownRelationError):
            engine.execute(FetchTableQuery("nope"))


class TestSelection:
    def test_equality_selection(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "id"), SqlCol("e", "name")),
            where=(SqlCondition(SqlCol("e", "dept"), "=", SqlLit("sw")),),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {(2, "bob"), (3, "cat")}

    def test_range_selection(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "id"),),
            where=(SqlCondition(SqlCol("e", "id"), ">=", SqlLit(3)),),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {(3,), (4,)}

    def test_not_equal(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "id"),),
            where=(SqlCondition(SqlCol("e", "dept"), "!=", SqlLit("sw")),),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {(1,), (4,)}

    def test_empty_result(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "id"),),
            where=(SqlCondition(SqlCol("e", "dept"), "=", SqlLit("zz")),),
        )
        assert len(engine.execute(query).relation) == 0

    def test_projection_dedups(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "dept"),),
        )
        result = engine.execute(query).relation
        assert len(result) == 2


class TestJoin:
    def test_two_table_join(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"), TableRef("dept", "d")),
            select=(SqlCol("e", "name"), SqlCol("d", "site")),
            where=(SqlCondition(SqlCol("e", "dept"), "=", SqlCol("d", "code")),),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {
            ("ann", "nj"),
            ("bob", "ca"),
            ("cat", "ca"),
            ("dan", "nj"),
        }

    def test_join_with_selection(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"), TableRef("dept", "d")),
            select=(SqlCol("e", "name"),),
            where=(
                SqlCondition(SqlCol("e", "dept"), "=", SqlCol("d", "code")),
                SqlCondition(SqlCol("d", "site"), "=", SqlLit("ca")),
            ),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {("bob",), ("cat",)}

    def test_self_join(self, engine):
        # Colleagues: pairs in the same department.
        query = SelectQuery(
            tables=(TableRef("emp", "e1"), TableRef("emp", "e2")),
            select=(SqlCol("e1", "name"), SqlCol("e2", "name")),
            where=(
                SqlCondition(SqlCol("e1", "dept"), "=", SqlCol("e2", "dept")),
                SqlCondition(SqlCol("e1", "id"), "<", SqlCol("e2", "id")),
            ),
        )
        result = engine.execute(query).relation
        assert set(result.rows) == {("ann", "dan"), ("bob", "cat")}

    def test_cross_product(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"), TableRef("dept", "d")),
            select=(SqlCol("e", "id"), SqlCol("d", "code")),
        )
        assert len(engine.execute(query).relation) == 8

    def test_unknown_table_in_join(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"), TableRef("ghost", "g")),
            select=(SqlCol("e", "id"),),
        )
        with pytest.raises(UnknownRelationError):
            engine.execute(query)


class TestServerWork:
    def test_touched_counts_scans(self, engine):
        query = SelectQuery(
            tables=(TableRef("emp", "e"),),
            select=(SqlCol("e", "id"),),
        )
        result = engine.execute(query)
        assert result.tuples_touched >= 4

    def test_join_touches_more_than_select(self, engine):
        single = SelectQuery(
            tables=(TableRef("emp", "e"),), select=(SqlCol("e", "id"),)
        )
        double = SelectQuery(
            tables=(TableRef("emp", "e"), TableRef("dept", "d")),
            select=(SqlCol("e", "id"),),
            where=(SqlCondition(SqlCol("e", "dept"), "=", SqlCol("d", "code")),),
        )
        assert engine.execute(double).tuples_touched > engine.execute(single).tuples_touched


class TestEngineParity:
    """Both engines must return identical result sets."""

    @pytest.mark.parametrize(
        "query",
        [
            SelectQuery(
                tables=(TableRef("emp", "e"),),
                select=(SqlCol("e", "name"),),
                where=(SqlCondition(SqlCol("e", "id"), ">", SqlLit(1)),),
            ),
            SelectQuery(
                tables=(TableRef("emp", "e"), TableRef("dept", "d")),
                select=(SqlCol("e", "name"), SqlCol("d", "site")),
                where=(SqlCondition(SqlCol("e", "dept"), "=", SqlCol("d", "code")),),
            ),
        ],
        ids=["selection", "join"],
    )
    def test_same_results(self, query):
        pure = load_sample(PurePythonEngine())
        lite = load_sample(SqliteEngine())
        try:
            assert set(pure.execute(query).relation.rows) == set(
                lite.execute(query).relation.rows
            )
        finally:
            lite.close()
