"""Deterministic failure-mode tests for the fault-injected remote link.

Every test here is seeded: the injector draws a fixed number of RNG values
per request, so a (seed, request-sequence) pair always produces the same
faults, charges, and metrics.  ``seed_with_pattern`` searches for a seed
whose failure draws match an explicit pattern, which lets tests script
exact sequences like "fail once, then succeed".
"""

import random

import pytest

from repro.common.errors import (
    CircuitOpenError,
    RemoteDBMSError,
    RemoteTimeoutError,
    TransientRemoteError,
)
from repro.common.metrics import (
    REMOTE_BREAKER_STATE_CHANGES,
    REMOTE_FAULTS_INJECTED,
    REMOTE_REQUESTS,
    REMOTE_RETRIES,
    REMOTE_TIMEOUTS,
)
from repro.relational.relation import relation_from_columns
from repro.remote.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
)
from repro.remote.server import RemoteDBMS
from repro.remote.sql import FetchTableQuery
from repro.caql.eval import psj_of
from repro.caql.parser import parse_query
from repro.core.rdi import RemoteInterface


def seed_with_pattern(rate: float, pattern: list[bool], limit: int = 100_000) -> int:
    """A seed whose per-request failure draws match ``pattern`` exactly.

    The injector consumes three draws per request; the first decides
    failure.  Deterministic, so tests stay reproducible byte-for-byte.
    """
    for seed in range(limit):
        rng = random.Random(seed)
        draws = []
        for _ in pattern:
            u_fail = rng.random()
            rng.random()  # stall draw
            rng.random()  # disconnect draw
            draws.append(u_fail < rate)
        if draws == pattern:
            return seed
    raise AssertionError(f"no seed under {limit} matches {pattern}")


def make_server(faults=None, rows=300, **kwargs):
    server = RemoteDBMS(faults=faults, **kwargs)
    server.load_table(
        relation_from_columns(
            "t", a=list(range(rows)), b=[i % 7 for i in range(rows)]
        )
    )
    return server


def make_psj(text="q(A, B) :- t(A, B)"):
    return psj_of(parse_query(text))


class TestFaultPolicy:
    def test_none_is_inert(self):
        assert FaultPolicy.none().is_none()
        assert FaultPolicy().is_none()
        assert not FaultPolicy(transient_rate=0.1).is_none()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_rate": -0.1},
            {"transient_rate": 1.5},
            {"transient_rate": 0.7, "permanent_rate": 0.7},
            {"stall_seconds": -1.0},
            {"disconnect_after_buffers": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPolicy(**kwargs)

    def test_none_policy_installs_no_injector(self):
        assert make_server(faults=FaultPolicy.none()).fault_injector is None
        assert make_server(faults=None).fault_injector is None
        assert make_server(faults=FaultPolicy(transient_rate=1.0)).fault_injector

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_seconds=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=1.0)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        policy = FaultPolicy(
            seed=42, transient_rate=0.3, stall_rate=0.2, disconnect_rate=0.2
        )
        a = FaultInjector(policy)
        b = FaultInjector(policy)
        assert [a.on_request() for _ in range(50)] == [
            b.on_request() for _ in range(50)
        ]

    def test_reset_rewinds_the_stream(self):
        injector = FaultInjector(FaultPolicy(seed=9, transient_rate=0.5))
        first = [injector.on_request() for _ in range(20)]
        injector.reset()
        assert [injector.on_request() for _ in range(20)] == first

    def test_draws_per_request_fixed(self):
        # Decision k depends only on (seed, k): two policies with the same
        # seed but different rates see the same underlying draws.
        lo = FaultInjector(FaultPolicy(seed=3, transient_rate=0.999))
        hi = FaultInjector(FaultPolicy(seed=3, transient_rate=0.001))
        for _ in range(30):
            lo.on_request()
        # Request 31 of the low-rate injector matches what a fresh injector
        # seeing the same seed produces at position 31.
        fresh = FaultInjector(FaultPolicy(seed=3, transient_rate=0.001))
        for _ in range(30):
            fresh.on_request()
        assert hi is not fresh  # sanity: independent objects
        assert lo.on_request().extra_latency == fresh.on_request().extra_latency


class TestServerInjection:
    def test_transient_failure_raises_and_charges_latency(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        before = server.clock.now
        with pytest.raises(TransientRemoteError):
            server.execute_stream(FetchTableQuery("t"))
        assert server.clock.now - before == pytest.approx(
            server.profile.remote_latency
        )
        assert server.metrics.get(REMOTE_FAULTS_INJECTED) == 1
        assert server.metrics.get(REMOTE_REQUESTS) == 1

    def test_permanent_failure_raises(self):
        server = make_server(faults=FaultPolicy(seed=0, permanent_rate=1.0))
        with pytest.raises(RemoteDBMSError) as excinfo:
            server.execute(FetchTableQuery("t"))
        assert not isinstance(excinfo.value, TransientRemoteError)

    def test_stall_charges_extra_latency(self):
        server = make_server(
            faults=FaultPolicy(seed=0, stall_rate=1.0, stall_seconds=3.0)
        )
        healthy = make_server()
        server.execute(FetchTableQuery("t"))
        healthy.execute(FetchTableQuery("t"))
        assert server.clock.now == pytest.approx(healthy.clock.now + 3.0)

    def test_disconnect_mid_stream(self):
        server = make_server(
            faults=FaultPolicy(
                seed=0, disconnect_rate=1.0, disconnect_after_buffers=2
            )
        )
        stream = server.execute_stream(FetchTableQuery("t"), buffer_size=10)
        assert len(stream.next_buffer()) == 10
        assert len(stream.next_buffer()) == 10
        with pytest.raises(TransientRemoteError):
            stream.next_buffer()
        # Only the delivered buffers paid transfer cost.
        assert server.metrics.get("remote.tuples_shipped") == 20

    def test_metadata_faults_opt_in(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        server.schema_of("t")  # metadata unaffected by default
        strict = make_server(
            faults=FaultPolicy(seed=0, transient_rate=1.0, metadata_faults=True)
        )
        with pytest.raises(TransientRemoteError):
            strict.schema_of("t")

    def test_set_fault_policy_mid_run(self):
        server = make_server()
        server.execute(FetchTableQuery("t"))
        server.set_fault_policy(FaultPolicy(seed=1, transient_rate=1.0))
        with pytest.raises(TransientRemoteError):
            server.execute(FetchTableQuery("t"))
        server.set_fault_policy(None)
        server.execute(FetchTableQuery("t"))


class TestRetries:
    def test_transient_retried_then_succeeds(self):
        seed = seed_with_pattern(0.5, [True, False])
        server = make_server(faults=FaultPolicy(seed=seed, transient_rate=0.5))
        rdi = RemoteInterface(server, retry=RetryPolicy(max_retries=3))
        result = rdi.fetch(make_psj())
        assert len(result) == 300
        assert server.metrics.get(REMOTE_RETRIES) == 1

    def test_permanent_error_not_retried(self):
        server = make_server(faults=FaultPolicy(seed=0, permanent_rate=1.0))
        rdi = RemoteInterface(server, retry=RetryPolicy(max_retries=5))
        requests_before = server.metrics.get(REMOTE_REQUESTS)
        with pytest.raises(RemoteDBMSError):
            rdi.fetch(make_psj())
        # schema lookup + exactly one data attempt; no retries.
        assert server.metrics.get(REMOTE_REQUESTS) == requests_before + 2
        assert server.metrics.get(REMOTE_RETRIES) == 0

    def test_exhausted_retries_raise_last_transient(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        rdi = RemoteInterface(
            server, retry=RetryPolicy(max_retries=2, breaker_threshold=0)
        )
        with pytest.raises(TransientRemoteError):
            rdi.fetch(make_psj())
        assert server.metrics.get(REMOTE_RETRIES) == 2

    def test_backoff_charged_to_remote_track(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        rdi = RemoteInterface(
            server,
            retry=RetryPolicy(
                max_retries=2,
                backoff_base=1.0,
                backoff_multiplier=2.0,
                backoff_jitter=0.0,
                breaker_threshold=0,
            ),
        )
        rdi.schema_of("t")  # pay the metadata trip outside the measurement
        before = server.clock.now
        with pytest.raises(TransientRemoteError):
            rdi.fetch(make_psj())
        elapsed = server.clock.now - before
        # 3 failed round trips + backoffs of 1.0 and 2.0 seconds.
        expected = 3 * server.profile.remote_latency + 1.0 + 2.0
        assert elapsed == pytest.approx(expected)

    def test_backoff_jitter_is_seeded(self):
        def run():
            server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
            rdi = RemoteInterface(
                server,
                retry=RetryPolicy(
                    max_retries=3, backoff_jitter=0.5, seed=11, breaker_threshold=0
                ),
            )
            with pytest.raises(TransientRemoteError):
                rdi.fetch(make_psj())
            return server.clock.now

        assert run() == run()

    def test_no_faults_means_no_retry_machinery(self):
        server = make_server()
        rdi = RemoteInterface(server)
        rdi.fetch(make_psj())
        assert server.metrics.get(REMOTE_RETRIES) == 0
        assert server.metrics.get(REMOTE_TIMEOUTS) == 0
        assert server.metrics.get(REMOTE_BREAKER_STATE_CHANGES) == 0


class TestTimeouts:
    def test_stall_beyond_budget_times_out(self):
        server = make_server(
            faults=FaultPolicy(seed=0, stall_rate=1.0, stall_seconds=10.0)
        )
        rdi = RemoteInterface(
            server, retry=RetryPolicy(max_retries=0, timeout_seconds=1.0)
        )
        with pytest.raises(RemoteTimeoutError):
            rdi.fetch(make_psj())
        assert server.metrics.get(REMOTE_TIMEOUTS) == 1

    def test_timeout_mid_stream(self):
        # 3000 tuples * 0.5ms transfer = 1.5s total; budget 0.3s runs out
        # part-way through the buffered drain.
        server = make_server(rows=3000)
        rdi = RemoteInterface(
            server,
            buffer_size=100,
            retry=RetryPolicy(max_retries=0, timeout_seconds=0.3),
        )
        with pytest.raises(RemoteTimeoutError):
            rdi.fetch(make_psj())
        shipped = server.metrics.get("remote.tuples_shipped")
        assert 0 < shipped < 3000  # gave up mid-stream, not at the end
        assert server.metrics.get(REMOTE_TIMEOUTS) == 1

    def test_timeouts_are_retried(self):
        server = make_server(
            faults=FaultPolicy(seed=0, stall_rate=1.0, stall_seconds=10.0)
        )
        rdi = RemoteInterface(
            server,
            retry=RetryPolicy(max_retries=2, timeout_seconds=1.0, breaker_threshold=0),
        )
        with pytest.raises(RemoteTimeoutError):
            rdi.fetch(make_psj())
        assert server.metrics.get(REMOTE_TIMEOUTS) == 3
        assert server.metrics.get(REMOTE_RETRIES) == 2

    def test_generous_timeout_never_fires(self):
        server = make_server()
        rdi = RemoteInterface(server, retry=RetryPolicy(timeout_seconds=1e9))
        assert len(rdi.fetch(make_psj())) == 300
        assert server.metrics.get(REMOTE_TIMEOUTS) == 0


class TestCircuitBreaker:
    def make_rdi(self, server, **kwargs):
        defaults = dict(
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown=1.0,
            breaker_probe_after=3,
        )
        defaults.update(kwargs)
        return RemoteInterface(server, retry=RetryPolicy(**defaults))

    def test_opens_after_threshold_and_refuses_locally(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        rdi = self.make_rdi(server)
        for _ in range(2):
            with pytest.raises(TransientRemoteError):
                rdi.fetch(make_psj())
        assert rdi.breaker.state == CircuitBreaker.OPEN
        requests = server.metrics.get(REMOTE_REQUESTS)
        with pytest.raises(CircuitOpenError):
            rdi.fetch(make_psj())
        assert server.metrics.get(REMOTE_REQUESTS) == requests  # refused locally
        assert not rdi.remote_available()

    def test_half_open_after_cooldown_then_closes_on_success(self):
        seed = seed_with_pattern(0.5, [True, True, False])
        server = make_server(faults=FaultPolicy(seed=seed, transient_rate=0.5))
        rdi = self.make_rdi(server)
        psj = make_psj()
        rdi.schema_of("t")
        for _ in range(2):
            with pytest.raises(TransientRemoteError):
                rdi.fetch(psj)
        assert rdi.breaker.state == CircuitBreaker.OPEN
        server.clock.advance(5.0)  # cooldown passes
        assert rdi.remote_available()
        result = rdi.fetch(psj)  # half-open trial succeeds
        assert len(result) == 300
        assert rdi.breaker.state == CircuitBreaker.CLOSED
        # closed -> open -> half-open -> closed
        assert server.metrics.get(REMOTE_BREAKER_STATE_CHANGES) == 3

    def test_failed_half_open_trial_reopens(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        rdi = self.make_rdi(server)
        psj = make_psj()
        for _ in range(2):
            with pytest.raises(TransientRemoteError):
                rdi.fetch(psj)
        server.clock.advance(5.0)
        with pytest.raises(TransientRemoteError):
            rdi.fetch(psj)  # half-open trial fails immediately
        assert rdi.breaker.state == CircuitBreaker.OPEN

    def test_probe_after_refusals_without_time_passing(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        rdi = self.make_rdi(server, breaker_cooldown=1e9, breaker_probe_after=3)
        psj = make_psj()
        for _ in range(2):
            with pytest.raises(TransientRemoteError):
                rdi.fetch(psj)
        for _ in range(3):
            with pytest.raises(CircuitOpenError):
                rdi.fetch(psj)
        # The 4th attempt is allowed through as a half-open probe.
        with pytest.raises(TransientRemoteError):
            rdi.fetch(psj)

    def test_threshold_zero_disables_breaker(self):
        server = make_server(faults=FaultPolicy(seed=0, transient_rate=1.0))
        rdi = self.make_rdi(server, breaker_threshold=0)
        for _ in range(10):
            with pytest.raises(TransientRemoteError):
                rdi.fetch(make_psj())
        assert rdi.breaker.state == CircuitBreaker.CLOSED
        assert server.metrics.get(REMOTE_BREAKER_STATE_CHANGES) == 0


class TestDeterminism:
    def workload(self, seed):
        server = make_server(
            faults=FaultPolicy(
                seed=seed,
                transient_rate=0.3,
                stall_rate=0.1,
                stall_seconds=0.2,
                disconnect_rate=0.1,
            )
        )
        rdi = RemoteInterface(
            server, retry=RetryPolicy(max_retries=2, timeout_seconds=5.0, seed=seed)
        )
        psj = make_psj()
        outcomes = []
        for _ in range(25):
            try:
                outcomes.append(len(rdi.fetch(psj)))
            except RemoteDBMSError as error:
                outcomes.append(type(error).__name__)
        return outcomes, server.metrics.snapshot(), server.clock.now

    def test_same_seed_identical_runs(self):
        assert self.workload(17) == self.workload(17)

    def test_different_seeds_differ(self):
        assert self.workload(17)[1] != self.workload(18)[1]


class TestZeroOverhead:
    """FaultPolicy.none() must be byte-identical to no faults at all."""

    def run(self, faults, retry):
        server = make_server(faults=faults)
        rdi = RemoteInterface(server, retry=retry)
        psj = make_psj("q(A) :- t(A, 3)")
        for _ in range(5):
            rdi.fetch(psj)
        rdi.fetch_base_relation("t")
        return server.metrics.snapshot(), server.clock.now

    def test_none_policy_equals_no_policy(self):
        assert self.run(FaultPolicy.none(), None) == self.run(None, None)

    def test_default_retry_policy_is_inert_on_healthy_link(self):
        default = self.run(None, RetryPolicy())
        fail_fast = self.run(None, RetryPolicy.none())
        assert default == fail_fast
        snapshot, _clock = default
        assert "remote.retries" not in snapshot
        assert "remote.timeouts" not in snapshot
        assert "remote.breaker_state_changes" not in snapshot
