"""Tests for PSJ normalization."""

import pytest

from repro.common.errors import TranslationError
from repro.relational.expressions import Col, Comparison, Lit
from repro.caql.parser import parse_query
from repro.caql.psj import ConstProj, column, parse_column, psj_from_literals


def normalize(text):
    query = parse_query(text)
    return psj_from_literals(
        query.name,
        query.relation_literals(),
        query.comparison_literals(),
        query.answers,
    )


class TestColumns:
    def test_column_roundtrip(self):
        assert parse_column(column("t3", 2)) == ("t3", 2)

    def test_parse_column_rejects_garbage(self):
        with pytest.raises(TranslationError):
            parse_column("c3.t1")


class TestNormalization:
    def test_occurrences_in_body_order(self):
        psj = normalize("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")
        assert psj.predicates() == ["b2", "b3"]
        assert [o.tag for o in psj.occurrences] == ["t0", "t1"]

    def test_constant_argument_becomes_condition(self):
        psj = normalize("d1(Y) :- b1(c1, Y)")
        assert Comparison(Col("t0.c0"), "=", Lit("c1")) in psj.conditions

    def test_shared_variable_becomes_join_condition(self):
        psj = normalize("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")
        joins = [c for c in psj.conditions if c.is_col_col()]
        assert len(joins) == 1
        assert joins[0].columns() == {"t0.c1", "t1.c0"}

    def test_projection_uses_representatives(self):
        psj = normalize("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")
        assert psj.projection == ("t0.c0", "t1.c2")

    def test_constant_answer_pinned(self):
        psj = normalize("d2(X, c6) :- b2(X, Z), b3(Z, c2, c6)")
        assert psj.projection[1] == ConstProj("c6")

    def test_repeated_variable_in_one_literal(self):
        psj = normalize("q(X) :- p(X, X)")
        joins = [c for c in psj.conditions if c.is_col_col()]
        assert len(joins) == 1
        assert joins[0].columns() == {"t0.c0", "t0.c1"}

    def test_comparison_literal_becomes_condition(self):
        psj = normalize("q(X) :- p(X, A), A >= 18")
        assert any(c.op == ">=" for c in psj.conditions)

    def test_comparison_operator_mapping(self):
        psj = normalize("q(X) :- p(X, A), A =< 9, A \\= 5")
        ops = {c.op for c in psj.conditions}
        assert "<=" in ops
        assert "!=" in ops

    def test_var_var_comparison(self):
        psj = normalize("q(X, Y) :- p(X, Y), X < Y")
        assert any(c.op == "<" and c.is_col_col() for c in psj.conditions)

    def test_const_const_comparison_true_dropped(self):
        psj = normalize("q(X) :- p(X), 1 < 2")
        assert not psj.unsatisfiable
        assert all(not (c.op == "<") for c in psj.conditions)

    def test_const_const_comparison_false_marks_unsat(self):
        psj = normalize("q(X) :- p(X), 2 < 1")
        assert psj.unsatisfiable

    def test_unbound_comparison_variable_rejected(self):
        with pytest.raises(TranslationError):
            normalize("q(X) :- p(X), A > 3")

    def test_unbound_answer_variable_rejected(self):
        query = parse_query("q(X) :- p(X)")
        with pytest.raises(TranslationError):
            psj_from_literals("q", [], list(query.literals)[:0], query.answers)

    def test_var_columns_recorded(self):
        psj = normalize("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")
        assert psj.columns_of_var("Z") == ("t0.c1", "t1.c0")
        assert psj.columns_of_var("Nope") == ()


class TestAccessors:
    def test_column_conditions(self):
        psj = normalize("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")
        t1_conditions = psj.column_conditions("t1")
        assert len(t1_conditions) == 1
        assert t1_conditions[0].columns() == {"t1.c1"}

    def test_all_columns(self):
        psj = normalize("d1(Y) :- b1(c1, Y)")
        assert psj.all_columns() == ["t0.c0", "t0.c1"]

    def test_occurrence_lookup(self):
        psj = normalize("d1(Y) :- b1(c1, Y)")
        assert psj.occurrence("t0").pred == "b1"
        with pytest.raises(TranslationError):
            psj.occurrence("t9")

    def test_str_mentions_parts(self):
        text = str(normalize("d1(Y) :- b1(c1, Y)"))
        assert "b1" in text and "project" in text


class TestCanonicalKey:
    def test_identical_queries_same_key(self):
        a = normalize("d(X) :- p(X, c1)")
        b = normalize("d(X) :- p(X, c1)")
        assert a.canonical_key() == b.canonical_key()

    def test_variable_names_do_not_matter(self):
        a = normalize("d(X) :- p(X, c1)")
        b = normalize("d(W) :- p(W, c1)")
        assert a.canonical_key() == b.canonical_key()

    def test_different_constants_differ(self):
        a = normalize("d(X) :- p(X, c1)")
        b = normalize("d(X) :- p(X, c2)")
        assert a.canonical_key() != b.canonical_key()

    def test_different_predicates_differ(self):
        a = normalize("d(X) :- p(X, c1)")
        b = normalize("d(X) :- q(X, c1)")
        assert a.canonical_key() != b.canonical_key()

    def test_projection_matters(self):
        a = normalize("d(X) :- p(X, Y)")
        b = normalize("d(Y) :- p(X, Y)")
        assert a.canonical_key() != b.canonical_key()
