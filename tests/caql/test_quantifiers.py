"""Tests for the CAQL quantifiers (EXISTS, ANY, THE, ALL)."""

import pytest

from repro.common.errors import EvaluationError, TranslationError
from repro.relational.relation import Relation
from repro.caql.ast import QuantifiedQuery
from repro.caql.eval import evaluate_conjunctive, evaluate_quantified, result_schema
from repro.caql.parser import parse_query

DB = {
    "emp": Relation(
        result_schema("emp", 2),
        [("ann", "hw"), ("bob", "sw"), ("cat", "sw")],
    ),
    "cleared": Relation(result_schema("cleared", 1), [("ann",), ("bob",), ("cat",)]),
}


def evaluate(quantifier, base_text, within_text=None):
    base = parse_query(base_text)
    within = parse_query(within_text) if within_text else None
    query = QuantifiedQuery(quantifier, base, within)
    base_result = evaluate_conjunctive(base, DB.__getitem__)
    within_result = (
        evaluate_conjunctive(within, DB.__getitem__) if within else None
    )
    return evaluate_quantified(query, base_result, within_result)


class TestValidation:
    def test_unknown_quantifier(self):
        with pytest.raises(TranslationError):
            QuantifiedQuery("some", parse_query("q(X) :- emp(X, sw)"))

    def test_all_needs_within(self):
        with pytest.raises(TranslationError):
            QuantifiedQuery("all", parse_query("q(X) :- emp(X, sw)"))

    def test_all_arity_checked(self):
        with pytest.raises(TranslationError):
            QuantifiedQuery(
                "all",
                parse_query("q(X) :- emp(X, sw)"),
                parse_query("w(X, Y) :- emp(X, Y)"),
            )

    def test_exists_rejects_within(self):
        with pytest.raises(TranslationError):
            QuantifiedQuery(
                "exists",
                parse_query("q(X) :- emp(X, sw)"),
                parse_query("w(X) :- cleared(X)"),
            )

    def test_str_forms(self):
        q = QuantifiedQuery("exists", parse_query("q(X) :- emp(X, sw)"))
        assert str(q) == "EXISTS[q]"
        a = QuantifiedQuery(
            "all",
            parse_query("q(X) :- emp(X, sw)"),
            parse_query("w(X) :- cleared(X)"),
        )
        assert "⊆" in str(a)


class TestEvaluation:
    def test_exists_true(self):
        assert evaluate("exists", "q(X) :- emp(X, sw)").rows == [(True,)]

    def test_exists_false(self):
        assert evaluate("exists", "q(X) :- emp(X, legal)").rows == []

    def test_any_returns_single_row(self):
        result = evaluate("any", "q(X) :- emp(X, sw)")
        assert len(result) == 1

    def test_any_of_empty(self):
        assert evaluate("any", "q(X) :- emp(X, legal)").rows == []

    def test_the_unique(self):
        result = evaluate("the", "q(X) :- emp(X, hw)")
        assert result.rows == [("ann",)]

    def test_the_ambiguous_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("the", "q(X) :- emp(X, sw)")

    def test_the_empty_raises(self):
        with pytest.raises(EvaluationError):
            evaluate("the", "q(X) :- emp(X, legal)")

    def test_all_holds(self):
        result = evaluate("all", "q(X) :- emp(X, sw)", "w(X) :- cleared(X)")
        assert result.rows == [(True,)]

    def test_all_fails(self):
        small = {
            "emp": DB["emp"],
            "cleared": Relation(result_schema("cleared", 1), [("ann",)]),
        }
        base = parse_query("q(X) :- emp(X, sw)")
        within = parse_query("w(X) :- cleared(X)")
        query = QuantifiedQuery("all", base, within)
        result = evaluate_quantified(
            query,
            evaluate_conjunctive(base, small.__getitem__),
            evaluate_conjunctive(within, small.__getitem__),
        )
        assert result.rows == []

    def test_all_of_empty_base_vacuously_true(self):
        result = evaluate("all", "q(X) :- emp(X, legal)", "w(X) :- cleared(X)")
        assert result.rows == [(True,)]


class TestThroughBridges:
    @pytest.fixture
    def cms(self):
        from repro.core.cms import CacheManagementSystem
        from repro.remote.server import RemoteDBMS
        from repro.relational.relation import relation_from_columns

        server = RemoteDBMS()
        server.load_table(
            relation_from_columns("emp", name=["ann", "bob", "cat"], dept=["hw", "sw", "sw"])
        )
        server.load_table(relation_from_columns("cleared", person=["ann", "bob", "cat"]))
        system = CacheManagementSystem(server)
        system.begin_session()
        return system

    def test_exists_via_cms(self, cms):
        query = QuantifiedQuery("exists", parse_query("q(X) :- emp(X, sw)"))
        assert cms.query(query).fetch_all() == [(True,)]

    def test_all_via_cms(self, cms):
        query = QuantifiedQuery(
            "all",
            parse_query("q(X) :- emp(X, sw)"),
            parse_query("w(X) :- cleared(X)"),
        )
        assert cms.query(query).fetch_all() == [(True,)]

    def test_quantifier_base_is_cached(self, cms):
        query = QuantifiedQuery("exists", parse_query("q(X) :- emp(X, sw)"))
        cms.query(query)
        before = cms.metrics.get("remote.requests")
        cms.query(query)
        assert cms.metrics.get("remote.requests") == before

    def test_via_baseline(self):
        from repro.baselines.loose import LooseCoupling
        from repro.remote.server import RemoteDBMS
        from repro.relational.relation import relation_from_columns

        server = RemoteDBMS()
        server.load_table(relation_from_columns("emp", name=["ann"], dept=["hw"]))
        bridge = LooseCoupling(server)
        query = QuantifiedQuery("the", parse_query("q(X) :- emp(X, hw)"))
        assert bridge.query(query).fetch_all() == [("ann",)]
