"""Property: lazy and eager PSJ evaluation always agree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caql.eval import evaluate_psj, lazy_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.relational.relation import Relation

R_ROWS = [(x, y) for x in range(5) for y in range(5) if (x + y) % 3]
S_ROWS = [(y, z, y * z % 4) for y in range(5) for z in range(3)]
DB = {
    "r": Relation(result_schema("r", 2), R_ROWS),
    "s": Relation(result_schema("s", 3), S_ROWS),
}

TEMPLATES = [
    "q(X, Y) :- r(X, Y)",
    "q(Y) :- r({c}, Y)",
    "q(X, Y) :- r(X, Y), X < {c}",
    "q(X, Z) :- r(X, Y), s(Y, Z, E)",
    "q(X, E) :- r(X, Y), s(Y, {z}, E)",
    "q(X) :- r(X, X)",
    "q(X, Y2) :- r(X, Y), r(Y, Y2)",
    "q({c}, Y) :- r({c}, Y)",
    "q(X, Y) :- r(X, Y), X \\= Y, Y >= {z}",
]

queries = st.builds(
    lambda template, c, z: psj_of(parse_query(template.format(c=c, z=z))),
    st.sampled_from(TEMPLATES),
    st.integers(0, 4),
    st.integers(0, 2),
)


@settings(max_examples=80, deadline=None)
@given(queries)
def test_lazy_equals_eager(psj):
    eager = evaluate_psj(psj, DB.__getitem__)
    lazy = lazy_psj(psj, DB.__getitem__)
    assert lazy.to_extension() == eager


@settings(max_examples=40, deadline=None)
@given(queries, st.integers(1, 10))
def test_lazy_prefix_is_a_prefix_of_the_result(psj, take):
    eager = evaluate_psj(psj, DB.__getitem__)
    lazy = lazy_psj(psj, DB.__getitem__)
    prefix = lazy.take(take)
    assert len(prefix) == min(take, len(eager))
    for row in prefix:
        assert row in eager


@settings(max_examples=40, deadline=None)
@given(queries)
def test_lazy_restart_reproduces(psj):
    lazy = lazy_psj(psj, DB.__getitem__)
    first = list(lazy)
    lazy.restart()
    assert list(lazy) == first
