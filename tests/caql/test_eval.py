"""Tests for PSJ and conjunctive-query evaluation (eager and lazy)."""

import pytest

from repro.common.errors import EvaluationError
from repro.logic.builtins import BuiltinRegistry
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.caql.ast import AggregateQuery, SetOfQuery
from repro.caql.eval import (
    evaluate_aggregate,
    evaluate_conjunctive,
    evaluate_psj,
    evaluate_setof,
    lazy_psj,
    psj_of,
)
from repro.caql.parser import parse_query
from repro.caql.psj import psj_from_literals


def normalize(text):
    query = parse_query(text)
    return psj_from_literals(
        query.name,
        query.relation_literals(),
        query.comparison_literals(),
        query.answers,
    )


@pytest.fixture
def db():
    relations = {
        "parent": Relation(
            Schema("parent", ("a0", "a1")),
            [("tom", "bob"), ("tom", "liz"), ("bob", "ann"), ("bob", "pat")],
        ),
        "age": Relation(
            Schema("age", ("a0", "a1")),
            [("tom", 60), ("bob", 35), ("liz", 33), ("ann", 8), ("pat", 10)],
        ),
    }
    return relations.__getitem__


class TestEagerPSJ:
    def test_single_relation_scan(self, db):
        result = evaluate_psj(normalize("q(X, Y) :- parent(X, Y)"), db)
        assert len(result) == 4

    def test_selection_by_constant(self, db):
        result = evaluate_psj(normalize("q(Y) :- parent(tom, Y)"), db)
        assert set(result.rows) == {("bob",), ("liz",)}

    def test_join_via_shared_variable(self, db):
        result = evaluate_psj(normalize("q(X, Z) :- parent(X, Y), parent(Y, Z)"), db)
        assert set(result.rows) == {("tom", "ann"), ("tom", "pat")}

    def test_join_with_comparison(self, db):
        result = evaluate_psj(
            normalize("q(X, A) :- parent(X, Y), age(Y, A), A < 20"), db
        )
        assert set(result.rows) == {("bob", 8), ("bob", 10)}

    def test_constant_answer_column(self, db):
        result = evaluate_psj(normalize("q(Y, tom) :- parent(tom, Y)"), db)
        assert set(result.rows) == {("bob", "tom"), ("liz", "tom")}

    def test_unsatisfiable_query_empty(self, db):
        result = evaluate_psj(normalize("q(X) :- parent(X, Y), 1 > 2"), db)
        assert len(result) == 0

    def test_result_schema_positional(self, db):
        result = evaluate_psj(normalize("q(X, Y) :- parent(X, Y)"), db)
        assert result.schema.attributes == ("a0", "a1")

    def test_arity_mismatch_detected(self, db):
        with pytest.raises(EvaluationError):
            evaluate_psj(normalize("q(X) :- parent(X, Y, Z)"), db)

    def test_repeated_variable_selection(self, db):
        loops = Relation(Schema("e", ("a0", "a1")), [(1, 1), (1, 2), (3, 3)])
        result = evaluate_psj(normalize("q(X) :- e(X, X)"), {"e": loops}.__getitem__)
        assert set(result.rows) == {(1,), (3,)}

    def test_self_join(self, db):
        result = evaluate_psj(
            normalize("siblings(A, B) :- parent(P, A), parent(P, B), A \\= B"), db
        )
        assert ("bob", "liz") in result
        assert ("ann", "pat") in result
        assert ("bob", "bob") not in result

    def test_three_way_join(self, db):
        result = evaluate_psj(
            normalize(
                "q(X, Z, A) :- parent(X, Y), parent(Y, Z), age(Z, A)"
            ),
            db,
        )
        assert set(result.rows) == {("tom", "ann", 8), ("tom", "pat", 10)}


class TestLazyPSJ:
    def test_same_answers_as_eager(self, db):
        psj = normalize("q(X, Z) :- parent(X, Y), parent(Y, Z)")
        eager = evaluate_psj(psj, db)
        lazy = lazy_psj(psj, db)
        assert set(lazy.to_extension().rows) == set(eager.rows)

    def test_nothing_computed_before_pull(self):
        def exploding(_name):
            raise AssertionError("lookup must not run before first pull")

        gen = lazy_psj(normalize("q(X, Y) :- parent(X, Y)"), exploding)
        assert gen.produced_count == 0

    def test_take_limits_production(self, db):
        gen = lazy_psj(normalize("q(X, Y) :- parent(X, Y)"), db)
        first = gen.take(1)
        assert len(first) == 1
        assert gen.produced_count == 1

    def test_unsatisfiable_lazy_empty(self, db):
        gen = lazy_psj(normalize("q(X) :- parent(X, Y), 1 > 2"), db)
        assert list(gen) == []

    def test_selection_pushed_into_stream(self, db):
        gen = lazy_psj(normalize("q(Y) :- parent(tom, Y)"), db)
        assert set(gen.to_extension().rows) == {("bob",), ("liz",)}


class TestConjunctiveWithEvaluable:
    def test_psj_of_extends_projection_for_evaluable_vars(self):
        registry = BuiltinRegistry()
        query = parse_query("q(X, S) :- age(X, A), plus(A, 1, S)")
        psj = psj_of(query, registry)
        # S is not PSJ-computable; A must be carried for the builtin.
        assert psj.arity >= 2

    def test_evaluable_literal_computed(self, db):
        registry = BuiltinRegistry()
        query = parse_query("q(X, S) :- age(X, A), plus(A, 1, S)")
        result = evaluate_conjunctive(query, db, registry)
        assert ("tom", 61) in result
        assert len(result) == 5

    def test_plain_conjunctive_no_builtins(self, db):
        query = parse_query("q(Y) :- parent(tom, Y)")
        result = evaluate_conjunctive(query, db)
        assert set(result.rows) == {("bob",), ("liz",)}

    def test_evaluable_as_filter(self, db):
        registry = BuiltinRegistry()
        query = parse_query("q(X) :- age(X, A), abs(A, A), A > 30")
        result = evaluate_conjunctive(query, db, registry)
        assert set(result.rows) == {("tom",), ("bob",), ("liz",)}


class TestSecondOrder:
    def test_aggregate_count_children(self, db):
        base = parse_query("q(X, Y) :- parent(X, Y)")
        base_result = evaluate_conjunctive(base, db)
        agg = AggregateQuery(base, group_by=(0,), aggregations=(("count", 1, "n"),))
        result = evaluate_aggregate(agg, base_result)
        assert set(result.rows) == {("tom", 2), ("bob", 2)}

    def test_aggregate_global_max(self, db):
        base = parse_query("q(X, A) :- age(X, A)")
        base_result = evaluate_conjunctive(base, db)
        agg = AggregateQuery(base, group_by=(), aggregations=(("max", 1, "oldest"),))
        result = evaluate_aggregate(agg, base_result)
        assert result.rows == [(60,)]

    def test_setof_identity(self, db):
        base = parse_query("q(X) :- parent(X, Y)")
        base_result = evaluate_conjunctive(base, db)
        result = evaluate_setof(SetOfQuery(base), base_result)
        assert result is base_result

    def test_bagof_adds_count_column(self, db):
        base = parse_query("q(X) :- parent(X, Y)")
        base_result = evaluate_conjunctive(base, db)
        result = evaluate_setof(SetOfQuery(base, with_counts=True), base_result)
        assert result.schema.attributes[-1] == "count"
        assert all(row[-1] == 1 for row in result)
