"""Tests for the CAQL AST."""

import pytest

from repro.common.errors import TranslationError
from repro.logic.terms import Atom, Const, Substitution, Var
from repro.caql.ast import AggregateQuery, ConjunctiveQuery, SetOfQuery
from repro.caql.parser import parse_query

X, Y, Z = Var("X"), Var("Y"), Var("Z")


def d2():
    return parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)")


class TestConjunctiveQuery:
    def test_parse_shape(self):
        query = d2()
        assert query.name == "d2"
        assert query.arity == 2
        assert len(query.literals) == 2

    def test_answer_variable_must_occur_in_body(self):
        with pytest.raises(TranslationError):
            ConjunctiveQuery("q", (X,), (Atom("p", (Y,)),))

    def test_constant_answers_allowed(self):
        query = ConjunctiveQuery("q", (Const(1), X), (Atom("p", (X,)),))
        assert query.answer_variables() == [X]

    def test_body_variables(self):
        assert d2().body_variables() == {X, Y, Z}

    def test_relation_vs_comparison_literals(self):
        query = parse_query("q(X) :- p(X, A), A >= 18")
        assert [l.pred for l in query.relation_literals()] == ["p"]
        assert [l.pred for l in query.comparison_literals()] == [">="]

    def test_instantiate(self):
        query = d2()
        bound = query.instantiate(Substitution({Y: Const("c6")}))
        assert bound.answers == (X, Const("c6"))
        assert bound.literals[1].args[2] == Const("c6")

    def test_bind_answers_by_position(self):
        bound = d2().bind_answers({1: "c6"})
        assert bound.answers[1] == Const("c6")
        assert bound.answers[0] == X

    def test_bind_answers_ignores_constant_positions(self):
        query = ConjunctiveQuery("q", (Const(1), X), (Atom("p", (X,)),))
        bound = query.bind_answers({0: 99, 1: "v"})
        assert bound.answers == (Const(1), Const("v"))

    def test_str_roundtrip_shape(self):
        text = str(d2())
        assert text.startswith("d2(X, Y) :- ")
        assert "b3(Z, c2, Y)" in text


class TestAggregateQuery:
    def test_valid(self):
        agg = AggregateQuery(d2(), group_by=(0,), aggregations=(("count", 1, "n"),))
        assert "count" in str(agg)

    def test_group_index_checked(self):
        with pytest.raises(TranslationError):
            AggregateQuery(d2(), group_by=(5,), aggregations=(("count", 0, "n"),))

    def test_agg_index_checked(self):
        with pytest.raises(TranslationError):
            AggregateQuery(d2(), group_by=(), aggregations=(("sum", 9, "s"),))

    def test_needs_aggregations(self):
        with pytest.raises(TranslationError):
            AggregateQuery(d2(), group_by=(0,), aggregations=())


class TestSetOfQuery:
    def test_setof_str(self):
        assert str(SetOfQuery(d2())) == "SETOF[d2]"

    def test_bagof_str(self):
        assert str(SetOfQuery(d2(), with_counts=True)) == "BAGOF[d2]"
