"""Tests for CAQL → remote DML translation."""

import pytest

from repro.common.errors import TranslationError
from repro.relational.relation import relation_from_columns
from repro.relational.schema import Schema
from repro.remote.server import RemoteDBMS
from repro.remote.sql import render_sql
from repro.caql.parser import parse_query
from repro.caql.psj import psj_from_literals
from repro.caql.translate import sql_from_psj

SCHEMAS = {
    "parent": Schema("parent", ("par", "child")),
    "age": Schema("age", ("person", "years")),
}


def normalize(text):
    query = parse_query(text)
    return psj_from_literals(
        query.name,
        query.relation_literals(),
        query.comparison_literals(),
        query.answers,
    )


def translate(text):
    return sql_from_psj(normalize(text), SCHEMAS.__getitem__)


class TestTranslation:
    def test_single_table(self):
        translation = translate("q(X, Y) :- parent(X, Y)")
        sql = render_sql(translation.query)
        assert sql == "SELECT DISTINCT t0.par, t0.child FROM parent AS t0"

    def test_constant_condition(self):
        translation = translate("q(Y) :- parent(tom, Y)")
        sql = render_sql(translation.query)
        assert "t0.par = 'tom'" in sql

    def test_join_condition(self):
        translation = translate("q(X, A) :- parent(X, Y), age(Y, A)")
        sql = render_sql(translation.query)
        assert "FROM parent AS t0, age AS t1" in sql
        assert "t0.child = t1.person" in sql

    def test_comparison_condition(self):
        translation = translate("q(X) :- age(X, A), A >= 18")
        assert "t0.years >= 18" in render_sql(translation.query)

    def test_projection_maps_attribute_names(self):
        translation = translate("q(A, X) :- age(X, A)")
        cols = [f"{c.alias}.{c.attr}" for c in translation.query.select]
        assert cols == ["t0.years", "t0.person"]

    def test_duplicate_projection_columns_shipped_once(self):
        translation = translate("q(X, X) :- parent(X, Y)")
        assert len(translation.query.select) == 1
        assert translation.output == (("col", 0), ("col", 0))

    def test_constant_answer_not_shipped(self):
        translation = translate("q(Y, tom) :- parent(tom, Y)")
        assert len(translation.query.select) == 1
        assert translation.output[1] == ("const", "tom")

    def test_boolean_query_ships_witness(self):
        translation = translate("q(tom, bob) :- parent(tom, bob)")
        # Fully instantiated: both outputs constant, one witness column.
        assert len(translation.query.select) == 1
        assert all(kind == "const" for kind, _ in translation.output)

    def test_no_occurrences_rejected(self):
        empty = psj_from_literals("q", [], [], ())
        with pytest.raises(TranslationError):
            sql_from_psj(empty, SCHEMAS.__getitem__)

    def test_unsatisfiable_rejected(self):
        psj = normalize("q(X) :- parent(X, Y), 2 < 1")
        with pytest.raises(TranslationError):
            sql_from_psj(psj, SCHEMAS.__getitem__)

    def test_arity_mismatch_rejected(self):
        psj = normalize("q(X) :- parent(X, Y, Z)")
        with pytest.raises(TranslationError):
            sql_from_psj(psj, SCHEMAS.__getitem__)


class TestRebuild:
    def test_rebuild_rows_with_constants(self):
        translation = translate("q(Y, tom) :- parent(tom, Y)")
        relation = translation.rebuild([("bob",), ("liz",)])
        assert set(relation.rows) == {("bob", "tom"), ("liz", "tom")}

    def test_rebuild_duplicate_columns(self):
        translation = translate("q(X, X) :- parent(X, Y)")
        relation = translation.rebuild([("tom",)])
        assert relation.rows == [("tom", "tom")]

    def test_rebuild_boolean_nonempty(self):
        translation = translate("q(tom, bob) :- parent(tom, bob)")
        relation = translation.rebuild([("tom",)])
        assert relation.rows == [("tom", "bob")]

    def test_rebuild_boolean_empty(self):
        translation = translate("q(tom, bob) :- parent(tom, bob)")
        assert len(translation.rebuild([])) == 0


class TestEndToEnd:
    """Translated queries executed by a real remote DBMS match local eval."""

    @pytest.fixture
    def server(self):
        dbms = RemoteDBMS()
        dbms.load_table(
            relation_from_columns(
                "parent",
                par=["tom", "tom", "bob", "bob"],
                child=["bob", "liz", "ann", "pat"],
            )
        )
        dbms.load_table(
            relation_from_columns(
                "age",
                person=["tom", "bob", "liz", "ann", "pat"],
                years=[60, 35, 33, 8, 10],
            )
        )
        return dbms

    def test_selection_roundtrip(self, server):
        translation = translate("q(Y) :- parent(tom, Y)")
        shipped = server.execute(translation.query)
        result = translation.rebuild(shipped.rows)
        assert set(result.rows) == {("bob",), ("liz",)}

    def test_join_roundtrip(self, server):
        translation = translate("q(X, A) :- parent(X, Y), age(Y, A), A < 20")
        shipped = server.execute(translation.query)
        result = translation.rebuild(shipped.rows)
        assert set(result.rows) == {("bob", 8), ("bob", 10)}

    def test_instantiated_roundtrip(self, server):
        translation = translate("q(Y, tom) :- parent(tom, Y)")
        shipped = server.execute(translation.query)
        result = translation.rebuild(shipped.rows)
        assert set(result.rows) == {("bob", "tom"), ("liz", "tom")}
