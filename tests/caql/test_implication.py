"""Tests for the condition implication engine — soundness is critical."""

from hypothesis import given
from hypothesis import strategies as st

from repro.relational.expressions import Col, Comparison, Lit
from repro.caql.implication import ConditionSet


def c(left, op, right):
    """Build a condition; strings shaped like ``t0.c1`` are columns."""

    def make(x):
        if isinstance(x, str) and "." in x and x.startswith("t"):
            return Col(x)
        return Lit(x)

    return Comparison(make(left), op, make(right))


A, B, C = "t0.c0", "t0.c1", "t1.c0"


class TestColLit:
    def test_equality_implies_itself(self):
        assert ConditionSet([c(A, "=", 5)]).implies(c(A, "=", 5))

    def test_equality_implies_range(self):
        cs = ConditionSet([c(A, "=", 5)])
        assert cs.implies(c(A, "<", 10))
        assert cs.implies(c(A, ">=", 5))
        assert cs.implies(c(A, "!=", 7))

    def test_equality_does_not_imply_wrong_value(self):
        cs = ConditionSet([c(A, "=", 5)])
        assert not cs.implies(c(A, "=", 6))
        assert not cs.implies(c(A, "<", 5))

    def test_range_implies_wider_range(self):
        cs = ConditionSet([c(A, "<", 5)])
        assert cs.implies(c(A, "<", 10))
        assert cs.implies(c(A, "<=", 5))
        assert cs.implies(c(A, "!=", 9))

    def test_range_does_not_imply_narrower(self):
        cs = ConditionSet([c(A, "<", 10)])
        assert not cs.implies(c(A, "<", 5))
        assert not cs.implies(c(A, "=", 3))

    def test_strictness_boundary(self):
        assert ConditionSet([c(A, "<=", 5)]).implies(c(A, "<=", 5))
        assert not ConditionSet([c(A, "<=", 5)]).implies(c(A, "<", 5))
        assert ConditionSet([c(A, "<", 5)]).implies(c(A, "<=", 5))

    def test_lower_bounds(self):
        cs = ConditionSet([c(A, ">=", 3)])
        assert cs.implies(c(A, ">", 2))
        assert cs.implies(c(A, ">=", 3))
        assert not cs.implies(c(A, ">", 3))

    def test_not_equal_direct(self):
        assert ConditionSet([c(A, "!=", 4)]).implies(c(A, "!=", 4))

    def test_not_equal_from_range(self):
        assert ConditionSet([c(A, "<", 3)]).implies(c(A, "!=", 7))
        assert not ConditionSet([c(A, "<", 3)]).implies(c(A, "!=", 1))

    def test_closed_interval_pins(self):
        cs = ConditionSet([c(A, ">=", 5), c(A, "<=", 5)])
        assert cs.implies(c(A, "=", 5))

    def test_nothing_from_empty_set(self):
        cs = ConditionSet([])
        assert not cs.implies(c(A, "<", 5))
        assert not cs.implies(c(A, "=", 5))

    def test_string_equality(self):
        cs = ConditionSet([c(A, "=", "nj")])
        assert cs.implies(c(A, "=", "nj"))
        assert cs.implies(c(A, "!=", "ca"))


class TestEquivalenceClasses:
    def test_equality_chain(self):
        cs = ConditionSet([c(A, "=", B), c(B, "=", C)])
        assert cs.implies(c(A, "=", C))

    def test_pinned_value_propagates_through_class(self):
        cs = ConditionSet([c(A, "=", B), c(B, "=", 7)])
        assert cs.implies(c(A, "=", 7))
        assert cs.implies(c(A, "<", 10))

    def test_range_propagates_through_class(self):
        cs = ConditionSet([c(A, "=", B), c(B, "<", 5)])
        assert cs.implies(c(A, "<", 10))

    def test_unrelated_columns_not_equated(self):
        cs = ConditionSet([c(A, "=", 5), c(B, "=", 5)])
        assert cs.implies(c(A, "=", B))  # both pinned to the same value
        cs2 = ConditionSet([c(A, "=", 5), c(B, "=", 6)])
        assert not cs2.implies(c(A, "=", B))


class TestColCol:
    def test_syntactic_presence(self):
        cs = ConditionSet([c(A, "<", B)])
        assert cs.implies(c(A, "<", B))

    def test_presence_through_classes(self):
        cs = ConditionSet([c(A, "<", B), c(B, "=", C)])
        assert cs.implies(c(A, "<", C))

    def test_derived_from_disjoint_ranges(self):
        cs = ConditionSet([c(A, "<", 3), c(B, ">", 7)])
        assert cs.implies(c(A, "<", B))
        assert cs.implies(c(A, "!=", B))

    def test_derived_from_pins(self):
        cs = ConditionSet([c(A, "=", 2), c(B, "=", 9)])
        assert cs.implies(c(A, "<", B))
        assert not cs.implies(c(A, ">", B))

    def test_touching_ranges_need_strictness(self):
        cs = ConditionSet([c(A, "<=", 5), c(B, ">=", 5)])
        assert cs.implies(c(A, "<=", B))
        assert not cs.implies(c(A, "<", B))
        strict = ConditionSet([c(A, "<", 5), c(B, ">=", 5)])
        assert strict.implies(c(A, "<", B))

    def test_flipped_operators(self):
        cs = ConditionSet([c(A, "<", 3), c(B, ">", 7)])
        assert cs.implies(c(B, ">", A))


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert ConditionSet([]).is_satisfiable()

    def test_conflicting_pins(self):
        assert not ConditionSet([c(A, "=", 1), c(A, "=", 2)]).is_satisfiable()

    def test_conflicting_pins_through_class(self):
        cs = ConditionSet([c(A, "=", 1), c(B, "=", 2), c(A, "=", B)])
        assert not cs.is_satisfiable()

    def test_empty_range(self):
        assert not ConditionSet([c(A, ">", 5), c(A, "<", 3)]).is_satisfiable()

    def test_point_range_with_strict_bound(self):
        assert not ConditionSet([c(A, ">=", 5), c(A, "<", 5)]).is_satisfiable()

    def test_pin_outside_range(self):
        assert not ConditionSet([c(A, "=", 9), c(A, "<", 3)]).is_satisfiable()

    def test_pin_excluded(self):
        assert not ConditionSet([c(A, "=", 4), c(A, "!=", 4)]).is_satisfiable()

    def test_unsatisfiable_implies_everything(self):
        cs = ConditionSet([c(A, "=", 1), c(A, "=", 2)])
        assert cs.implies(c(B, "=", 99))


class TestTypeSafety:
    def test_mixed_types_never_imply(self):
        cs = ConditionSet([c(A, "<", 5)])
        assert not cs.implies(c(A, "<", "zebra"))

    def test_implies_all(self):
        cs = ConditionSet([c(A, "=", 5)])
        assert cs.implies_all([c(A, "<", 10), c(A, ">", 0)])
        assert not cs.implies_all([c(A, "<", 10), c(A, ">", 10)])


# -- property-based soundness check ------------------------------------------------

columns = st.sampled_from([A, B, C])
operators = st.sampled_from(["=", "!=", "<", ">", "<=", ">="])
values = st.integers(0, 6)
conditions = st.builds(
    lambda col, op, val: c(col, op, val), columns, operators, values
)
col_col = st.builds(
    lambda l, op, r: c(l, op, r),
    columns,
    st.sampled_from(["=", "<", "<="]),
    columns,
)
condition_sets = st.lists(st.one_of(conditions, col_col), min_size=0, max_size=5)


def _evaluate(condition, assignment):
    from repro.relational.expressions import holds

    def value(operand):
        return assignment[operand.name] if isinstance(operand, Col) else operand.value

    return holds(value(condition.left), condition.op, value(condition.right))


assignments = st.fixed_dictionaries({A: values, B: values, C: values})


@given(condition_sets, st.one_of(conditions, col_col), assignments)
def test_implication_is_sound(premises, conclusion, assignment):
    """If implies() says yes, every model of the premises satisfies the
    conclusion — checked against random integer assignments."""
    cs = ConditionSet(premises)
    if cs.implies(conclusion):
        if all(_evaluate(p, assignment) for p in premises):
            assert _evaluate(conclusion, assignment)


@given(condition_sets, assignments)
def test_unsatisfiability_is_sound(premises, assignment):
    """If is_satisfiable() is False, no assignment satisfies the premises."""
    cs = ConditionSet(premises)
    if not cs.is_satisfiable():
        assert not all(_evaluate(p, assignment) for p in premises)
