"""FederatedInterface: routing, scatter-gather, semijoin, batching.

Every answer is checked against the direct oracle
(:func:`repro.caql.eval.evaluate_psj` over the same base tables); the
communication-side assertions read the per-backend metrics scopes.
"""

import pytest

from repro.common.errors import UnknownRelationError
from repro.common.metrics import (
    REMOTE_BATCHED_REQUESTS,
    REMOTE_REQUESTS,
    REMOTE_SEMIJOIN_REQUESTS,
    REMOTE_TUPLES,
)
from repro.federation import FederatedInterface, NaiveFederation
from repro.caql.parser import parse_query

from tests.federation.conftest import (
    EMPTY,
    LOCAL,
    SPAN2,
    SPAN3,
    base_tables,
    make_federation,
    oracle,
    psj,
    trace_events,
)


def backend_requests(federation, name):
    scope = federation.metrics.scopes().get(name)
    return scope.get(REMOTE_REQUESTS) if scope is not None else 0.0


class TestRouting:
    def test_single_backend_query_routes_directly(self):
        federation = make_federation(with_tracer=True)
        result = federation.interface.fetch(psj(LOCAL))
        assert set(result.rows) == oracle(LOCAL)
        names = [e.name for e in trace_events(federation.tracer)]
        assert "rdi.route" in names
        assert "federation.scatter" not in names
        # Only the home backend was touched.
        assert backend_requests(federation, "beta") > 0
        assert backend_requests(federation, "alpha") == 0
        assert backend_requests(federation, "gamma") == 0

    def test_route_event_names_the_backend(self):
        federation = make_federation(with_tracer=True)
        federation.interface.fetch(psj(LOCAL))
        routes = [
            e for e in trace_events(federation.tracer) if e.name == "rdi.route"
        ]
        assert routes and all(
            e.attributes_dict()["backend"] == "beta" for e in routes
        )

    def test_fetch_base_relation_routes_home(self):
        federation = make_federation()
        result = federation.interface.fetch_base_relation("ship")
        assert set(result.rows) == set(base_tables()["ship"].rows)
        assert backend_requests(federation, "gamma") > 0
        assert backend_requests(federation, "alpha") == 0

    def test_unknown_table_raises(self):
        federation = make_federation()
        with pytest.raises(UnknownRelationError):
            federation.interface.fetch_base_relation("nope")
        with pytest.raises(UnknownRelationError):
            federation.interface.fetch(psj("qq(A) :- nope(A, B)"))


class TestScatterGather:
    @pytest.mark.parametrize("text", [SPAN2, SPAN3])
    def test_spanning_query_equals_oracle(self, text):
        federation = make_federation()
        result = federation.interface.fetch(psj(text))
        assert set(result.rows) == oracle(text)

    def test_every_backend_contributes(self):
        federation = make_federation(with_tracer=True)
        federation.interface.fetch(psj(SPAN3))
        events = trace_events(federation.tracer)
        scatter = [e for e in events if e.name == "federation.scatter"]
        gather = [e for e in events if e.name == "federation.gather"]
        assert len(scatter) == 1 and len(gather) == 1
        # Cheapest part first: the statistics-driven order.
        assert scatter[0].attributes_dict()["backends"] == [
            "beta", "alpha", "gamma",
        ]
        assert gather[0].attributes_dict()["tuples"] == len(oracle(SPAN3))

    def test_mixed_engines_equal_oracle(self):
        federation = make_federation(engines={"beta": "sqlite"})
        result = federation.interface.fetch(psj(SPAN3))
        assert set(result.rows) == oracle(SPAN3)

    def test_empty_part_short_circuits_later_backends(self):
        federation = make_federation()
        first = federation.interface.fetch(psj(EMPTY))
        assert set(first.rows) == oracle(EMPTY) == set()
        # Metadata is cached after the first scatter: a repeat costs the
        # empty part's backend one round trip and the other backend none.
        alpha_before = backend_requests(federation, "alpha")
        gamma_before = backend_requests(federation, "gamma")
        again = federation.interface.fetch(psj(EMPTY))
        assert not len(again)
        assert backend_requests(federation, "alpha") == alpha_before + 1
        assert backend_requests(federation, "gamma") == gamma_before

    def test_empty_binding_set_skips_the_round_trip(self):
        federation = make_federation(with_tracer=True)
        query = psj(SPAN2)
        ship_tag = next(o.tag for o in query.occurrences if o.pred == "ship")
        federation.interface.fetch(query)  # warm metadata caches
        gamma_before = backend_requests(federation, "gamma")
        result = federation.interface.fetch(
            query, bindings={f"{ship_tag}.c0": ()}
        )
        assert not len(result)
        assert backend_requests(federation, "gamma") == gamma_before
        names = [e.name for e in trace_events(federation.tracer)]
        assert "federation.short_circuit" in names


class TestSemijoin:
    def test_cross_backend_join_ships_bindings(self):
        federation = make_federation()
        result = federation.interface.fetch(psj(SPAN2))
        assert set(result.rows) == oracle(SPAN2)
        gamma = federation.metrics.scopes()["gamma"]
        assert gamma.get(REMOTE_SEMIJOIN_REQUESTS) == 1
        # The root ledger aggregates the per-backend shares.
        assert federation.metrics.get(REMOTE_SEMIJOIN_REQUESTS) == 1

    def test_semijoin_ships_fewer_tuples_than_unreduced(self):
        def shipped(semijoin):
            federation = make_federation()
            interface = (
                federation.interface
                if semijoin
                else FederatedInterface(
                    federation.catalog,
                    metrics=federation.metrics,
                    local_profile=federation.profile,
                    semijoin=False,
                )
            )
            result = interface.fetch(psj(SPAN2))
            assert set(result.rows) == oracle(SPAN2)
            return federation.metrics.get(REMOTE_TUPLES)

        assert shipped(semijoin=True) < shipped(semijoin=False)


class TestFetchMany:
    def test_batches_share_one_round_trip_per_backend(self):
        federation = make_federation()
        queries = [
            psj(LOCAL),
            psj("q5(P) :- part(P, 2)"),
            psj("q6(S) :- sup(S, 100)"),
        ]
        results = federation.interface.fetch_many(queries)
        assert set(results[0].rows) == oracle(LOCAL)
        assert set(results[1].rows) == {(11,)}
        assert set(results[2].rows) == {(1,), (4,)}
        # Both beta queries went out as one batch; alpha's single query
        # (and any spanning query) never batches.
        beta = federation.metrics.scopes()["beta"]
        assert beta.get(REMOTE_BATCHED_REQUESTS) == 2
        alpha = federation.metrics.scopes()["alpha"]
        assert alpha.get(REMOTE_BATCHED_REQUESTS) == 0

    def test_spanning_members_scatter_in_request_order(self):
        federation = make_federation()
        queries = [psj(SPAN2), psj(LOCAL)]
        results = federation.interface.fetch_many(queries)
        assert set(results[0].rows) == oracle(SPAN2)
        assert set(results[1].rows) == oracle(LOCAL)

    def test_empty_batch(self):
        federation = make_federation()
        assert federation.interface.fetch_many([]) == []


class TestNaiveBaseline:
    def test_rejects_semijoin_interface(self):
        federation = make_federation()
        with pytest.raises(ValueError):
            NaiveFederation(federation.interface)

    def test_naive_answers_equal_oracle(self):
        federation = make_federation()
        naive = federation.naive()
        for text in (SPAN3, SPAN2, LOCAL, EMPTY):
            rows = naive.query(parse_query(text)).fetch_all()
            assert set(rows) == oracle(text)

    def test_naive_ships_unreduced(self):
        federation = make_federation()
        naive = federation.naive()
        naive.query(parse_query(SPAN2)).fetch_all()
        assert federation.metrics.get(REMOTE_SEMIJOIN_REQUESTS) == 0
