"""Per-backend fault isolation: breakers, batches, probes, degradation.

The federation's resilience contract: each backend has its own retry
budget and circuit breaker; one dark backend never blocks the others, and
a spanning query over a dark backend degrades to the survivors instead of
failing outright.
"""

import pytest

from repro.common.errors import (
    CircuitOpenError,
    RemoteDBMSError,
    TransientRemoteError,
)
from repro.common.metrics import REMOTE_FAULTS_INJECTED, REMOTE_REQUESTS
from repro.remote.faults import CircuitBreaker, FaultPolicy, RetryPolicy
from repro.caql.parser import parse_query

from tests.federation.conftest import (
    LOCAL,
    SPAN2,
    SURVIVOR,
    make_federation,
    oracle,
    psj,
)

FAIL_FAST = RetryPolicy(max_retries=0, breaker_threshold=1, breaker_cooldown=2.0)


def dark(seed=0):
    return FaultPolicy(seed=seed, transient_rate=1.0)


class TestPerBackendBreakers:
    def test_one_dark_backend_does_not_block_the_others(self):
        federation = make_federation(
            retries={"beta": FAIL_FAST}, faults={"beta": dark()}
        )
        with pytest.raises(TransientRemoteError):
            federation.interface.fetch(psj(LOCAL))
        assert (
            federation.interface.breaker_of("beta").state == CircuitBreaker.OPEN
        )
        # beta now refuses locally; alpha and gamma still serve.
        with pytest.raises(CircuitOpenError):
            federation.interface.fetch(psj(LOCAL))
        result = federation.interface.fetch(psj(SPAN2))
        assert set(result.rows) == oracle(SPAN2)
        assert federation.interface.remote_available()

    def test_open_breaker_refuses_without_a_round_trip(self):
        federation = make_federation(
            retries={"beta": FAIL_FAST}, faults={"beta": dark()}
        )
        with pytest.raises(TransientRemoteError):
            federation.interface.fetch(psj(LOCAL))
        beta = federation.metrics.scopes()["beta"]
        requests = beta.get(REMOTE_REQUESTS)
        with pytest.raises(CircuitOpenError):
            federation.interface.fetch(psj(LOCAL))
        assert beta.get(REMOTE_REQUESTS) == requests


class TestBatchResilienceUnit:
    def test_failed_batch_is_one_unit_and_trips_the_breaker(self):
        """A batch that fails mid-stream refuses the remaining members as
        one resilience unit: one fault decision, no partial results, and
        the whole ``fetch_many`` raises."""
        federation = make_federation(
            retries={"beta": FAIL_FAST}, faults={"beta": dark()}
        )
        queries = [psj(LOCAL), psj("q5(P) :- part(P, 2)"), psj("q6(S) :- sup(S, 100)")]
        with pytest.raises(TransientRemoteError):
            federation.interface.fetch_many(queries)
        beta = federation.metrics.scopes()["beta"]
        # One injected fault killed the whole two-member batch — the
        # members were not retried or delivered individually.
        assert beta.get(REMOTE_FAULTS_INJECTED) == 1
        assert federation.interface.breaker_of("beta").state == CircuitBreaker.OPEN
        # The batch is one unit for the breaker too: the next beta fetch
        # is refused locally, while alpha's member was never poisoned.
        with pytest.raises(CircuitOpenError):
            federation.interface.fetch(psj(LOCAL))
        result = federation.interface.fetch(psj("q6(S) :- sup(S, 100)"))
        assert set(result.rows) == {(1,), (4,)}


class TestHalfOpenProbes:
    def test_probe_charged_to_the_probed_backends_track(self):
        """After cooldown the half-open probe's round trip lands on the
        *probed* backend's clock track and network ledger — not on any
        healthy peer's."""
        federation = make_federation(
            retries={"beta": FAIL_FAST}, faults={"beta": dark()}
        )
        interface = federation.interface
        with pytest.raises(TransientRemoteError):
            interface.fetch(psj(LOCAL))
        assert interface.breaker_of("beta").state == CircuitBreaker.OPEN
        federation.clock.advance(5.0)  # past the cooldown

        alpha_net = federation.backend("alpha").network.charged_seconds
        beta_net = federation.backend("beta").network.charged_seconds
        with federation.clock.parallel() as region:
            with pytest.raises(TransientRemoteError):
                interface.fetch(psj(LOCAL))  # the half-open probe fails
        assert "remote.beta" in region.tracks
        assert "remote.alpha" not in region.tracks
        assert (
            federation.backend("beta").network.charged_seconds > beta_net
        )
        assert (
            federation.backend("alpha").network.charged_seconds == alpha_net
        )
        assert interface.breaker_of("beta").state == CircuitBreaker.OPEN

    def test_successful_probe_closes_only_that_breaker(self):
        federation = make_federation(
            retries={"beta": FAIL_FAST, "gamma": FAIL_FAST},
            faults={"beta": dark(), "gamma": dark(seed=1)},
        )
        interface = federation.interface
        for text in (LOCAL, "q8(S) :- ship(S, P, Q)"):
            with pytest.raises(TransientRemoteError):
                interface.fetch(psj(text))
        federation.set_backend_faults("beta", None)  # beta recovers
        federation.clock.advance(5.0)
        result = interface.fetch(psj(LOCAL))
        assert set(result.rows) == oracle(LOCAL)
        assert interface.breaker_of("beta").state == CircuitBreaker.CLOSED
        assert interface.breaker_of("gamma").state == CircuitBreaker.OPEN


class TestDegradedAnswers:
    def test_fetch_partial_answers_from_survivors(self):
        federation = make_federation(
            faults={"gamma": FaultPolicy(seed=0, permanent_rate=1.0)}
        )
        interface = federation.interface
        partial = interface.fetch_partial(psj(SURVIVOR))
        assert partial is not None
        # The join condition against the dark backend is dropped: every
        # supplier city survives (deduplicated set semantics).
        assert set(partial.rows) == {(100,), (200,), (300,)}

    def test_fetch_partial_none_when_every_backend_dark(self):
        federation = make_federation(
            faults={
                "alpha": FaultPolicy(seed=0, permanent_rate=1.0),
                "gamma": FaultPolicy(seed=1, permanent_rate=1.0),
            }
        )
        assert federation.interface.fetch_partial(psj(SPAN2)) is None

    def test_cms_tags_partial_answers_degraded(self):
        federation = make_federation()
        cms = federation.cms()
        cms.begin_session()
        healthy = cms.query(parse_query(SURVIVOR))
        assert set(healthy.fetch_all()) == oracle(SURVIVOR)
        assert not healthy.degraded

        federation.set_backend_faults(
            "gamma", FaultPolicy(seed=0, permanent_rate=1.0)
        )
        stream = cms.query(parse_query("q9(C) :- sup(S, C), ship(S, P, 99)"))
        assert stream.degraded
        assert set(stream.fetch_all()) == {(100,), (200,), (300,)}

    def test_cms_raises_when_nothing_survives(self):
        federation = make_federation()
        cms = federation.cms()
        cms.begin_session()
        federation.set_fault_policy(FaultPolicy(seed=0, permanent_rate=1.0))
        with pytest.raises(RemoteDBMSError):
            cms.query(parse_query(SPAN2)).fetch_all()
