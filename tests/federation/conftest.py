"""Shared builders for the federation tests.

One tiny three-backend world, rebuilt fresh per test:

* ``alpha`` owns ``sup(s, city)``       — 4 suppliers,
* ``beta``  owns ``part(p, color)``     — 3 parts,
* ``gamma`` owns ``ship(s, p, qty)``    — 5 shipments (one dangling).

Every value is an integer so queries stay parser-friendly, and every
cross-backend join has a known oracle via :func:`evaluate_psj` over the
same tables.
"""

from __future__ import annotations

from repro.common.clock import SimClock
from repro.obs.tracer import Tracer
from repro.relational.relation import relation_from_columns
from repro.caql.eval import evaluate_psj, psj_of
from repro.caql.parser import parse_query
from repro.federation import BackendSpec, build_federation

SPAN3 = "q(S, C, P) :- sup(S, C), ship(S, P, Q), part(P, X)"
SPAN2 = "q2(S, Q) :- sup(S, C), ship(S, P, Q)"
LOCAL = "q3(P) :- part(P, 1)"
EMPTY = "q4(S) :- sup(S, 999), ship(S, P, Q)"
SURVIVOR = "q7(C) :- sup(S, C), ship(S, P, Q)"


def base_tables() -> dict:
    return {
        "sup": relation_from_columns(
            "sup", s=[1, 2, 3, 4], city=[100, 200, 300, 100]
        ),
        "part": relation_from_columns("part", p=[10, 11, 12], color=[1, 2, 1]),
        "ship": relation_from_columns(
            "ship",
            s=[1, 1, 2, 3, 9],
            p=[10, 11, 10, 12, 10],
            qty=[5, 3, 7, 1, 2],
        ),
    }


def three_backend_specs(retries=None, faults=None, engines=None) -> list[BackendSpec]:
    retries = retries or {}
    faults = faults or {}
    engines = engines or {}
    data = base_tables()
    owned = {"alpha": "sup", "beta": "part", "gamma": "ship"}
    return [
        BackendSpec(
            name,
            tables=(data[table],),
            engine=engines.get(name, "python"),
            retry=retries.get(name),
            faults=faults.get(name),
        )
        for name, table in owned.items()
    ]


def make_federation(retries=None, faults=None, engines=None, with_tracer=False):
    clock = SimClock()
    tracer = Tracer(clock) if with_tracer else None
    return build_federation(
        three_backend_specs(retries, faults, engines), clock=clock, tracer=tracer
    )


def psj(text: str):
    return psj_of(parse_query(text))


def oracle(text: str) -> set:
    data = base_tables()
    return set(evaluate_psj(psj(text), data.__getitem__).rows)


def trace_events(tracer) -> list:
    """Every recorded event (orphans + in-span), in recording order."""
    events = list(tracer.orphan_events)
    for span in tracer.spans:
        events.extend(span.events)
    return events
