"""Per-backend metrics namespacing, tagged trace events, determinism."""

import pytest

from repro.common.errors import RemoteDBMSError
from repro.common.metrics import REMOTE_REQUESTS, REMOTE_TUPLES
from repro.remote.faults import FaultPolicy, RetryPolicy
from repro.caql.parser import parse_query

from tests.federation.conftest import (
    LOCAL,
    SPAN2,
    SPAN3,
    make_federation,
    psj,
    trace_events,
)


class TestMetricsNamespacing:
    def test_root_aggregates_backend_scopes(self):
        federation = make_federation()
        for text in (SPAN3, SPAN2, LOCAL):
            federation.interface.fetch(psj(text))
        scopes = federation.metrics.scopes()
        assert set(scopes) == {"alpha", "beta", "gamma"}
        for counter in (REMOTE_REQUESTS, REMOTE_TUPLES):
            shares = {name: scope.get(counter) for name, scope in scopes.items()}
            assert all(share > 0 for share in shares.values()), shares
            assert federation.metrics.get(counter) == sum(shares.values())

    def test_scoped_ledgers_pass_their_own_invariants(self):
        federation = make_federation()
        federation.interface.fetch(psj(SPAN3))
        federation.metrics.check_invariants()


class TestTraceTagging:
    def test_route_scatter_gather_events(self):
        federation = make_federation(with_tracer=True)
        federation.interface.fetch(psj(SPAN3))
        by_name = {}
        for event in trace_events(federation.tracer):
            by_name.setdefault(event.name, []).append(event.attributes_dict())
        assert len(by_name["federation.scatter"]) == 1
        assert len(by_name["federation.gather"]) == 1
        routes = by_name["rdi.route"]
        assert {attrs["backend"] for attrs in routes} == {
            "alpha", "beta", "gamma",
        }

    def test_breaker_transitions_carry_the_backend_tag(self):
        federation = make_federation(
            retries={
                "gamma": RetryPolicy(max_retries=0, breaker_threshold=1)
            },
            faults={"gamma": FaultPolicy(seed=0, transient_rate=1.0)},
            with_tracer=True,
        )
        with pytest.raises(RemoteDBMSError):
            federation.interface.fetch(psj("q8(S) :- ship(S, P, Q)"))
        transitions = [
            e.attributes_dict()
            for e in trace_events(federation.tracer)
            if e.name == "breaker.transition"
        ]
        assert transitions
        assert all(attrs["backend"] == "gamma" for attrs in transitions)
        assert transitions[-1]["after"] == "open"


class TestDeterminism:
    def run(self, seed=7):
        federation = make_federation(
            retries={
                "gamma": RetryPolicy(max_retries=2, seed=seed, breaker_threshold=3)
            },
            faults={
                "gamma": FaultPolicy(
                    seed=seed, transient_rate=0.4, stall_rate=0.2
                )
            },
            with_tracer=True,
        )
        outcomes = []
        for text in (SPAN3, SPAN2, LOCAL, SPAN2, SPAN3):
            try:
                outcomes.append(len(federation.interface.fetch(psj(text))))
            except RemoteDBMSError as error:
                outcomes.append(type(error).__name__)
        return (
            outcomes,
            federation.metrics.snapshot(),
            federation.clock.now,
            federation.tracer.fingerprint(),
        )

    def test_same_seed_byte_identical(self):
        assert self.run() == self.run()

    def test_different_seeds_differ(self):
        assert self.run(seed=7)[1] != self.run(seed=8)[1]

    def test_cms_run_fingerprints_are_stable(self):
        def run():
            federation = make_federation(with_tracer=True)
            cms = federation.cms()
            cms.begin_session()
            for text in (SPAN3, SPAN2, LOCAL, SPAN3):
                cms.query(parse_query(text)).fetch_all()
            return (
                federation.metrics.snapshot(),
                federation.clock.now,
                federation.tracer.fingerprint(),
            )

        assert run() == run()
