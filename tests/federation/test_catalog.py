"""FederatedCatalog ownership, bootstrap wiring, and statistics honesty."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import UnknownRelationError
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.federation import (
    BackendSpec,
    FederatedCatalog,
    FederatedInterface,
    build_federation,
)

from tests.federation.conftest import make_federation, three_backend_specs


def make_server(clock=None, tables=()):
    server = RemoteDBMS(clock=clock)
    for relation in tables:
        server.load_table(relation)
    return server


def table(name, rows=3):
    return relation_from_columns(name, a=list(range(rows)), b=[0] * rows)


class TestOwnership:
    def test_register_claims_tables(self):
        catalog = FederatedCatalog()
        clock = SimClock()
        catalog.register("a", make_server(clock, [table("t"), table("u")]))
        catalog.register("b", make_server(clock, [table("v")]))
        assert catalog.home_of("t") == "a"
        assert catalog.home_of("v") == "b"
        assert catalog.backends() == ["a", "b"]
        assert catalog.tables() == ["t", "u", "v"]
        assert catalog.tables_of("a") == ["t", "u"]
        assert catalog.has("u") and not catalog.has("w")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FederatedCatalog().register("", make_server())

    def test_duplicate_backend_rejected(self):
        catalog = FederatedCatalog()
        clock = SimClock()
        catalog.register("a", make_server(clock))
        with pytest.raises(ValueError):
            catalog.register("a", make_server(clock))

    def test_exclusive_table_ownership(self):
        catalog = FederatedCatalog()
        clock = SimClock()
        catalog.register("a", make_server(clock, [table("t")]))
        with pytest.raises(ValueError, match="already owned"):
            catalog.register("b", make_server(clock, [table("t")]))

    def test_unowned_table_raises(self):
        with pytest.raises(UnknownRelationError):
            FederatedCatalog().home_of("nope")
        with pytest.raises(KeyError):
            FederatedCatalog().backend("nope")

    def test_rescan_discovers_late_tables(self):
        catalog = FederatedCatalog()
        clock = SimClock()
        server = make_server(clock, [table("t")])
        catalog.register("a", server)
        server.load_table(table("late"))
        assert not catalog.has("late")
        catalog.rescan()
        assert catalog.home_of("late") == "a"

    def test_rescan_rejects_double_ownership(self):
        catalog = FederatedCatalog()
        clock = SimClock()
        a = make_server(clock, [table("t")])
        b = make_server(clock, [table("u")])
        catalog.register("a", a)
        catalog.register("b", b)
        b.load_table(table("t"))
        with pytest.raises(ValueError, match="owned by both"):
            catalog.rescan()


class TestBootstrap:
    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            build_federation([])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            build_federation([BackendSpec("a", engine="cobol")])

    def test_backends_share_one_clock(self):
        federation = make_federation()
        clocks = {
            id(federation.backend(name).clock) for name in federation.backends()
        }
        assert len(clocks) == 1
        assert federation.backends() == ["alpha", "beta", "gamma"]

    def test_interface_rejects_split_clocks(self):
        catalog = FederatedCatalog()
        catalog.register("a", make_server(SimClock(), [table("t")]))
        catalog.register("b", make_server(SimClock(), [table("u")]))
        with pytest.raises(ValueError, match="share one SimClock"):
            FederatedInterface(catalog)

    def test_per_backend_profiles_survive(self):
        from repro.common.clock import CostProfile

        specs = three_backend_specs()
        specs[1].profile = CostProfile().scaled(3.0)
        federation = build_federation(specs)
        name, profile = federation.interface.cost_profile_of("part")
        assert name == "beta"
        assert profile is specs[1].profile
        assert profile.transfer_per_tuple != federation.profile.transfer_per_tuple


class TestStatisticsHonesty:
    def test_bootstrap_statistics_match_contents(self):
        federation = make_federation()
        assert federation.backend("alpha").catalog.cardinality("sup") == 4
        assert federation.backend("gamma").catalog.cardinality("ship") == 5

    def test_refresh_all_tracks_engine_side_reloads(self):
        federation = make_federation()
        server = federation.backend("alpha")
        # An engine-side reload the catalog never saw: stats go stale.
        server.engine.create_table(
            relation_from_columns(
                "sup", s=list(range(10)), city=[0] * 10
            )
        )
        assert server.catalog.cardinality("sup") == 4
        federation.refresh_statistics()
        assert server.catalog.cardinality("sup") == 10

    def test_partition_estimates_follow_refresh(self):
        from tests.federation.conftest import SPAN2, psj

        federation = make_federation()
        before = {
            p.backend: p.estimate
            for p in federation.interface.partition(psj(SPAN2))
        }
        assert before == {"alpha": 4.0, "gamma": 5.0}
