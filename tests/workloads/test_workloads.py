"""Tests for workload generators."""

import pytest

from repro.workloads.genealogy import genealogy
from repro.workloads.queries import (
    StreamSpec,
    range_query_stream,
    repeated_selection_stream,
)
from repro.workloads.suppliers import suppliers
from repro.workloads.synthetic import chain, fanout_graph, selection_universe


class TestGenealogy:
    def test_deterministic(self):
        a, b = genealogy(seed=1), genealogy(seed=1)
        assert a.table("parent").rows == b.table("parent").rows

    def test_seed_changes_data(self):
        assert genealogy(seed=1).table("parent").rows != genealogy(seed=2).table("parent").rows

    def test_every_person_has_sex_and_age(self):
        w = genealogy()
        people = set()
        for par, child in w.table("parent"):
            people.add(par)
            people.add(child)
        sexed = w.table("male").distinct_values("person") | w.table(
            "female"
        ).distinct_values("person")
        aged = w.table("age").distinct_values("person")
        assert people <= sexed
        assert people <= aged

    def test_sexes_disjoint(self):
        w = genealogy()
        males = w.table("male").distinct_values("person")
        females = w.table("female").distinct_values("person")
        assert not males & females

    def test_generation_structure(self):
        w = genealogy(generations=3, branching=2, roots=1, seed=5)
        parents = w.table("parent")
        children = {c for _p, c in parents}
        roots = {p for p, _c in parents} - children
        assert roots == {"p0"}

    def test_kb_builds_cleanly(self):
        kb = genealogy().build_kb()
        assert kb.validate() == []
        assert kb.soas.recursive_for("ancestor") is not None


class TestSuppliers:
    def test_shipment_references_valid(self):
        w = suppliers()
        supplier_ids = w.table("supplier").distinct_values("s_id")
        part_ids = w.table("part").distinct_values("p_id")
        for s_id, p_id, _qty, _cost in w.table("shipment"):
            assert s_id in supplier_ids
            assert p_id in part_ids

    def test_requested_sizes(self):
        w = suppliers(n_suppliers=5, n_parts=7, n_shipments=20)
        assert len(w.table("supplier")) == 5
        assert len(w.table("part")) == 7
        assert len(w.table("shipment")) == 20

    def test_kb_builds_cleanly(self):
        kb = suppliers().build_kb()
        assert kb.validate() == []

    def test_fd_soas_present(self):
        w = suppliers()
        kb = w.build_kb()
        assert kb.soas.fds_for("supplier", 4)


class TestSynthetic:
    def test_chain_tables(self):
        w = chain(length=4, rows_per_relation=50)
        assert len(w.tables) == 4
        assert all(len(t) <= 50 for t in w.tables)

    def test_chain_rule_arity(self):
        w = chain(length=3)
        kb = w.build_kb()
        assert ("chain", 2) in kb.user_signatures()

    def test_chain_length_validated(self):
        with pytest.raises(ValueError):
            chain(length=0)

    def test_selection_universe(self):
        w = selection_universe(rows=100, domain=50)
        assert len(w.table("item")) == 100
        assert all(0 <= v < 50 for _i, _c, v in w.table("item"))

    def test_fanout_graph_is_dag(self):
        w = fanout_graph(nodes=30)
        for src, dst in w.table("edge"):
            assert int(src[1:]) < int(dst[1:])

    def test_workload_helpers(self):
        w = chain(length=2)
        assert w.total_rows() == sum(len(t) for t in w.tables)
        with pytest.raises(KeyError):
            w.table("nope")


class TestQueryStreams:
    def test_repeated_selection_stream_length(self):
        stream = repeated_selection_stream(
            "q(Y) :- parent($C, Y)", ["tom", "bob"], StreamSpec(length=20, seed=3)
        )
        assert len(stream) == 20

    def test_repetition_rate_one_repeats(self):
        stream = repeated_selection_stream(
            "q(Y) :- parent($C, Y)",
            ["a", "b", "c"],
            StreamSpec(length=10, repetition_rate=1.0, seed=3),
        )
        keys = {str(q) for q in stream}
        assert len(keys) == 1  # everything repeats the first query

    def test_template_requires_placeholder(self):
        with pytest.raises(ValueError):
            repeated_selection_stream("q(Y) :- parent(tom, Y)", ["a"], StreamSpec(5))

    def test_numeric_constants_rendered(self):
        stream = repeated_selection_stream(
            "q(Y) :- edge($C, Y)", [1, 2, 3], StreamSpec(length=5, seed=1)
        )
        assert all("(" in str(q) for q in stream)

    def test_range_stream_shapes(self):
        stream = range_query_stream(
            "item", 2, 3, domain=100, spec=StreamSpec(length=10, seed=2)
        )
        assert len(stream) == 10
        for query in stream:
            comparisons = query.comparison_literals()
            assert len(comparisons) == 2

    def test_range_stream_deterministic(self):
        a = range_query_stream("item", 2, 3, 100, StreamSpec(length=5, seed=2))
        b = range_query_stream("item", 2, 3, 100, StreamSpec(length=5, seed=2))
        assert [str(q) for q in a] == [str(q) for q in b]
