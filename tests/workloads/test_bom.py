"""Tests for the bill-of-materials workload."""

import pytest

from repro.braid import BraidConfig, BraidSystem
from repro.workloads.bom import bom


@pytest.fixture(scope="module")
def workload():
    return bom(depth=4, fanout=3, basic_parts=30, seed=19)


class TestGeneration:
    def test_deterministic(self, workload):
        again = bom(depth=4, fanout=3, basic_parts=30, seed=19)
        assert workload.table("assembly").rows == again.table("assembly").rows

    def test_components_reference_known_things(self, workload):
        assemblies = workload.table("assembly").distinct_values("asm")
        parts = workload.table("basic_part").distinct_values("p_id")
        for _asm, component, _qty in workload.table("assembly"):
            assert component in assemblies or component in parts

    def test_tree_is_acyclic(self, workload):
        children = {}
        for asm, component, _qty in workload.table("assembly"):
            children.setdefault(asm, set()).add(component)

        def walk(node, path):
            assert node not in path, "cycle in assembly tree"
            for child in children.get(node, ()):
                walk(child, path | {node})

        walk("asm0", set())

    def test_kb_builds_cleanly(self, workload):
        kb = workload.build_kb()
        assert kb.validate() == []
        assert kb.soas.recursive_for("contains_deep") is not None


class TestQueries:
    def ground_truth_deep(self, workload, root="asm0"):
        children = {}
        for asm, component, _qty in workload.table("assembly"):
            children.setdefault(asm, set()).add(component)
        seen: set[str] = set()
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in children.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    @pytest.mark.parametrize("strategy", ["conjunction", "compiled"])
    def test_part_explosion_matches_ground_truth(self, workload, strategy):
        system = BraidSystem.from_workload(workload, BraidConfig(strategy=strategy))
        solutions = system.ask_all("contains_deep(asm0, P)")
        assert {s["P"] for s in solutions} == self.ground_truth_deep(workload)

    def test_compiled_is_set_at_a_time(self, workload):
        system = BraidSystem.from_workload(workload, BraidConfig(strategy="compiled"))
        solutions = system.ask_all("contains_deep(asm0, P)")
        assert len(solutions) == len({str(s) for s in solutions})

    def test_interpretive_may_repeat_derivations(self, workload):
        system = BraidSystem.from_workload(workload, BraidConfig(strategy="conjunction"))
        solutions = system.ask_all("contains_deep(asm0, P)")
        # At least as many derivations as distinct answers (Prolog
        # semantics); strictly more in this diamond-shaped tree.
        assert len(solutions) >= len({str(s) for s in solutions})

    def test_expensive_components_subset_of_deep(self, workload):
        system = BraidSystem.from_workload(workload)
        deep = {s["P"] for s in system.ask_all("contains_deep(asm0, P)")}
        expensive = {s["P"] for s in system.ask_all("expensive_component(asm0, P)")}
        assert expensive <= deep

    def test_top_assembly_is_the_root(self, workload):
        system = BraidSystem.from_workload(workload)
        tops = system.ask_all("top_assembly(A)")
        assert {s["A"] for s in tops} == {"asm0"}

    def test_explanation_of_part_containment(self, workload):
        system = BraidSystem.from_workload(workload)
        (solution, *_rest) = system.ask_all("uses_basic(asm0, P)")
        proof = system.explain("uses_basic(asm0, P)", solution)
        assert proof is not None
        assert any(str(f).startswith("assembly(") for f in proof.facts_used())
