"""Tests for the three-step Query Planner/Optimizer."""

import pytest

from repro.common.clock import CostProfile
from repro.relational.relation import Relation
from repro.relational.statistics import RelationStatistics
from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.core.advice_manager import AdviceManager
from repro.core.cache import Cache
from repro.core.plan import CachePart, RemotePart
from repro.core.planner import PlannerFeatures, QueryPlanner


def make_psj(text):
    return psj_of(parse_query(text))


B2_ROWS = [(x, z) for x in range(5) for z in range(5)]
B3_ROWS = [(z, c, y) for z in range(5) for c in ("c2", "c3") for y in range(3)]
DB = {
    "b2": Relation(result_schema("b2", 2), B2_ROWS),
    "b3": Relation(result_schema("b3", 3), B3_ROWS),
}


def stats_of(pred):
    return RelationStatistics.from_relation(DB[pred])


def make_planner(cache=None, advice=None, features=None):
    manager = AdviceManager()
    if advice is not None:
        manager.begin_session(advice)
    else:
        manager.begin_session(None)
    return QueryPlanner(
        cache if cache is not None else Cache(),
        manager,
        stats_of,
        CostProfile(),
        features,
    )


def cache_with(*texts):
    cache = Cache()
    for text in texts:
        psj = make_psj(text)
        cache.store(psj, evaluate_psj(psj, DB.__getitem__))
    return cache


class TestDegenerate:
    def test_unsatisfiable(self):
        planner = make_planner()
        plan = planner.plan(make_psj("q(X) :- b2(X, Z), 2 < 1"))
        assert plan.strategy == "unsatisfiable"

    def test_unit_query(self):
        from repro.caql.psj import psj_from_literals

        planner = make_planner()
        plan = planner.plan(psj_from_literals("q", [], [], ()))
        assert plan.strategy == "unit"


class TestStrategySelection:
    def test_cold_cache_goes_remote(self):
        planner = make_planner()
        plan = planner.plan(make_psj("q(X, Z) :- b2(X, Z)"))
        assert plan.strategy == "remote"
        assert len(plan.parts) == 1
        assert isinstance(plan.parts[0], RemotePart)

    def test_exact_hit(self):
        cache = cache_with("q(X, Z) :- b2(X, Z)")
        planner = make_planner(cache)
        plan = planner.plan(make_psj("q2(A, B) :- b2(A, B)"))
        assert plan.strategy == "exact"
        assert not plan.cache_result  # already cached

    def test_full_subsumption(self):
        cache = cache_with("scan(X, Z) :- b2(X, Z)")
        planner = make_planner(cache)
        plan = planner.plan(make_psj("q(Z) :- b2(2, Z)"))
        assert plan.strategy == "cache-full"
        assert plan.full_match is not None

    def test_hybrid_split(self):
        # The uncovered remote part (b2 with X pinned) ships few tuples, so
        # the hybrid split beats re-shipping the join.
        cache = cache_with("e12(X, Y) :- b3(X, c2, Y)")
        planner = make_planner(cache)
        plan = planner.plan(make_psj("d2(Z) :- b2(2, Z), b3(Z, c2, 1)"))
        assert plan.strategy == "hybrid"
        kinds = {type(p) for p in plan.parts}
        assert kinds == {CachePart, RemotePart}

    def test_hybrid_remote_subquery_contents(self):
        cache = cache_with("e12(X, Y) :- b3(X, c2, Y)")
        planner = make_planner(cache)
        plan = planner.plan(make_psj("d2(Z) :- b2(2, Z), b3(Z, c2, 1)"))
        remote = next(p for p in plan.parts if isinstance(p, RemotePart))
        assert [o.pred for o in remote.sub_query.occurrences] == ["b2"]
        # The cross join condition stays at the combine stage.
        assert len(plan.cross_conditions) == 1

    def test_whole_query_shipping_can_beat_hybrid(self):
        # With an unconstrained b2, fetching all of b2 costs more than
        # letting the server do the join — the paper's plan (b).
        cache = cache_with("e12(X, Y) :- b3(X, c2, Y)")
        planner = make_planner(cache)
        plan = planner.plan(make_psj("d2(X) :- b2(X, Z), b3(Z, c2, 1)"))
        assert plan.strategy == "remote"
        assert any("shipping beat" in note for note in plan.notes)

    def test_caching_disabled_always_remote(self):
        cache = cache_with("scan(X, Z) :- b2(X, Z)")
        features = PlannerFeatures(caching=False)
        planner = make_planner(cache, features=features)
        plan = planner.plan(make_psj("q(Z) :- b2(2, Z)"))
        assert plan.strategy == "remote"
        assert not plan.cache_result

    def test_subsumption_disabled_only_exact(self):
        cache = cache_with("scan(X, Z) :- b2(X, Z)")
        features = PlannerFeatures(subsumption=False)
        planner = make_planner(cache, features=features)
        assert planner.plan(make_psj("q(Z) :- b2(2, Z)")).strategy == "remote"
        assert planner.plan(make_psj("q(X, Z) :- b2(X, Z)")).strategy == "exact"


class TestAdviceDrivenDecisions:
    def advice(self):
        d2 = annotate(parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)"), "^?")
        path = Sequence((QueryPattern("d2", ("X^", "Y?")),), lower=0, upper=Cardinality("Y"))
        return AdviceSet.from_views([d2], path_expression=path)

    def test_generalization_prefetch_planned(self):
        planner = make_planner(advice=self.advice())
        plan = planner.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        assert plan.prefetches
        general = plan.prefetches[0]
        assert general.name == "d2__general"
        # The general query carries no pinned answer constant.
        assert all(not str(c).endswith("= 1") for c in general.conditions)

    def test_no_generalization_without_repetition(self):
        d2 = annotate(parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)"), "^?")
        path = Sequence((QueryPattern("d2"),), lower=1, upper=1)
        advice = AdviceSet.from_views([d2], path_expression=path)
        planner = make_planner(advice=advice)
        plan = planner.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        assert not plan.prefetches

    def test_no_generalization_without_consumers(self):
        d2 = annotate(parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)"), "^^")
        path = Sequence((QueryPattern("d2"),), lower=0, upper=None)
        advice = AdviceSet.from_views([d2], path_expression=path)
        planner = make_planner(advice=advice)
        plan = planner.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        assert not plan.prefetches

    def test_generalization_feature_flag(self):
        features = PlannerFeatures(generalization=False)
        planner = make_planner(advice=self.advice(), features=features)
        plan = planner.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        assert not plan.prefetches

    def test_index_positions_from_consumer_annotations(self):
        planner = make_planner(advice=self.advice())
        plan = planner.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        assert plan.index_positions == (1,)

    def test_lazy_for_pure_producer_on_full_match(self):
        d2 = annotate(parse_query("d2(X, Z) :- b2(X, Z)"), "^^")
        advice = AdviceSet.from_views([d2])
        cache = cache_with("scan(X, Z) :- b2(X, Z)")
        planner = make_planner(cache, advice=advice)
        plan = planner.plan(make_psj("d2(X, Z) :- b2(X, Z), X < 2"))
        assert plan.strategy == "cache-full"
        assert plan.lazy

    def test_not_lazy_for_consumer_views(self):
        cache = cache_with("scan(X, Z) :- b2(X, Z)")
        planner = make_planner(cache, advice=self.advice())
        planner.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        # Not a full match here, but even for full matches the consumer
        # annotation should suppress lazy evaluation:
        cache2 = cache_with("whole(X, Z, Y) :- b2(X, Z), b3(Z, c2, Y)")
        planner2 = make_planner(cache2, advice=self.advice())
        plan2 = planner2.plan(make_psj("d2(X, 1) :- b2(X, Z), b3(Z, c2, 1)"))
        assert plan2.strategy == "cache-full"
        assert not plan2.lazy


class TestCostModel:
    def test_estimate_rows_selection(self):
        planner = make_planner()
        full = planner.estimate_rows(make_psj("q(X, Z) :- b2(X, Z)"))
        selected = planner.estimate_rows(make_psj("q(Z) :- b2(2, Z)"))
        assert selected < full
        assert full == pytest.approx(25.0)

    def test_estimate_rows_join_selectivity(self):
        planner = make_planner()
        cross_like = planner.estimate_rows(make_psj("q(X, Y) :- b2(X, Z), b3(Z, c2, Y)"))
        assert cross_like < 25 * 30

    def test_remote_cost_grows_with_tables(self):
        planner = make_planner()
        single = planner._remote_cost(make_psj("q(X, Z) :- b2(X, Z)"))
        double = planner._remote_cost(make_psj("q(X, Y) :- b2(X, Z), b3(Z, c2, Y)"))
        assert double > single

    def test_plan_records_estimates(self):
        planner = make_planner()
        plan = planner.plan(make_psj("q(X, Z) :- b2(X, Z)"))
        assert plan.estimated_remote_cost > 0

    def test_describe_mentions_strategy(self):
        planner = make_planner()
        plan = planner.plan(make_psj("q(X, Z) :- b2(X, Z)"))
        assert "remote" in plan.describe()
