"""Property test: the semijoin-reduced bridge answers every query the
unreduced bridge answers, tuple for tuple.

Each example warms the cache with one element, then runs one query
against a full bridge (planner + executor + RDI + remote server) twice —
defaults (semijoin + batching on) versus the unreduced baseline — and
checks the answers agree with direct evaluation over the base tables.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.relational.relation import Relation
from repro.remote.server import RemoteDBMS

R_ROWS = [(x, y) for x in range(5) for y in range(5) if (2 * x + y) % 3]
S_ROWS = [(y, z, (y + z) % 4) for y in range(5) for z in range(4)]
DB = {
    "r": Relation(result_schema("r", 2), R_ROWS),
    "s": Relation(result_schema("s", 3), S_ROWS),
}

ELEMENT_TEXTS = [
    "e(X, Y) :- r(X, Y)",
    "e(X, Y) :- r(X, Y), X < 3",
    "e(A, B, C) :- s(A, B, C)",
    "e(A, C) :- s(A, B, C), B >= 1",
]
QUERY_TEXTS = [
    "q(X, Z) :- r(X, Y), s(Y, Z, E)",
    "q(X) :- r(X, Y), s(Y, 2, 1)",
    "q(X, E) :- r(X, 2), s(2, Z, E)",
    "q(X, Y2) :- r(X, Y), r(Y, Y2)",
    "q(Z) :- r(1, Y), s(Y, Z, E), Z < 3",
    "q(X, Y) :- r(X, Y), X >= 4",
    "q(A, C) :- s(A, B, C), B >= 1, C = 2",
]


def bridge(features: CMSFeatures) -> CacheManagementSystem:
    server = RemoteDBMS()
    for relation in DB.values():
        server.load_table(relation)
    cms = CacheManagementSystem(server, features=features)
    cms.begin_session()
    return cms


def answers(cms: CacheManagementSystem, element_text: str, query_text: str) -> list:
    cms.query(parse_query(element_text)).fetch_all()
    return sorted(cms.query(parse_query(query_text)).fetch_all())


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ELEMENT_TEXTS), st.sampled_from(QUERY_TEXTS))
def test_semijoin_bridge_equivalent_to_unreduced_bridge(element_text, query_text):
    reduced = answers(bridge(CMSFeatures()), element_text, query_text)
    unreduced = answers(
        bridge(CMSFeatures(semijoin=False, batching=False)), element_text, query_text
    )
    oracle = sorted(evaluate_psj(psj_of(parse_query(query_text)), DB.__getitem__).rows)
    assert reduced == unreduced == oracle, f"{element_text} | {query_text}"
