"""Tests for the Advice Manager's decision logic."""

from repro.caql.parser import parse_query
from repro.caql.eval import psj_of, result_schema
from repro.relational.relation import Relation
from repro.advice.language import AdviceSet
from repro.advice.path_expression import (
    Alternation,
    Cardinality,
    QueryPattern,
    Sequence,
)
from repro.advice.view_spec import annotate
from repro.core.advice_manager import AdviceManager, _views_under_repetition
from repro.core.cache import CacheElement


def element_for(view_text, element_id="E1"):
    psj = psj_of(parse_query(view_text))
    return CacheElement(element_id, psj, Relation(result_schema(psj.name, max(psj.arity, 1))))


def paper_advice():
    """Example 1 of the paper: d1 then (d2, d3) repeated."""
    d1 = annotate(parse_query("d1(Y) :- b1(c1, Y)"), "^", rule_ids=("R1",))
    d2 = annotate(parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)"), "^?", rule_ids=("R2",))
    d3 = annotate(parse_query("d3(X, Y) :- b3(X, c3, Z), b1(Z, Y)"), "^?", rule_ids=("R3",))
    inner = Sequence(
        (QueryPattern("d2", ("X^", "Y?")), QueryPattern("d3", ("X^", "Y?"))),
        lower=0,
        upper=Cardinality("Y"),
    )
    path = Sequence((QueryPattern("d1", ("Y^",)), inner), lower=1, upper=1)
    return AdviceSet.from_views([d1, d2, d3], path_expression=path)


def manager_with(advice):
    manager = AdviceManager()
    manager.begin_session(advice)
    return manager


class TestSessionLifecycle:
    def test_no_advice(self):
        manager = manager_with(None)
        assert not manager.has_advice
        assert manager.tracker is None

    def test_with_advice(self):
        manager = manager_with(paper_advice())
        assert manager.has_advice
        assert manager.tracker is not None

    def test_new_session_replaces_old(self):
        manager = manager_with(paper_advice())
        manager.begin_session(None)
        assert not manager.has_advice


class TestRepetitionDetection:
    def test_views_under_repetition(self):
        advice = paper_advice()
        repeating = _views_under_repetition(advice.path_expression)
        assert repeating == {"d2", "d3"}

    def test_unbounded_counts_as_repeating(self):
        expr = Sequence((QueryPattern("d9"),), lower=0, upper=None)
        assert _views_under_repetition(expr) == {"d9"}

    def test_alternation_inherits_repetition(self):
        expr = Sequence(
            (Alternation((QueryPattern("a"), QueryPattern("b"))),),
            lower=0,
            upper=5,
        )
        assert _views_under_repetition(expr) == {"a", "b"}


class TestDecisions:
    def test_index_positions(self):
        manager = manager_with(paper_advice())
        assert manager.index_positions("d2") == (1,)
        assert manager.index_positions("d1") == ()
        assert manager.index_positions("unknown") == ()

    def test_prefers_lazy_only_pure_producers(self):
        manager = manager_with(paper_advice())
        assert manager.prefers_lazy("d1")
        assert not manager.prefers_lazy("d2")
        assert not manager.prefers_lazy("unknown")

    def test_should_generalize(self):
        manager = manager_with(paper_advice())
        assert manager.should_generalize("d2")  # consumer + repetition
        assert not manager.should_generalize("d1")  # no consumers
        assert not manager.should_generalize("unknown")

    def test_should_cache_result_default_true(self):
        manager = manager_with(None)
        assert manager.should_cache_result("anything")

    def test_pure_producer_not_cached_when_never_needed_again(self):
        d1 = annotate(parse_query("d1(Y) :- b1(c1, Y)"), "^")
        path = Sequence((QueryPattern("d1"),), lower=1, upper=1)
        manager = manager_with(AdviceSet.from_views([d1], path_expression=path))
        manager.observe_query("d1")
        # d1 consumed its single occurrence: no predicted request left.
        assert not manager.should_cache_result("d1")

    def test_consumer_views_always_cached(self):
        manager = manager_with(paper_advice())
        manager.observe_query("d1")
        assert manager.should_cache_result("d2")


class TestPrefetch:
    def test_companions_suggested(self):
        manager = manager_with(paper_advice())
        manager.observe_query("d1")
        manager.observe_query("d2")
        assert manager.prefetch_candidates("d2") == ["d3"]

    def test_no_path_no_prefetch(self):
        d1 = annotate(parse_query("d1(Y) :- b1(c1, Y)"), "^")
        manager = manager_with(AdviceSet.from_views([d1]))
        assert manager.prefetch_candidates("d1") == []

    def test_unreachable_companions_dropped(self):
        # After the whole inner group is spent (upper bound 1), the
        # companion prediction must not resurrect it.
        d2 = annotate(parse_query("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)"), "^?")
        d3 = annotate(parse_query("d3(X, Y) :- b3(X, c3, Z), b1(Z, Y)"), "^?")
        path = Sequence((QueryPattern("d2"), QueryPattern("d3")), lower=1, upper=1)
        manager = manager_with(AdviceSet.from_views([d2, d3], path_expression=path))
        manager.observe_query("d2")
        manager.observe_query("d3")
        assert manager.prefetch_candidates("d3") == []


class TestReplacementScorer:
    def test_without_tracker_is_lru(self):
        manager = manager_with(None)
        scorer = manager.replacement_scorer()
        old = element_for("d1(Y) :- b1(c1, Y)")
        old.sequence = 1
        new = element_for("d2(X, Y) :- b2(X, Y)", "E2")
        new.sequence = 5
        assert scorer(old) > scorer(new)

    def test_unreachable_views_evicted_first(self):
        manager = manager_with(paper_advice())
        manager.observe_query("d1")  # d1 cannot recur (outer <1,1>)
        scorer = manager.replacement_scorer()
        d1_element = element_for("d1(Y) :- b1(c1, Y)")
        d1_element.sequence = 100  # most recently used
        d2_element = element_for("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)", "E2")
        d2_element.sequence = 1  # least recently used
        # Advice overrides LRU: d1 is dead, d2 is needed next.
        assert scorer(d1_element) > scorer(d2_element)

    def test_nearer_views_better_protected(self):
        manager = manager_with(paper_advice())
        manager.observe_query("d1")
        scorer = manager.replacement_scorer()
        d2_element = element_for("d2(X, Y) :- b2(X, Z), b3(Z, c2, Y)", "E2")
        d3_element = element_for("d3(X, Y) :- b3(X, c3, Z), b1(Z, Y)", "E3")
        d2_element.sequence = d3_element.sequence = 10
        # d2 is predicted next (distance 1), d3 after it (distance 2).
        assert scorer(d2_element) < scorer(d3_element)
