"""Tests for the subsumption algorithm — the paper's Section 5.3.2.

Naming follows the paper's running examples where possible (E11/E12/E13,
b2/b3, etc.).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational.relation import Relation
from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.core.cache import Cache
from repro.core.subsumption import (
    derive_full,
    derive_full_lazy,
    derive_part,
    find_relevant,
    match_element,
)


def make_psj(text):
    return psj_of(parse_query(text))


# A tiny database for end-to-end derivation checks.
B2_ROWS = [(x, z) for x in range(4) for z in range(4) if (x + z) % 2 == 0]
B3_ROWS = [(z, c, y) for z in range(4) for c in ("c2", "c3") for y in range(3)]
DB = {
    "b2": Relation(result_schema("b2", 2), B2_ROWS),
    "b3": Relation(result_schema("b3", 3), B3_ROWS),
}


def cache_with(*texts):
    """A cache holding the *actual* evaluation of each definition."""
    cache = Cache()
    elements = []
    for text in texts:
        psj = make_psj(text)
        relation = evaluate_psj(psj, DB.__getitem__)
        elements.append(cache.store(psj, relation))
    return cache, elements


class TestPaperExamples:
    """The b21 examples of Section 5.3.2 step 1."""

    def test_e1_subsumes_single_predicate_query(self):
        # Q_c1 = b21(X, 2); E1 = b21(X, Y) & b22(Y, Z): E1's b21 occurrence
        # can match (its conditions add the join, which is *more*
        # restrictive, so E1 must NOT fully subsume the single-literal Q).
        cache = Cache()
        e1_psj = make_psj("e1(X, Y, Z) :- b21(X, Y), b22(Y, Z)")
        e1 = cache.store(e1_psj, Relation(result_schema("e1", 3)))
        query = make_psj("q(X) :- b21(X, 2)")
        matches = list(match_element(e1, query))
        # The b21 occurrence of E1 maps, but E1's join condition with b22
        # cannot be implied by the query's conditions: no match.
        assert matches == []

    def test_e2_more_restricted_no_match(self):
        # E2 = b21(3, Y) cannot subsume Q = b21(X, 2): X ranges wider.
        cache = Cache()
        e2 = cache.store(make_psj("e2(Y) :- b21(3, Y)"), Relation(result_schema("e2", 1)))
        query = make_psj("q(X) :- b21(X, 2)")
        assert list(match_element(e2, query)) == []

    def test_e2_projection_loss_also_blocks(self):
        # Even b21(3, Y) vs the query b21(3, 2): E2 projects only Y, the
        # query needs X=3 — available as a constant, fine; but residual
        # condition on Y=2 needs Y, which *is* projected: match succeeds.
        cache = Cache()
        e2 = cache.store(make_psj("e2(Y) :- b21(3, Y)"), Relation(result_schema("e2", 1)))
        query = make_psj("q(3) :- b21(3, 2)")
        matches = list(match_element(e2, query))
        assert len(matches) == 1
        assert matches[0].is_full


class TestFullSubsumption:
    def test_unconstrained_scan_subsumes_selection(self):
        cache, (element,) = cache_with("scan(X, Z) :- b2(X, Z)")
        query = make_psj("q(Z) :- b2(2, Z)")
        matches = [m for m in match_element(element, query)]
        assert matches and matches[0].is_full
        derived = derive_full(matches[0], query)
        expected = evaluate_psj(query, DB.__getitem__)
        assert derived == expected

    def test_range_subsumes_narrower_range(self):
        cache, (element,) = cache_with("wide(X, Z) :- b2(X, Z), X < 3")
        query = make_psj("q(X, Z) :- b2(X, Z), X < 2")
        (match,) = list(match_element(element, query))
        assert match.is_full
        derived = derive_full(match, query)
        assert derived == evaluate_psj(query, DB.__getitem__)

    def test_narrow_does_not_subsume_wide(self):
        cache, (element,) = cache_with("narrow(X, Z) :- b2(X, Z), X < 2")
        query = make_psj("q(X, Z) :- b2(X, Z), X < 3")
        assert list(match_element(element, query)) == []

    def test_join_element_subsumes_join_query(self):
        cache, (element,) = cache_with("j(X, Z, C, Y) :- b2(X, Z), b3(Z, C, Y)")
        query = make_psj("q(X, Y) :- b2(X, Z), b3(Z, c2, Y)")
        matches = [m for m in match_element(element, query) if m.is_full]
        assert matches
        derived = derive_full(matches[0], query)
        assert derived == evaluate_psj(query, DB.__getitem__)

    def test_exact_match_has_no_residual(self):
        cache, (element,) = cache_with("s(Z) :- b2(2, Z)")
        query = make_psj("q(Z) :- b2(2, Z)")
        (match,) = [m for m in match_element(element, query) if m.is_full]
        assert match.exact

    def test_projection_must_survive(self):
        # Element projects only X; query needs Z for its projection.
        cache, (element,) = cache_with("narrow(X) :- b2(X, Z)")
        query = make_psj("q(X, Z) :- b2(X, Z)")
        assert list(match_element(element, query)) == []

    def test_residual_condition_needs_projected_column(self):
        # Element projects only X; query filters on Z.
        cache, (element,) = cache_with("narrow(X) :- b2(X, Z)")
        query = make_psj("q(X) :- b2(X, 2)")
        assert list(match_element(element, query)) == []

    def test_implied_residual_skipped(self):
        cache, (element,) = cache_with("same(X, Z) :- b2(X, Z), X < 2")
        query = make_psj("q(X, Z) :- b2(X, Z), X < 2")
        (match,) = [m for m in match_element(element, query) if m.is_full]
        assert match.residual_conditions == ()

    def test_constant_answer_positions(self):
        cache, (element,) = cache_with("scan(X, Z) :- b2(X, Z)")
        query = make_psj("q(Z, marker) :- b2(2, Z)")
        (match,) = [m for m in match_element(element, query) if m.is_full]
        derived = derive_full(match, query)
        assert all(row[1] == "marker" for row in derived)


class TestSelfJoinMapping:
    def test_self_join_query_against_single_occurrence_element(self):
        cache, (element,) = cache_with("scan(X, Z) :- b2(X, Z)")
        query = make_psj("q(X, Y) :- b2(X, Z), b2(Z, Y)")
        matches = list(match_element(element, query))
        # The single-occurrence element can cover either occurrence.
        assert len(matches) == 2
        assert all(not m.is_full for m in matches)
        covered = {next(iter(m.covered_tags)) for m in matches}
        assert covered == {"t0", "t1"}

    def test_two_occurrence_element_against_self_join(self):
        cache, (element,) = cache_with("pairs(X, Z, Y) :- b2(X, Z), b2(Z, Y)")
        query = make_psj("q(X, Y) :- b2(X, Z), b2(Z, Y)")
        full = [m for m in match_element(element, query) if m.is_full]
        assert full
        derived = derive_full(full[0], query)
        assert derived == evaluate_psj(query, DB.__getitem__)


class TestPartialMatches:
    def test_partial_coverage_of_join_query(self):
        # The paper's E12: b3(X, c2, Y) can compute the b3 part of
        # d2(X, c6) = b2(X, Z) & b3(Z, c2, c6).
        cache, (e12,) = cache_with("e12(X, Y) :- b3(X, c2, Y)")
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        matches = list(match_element(e12, query))
        assert len(matches) == 1
        match = matches[0]
        assert not match.is_full
        assert match.covered_tags == frozenset({"t1"})

    def test_e13_also_relevant(self):
        # E13 = b3(X, Y, Z) unconstrained also covers the b3 part.
        cache, (e13,) = cache_with("e13(X, Y, Z) :- b3(X, Y, Z)")
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        matches = list(match_element(e13, query))
        assert len(matches) == 1
        assert matches[0].covered_tags == frozenset({"t1"})

    def test_derive_part_values(self):
        cache, (e13,) = cache_with("e13(X, Y, Z) :- b3(X, Y, Z)")
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        (match,) = list(match_element(e13, query))
        part = derive_part(match, ["t1.c0"])
        # Rows of b3 with c2/c6 in positions 1/2, projected to position 0.
        expected = {(z,) for (z, c, y) in B3_ROWS if c == "c2" and y == "c6"}
        assert set(part.rows) == expected

    def test_derive_part_missing_column_rejected(self):
        cache, (e12,) = cache_with("e12(X) :- b3(X, c2, c6)")
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        matches = list(match_element(e12, query))
        (match,) = matches
        with pytest.raises(ValueError):
            derive_part(match, ["t1.c2"])


class TestFindRelevant:
    def test_paper_example_relevant_set(self):
        # Section 5.3.2: cache = {E11, E12, E13}; query d2(X, c6).
        cache, elements = cache_with(
            "e11(X, Y) :- b2(X, c1), b3(Y, c2, c6)",
            "e12(X, Y) :- b3(X, c2, Y)",
            "e13(X, Y, Z) :- b3(X, Y, Z)",
        )
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        matches = find_relevant(cache, query)
        relevant_ids = {m.element.element_id for m in matches}
        # E12 and E13 can compute the b3 part (the paper's conclusion).
        assert elements[1].element_id in relevant_ids
        assert elements[2].element_id in relevant_ids

    def test_full_matches_sorted_first(self):
        cache, elements = cache_with(
            "part(X) :- b3(X, c2, c6)",
            "whole(X, Z) :- b2(X, Z), b3(Z, c2, c6)",
        )
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        matches = find_relevant(cache, query)
        assert matches[0].is_full

    def test_tied_full_matches_keep_creation_order(self):
        # Several structurally equivalent full matches tie under the sort
        # key; the stable sort must then keep element-creation order (the
        # planner derives from the first).  A hash-ordered candidate walk
        # made this differ between processes for the same seed.
        cache, elements = cache_with(
            "wide1(X, Y, Z) :- b3(X, Y, Z)",
            "wide2(Z, Y, X) :- b3(X, Y, Z)",
            "wide3(Y, X, Z) :- b3(X, Y, Z)",
        )
        query = make_psj("d(X) :- b3(X, c2, c6)")
        matches = find_relevant(cache, query)
        full = [m.element.element_id for m in matches if m.is_full]
        assert full == [e.element_id for e in elements]

    def test_unrelated_elements_ignored(self):
        cache, _ = cache_with("other(X, Z) :- b2(X, Z)")
        query = make_psj("q(X, Y, Z) :- b3(X, Y, Z)")
        assert find_relevant(cache, query) == []

    def test_element_with_extra_predicate_ignored(self):
        cache, _ = cache_with("j(X, Z, C, Y) :- b2(X, Z), b3(Z, C, Y)")
        query = make_psj("q(X, Z) :- b2(X, Z)")
        assert find_relevant(cache, query) == []


class TestLazyDerivation:
    def test_lazy_matches_eager(self):
        cache, (element,) = cache_with("scan(X, Z) :- b2(X, Z)")
        query = make_psj("q(Z) :- b2(2, Z)")
        (match,) = [m for m in match_element(element, query) if m.is_full]
        lazy = derive_full_lazy(match, query)
        eager = derive_full(match, query)
        assert lazy.to_extension() == eager

    def test_lazy_produces_on_demand(self):
        cache, (element,) = cache_with("scan(X, Z) :- b2(X, Z)")
        query = make_psj("q(X, Z) :- b2(X, Z)")
        (match,) = [m for m in match_element(element, query) if m.is_full]
        lazy = derive_full_lazy(match, query)
        assert lazy.produced_count == 0
        lazy.take(2)
        assert lazy.produced_count == 2

    def test_derive_full_on_partial_rejected(self):
        cache, (e12,) = cache_with("e12(X, Y) :- b3(X, c2, Y)")
        query = make_psj("d2(X) :- b2(X, Z), b3(Z, c2, c6)")
        (match,) = list(match_element(e12, query))
        with pytest.raises(ValueError):
            derive_full(match, query)


# -- property test: subsumption-derived results equal direct evaluation -----------

element_texts = st.sampled_from(
    [
        "e(X, Z) :- b2(X, Z)",
        "e(X, Z) :- b2(X, Z), X < 3",
        "e(Z) :- b2(1, Z)",
        "e(X, Z, C, Y) :- b2(X, Z), b3(Z, C, Y)",
        "e(X, Y) :- b3(X, c2, Y)",
    ]
)
query_texts = st.sampled_from(
    [
        "q(Z) :- b2(1, Z)",
        "q(X, Z) :- b2(X, Z), X < 2",
        "q(X) :- b2(X, 2)",
        "q(X, Y) :- b2(X, Z), b3(Z, c2, Y)",
        "q(Y) :- b3(1, c2, Y)",
        "q(X, Z) :- b2(X, Z)",
    ]
)


@given(element_texts, query_texts)
def test_full_match_derivation_is_correct(element_text, query_text):
    """Whenever subsumption claims a full match, deriving through it must
    equal evaluating the query directly against the database."""
    cache = Cache()
    element_psj = make_psj(element_text)
    element = cache.store(element_psj, evaluate_psj(element_psj, DB.__getitem__))
    query = make_psj(query_text)
    for match in match_element(element, query):
        if match.is_full:
            derived = derive_full(match, query)
            assert derived == evaluate_psj(query, DB.__getitem__)
