"""`cms.explain`: the plan and subsumption rationale, without execution.

The contract under test: explain is **pure observation** — it never
charges the clock, increments a counter, issues a remote request, or
mutates the cache — and its rationale agrees with what actually running
the query would do.
"""

import pytest

from repro.common.errors import PlanningError
from repro.common.metrics import IE_CAQL_QUERIES, REMOTE_REQUESTS
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.core.query_explain import PlanExplanation


def load_tables(server):
    server.load_table(
        relation_from_columns(
            "parent",
            par=["tom", "tom", "bob", "bob", "liz"],
            child=["bob", "liz", "ann", "pat", "joe"],
        )
    )
    server.load_table(
        relation_from_columns(
            "age",
            person=["tom", "bob", "liz", "ann", "pat", "joe"],
            years=[60, 35, 33, 8, 10, 2],
        )
    )
    return server


@pytest.fixture
def cms():
    system = CacheManagementSystem(load_tables(RemoteDBMS()))
    system.begin_session()
    return system


class TestExplainIsPure:
    def test_warm_explain_is_completely_free(self, cms):
        # One real query warms the (memoized) catalog metadata; after
        # that, explain charges nothing and increments nothing.
        cms.query(parse_query("q(Y) :- parent(tom, Y)")).fetch_all()
        before_clock = cms.clock.now
        before = cms.metrics.snapshot()
        explanation = cms.explain(parse_query("q2(Y) :- parent(bob, Y)"))
        assert isinstance(explanation, PlanExplanation)
        assert cms.clock.now == before_clock
        assert cms.metrics.snapshot() == before

    def test_explain_does_not_count_as_a_query(self, cms):
        cms.explain(parse_query("q(Y) :- parent(tom, Y)"))
        assert cms.metrics.get(IE_CAQL_QUERIES) == 0

    def test_explain_does_not_populate_the_cache(self, cms):
        cms.explain(parse_query("q(Y) :- parent(tom, Y)"))
        assert cms.cache_statistics()["elements"] == 0

    def test_explain_then_query_costs_the_same_as_query_alone(self):
        # Cold, explain pays only the planner's memoized catalog lookup —
        # the same lookup the query itself would pay, exactly once.
        def run(with_explain: bool):
            cms = CacheManagementSystem(load_tables(RemoteDBMS()))
            cms.begin_session()
            query = parse_query("q(Y) :- parent(tom, Y)")
            if with_explain:
                cms.explain(query)
            cms.query(query).fetch_all()
            return cms.clock.now, cms.metrics.snapshot()

        assert run(with_explain=True) == run(with_explain=False)

    def test_explain_matches_subsequent_execution(self, cms):
        query = parse_query("q(Y) :- parent(tom, Y)")
        explanation = cms.explain(query)
        assert explanation.strategy == "remote"
        assert not explanation.served_from_cache
        before = cms.metrics.get(REMOTE_REQUESTS)
        cms.query(query).fetch_all()
        # The plan said remote, and running it did go remote.
        assert cms.metrics.get(REMOTE_REQUESTS) > before
        # ... and a repeat is served from cache, as explain now predicts.
        assert cms.explain(query).served_from_cache


class TestRationale:
    def test_exact_repeat_is_served_from_cache(self, cms):
        query = parse_query("q(Y) :- parent(tom, Y)")
        cms.query(query).fetch_all()
        explanation = cms.explain(query)
        assert explanation.strategy == "exact"
        assert explanation.served_from_cache

    def test_subsumed_query_reports_the_matching_element(self, cms):
        cms.query(parse_query("q(X, Y) :- parent(X, Y)")).fetch_all()
        explanation = cms.explain(parse_query("q2(Y) :- parent(tom, Y)"))
        matched = [c for c in explanation.candidates if c.matched]
        assert matched, explanation.render()
        assert explanation.served_from_cache

    def test_rejected_candidates_carry_reasons(self, cms):
        cms.query(parse_query("q(Y) :- parent(tom, Y)")).fetch_all()
        explanation = cms.explain(parse_query("q2(Y) :- parent(bob, Y)"))
        rejected = [c for c in explanation.candidates if not c.matched]
        assert rejected
        reasons = [r for c in rejected for r in c.rejections]
        assert any("more restrictive" in reason for reason in reasons)

    def test_unrelated_predicates_are_not_candidates(self, cms):
        cms.query(parse_query("q(Y) :- parent(tom, Y)")).fetch_all()
        explanation = cms.explain(parse_query("q2(A) :- age(tom, A)"))
        assert explanation.candidates == ()

    def test_subsumption_off_explains_without_candidates(self):
        system = CacheManagementSystem(
            load_tables(RemoteDBMS()), features=CMSFeatures(subsumption=False)
        )
        system.begin_session()
        system.query(parse_query("q(X, Y) :- parent(X, Y)")).fetch_all()
        explanation = system.explain(parse_query("q2(Y) :- parent(tom, Y)"))
        assert explanation.candidates == ()


class TestRendering:
    def test_to_dict_is_json_friendly(self, cms):
        cms.query(parse_query("q(Y) :- parent(tom, Y)")).fetch_all()
        doc = cms.explain(parse_query("q2(Y) :- parent(bob, Y)")).to_dict()
        assert doc["strategy"]
        assert isinstance(doc["candidates"], list)
        import json

        json.dumps(doc)  # must not raise

    def test_render_names_the_strategy_and_candidates(self, cms):
        cms.query(parse_query("q(Y) :- parent(tom, Y)")).fetch_all()
        text = cms.explain(parse_query("q2(Y) :- parent(bob, Y)")).render()
        assert "strategy=" in text
        assert "candidate" in text

    def test_non_caql_input_raises_planning_error(self, cms):
        with pytest.raises(PlanningError):
            cms.explain("not a query")
