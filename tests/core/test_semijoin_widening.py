"""Semijoin projection widening: the operator-level cache keeps the
join-internal columns a query's final projection discarded, so a
*tighter* drill-down can be answered cache-only even though the looser
drill's whole view never could (its filter column was projected away)."""

import pytest

from repro.common.metrics import (
    CACHE_INTERMEDIATE_STORES,
    REMOTE_REQUESTS,
    REMOTE_TUPLES,
)
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import retail_universe

WORKLOAD = retail_universe(rows=120, orders=260, domain=1000, seed=5)


def build_cms(intermediates: bool) -> CacheManagementSystem:
    remote = RemoteDBMS()
    for table in WORKLOAD.tables:
        remote.load_table(table)
    cms = CacheManagementSystem(
        remote,
        capacity_bytes=4_000_000,
        features=CMSFeatures(intermediates=intermediates),
    )
    cms.begin_session()
    return cms


def ground_truth(cat: str, threshold: int):
    items = {
        item_id: val
        for item_id, item_cat, val in WORKLOAD.tables[0].rows
        if item_cat == cat and val >= threshold
    }
    return sorted(
        (item_id, qty)
        for item_id, qty in WORKLOAD.tables[1].rows
        if item_id in items
    )


def run(cms, text):
    return sorted(cms.query(parse_query(text)).fetch_all())


SELECT = "s(I, V) :- item(I, cat3, V), V >= 300"
DRILL = "j1(I, Q) :- item(I, cat3, V), ord(I, Q), V >= 500"
TIGHTER = "j2(I, Q) :- item(I, cat3, V), ord(I, Q), V >= 700"


class TestWidenedIntermediateServesTighterDrill:
    @pytest.fixture()
    def warmed(self):
        """A CMS that ran the selection and the first drill-down."""
        cms = build_cms(intermediates=True)
        run(cms, SELECT)
        assert run(cms, DRILL) == ground_truth("cat3", 500)
        return cms

    def test_widened_semijoin_intermediate_is_registered(self, warmed):
        assert warmed.metrics.get(CACHE_INTERMEDIATE_STORES) > 0
        elements = warmed.cache.report()["elements"]
        widened = [e for e in elements if e["operator"] == "semijoin-fetch"]
        assert widened, "the drill's reduced fetch was not registered"
        assert all(e["kind"] == "intermediate" for e in widened)
        assert any(e["parents"] for e in widened)
        warmed.cache.check_invariants()

    def test_tighter_drill_is_answered_cache_only(self, warmed):
        """The point of widening: the tighter drill filters on ``V``,
        which ``j1``'s own projection discarded — only the widened
        intermediate can answer it without going remote."""
        requests = warmed.metrics.get(REMOTE_REQUESTS)
        tuples = warmed.metrics.get(REMOTE_TUPLES)
        assert run(warmed, TIGHTER) == ground_truth("cat3", 700)
        assert warmed.metrics.get(REMOTE_REQUESTS) == requests
        assert warmed.metrics.get(REMOTE_TUPLES) == tuples

    def test_whole_view_caching_must_go_remote_for_tighter_drill(self):
        """The contrast case: with intermediates off, ``j1``'s whole view
        cannot serve ``j2`` (``V`` is gone), so the remote is consulted
        again — same answers, strictly more shipping."""
        cms = build_cms(intermediates=False)
        run(cms, SELECT)
        run(cms, DRILL)
        requests = cms.metrics.get(REMOTE_REQUESTS)
        assert run(cms, TIGHTER) == ground_truth("cat3", 700)
        assert cms.metrics.get(REMOTE_REQUESTS) > requests


class TestNonFunctionalKeyStaysSound:
    """Widening pulls source-side columns through a key -> row mapping;
    when a binding key maps to several source rows the column is not
    functionally determined and must be dropped, never guessed."""

    def test_duplicate_key_bindings_keep_answers_correct(self):
        cms = build_cms(intermediates=True)
        # ord(I, Q) has several orders per item: I does not determine Q.
        run(cms, "o(I, Q) :- ord(I, Q), Q >= 2")
        got = run(cms, "jo(I, V) :- ord(I, Q), item(I, cat3, V), Q >= 5")
        want = sorted(
            (item_id, val)
            for item_id, item_cat, val in WORKLOAD.tables[0].rows
            if item_cat == "cat3"
            and any(
                oid == item_id and qty >= 5
                for oid, qty in WORKLOAD.tables[1].rows
            )
        )
        assert got == want
        # And a tighter repeat stays correct whether or not it could be
        # served from cache — soundness before savings.
        tighter = run(cms, "jo2(I, V) :- ord(I, Q), item(I, cat3, V), Q >= 8")
        want_tight = sorted(
            (item_id, val)
            for item_id, item_cat, val in WORKLOAD.tables[0].rows
            if item_cat == "cat3"
            and any(
                oid == item_id and qty >= 8
                for oid, qty in WORKLOAD.tables[1].rows
            )
        )
        assert tighter == want_tight
        cms.cache.check_invariants()
