"""Unit tests for the PSJ canonicalizer's interval normal form.

The hand-picked edge cases the ISSUE names: contradictory bounds,
``>=`` vs ``>`` adjacency, mixed int/float bounds on one variable,
equality pins collapsing intervals, and the repr-collider constant
family (``1``, ``1.0``, ``True``, ``"1"``).  The broad equivalences are
property-tested in ``test_canonical_property.py``; the fuzzer's
``variants`` profile carries the end-to-end argument.
"""

import pytest

from repro.caql.parser import parse_query
from repro.caql.psj import ConstProj, PSJQuery, psj_from_literals
from repro.core.canonical import (
    canonical_constant,
    canonical_key,
    canonicalize,
)
from repro.relational.expressions import Col, Comparison, Lit


def psj(text: str) -> PSJQuery:
    query = parse_query(text)
    return psj_from_literals(
        query.name,
        query.relation_literals(),
        query.comparison_literals(),
        query.answers,
    )


def keys_equal(a: str, b: str) -> bool:
    return canonical_key(psj(a)) == canonical_key(psj(b))


class TestIntervalFolding:
    def test_redundant_lower_bounds_fold(self):
        assert keys_equal(
            "d0(X, Y) :- b0(X, Y), X > 5, X > 3",
            "d0(X, Y) :- b0(X, Y), X > 5",
        )

    def test_redundant_upper_bounds_fold(self):
        assert keys_equal(
            "d0(X, Y) :- b0(X, Y), X < 3, X < 5, X < 9",
            "d0(X, Y) :- b0(X, Y), X < 3",
        )

    def test_strict_beats_nonstrict_at_equal_value(self):
        # x > 5 ∧ x >= 5  ≡  x > 5 (and symmetrically for uppers).
        assert keys_equal(
            "d0(X, Y) :- b0(X, Y), X > 5, X >= 5",
            "d0(X, Y) :- b0(X, Y), X > 5",
        )
        assert keys_equal(
            "d0(X, Y) :- b0(X, Y), X < 5, X =< 5",
            "d0(X, Y) :- b0(X, Y), X < 5",
        )

    def test_adjacent_strictness_levels_stay_distinct(self):
        # >= 5 admits 5; > 5 does not: different queries, different keys.
        assert not keys_equal(
            "d0(X, Y) :- b0(X, Y), X >= 5",
            "d0(X, Y) :- b0(X, Y), X > 5",
        )

    def test_mixed_int_float_bounds_on_one_variable(self):
        # 4.5 < 5, so x > 5 subsumes x > 4.5 whatever the spelling.
        assert keys_equal(
            "d0(X, Y) :- b0(X, Y), X > 4.5, X > 5",
            "d0(X, Y) :- b0(X, Y), X > 5.0",
        )

    def test_contradictory_bounds_are_unsatisfiable(self):
        form = canonicalize(psj("d0(X, Y) :- b0(X, Y), X > 5, X < 3"))
        assert form.unsatisfiable
        assert form.key == ("unsat", "2")

    def test_closed_empty_interval_is_unsatisfiable(self):
        # x >= 5 ∧ x < 5 and x > 5 ∧ x =< 5 both admit nothing.
        assert canonicalize(psj("d0(X) :- b0(X, Y), X >= 5, X < 5")).unsatisfiable
        assert canonicalize(psj("d0(X) :- b0(X, Y), X > 5, X =< 5")).unsatisfiable

    def test_touching_nonstrict_bounds_collapse_to_a_pin(self):
        assert keys_equal(
            "d0(X) :- b0(X, Y), X >= 5, X =< 5",
            "d0(X) :- b0(X, Y), X = 5",
        )

    def test_equality_pin_collapses_interval(self):
        # The pin absorbs every bound it satisfies...
        assert keys_equal(
            "d0(X) :- b0(X, Y), X = 5, X > 3, X =< 9",
            "d0(X) :- b0(X, Y), X = 5",
        )
        # ...and contradicts every bound it does not.
        assert canonicalize(psj("d0(X) :- b0(X, Y), X = 5, X > 7")).unsatisfiable

    def test_conflicting_pins_are_unsatisfiable(self):
        assert canonicalize(psj("d0(X) :- b0(X, Y), X = 3, X = 5")).unsatisfiable

    def test_pin_on_excluded_value_is_unsatisfiable(self):
        assert canonicalize(psj("d0(X) :- b0(X, Y), X = 3, X \\= 3")).unsatisfiable
        assert canonicalize(
            psj("d0(X) :- b0(X, Y), X = 3, X \\= 3.0")
        ).unsatisfiable

    def test_exclusions_outside_the_interval_fold_away(self):
        assert keys_equal(
            "d0(X) :- b0(X, Y), X > 2, X \\= 1",
            "d0(X) :- b0(X, Y), X > 2",
        )

    def test_exclusions_inside_the_interval_survive(self):
        assert not keys_equal(
            "d0(X) :- b0(X, Y), X > 2, X \\= 4",
            "d0(X) :- b0(X, Y), X > 2",
        )


class TestConstantSpellings:
    def test_repr_collider_family(self):
        # 1, 1.0 and True are ==-equal: one equality class, one spelling.
        # "1" is a different value entirely and must stay apart.
        assert canonical_constant(1) == canonical_constant(1.0)
        assert canonical_constant(True) == canonical_constant(1)
        assert type(canonical_constant(1)) is float
        assert canonical_constant("1") == "1"
        assert keys_equal(
            "d0(X) :- b0(X, Y), X = 1",
            "d0(X) :- b0(X, Y), X = 1.0",
        )

    def test_string_spelling_never_merges_with_numeric(self):
        a = psj_from_literals(
            "d0", [parse_query("d0(X) :- b0(X, Y)").literals[0]], [], ()
        )
        one = PSJQuery(
            "d0", a.occurrences,
            (Comparison(Col("t0.c0"), "=", Lit(1)),), ("t0.c0",),
        )
        one_str = PSJQuery(
            "d0", a.occurrences,
            (Comparison(Col("t0.c0"), "=", Lit("1")),), ("t0.c0",),
        )
        assert canonical_key(one) != canonical_key(one_str)

    def test_huge_ints_keep_their_own_spelling(self):
        # 10**30 is not float-representable: it must not collapse onto
        # the nearest float's equality class.
        big = 10**30
        assert canonical_constant(big) == big
        assert type(canonical_constant(big)) is int

    def test_answer_constants_are_not_respelled(self):
        # ConstProj values are *outputs*: 1 and 1.0 are different rows
        # under the type-preserving answer encoding.
        base = psj("d0(X) :- b0(X, Y)")
        one = PSJQuery(base.name, base.occurrences, base.conditions,
                       (ConstProj(1),) + base.projection)
        one_f = PSJQuery(base.name, base.occurrences, base.conditions,
                         (ConstProj(1.0),) + base.projection)
        assert canonical_key(one) != canonical_key(one_f)


class TestAlphaEquivalence:
    def test_conjunct_order_is_irrelevant(self):
        assert keys_equal(
            "d0(X, Y) :- b0(X, Z), b1(Z, Y), X > 2",
            "d0(X, Y) :- b1(Z, Y), X > 2, b0(X, Z)",
        )

    def test_variable_names_are_irrelevant(self):
        assert keys_equal(
            "d0(X, Y) :- b0(X, Z), b1(Z, Y)",
            "d0(U, W) :- b0(U, V), b1(V, W)",
        )

    def test_same_relation_twice_is_ordered_canonically(self):
        assert keys_equal(
            "d0(X, Y) :- b0(X, Z), b0(Z, Y), X > 5",
            "d0(X, Y) :- b0(Z, Y), b0(X, Z), X > 5",
        )

    def test_projection_order_still_matters(self):
        assert not keys_equal(
            "d0(X, Y) :- b0(X, Y)",
            "d0(Y, X) :- b0(X, Y)",
        )

    def test_join_shape_still_matters(self):
        assert not keys_equal(
            "d0(X, Y) :- b0(X, Z), b1(Z, Y)",
            "d0(X, Y) :- b0(X, Z), b1(W, Y), Z > W",
        )


class TestNormalizedExpression:
    def test_canonicalization_is_idempotent(self):
        query = psj("d0(X, Y) :- b1(Z, Y), X > 5, X > 3, b0(X, Z), X \\= 1")
        form = canonicalize(query)
        again = canonicalize(form.query)
        assert again.key == form.key
        assert again.query == form.query

    def test_trivial_self_comparisons_fold(self):
        base = psj("d0(X) :- b0(X, Y)")
        trivial = PSJQuery(
            base.name, base.occurrences,
            (Comparison(Col("t0.c0"), "<=", Col("t0.c0")),), base.projection,
        )
        assert canonical_key(trivial) == canonical_key(base)
        never = PSJQuery(
            base.name, base.occurrences,
            (Comparison(Col("t0.c0"), "<", Col("t0.c0")),), base.projection,
        )
        assert canonicalize(never).unsatisfiable

    def test_constant_folded_unsat_queries_share_the_unsat_key(self):
        query = psj("d0(X) :- b0(X, Y), 1 > 2")
        assert query.unsatisfiable
        assert canonical_key(query) == ("unsat", "1")
