"""Tests for cache storage, uses, and replacement."""

import pytest

from repro.common.errors import CacheCapacityError, CacheError
from repro.relational.generator import generator_from_rows
from repro.relational.relation import Relation
from repro.caql.parser import parse_query
from repro.caql.eval import psj_of, result_schema
from repro.core.cache import Cache, CacheElement, lru_scorer


def make_psj(text):
    return psj_of(parse_query(text))


def make_relation(name, n, width=2):
    schema = result_schema(name, width)
    return Relation(schema, [tuple(f"{name}{i}_{j}" for j in range(width)) for i in range(n)])


def store(cache, text, rows=5):
    psj = make_psj(text)
    return cache.store(psj, make_relation(psj.name, rows, max(psj.arity, 1)))


class TestStore:
    def test_store_and_get(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        assert cache.get(element.element_id) is element
        assert len(cache) == 1

    def test_ids_unique(self):
        cache = Cache()
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        e2 = store(cache, "d2(X, Y) :- b2(X, Y)")
        assert e1.element_id != e2.element_id

    def test_identical_definition_reuses_element(self):
        # Section 5.2: one stored instance serves several uses.
        cache = Cache()
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        psj = make_psj("renamed(A, B) :- b1(A, B)")  # same canonical key
        e2 = cache.store(psj, make_relation("renamed", 5))
        assert e1 is e2
        assert len(cache) == 1

    def test_uses_recorded(self):
        cache = Cache()
        psj = make_psj("d1(X, Y) :- b1(X, Y)")
        e1 = cache.store(psj, make_relation("d1", 3), use="stream-producer")
        e2 = cache.store(psj, make_relation("d1", 3), use="indexed-lookup")
        assert e1 is e2
        assert e1.uses == {"stream-producer", "indexed-lookup"}

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            Cache(capacity_bytes=0)

    def test_discard(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.discard(element.element_id)
        assert len(cache) == 0
        assert cache.elements_for_predicate("b1") == []

    def test_discard_unknown_is_noop(self):
        Cache().discard("E99")


class TestLookup:
    def test_lookup_exact(self):
        cache = Cache()
        store(cache, "d1(X) :- b1(X, c1)")
        assert cache.lookup_exact(make_psj("other(W) :- b1(W, c1)")) is not None
        assert cache.lookup_exact(make_psj("other(W) :- b1(W, c2)")) is None

    def test_elements_for_predicate(self):
        cache = Cache()
        store(cache, "d1(X, Y) :- b1(X, Y)")
        store(cache, "d2(X) :- b1(X, Z), b2(Z, X)")
        assert len(cache.elements_for_predicate("b1")) == 2
        assert len(cache.elements_for_predicate("b2")) == 1
        assert cache.elements_for_predicate("zzz") == []

    def test_elements_for_predicate_in_creation_order(self):
        # The predicate index must iterate in element-creation order, not
        # set (string-hash) order: the planner breaks ties among equal
        # subsumption matches by candidate order, so hash order here means
        # the same seed produces different plans in different processes.
        cache = Cache()
        ids = [
            store(cache, f"d{i}(X) :- b1(X, c{i})").element_id
            for i in range(12)
        ]
        assert [
            e.element_id for e in cache.elements_for_predicate("b1")
        ] == ids

    def test_predicate_order_survives_discard(self):
        cache = Cache()
        ids = [
            store(cache, f"d{i}(X) :- b1(X, c{i})").element_id
            for i in range(6)
        ]
        cache.discard(ids[2])
        cache.discard(ids[4])
        survivors = [ids[0], ids[1], ids[3], ids[5]]
        assert [
            e.element_id for e in cache.elements_for_predicate("b1")
        ] == survivors

    def test_touch_updates_sequence_and_count(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        before = element.sequence
        cache.touch(element)
        assert element.sequence > before
        assert element.use_count == 1


class TestEviction:
    def small_cache(self):
        # Each stored element estimates ~144 bytes: room for exactly two.
        return Cache(capacity_bytes=320)

    def test_lru_eviction(self):
        cache = self.small_cache()
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        e2 = store(cache, "d2(X, Y) :- b2(X, Y)")
        cache.touch(e1)  # e2 becomes least recently used
        store(cache, "d3(X, Y) :- b3(X, Y)")
        assert e1.element_id in cache
        assert e2.element_id not in cache
        assert cache.eviction_count == 1

    def test_pinned_elements_survive(self):
        cache = self.small_cache()
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        e1.pinned = True
        e2 = store(cache, "d2(X, Y) :- b2(X, Y)")
        store(cache, "d3(X, Y) :- b3(X, Y)")
        assert e1.element_id in cache
        assert e2.element_id not in cache

    def test_oversized_element_rejected(self):
        cache = Cache(capacity_bytes=100)
        with pytest.raises(CacheCapacityError):
            store(cache, "d1(X, Y) :- b1(X, Y)", rows=100)

    def test_all_pinned_raises(self):
        cache = self.small_cache()
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        e2 = store(cache, "d2(X, Y) :- b2(X, Y)")
        e1.pinned = e2.pinned = True
        with pytest.raises(CacheCapacityError):
            store(cache, "d3(X, Y) :- b3(X, Y)")

    def test_custom_scorer_changes_victim(self):
        cache = self.small_cache()
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        e2 = store(cache, "d2(X, Y) :- b2(X, Y)")
        # Score d2 low (protect), d1 high (evict) despite LRU order.
        def scorer(e):
            return 100.0 if e.view_name == "d1" else 0.0

        cache.scorer = scorer
        store(cache, "d3(X, Y) :- b3(X, Y)")
        assert e1.element_id not in cache
        assert e2.element_id in cache

    def test_used_bytes_tracks_contents(self):
        cache = Cache()
        assert cache.used_bytes() == 0
        store(cache, "d1(X, Y) :- b1(X, Y)")
        assert cache.used_bytes() > 0

    def test_clear(self):
        cache = Cache()
        store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes() == 0


class TestCacheElement:
    def test_generator_element(self):
        psj = make_psj("d1(X, Y) :- b1(X, Y)")
        schema = result_schema("d1", 2)
        gen = generator_from_rows(schema, [(1, 2), (3, 4)])
        element = CacheElement("E1", psj, gen)
        assert element.is_generator
        assert element.rows_materialized() == 0
        gen.take(1)
        assert element.rows_materialized() == 1

    def test_promote_generator(self):
        psj = make_psj("d1(X, Y) :- b1(X, Y)")
        gen = generator_from_rows(result_schema("d1", 2), [(1, 2)])
        element = CacheElement("E1", psj, gen)
        extension = element.promote()
        assert not element.is_generator
        assert extension.rows == [(1, 2)]

    def test_indexes_promote_generator(self):
        psj = make_psj("d1(X, Y) :- b1(X, Y)")
        gen = generator_from_rows(result_schema("d1", 2), [(1, 2), (3, 4)])
        element = CacheElement("E1", psj, gen)
        indexes = element.indexes()
        index = indexes.ensure(("a0",))
        assert index.lookup((1,)) == [(1, 2)]

    def test_has_index_on(self):
        psj = make_psj("d1(X, Y) :- b1(X, Y)")
        element = CacheElement("E1", psj, make_relation("d1", 2))
        assert not element.has_index_on(("a0",))
        element.indexes().ensure(("a0",))
        assert element.has_index_on(("a0",))

    def test_view_name(self):
        psj = make_psj("d7(X, Y) :- b1(X, Y)")
        element = CacheElement("E1", psj, make_relation("d7", 1))
        assert element.view_name == "d7"

    def test_lru_scorer_orders_by_recency(self):
        psj = make_psj("d1(X, Y) :- b1(X, Y)")
        old = CacheElement("E1", psj, make_relation("d1", 1), sequence=1)
        new = CacheElement("E2", psj, make_relation("d1", 1), sequence=9)
        assert lru_scorer(old) > lru_scorer(new)
