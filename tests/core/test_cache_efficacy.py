"""The per-element cache-efficacy ledger: derivation cost, reuse credit,
advice attribution, timestamps, and the report surfaces (``cache.report``
and ``cms.explain``)."""

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import CACHE_SAVED_SECONDS, Metrics
from repro.caql.eval import psj_of, result_schema
from repro.caql.parser import parse_query
from repro.core.cache import Cache
from repro.core.cms import CacheManagementSystem
from repro.relational.relation import Relation
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy


def psj(name: str, body: str):
    return psj_of(parse_query(f"{name}(X, Y) :- {body}"))


def relation(name: str, rows) -> Relation:
    return Relation(result_schema(name, 2), rows)


def make_cache(capacity: int = 100_000):
    clock = SimClock()
    metrics = Metrics()
    return Cache(capacity, metrics=metrics, clock=clock), clock, metrics


class TestLedgerBookkeeping:
    def test_store_stamps_time_and_derivation_cost(self):
        cache, clock, _metrics = make_cache()
        clock.advance(2.5)
        element = cache.store(
            psj("q", "r(X, Y)"), relation("q", [(1, 2)]), derivation_seconds=0.4
        )
        assert element.created_at == 2.5
        assert element.last_used_at == 2.5
        assert element.derivation_seconds == 0.4
        assert element.saved_seconds == 0.0

    def test_restore_keeps_the_original_derivation_cost(self):
        cache, _clock, _metrics = make_cache()
        definition = psj("q", "r(X, Y)")
        first = cache.store(definition, relation("q", [(1, 2)]),
                            derivation_seconds=0.4)
        again = cache.store(definition, relation("q", [(1, 2)]),
                            derivation_seconds=9.9)
        assert again is first
        assert again.derivation_seconds == 0.4

    def test_touch_advances_last_used_only(self):
        cache, clock, _metrics = make_cache()
        element = cache.store(psj("q", "r(X, Y)"), relation("q", [(1, 2)]))
        clock.advance(3.0)
        cache.touch(element)
        assert element.last_used_at == 3.0
        assert element.created_at == 0.0

    def test_credit_saving_accumulates_and_hits_the_ledger(self):
        cache, _clock, metrics = make_cache()
        element = cache.store(psj("q", "r(X, Y)"), relation("q", [(1, 2)]),
                              derivation_seconds=0.25)
        cache.credit_saving(element)
        cache.credit_saving(element)
        cache.credit_saving(element, seconds=0.1)
        assert element.saved_seconds == pytest.approx(0.6)
        assert metrics.get(CACHE_SAVED_SECONDS) == pytest.approx(0.6)

    def test_credit_saving_ignores_nonpositive_cost(self):
        cache, _clock, metrics = make_cache()
        element = cache.store(psj("q", "r(X, Y)"), relation("q", [(1, 2)]))
        cache.credit_saving(element)  # derivation cost was never recorded
        cache.credit_saving(element, seconds=0.0)
        assert element.saved_seconds == 0.0
        assert metrics.get(CACHE_SAVED_SECONDS) == 0

    def test_invariants_cover_the_ledger_fields(self):
        from repro.common.errors import InvariantViolation

        cache, _clock, _metrics = make_cache()
        element = cache.store(psj("q", "r(X, Y)"), relation("q", [(1, 2)]))
        cache.check_invariants()
        element.saved_seconds = -1.0
        with pytest.raises(InvariantViolation):
            cache.check_invariants()
        element.saved_seconds = 0.0
        element.last_used_at = element.created_at - 1.0
        with pytest.raises(InvariantViolation):
            cache.check_invariants()


class TestReport:
    def test_element_report_shape(self):
        cache, clock, _metrics = make_cache()
        element = cache.store(psj("q", "r(X, Y)"), relation("q", [(1, 2)]),
                              derivation_seconds=0.2)
        clock.advance(5.0)
        cache.touch(element)
        cache.credit_saving(element)
        clock.advance(1.0)
        entry = cache.element_report(element)
        assert entry["element"] == element.element_id
        assert entry["hits"] == 1
        assert entry["derivation_seconds"] == 0.2
        assert entry["saved_seconds"] == pytest.approx(0.2)
        assert entry["age_seconds"] == pytest.approx(6.0)
        assert entry["idle_seconds"] == pytest.approx(1.0)
        assert entry["observed_reuse"] is True

    def test_report_orders_elements_and_totals(self):
        cache, _clock, _metrics = make_cache()
        for index in range(3):
            cache.store(
                psj(f"q{index}", f"r(X, Y), X >= {index}"),
                relation(f"q{index}", [(1, 2)]),
                derivation_seconds=0.1,
            )
        report = cache.report()
        ids = [entry["element"] for entry in report["elements"]]
        assert ids == sorted(ids, key=lambda i: int(i.lstrip("E")))
        totals = report["totals"]
        assert totals["elements"] == 3
        assert totals["derivation_seconds"] == pytest.approx(0.3)
        assert totals["saved_seconds"] == 0.0


class TestCMSIntegration:
    """A live session threads the ledger end to end: derivation costs are
    clock deltas around real fetches, reuse credits land on hits, and
    ``cms.explain`` surfaces the efficacy rows."""

    @pytest.fixture()
    def cms(self):
        server = RemoteDBMS()
        for table in genealogy(seed=23).tables:
            server.load_table(table)
        cms = CacheManagementSystem(server)
        cms.begin_session()
        return cms

    def test_derivation_cost_is_the_fetch_clock_delta(self, cms):
        query = parse_query("q(Y) :- parent(p8, Y)")
        before = cms.clock.now
        cms.query(query).fetch_all()
        elapsed = cms.clock.now - before
        elements = list(cms.cache._elements.values())
        assert len(elements) == 1
        assert 0 < elements[0].derivation_seconds <= elapsed

    def test_repeat_query_credits_the_saving(self, cms):
        query = parse_query("q(Y) :- parent(p8, Y)")
        cms.query(query).fetch_all()
        assert cms.metrics.get(CACHE_SAVED_SECONDS) == 0
        cms.query(query).fetch_all()
        element = next(iter(cms.cache._elements.values()))
        assert element.saved_seconds == pytest.approx(element.derivation_seconds)
        assert cms.metrics.get(CACHE_SAVED_SECONDS) == pytest.approx(
            element.derivation_seconds
        )

    def test_efficacy_never_perturbs_simulated_results(self, cms):
        # The ledger is bookkeeping: a second identical session reaches
        # identical clock and (ledger-inclusive) counters.
        def run():
            server = RemoteDBMS()
            for table in genealogy(seed=23).tables:
                server.load_table(table)
            cms = CacheManagementSystem(server)
            cms.begin_session()
            for text in ("q(Y) :- parent(p8, Y)", "q(Y) :- parent(p8, Y)"):
                cms.query(parse_query(text)).fetch_all()
            return cms.clock.now, cms.metrics.snapshot()

        assert run() == run()

    def test_explain_surfaces_element_efficacy(self, cms):
        query = parse_query("q(Y) :- parent(p8, Y)")
        cms.query(query).fetch_all()
        cms.query(query).fetch_all()
        explanation = cms.explain(query)
        assert explanation.element_efficacy
        entry = explanation.element_efficacy[0]
        assert entry["hits"] >= 1
        assert entry["saved_seconds"] > 0
        assert any("efficacy" in line for line in explanation.lines())
        assert explanation.to_dict()["element_efficacy"]
