"""Tests for the semijoin execution path: planner decision, binding
extraction, short-circuit, and batched RDI fetches."""

import pytest

from repro.caql.eval import psj_of
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.core.plan import BindingSpec, RemotePart
from repro.core.rdi import canonical_bindings
from repro.relational.relation import Relation, relation_from_columns
from repro.relational.schema import Schema
from repro.remote.server import RemoteDBMS


def make_server():
    """A suppliers-in-miniature database: 40 suppliers, half rated >= 5."""
    server = RemoteDBMS()
    server.load_table(
        relation_from_columns(
            "supplier",
            s_id=[f"s{i}" for i in range(40)],
            city=["athens", "paris"] * 20,
            rating=[i % 10 for i in range(40)],
        )
    )
    server.load_table(
        Relation(
            Schema("shipment", ("s_id", "p_id", "qty")),
            [
                (f"s{i}", f"p{j}", 10 * (1 + (i + j) % 5))
                for i in range(40)
                for j in range(6)
            ],
        )
    )
    return server


WARM = "good(S, City) :- supplier(S, City, R), R >= 5"
QUERY = "q(S, P) :- supplier(S, City, R), R >= 5, shipment(S, P, Q), Q > 0"
EMPTY = "qe(S, P) :- supplier(S, City, R), R >= 5, City = nowhere, shipment(S, P, Q)"


def warmed_cms(**feature_overrides):
    cms = CacheManagementSystem(
        make_server(), features=CMSFeatures(**feature_overrides)
    )
    cms.begin_session()
    cms.query(parse_query(WARM)).fetch_all()
    return cms


class TestPlannerDecision:
    def test_semijoin_annotated_on_the_remote_part(self):
        cms = warmed_cms()
        plan = cms.planner.plan(psj_of(parse_query(QUERY)))
        remote_parts = [p for p in plan.parts if isinstance(p, RemotePart)]
        assert len(remote_parts) == 1
        specs = remote_parts[0].bind_columns
        assert len(specs) == 1
        assert specs[0].remote_column.endswith(".c0")
        assert specs[0].cache_column.endswith(".c0")
        assert remote_parts[0].semijoin
        assert any("semijoin" in note for note in plan.notes)

    def test_feature_gate_disables_semijoin(self):
        cms = warmed_cms(semijoin=False)
        plan = cms.planner.plan(psj_of(parse_query(QUERY)))
        for part in plan.parts:
            if isinstance(part, RemotePart):
                assert not part.bind_columns

    def test_rejected_when_bindings_dearer_than_parallel_fetch(self):
        # A cache part covering nearly the whole domain has nothing to
        # reduce: shipping its bindings costs uplink without saving
        # transfer, and the sequential ordering forfeits parallel overlap.
        cms = CacheManagementSystem(make_server())
        cms.begin_session()
        cms.query(parse_query("all_sup(S, City) :- supplier(S, City, R), R >= 0")).fetch_all()
        plan = cms.planner.plan(
            psj_of(parse_query("qa(S, P) :- supplier(S, City, R), R >= 0, shipment(S, P, Q)"))
        )
        for part in plan.parts:
            if isinstance(part, RemotePart):
                assert not part.bind_columns
        if plan.strategy == "hybrid":
            assert any("semijoin rejected" in note for note in plan.notes)

    def test_describe_renders_the_binding_line(self):
        cms = warmed_cms()
        plan = cms.planner.plan(psj_of(parse_query(QUERY)))
        assert "semijoin:" in plan.describe()

    def test_explain_marks_semijoin_parts(self):
        cms = warmed_cms()
        explanation = cms.explain(parse_query(QUERY))
        assert any(part.endswith("+semijoin") for part in explanation.parts)
        assert any("semijoin" in note for note in explanation.notes)


class TestExecution:
    def test_answers_match_unreduced_run(self):
        optimized = warmed_cms().query(parse_query(QUERY)).fetch_all()
        baseline = (
            warmed_cms(semijoin=False, batching=False)
            .query(parse_query(QUERY))
            .fetch_all()
        )
        assert sorted(optimized) == sorted(baseline)
        assert len(optimized) > 0

    def test_semijoin_ships_fewer_tuples(self):
        on = warmed_cms()
        on.query(parse_query(QUERY)).fetch_all()
        off = warmed_cms(semijoin=False, batching=False)
        off.query(parse_query(QUERY)).fetch_all()
        assert on.metrics.get("remote.tuples_shipped") < off.metrics.get(
            "remote.tuples_shipped"
        )
        # One shipped value per distinct supplier in the warm view.
        assert on.metrics.get("remote.bindings_shipped") == 20
        assert on.metrics.get("remote.semijoin_requests") == 1

    def test_trace_records_the_semijoin_event(self):
        from repro.obs import Tracer

        server = make_server()
        server.tracer = Tracer(server.clock)
        cms = CacheManagementSystem(server)
        cms.begin_session()
        cms.query(parse_query(WARM)).fetch_all()
        cms.query(parse_query(QUERY)).fetch_all()
        events = [
            event
            for span in cms.tracer.spans
            for event in span.events
            if event.name == "rdi.semijoin"
        ]
        assert events
        assert dict(events[0].attributes)["values"] == 20

    def test_empty_binding_set_short_circuits(self):
        cms = warmed_cms()
        # Warm the planner's statistics cache so the delta below counts
        # data round trips only, not catalog lookups.
        cms.query(parse_query(QUERY)).fetch_all()
        before = cms.metrics.snapshot()
        rows = cms.query(parse_query(EMPTY)).fetch_all()
        delta = cms.metrics.diff(before)
        assert rows == []
        # The join was proven empty locally: no round trip at all.
        assert delta.get("remote.requests", 0) == 0
        assert delta.get("remote.bindings_shipped", 0) == 0


class TestCanonicalBindings:
    def test_deduplicates(self):
        out = canonical_bindings({"t0.c0": ("b", "a", "b", "a")})
        assert out == {"t0.c0": ("a", "b")}

    def test_deterministic_order_for_mixed_types(self):
        out = canonical_bindings({"t0.c0": (3, "x", 1, "a", 2)})
        # Sorted by (type name, repr): ints before strs, each ascending.
        assert out == {"t0.c0": (1, 2, 3, "a", "x")}

    def test_empty_input(self):
        assert canonical_bindings(None) == {}
        assert canonical_bindings({}) == {}

    def test_columns_sorted(self):
        out = canonical_bindings({"t1.c2": (1,), "t0.c0": (2,)})
        assert list(out) == ["t0.c0", "t1.c2"]


class TestFetchMany:
    def queries(self):
        return [
            psj_of(parse_query("a(S) :- supplier(S, City, R), R >= 8")),
            psj_of(parse_query("b(S, P) :- shipment(S, P, Q), Q >= 40")),
        ]

    def test_one_round_trip_for_many_queries(self):
        cms = CacheManagementSystem(make_server())
        cms.begin_session()
        # First call pays the catalog lookups; measure the second so the
        # delta counts data round trips only.
        cms.rdi.fetch_many(self.queries())
        before = cms.metrics.snapshot()
        results = cms.rdi.fetch_many(self.queries())
        delta = cms.metrics.diff(before)
        assert delta.get("remote.requests", 0) == 1
        assert delta.get("remote.batched_requests", 0) == 2
        assert len(results) == 2

    def test_results_match_individual_fetches(self):
        batched = CacheManagementSystem(make_server())
        batched.begin_session()
        many = batched.rdi.fetch_many(self.queries())

        single = CacheManagementSystem(make_server())
        single.begin_session()
        for got, psj in zip(many, self.queries()):
            assert sorted(got.rows) == sorted(single.rdi.fetch(psj).rows)

    def test_empty_and_singleton_batches(self):
        cms = CacheManagementSystem(make_server())
        cms.begin_session()
        assert cms.rdi.fetch_many([]) == []
        [only] = cms.rdi.fetch_many(self.queries()[:1])
        assert len(only) == 8  # suppliers rated 8 or 9
        assert cms.metrics.get("remote.batched_requests") == 0


class TestBindingSpec:
    def test_is_frozen_and_defaulted(self):
        spec = BindingSpec(remote_column="t1.c0", cache_column="t0.c0")
        assert spec.estimated_values == 0.0
        with pytest.raises(AttributeError):
            spec.remote_column = "t2.c0"
