"""Tests for the derivation DAG, cost-based replacement, and the
eviction-safety invariants behind operator-level intermediate caching."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimClock
from repro.common.errors import InvariantViolation
from repro.relational.relation import Relation
from repro.caql.parser import parse_query
from repro.caql.eval import psj_of, result_schema
from repro.core.cache import Cache


def make_psj(text):
    return psj_of(parse_query(text))


def make_relation(name, n, width=2):
    schema = result_schema(name, width)
    return Relation(
        schema, [tuple(f"{name}{i}_{j}" for j in range(width)) for i in range(n)]
    )


def store(cache, text, rows=5, **kwargs):
    psj = make_psj(text)
    return cache.store(
        psj, make_relation(psj.name, rows, max(psj.arity, 1)), **kwargs
    )


class TestLineage:
    def test_parents_and_depth(self):
        cache = Cache()
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            kind="intermediate",
            parents=(root.element_id,),
            operator="select-project",
        )
        grand = store(
            cache,
            "g1(X) :- b1(X, Y), X >= 5",
            kind="intermediate",
            parents=(child.element_id,),
            operator="select-project",
        )
        assert root.depth == 0 and child.depth == 1 and grand.depth == 2
        assert child.parents == (root.element_id,)
        assert grand.parents == (child.element_id,)
        cache.check_invariants()

    def test_retired_parent_ids_are_dropped_at_store(self):
        cache = Cache()
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        cache.discard(root.element_id)
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            kind="intermediate",
            parents=(root.element_id,),
        )
        assert child.parents == ()
        assert child.depth == 0
        cache.check_invariants()

    def test_eviction_leaves_stale_parent_ids_tolerated(self):
        cache = Cache()
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            kind="intermediate",
            parents=(root.element_id,),
        )
        cache.discard(root.element_id)
        # The child keeps the stale id; every walk checks liveness.
        assert child.parents == (root.element_id,)
        assert cache.get(root.element_id) is None
        cache.check_invariants()

    def test_store_order_edge_direction_is_enforced(self):
        cache = Cache()
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            parents=(root.element_id,),
        )
        # Force a cycle-shaped edge by hand: the audit must catch it.
        root.parents = (child.element_id,)
        cache._children.setdefault(child.element_id, {})[root.element_id] = None
        with pytest.raises(InvariantViolation):
            cache.check_invariants()


class TestPinnedDescendantProtection:
    def test_ancestor_of_pinned_element_is_never_victim(self):
        clock = SimClock()
        cache = Cache(capacity_bytes=900, clock=clock)
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            kind="intermediate",
            parents=(root.element_id,),
        )
        cache.pin(child)
        try:
            # Filling the cache must evict neither the pinned child nor
            # its (unpinned) ancestor — a concurrent plan holding the
            # child may still walk its lineage.
            for index in range(6):
                try:
                    store(cache, f"f{index}(X, Y) :- b{index + 2}(X, Y)")
                except Exception:
                    break
            assert cache.get(root.element_id) is not None
            assert cache.get(child.element_id) is not None
        finally:
            cache.unpin(child)
        cache.check_invariants()

    def test_transitive_protection(self):
        cache = Cache()
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        mid = store(
            cache, "m1(X, Y) :- b1(X, Y), X >= 2", parents=(root.element_id,)
        )
        leaf = store(
            cache, "l1(X) :- b1(X, Y), X >= 4", parents=(mid.element_id,)
        )
        cache.pin(leaf)
        try:
            assert cache._has_pinned_descendant(root.element_id)
            assert cache._has_pinned_descendant(mid.element_id)
            assert not cache._has_pinned_descendant(leaf.element_id)
        finally:
            cache.unpin(leaf)


class TestCostScorer:
    def test_zero_derivation_degrades_to_lru(self):
        clock = SimClock()
        cache = Cache(clock=clock)
        older = store(cache, "a1(X, Y) :- b1(X, Y)")
        newer = store(cache, "a2(X, Y) :- b2(X, Y)")
        assert cache.cost_scorer(older) > cache.cost_scorer(newer)

    def test_expensive_reused_element_outlives_recency(self):
        clock = SimClock()
        cache = Cache(clock=clock)
        expensive = store(
            cache, "a1(X, Y) :- b1(X, Y)", derivation_seconds=2.0
        )
        cache.touch(expensive)  # observed reuse
        cheap_but_recent = store(cache, "a2(X, Y) :- b2(X, Y)")
        cache.touch(cheap_but_recent)
        cache.touch(cheap_but_recent)
        # Higher score = evicted first: the cheap element must rank above
        # the expensive one despite being more recently used.
        assert cache.cost_scorer(cheap_but_recent) > cache.cost_scorer(expensive)

    def test_reuse_frequency_decays_with_idle_time(self):
        clock = SimClock()
        cache = Cache(clock=clock)
        element = store(cache, "a1(X, Y) :- b1(X, Y)", derivation_seconds=1.0)
        cache.touch(element)
        fresh = cache.decayed_frequency(element)
        clock.advance(60.0)  # two half-lives
        assert cache.decayed_frequency(element) == pytest.approx(fresh / 4)


class TestAncestorWarming:
    def test_touch_warms_parents(self):
        clock = SimClock()
        cache = Cache(clock=clock)
        root = store(cache, "r1(X, Y) :- b1(X, Y)", derivation_seconds=1.0)
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            kind="intermediate",
            parents=(root.element_id,),
        )
        before = cache.decayed_frequency(root)
        cache.touch(child)
        after = cache.decayed_frequency(root)
        assert after > before
        # The warm is a share of a hit, not a full hit.
        assert after - before < 1.0

    def test_credit_saving_warms_ancestors_without_charging_time(self):
        clock = SimClock()
        cache = Cache(clock=clock)
        root = store(cache, "r1(X, Y) :- b1(X, Y)", derivation_seconds=1.0)
        child = store(
            cache,
            "c1(X, Y) :- b1(X, Y), X >= 3",
            kind="intermediate",
            parents=(root.element_id,),
            derivation_seconds=0.5,
        )
        before_clock = clock.now
        before_freq = cache.decayed_frequency(root)
        cache.credit_saving(child)
        assert clock.now == before_clock  # pure bookkeeping
        assert cache.decayed_frequency(root) > before_freq
        assert child.saved_seconds == pytest.approx(0.5)

    def test_warming_attenuates_geometrically(self):
        clock = SimClock()
        cache = Cache(clock=clock)
        root = store(cache, "r1(X, Y) :- b1(X, Y)")
        mid = store(
            cache, "m1(X, Y) :- b1(X, Y), X >= 2", parents=(root.element_id,)
        )
        leaf = store(
            cache, "l1(X) :- b1(X, Y), X >= 4", parents=(mid.element_id,)
        )
        cache.touch(leaf)
        assert cache.decayed_frequency(mid) > cache.decayed_frequency(root) > 0


class TestEvictionCorrectnessProperty:
    """Any eviction sequence preserves answer correctness: a CMS on a
    tiny, churning cache must produce exactly the answers of one with an
    effectively infinite cache, query for query."""

    @pytest.mark.parametrize("seed", range(4))
    def test_tiny_cache_answers_match_infinite_cache(self, seed):
        from repro.remote.server import RemoteDBMS
        from repro.core.cms import CacheManagementSystem, CMSFeatures
        from repro.workloads.synthetic import retail_universe

        rng = random.Random(seed)
        tables = retail_universe(rows=60, orders=120, domain=100, seed=seed).tables

        def build(capacity):
            remote = RemoteDBMS()
            for table in tables:
                remote.load_table(table)
            cms = CacheManagementSystem(
                remote,
                capacity_bytes=capacity,
                features=CMSFeatures(intermediates=True),
            )
            cms.begin_session()
            return cms

        tiny, infinite = build(900), build(50_000_000)
        queries = []
        for index in range(14):
            cat = rng.randrange(6)
            threshold = rng.randrange(100)
            if rng.random() < 0.5:
                text = (
                    f"q{index}(I, V) :- item(I, cat{cat}, V), V >= {threshold}"
                )
            else:
                text = (
                    f"q{index}(I, Q) :- item(I, cat{cat}, V), ord(I, Q), "
                    f"V >= {threshold}"
                )
            queries.append(parse_query(text))
        for query in queries:
            got = sorted(tiny.query(query).fetch_all())
            want = sorted(infinite.query(query).fetch_all())
            assert got == want, f"{query.name}: tiny-cache answer diverged"
            tiny.cache.check_invariants()
        assert tiny.cache.eviction_count > 0, "workload never churned"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),  # category
                st.integers(min_value=0, max_value=99),  # threshold
                st.booleans(),  # selection vs drill-down join
            ),
            min_size=4,
            max_size=10,
        )
    )
    def test_any_query_sequence_survives_eviction(self, shapes):
        """Hypothesis drives the shapes: whatever overlapping sequence of
        selections and drills runs against a cache too small to hold it,
        every answer matches direct evaluation on a churn-free cache and
        the lineage invariants hold after every step."""
        from repro.remote.server import RemoteDBMS
        from repro.core.cms import CacheManagementSystem, CMSFeatures
        from repro.workloads.synthetic import retail_universe

        tables = retail_universe(rows=50, orders=100, domain=100, seed=7).tables

        def build(capacity):
            remote = RemoteDBMS()
            for table in tables:
                remote.load_table(table)
            cms = CacheManagementSystem(
                remote,
                capacity_bytes=capacity,
                features=CMSFeatures(intermediates=True),
            )
            cms.begin_session()
            return cms

        tiny, infinite = build(700), build(50_000_000)
        for index, (cat, threshold, is_join) in enumerate(shapes):
            if is_join:
                text = (
                    f"q{index}(I, Q) :- item(I, cat{cat}, V), ord(I, Q), "
                    f"V >= {threshold}"
                )
            else:
                text = (
                    f"q{index}(I, V) :- item(I, cat{cat}, V), V >= {threshold}"
                )
            query = parse_query(text)
            got = sorted(tiny.query(query).fetch_all())
            want = sorted(infinite.query(query).fetch_all())
            assert got == want, f"{text}: answer diverged under eviction"
            tiny.cache.check_invariants()
