"""Tests for memoized alternative sortings (Section 5.2)."""

from repro.caql.eval import psj_of, result_schema
from repro.caql.parser import parse_query
from repro.relational.generator import generator_from_rows
from repro.relational.relation import Relation
from repro.core.cache import CacheElement


def make_element(rows=((3, "c"), (1, "a"), (2, "b"))):
    psj = psj_of(parse_query("d(X, Y) :- b(X, Y)"))
    return CacheElement("E1", psj, Relation(result_schema("d", 2), rows))


class TestSortedViews:
    def test_sorted_ascending(self):
        element = make_element()
        view = element.sorted_view(("a0",))
        assert view.rows == [(1, "a"), (2, "b"), (3, "c")]

    def test_sorted_descending(self):
        element = make_element()
        view = element.sorted_view(("a0",), reverse=True)
        assert view.rows == [(3, "c"), (2, "b"), (1, "a")]

    def test_memoized_per_ordering(self):
        element = make_element()
        first = element.sorted_view(("a0",))
        again = element.sorted_view(("a0",))
        assert first is again  # computed once

    def test_distinct_orderings_coexist(self):
        element = make_element()
        by_key = element.sorted_view(("a0",))
        by_value = element.sorted_view(("a1",), reverse=True)
        assert by_key is not by_value
        assert by_value.rows[0] == (3, "c")

    def test_original_representation_untouched(self):
        element = make_element()
        element.sorted_view(("a0",))
        assert element.extension().rows == [(3, "c"), (1, "a"), (2, "b")]

    def test_generator_element_promoted_for_sorting(self):
        psj = psj_of(parse_query("d(X, Y) :- b(X, Y)"))
        gen = generator_from_rows(result_schema("d", 2), [(2, "b"), (1, "a")])
        element = CacheElement("E1", psj, gen)
        view = element.sorted_view(("a0",))
        assert view.rows == [(1, "a"), (2, "b")]
