"""Tests for the stale archive: eviction order, subsumption, degradation."""

import pytest

from repro.common.errors import CacheError
from repro.common.metrics import REMOTE_DEGRADED_ANSWERS
from repro.relational.relation import Relation
from repro.caql.parser import parse_query
from repro.caql.eval import psj_of, result_schema
from repro.core.cache import StaleArchive
from repro.core.cms import CacheManagementSystem
from repro.remote.faults import FaultPolicy
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import selection_universe


def make_psj(text):
    return psj_of(parse_query(text))


def make_relation(name, rows, width=2):
    return Relation(result_schema(name, width), rows)


def archive_query(i):
    return make_psj(f"d{i}(X, Y) :- b{i}(X, Y)")


class TestCountBoundEviction:
    def test_fifo_eviction_order(self):
        archive = StaleArchive(max_elements=3)
        for i in range(5):
            archive.store(archive_query(i), make_relation(f"d{i}", [(i, i)]))
        assert len(archive) == 3
        # The two oldest went first, in insertion order.
        assert archive.find_full(archive_query(0)) is None
        assert archive.find_full(archive_query(1)) is None
        for i in (2, 3, 4):
            assert archive.find_full(archive_query(i)) is not None

    def test_eviction_is_strictly_by_age_not_use(self):
        archive = StaleArchive(max_elements=2)
        archive.store(archive_query(0), make_relation("d0", [(0, 0)]))
        archive.store(archive_query(1), make_relation("d1", [(1, 1)]))
        # Using element 0 does not save it: the archive is insurance,
        # not a second LRU cache.
        assert archive.find_full(archive_query(0)) is not None
        archive.store(archive_query(2), make_relation("d2", [(2, 2)]))
        assert archive.find_full(archive_query(0)) is None
        assert archive.find_full(archive_query(1)) is not None

    def test_refresh_keeps_freshest_copy_without_growth(self):
        archive = StaleArchive(max_elements=2)
        archive.store(archive_query(0), make_relation("d0", [(0, 0)]))
        archive.store(archive_query(1), make_relation("d1", [(1, 1)]))
        archive.store(archive_query(0), make_relation("d0", [(9, 9)]))
        assert len(archive) == 2
        match = archive.find_full(archive_query(0))
        assert match.element.relation.rows == [(9, 9)]
        # The refresh did not re-enqueue element 0: element 0 is still
        # the oldest and goes first.
        archive.store(archive_query(2), make_relation("d2", [(2, 2)]))
        assert archive.find_full(archive_query(0)) is None
        assert archive.find_full(archive_query(1)) is not None

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            StaleArchive(max_elements=0)


class TestSubsumingMatch:
    def test_full_match_found_for_subsumed_query(self):
        archive = StaleArchive()
        broad = make_psj("d(X, Y) :- b(X, Y)")
        archive.store(
            broad, make_relation("d", [(1, 10), (2, 20), (3, 30)])
        )
        narrow = make_psj("q(X, Y) :- b(X, Y), Y >= 20")
        match = archive.find_full(narrow)
        assert match is not None
        assert match.is_full

    def test_partial_overlap_is_not_served(self):
        archive = StaleArchive()
        constrained = make_psj("d(X, Y) :- b(X, Y), Y >= 20")
        archive.store(constrained, make_relation("d", [(2, 20), (3, 30)]))
        # The archived copy is narrower than the ask: no full match, so
        # the archive must refuse (a degraded answer may be stale but is
        # never silently incomplete relative to its own stored copy).
        broader = make_psj("q(X, Y) :- b(X, Y)")
        assert archive.find_full(broader) is None


class TestDegradedInteraction:
    def make_cms(self, capacity_bytes=4_000_000):
        remote = RemoteDBMS()
        for table in selection_universe(rows=40, seed=5).tables:
            remote.load_table(table)
        cms = CacheManagementSystem(remote, capacity_bytes=capacity_bytes)
        cms.begin_session()
        return cms, remote

    def test_outage_answer_comes_tagged_degraded(self):
        cms, remote = self.make_cms()
        fresh = cms.query(parse_query("q(I, V) :- item(I, cat0, V)"))
        fresh_rows = sorted(fresh.fetch_all())
        assert not fresh.degraded

        remote.set_fault_policy(FaultPolicy(seed=1, transient_rate=1.0))
        # A *narrower* query during the outage: the cache itself may
        # answer it via subsumption, so force an archive path by asking
        # something only the archive's broad copy subsumes after the
        # cache loses its element.
        cms.cache.clear()
        stale = cms.query(parse_query("q2(I, V) :- item(I, cat0, V)"))
        assert sorted(stale.fetch_all()) == fresh_rows
        assert stale.degraded
        assert cms.metrics.get(REMOTE_DEGRADED_ANSWERS) == 1

    def test_archive_survives_cache_eviction(self):
        # The archive sits outside the cache's byte budget: a tiny cache
        # that evicts everything still leaves degraded service possible.
        cms, remote = self.make_cms(capacity_bytes=500)
        expected = [
            sorted(
                cms.query(
                    parse_query(f"q{i}(I, V) :- item(I, cat{i}, V)")
                ).fetch_all()
            )
            for i in range(6)
        ]
        assert cms.cache.eviction_count > 0

        remote.set_fault_policy(FaultPolicy(seed=1, transient_rate=1.0))
        cms.cache.clear()
        for i, rows in enumerate(expected):
            stream = cms.query(parse_query(f"again{i}(I, V) :- item(I, cat{i}, V)"))
            assert sorted(stream.fetch_all()) == rows
            assert stream.degraded

    def test_degraded_answers_are_not_archived(self):
        cms, remote = self.make_cms()
        cms.query(parse_query("q(I, V) :- item(I, cat0, V)")).fetch_all()
        archived_before = len(cms._archive)

        remote.set_fault_policy(FaultPolicy(seed=1, transient_rate=1.0))
        cms.cache.clear()
        stream = cms.query(parse_query("q2(I, V) :- item(I, cat0, V)"))
        stream.fetch_all()
        assert stream.degraded
        # A degraded answer must never masquerade as a fresh archive copy.
        assert len(cms._archive) == archived_before

    def test_cached_answers_are_not_degraded_during_outage(self):
        cms, remote = self.make_cms()
        query = parse_query("q(I, V) :- item(I, cat0, V)")
        cms.query(query).fetch_all()
        remote.set_fault_policy(FaultPolicy(seed=1, transient_rate=1.0))
        # The cache still holds the fresh element: an exact hit needs no
        # remote round trip, so the answer is *not* degraded.
        repeat = cms.query(parse_query("q2(I, V) :- item(I, cat0, V)"))
        repeat.fetch_all()
        assert not repeat.degraded