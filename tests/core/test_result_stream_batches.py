"""ResultStream over columnar batches: the facade contract holds.

The IE-facing stream interface must behave identically whichever engine
produced the result: set semantics, schema arity, lazy single-tuple
pull via ``next()``, repeatable ``fetch_all``, ``as_relation``, and
``check_invariants`` catching corrupted results.
"""

import pytest

from repro.caql.eval import result_schema
from repro.caql.parser import parse_query
from repro.common.errors import InvariantViolation
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.core.executor import ResultStream
from repro.relational.columnar import ColumnarBatch
from repro.relational.relation import Relation, relation_from_columns
from repro.remote.server import RemoteDBMS


def batch():
    return ColumnarBatch.from_relation(
        relation_from_columns("q", x=[1, 2, 3], y=["a", "b", "c"])
    )


class TestFacadeOverBatches:
    def test_schema_and_not_lazy(self):
        stream = ResultStream(batch(), "q")
        assert stream.schema.attributes == ("x", "y")
        assert stream.lazy is False
        assert stream.degraded is False

    def test_next_pulls_single_tuples_then_none(self):
        stream = ResultStream(batch(), "q")
        assert stream.next() == (1, "a")
        assert stream.next() == (2, "b")
        assert stream.next() == (3, "c")
        assert stream.next() is None

    def test_fetch_all_and_iteration(self):
        stream = ResultStream(batch(), "q")
        assert stream.fetch_all() == [(1, "a"), (2, "b"), (3, "c")]
        assert list(stream) == [(1, "a"), (2, "b"), (3, "c")]
        # fetch_all is repeatable (drain-once applies to generators, and a
        # batch replays like a drained generator's memo: same rows again).
        assert stream.fetch_all() == [(1, "a"), (2, "b"), (3, "c")]

    def test_iteration_does_not_disturb_next(self):
        stream = ResultStream(batch(), "q")
        assert stream.next() == (1, "a")
        assert list(stream) == [(1, "a"), (2, "b"), (3, "c")]
        assert stream.next() == (2, "b")  # the single-pull cursor is its own

    def test_as_relation_materializes_set_semantics(self):
        stream = ResultStream(batch(), "q")
        relation = stream.as_relation()
        assert isinstance(relation, Relation)
        assert relation == relation_from_columns("q", x=[1, 2, 3], y=["a", "b", "c"])
        assert relation.rows == [(1, "a"), (2, "b"), (3, "c")]

    def test_empty_batch_streams_cleanly(self):
        schema = result_schema("e", 2)
        stream = ResultStream(ColumnarBatch.from_relation(Relation(schema)), "e")
        assert stream.next() is None
        assert stream.fetch_all() == []
        stream.check_invariants()


class TestInvariantsOnCorruptedBatches:
    def test_clean_batch_passes(self):
        ResultStream(batch(), "q").check_invariants()

    def test_ragged_columns_raise(self):
        corrupted = batch()
        corrupted.columns[1] = corrupted.columns[1][:-1]
        with pytest.raises(InvariantViolation, match="ragged"):
            ResultStream(corrupted, "q").check_invariants()

    def test_duplicate_rows_raise(self):
        corrupted = batch()
        for column in corrupted.columns:
            column.append(column[0])
        with pytest.raises(InvariantViolation, match="duplicate"):
            ResultStream(corrupted, "q").check_invariants()

    def test_column_arity_mismatch_raises(self):
        corrupted = batch()
        corrupted.columns.append([0, 0, 0])
        with pytest.raises(InvariantViolation, match="arity"):
            ResultStream(corrupted, "q").check_invariants()


class TestBatchesFlowThroughTheCms:
    """End to end: a columnar CMS hands batch-backed streams to the IE."""

    def make_cms(self):
        remote = RemoteDBMS()
        remote.load_table(
            Relation(result_schema("r", 2), [(i, i % 3) for i in range(12)])
        )
        return CacheManagementSystem(remote, features=CMSFeatures(columnar=True))

    def test_stream_is_batch_backed_and_audits_clean(self):
        cms = self.make_cms()
        stream = cms.query(parse_query("q(X, Y) :- r(X, Y), X > 4"))
        assert isinstance(stream._relation, ColumnarBatch)
        stream.check_invariants()
        assert set(stream.fetch_all()) == {(i, i % 3) for i in range(5, 12)}

    def test_cached_reuse_still_streams_batches(self):
        cms = self.make_cms()
        cms.query(parse_query("q(X, Y) :- r(X, Y)")).fetch_all()
        # Second query derives from the cached element: still batch-backed.
        stream = cms.query(parse_query("q2(X, Y) :- r(X, Y), Y = 1"))
        assert isinstance(stream._relation, ColumnarBatch)
        stream.check_invariants()
        assert set(stream.fetch_all()) == {(i, 1) for i in range(12) if i % 3 == 1}
