"""Property tests for partial (component) subsumption matches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.caql.psj import PSJQuery
from repro.relational.relation import Relation
from repro.core.cache import Cache
from repro.core.subsumption import derive_part, match_element

R_ROWS = [(x, y) for x in range(5) for y in range(5) if (2 * x + y) % 3]
S_ROWS = [(y, z, (y + z) % 4) for y in range(5) for z in range(4)]
DB = {
    "r": Relation(result_schema("r", 2), R_ROWS),
    "s": Relation(result_schema("s", 3), S_ROWS),
}

ELEMENT_TEXTS = [
    "e(X, Y) :- r(X, Y)",
    "e(X, Y) :- r(X, Y), X < 3",
    "e(A, B, C) :- s(A, B, C)",
    "e(A, C) :- s(A, B, C), B >= 1",
]
QUERY_TEXTS = [
    "q(X, Z) :- r(X, Y), s(Y, Z, E)",
    "q(X) :- r(X, Y), s(Y, 2, 1)",
    "q(X, E) :- r(X, 2), s(2, Z, E)",
    "q(X, Y2) :- r(X, Y), r(Y, Y2)",
    "q(Z) :- r(1, Y), s(Y, Z, E), Z < 3",
]


def component_oracle(query: PSJQuery, covered: frozenset, columns: list[str]) -> set:
    """Direct evaluation of the covered component, projected to columns."""
    prefixes = tuple(tag + "." for tag in covered)
    occurrences = tuple(o for o in query.occurrences if o.tag in covered)
    conditions = tuple(
        c
        for c in query.conditions
        if c.columns() and all(col.startswith(prefixes) for col in c.columns())
    )
    sub = PSJQuery("component", occurrences, conditions, tuple(columns))
    return set(evaluate_psj(sub, DB.__getitem__).rows)


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ELEMENT_TEXTS), st.sampled_from(QUERY_TEXTS))
def test_partial_match_derivation_matches_component_oracle(element_text, query_text):
    cache = Cache()
    element_psj = psj_of(parse_query(element_text))
    element = cache.store(element_psj, evaluate_psj(element_psj, DB.__getitem__))
    query = psj_of(parse_query(query_text))
    for match in match_element(element, query):
        available = match.available()
        if not available:
            continue
        columns = sorted(available)
        derived = set(derive_part(match, columns).rows)
        expected = component_oracle(query, match.covered_tags, columns)
        # The derived part must contain exactly the component's rows
        # projected to the available columns: subsumption guarantees no
        # row is missing; residual re-application guarantees none is extra.
        assert derived == expected, f"{element_text} | {query_text} | {match}"


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(ELEMENT_TEXTS), st.sampled_from(QUERY_TEXTS))
def test_matches_never_cover_mismatched_predicates(element_text, query_text):
    cache = Cache()
    element_psj = psj_of(parse_query(element_text))
    element = cache.store(element_psj, evaluate_psj(element_psj, DB.__getitem__))
    query = psj_of(parse_query(query_text))
    for match in match_element(element, query):
        mapping = dict(match.tag_mapping)
        for element_tag, query_tag in mapping.items():
            assert (
                element_psj.occurrence(element_tag).pred
                == query.occurrence(query_tag).pred
            )
        # Injectivity of the occurrence mapping.
        assert len(set(mapping.values())) == len(mapping)
