"""Tests for the CMS's debug logging (the operator-facing trace)."""

import logging

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS


@pytest.fixture
def cms():
    server = RemoteDBMS()
    server.load_table(
        relation_from_columns("parent", par=["a", "a", "b"], child=["b", "c", "d"])
    )
    return CacheManagementSystem(server)


def records(caplog):
    return [r.getMessage() for r in caplog.records if r.name == "repro.cms"]


class TestDecisionTrace:
    def test_session_logged(self, cms, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.cms"):
            cms.begin_session()
        assert any("session: no advice" in m for m in records(caplog))

    def test_plan_strategy_logged(self, cms, caplog):
        cms.begin_session()
        q = parse_query("q(Y) :- parent(a, Y)")
        with caplog.at_level(logging.DEBUG, logger="repro.cms"):
            cms.query(q)
            cms.query(q)
        messages = records(caplog)
        assert any("plan[remote]" in m for m in messages)
        assert any("plan[exact]" in m for m in messages)

    def test_generalization_logged(self, cms, caplog):
        view = annotate(parse_query("dkids(P, C) :- parent(P, C)"), "?^")
        path = Sequence(
            (QueryPattern("dkids", ("P?", "C^")),), lower=0, upper=Cardinality("P")
        )
        cms.begin_session(AdviceSet.from_views([view], path_expression=path))
        with caplog.at_level(logging.DEBUG, logger="repro.cms"):
            cms.query(parse_query("dkids(a, C) :- parent(a, C)"))
        assert any("generalize: fetching" in m for m in records(caplog))

    def test_silent_by_default(self, cms, caplog):
        cms.begin_session()
        with caplog.at_level(logging.INFO, logger="repro.cms"):
            cms.query(parse_query("q(Y) :- parent(a, Y)"))
        assert records(caplog) == []
