"""The CMSFeatures.columnar flag: engine selection, parity, cost model.

The flag must swap the local engine underneath the whole request path —
planner, executor, cache reuse — without changing a single answer, on
both remote backends (pure-Python and sqlite).
"""

import pytest

from repro.caql.eval import result_schema
from repro.caql.parser import parse_query
from repro.common.clock import CostProfile
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.core.engine import ColumnarEngine, TupleEngine, make_engine
from repro.relational.relation import Relation
from repro.remote.server import RemoteDBMS
from repro.remote.sqlite_backend import SqliteEngine

QUERIES = [
    "q1(X, Y, Z) :- r(X, Y, Z), X > 10",
    "q2(X, W) :- r(X, Y, Z), s(Y, W)",
    "q3(X, Z) :- r(X, Y, Z), Y = 3, X < 40",
    "q4(X, Y, Z) :- r(X, Y, Z), X > 10",  # subsumption reuse of q1
    "q5(X) :- r(X, Y, Z), s(Y, W), W > 20",
]


def tables():
    return [
        Relation(
            result_schema("r", 3),
            [(i, i % 7, f"v{i % 5}") for i in range(60)],
        ),
        Relation(result_schema("s", 2), [(i % 7, i * 2) for i in range(40)]),
    ]


def make_cms(columnar: bool, backend: str = "pure") -> CacheManagementSystem:
    engine = SqliteEngine() if backend == "sqlite" else None
    remote = RemoteDBMS(engine=engine)
    for relation in tables():
        remote.load_table(relation)
    return CacheManagementSystem(
        remote, features=CMSFeatures(columnar=columnar)
    )


class TestEngineSelection:
    def test_make_engine_by_name(self):
        assert isinstance(make_engine("tuple"), TupleEngine)
        assert isinstance(make_engine("columnar"), ColumnarEngine)
        with pytest.raises(ValueError):
            make_engine("volcano")

    def test_flag_selects_the_monitor_engine(self):
        assert make_cms(False).monitor.engine.name == "tuple"
        assert make_cms(True).monitor.engine.name == "columnar"

    def test_features_none_stays_on_the_tuple_engine(self):
        remote = RemoteDBMS()
        for relation in tables():
            remote.load_table(relation)
        cms = CacheManagementSystem(remote, features=CMSFeatures.none())
        assert cms.features.columnar is False
        assert cms.monitor.engine.name == "tuple"


@pytest.mark.parametrize("backend", ["pure", "sqlite"])
class TestEngineParity:
    def test_identical_answers_across_the_query_sequence(self, backend):
        tuple_cms = make_cms(False, backend)
        columnar_cms = make_cms(True, backend)
        for text in QUERIES:
            query = parse_query(text)
            expected = tuple_cms.query(query)
            got = columnar_cms.query(query)
            expected.check_invariants()
            got.check_invariants()
            assert set(got.fetch_all()) == set(expected.fetch_all()), text
            assert got.schema.arity == expected.schema.arity

    def test_cache_behaviour_matches(self, backend):
        tuple_cms = make_cms(False, backend)
        columnar_cms = make_cms(True, backend)
        for text in QUERIES:
            tuple_cms.query(parse_query(text)).fetch_all()
            columnar_cms.query(parse_query(text)).fetch_all()
        for key in ("cache.hits.exact", "cache.hits.subsumed", "cache.misses"):
            assert tuple_cms.metrics.get(key) == columnar_cms.metrics.get(key), key


class TestCostModel:
    def test_profile_carries_the_columnar_factor(self):
        profile = CostProfile()
        assert 0 < profile.columnar_tuple_factor < 1

    def test_scaled_keeps_the_factor_unscaled(self):
        profile = CostProfile(columnar_tuple_factor=0.25)
        assert profile.scaled(10.0).columnar_tuple_factor == 0.25
        assert profile.scaled(10.0).cache_per_tuple == profile.cache_per_tuple * 10

    def test_columnar_local_work_is_cheaper_in_sim_time(self):
        tuple_cms = make_cms(False)
        columnar_cms = make_cms(True)
        # Prime both caches, then hit a derivation-heavy local path.
        for cms in (tuple_cms, columnar_cms):
            cms.query(parse_query("w(X, Y, Z) :- r(X, Y, Z)")).fetch_all()
            start = cms.clock.now
            cms.query(parse_query("n(X, Y, Z) :- r(X, Y, Z), X > 5")).fetch_all()
            cms.local_elapsed = cms.clock.now - start
        assert columnar_cms.local_elapsed < tuple_cms.local_elapsed

    def test_planner_derive_cost_uses_the_factor(self):
        tuple_cms = make_cms(False)
        columnar_cms = make_cms(True)
        for cms in (tuple_cms, columnar_cms):
            cms.query(parse_query("w(X, Y, Z) :- r(X, Y, Z)")).fetch_all()
        query = parse_query("n(X, Y, Z) :- r(X, Y, Z), X > 5")
        from repro.caql.eval import psj_of

        psj = psj_of(query)
        tuple_match = tuple_cms.planner.plan(psj).full_match
        columnar_match = columnar_cms.planner.plan(psj).full_match
        assert tuple_match is not None and columnar_match is not None
        factor = tuple_cms.profile.columnar_tuple_factor
        assert columnar_cms.planner._derive_cost(columnar_match) == pytest.approx(
            tuple_cms.planner._derive_cost(tuple_match) * factor
        )
