"""Unit tests for the Execution Monitor and result streams."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import ParallelRegion
from repro.common.errors import PlanningError
from repro.common.metrics import CACHE_TUPLES_PROCESSED
from repro.relational.generator import generator_from_rows
from repro.relational.relation import Relation, relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.caql.psj import psj_from_literals
from repro.core.cache import Cache
from repro.core.executor import ExecutionMonitor, ResultStream
from repro.core.plan import QueryPlan
from repro.core.planner import QueryPlanner
from repro.core.advice_manager import AdviceManager
from repro.core.rdi import RemoteInterface


def make_psj(text):
    return psj_of(parse_query(text))


B2 = Relation(result_schema("b2", 2), [(x, z) for x in range(4) for z in range(4)])
B3 = Relation(
    result_schema("b3", 3),
    [(z, c, y) for z in range(4) for c in ("c2", "c3") for y in range(3)],
)


def make_monitor(cache=None):
    server = RemoteDBMS()
    server.load_table(B2.renamed("b2"))
    server.load_table(B3.renamed("b3"))
    cache = cache if cache is not None else Cache()
    monitor = ExecutionMonitor(
        cache,
        RemoteInterface(server),
        server.clock,
        server.profile,
        server.metrics,
    )
    return monitor, cache, server


def make_planner(cache, server):
    manager = AdviceManager()
    manager.begin_session(None)
    rdi = RemoteInterface(server)
    return QueryPlanner(cache, manager, rdi.statistics_of, server.profile)


class TestDegenerateStrategies:
    def test_unsatisfiable_plan_empty(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X) :- b2(X, Z), 1 > 2")
        result = monitor.execute(QueryPlan(psj, "unsatisfiable"))
        assert len(result) == 0

    def test_unit_plan(self):
        monitor, _cache, _server = make_monitor()
        psj = psj_from_literals("q", [], [], ())
        result = monitor.execute(QueryPlan(psj, "unit"))
        assert result.rows == [(True,)]

    def test_unknown_strategy_rejected(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X, Z) :- b2(X, Z)")
        with pytest.raises(PlanningError):
            monitor.execute(QueryPlan(psj, "teleport"))

    def test_exact_plan_with_vanished_element(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X, Z) :- b2(X, Z)")
        with pytest.raises(PlanningError):
            monitor.execute(QueryPlan(psj, "exact"))

    def test_cache_full_plan_without_match(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X, Z) :- b2(X, Z)")
        with pytest.raises(PlanningError):
            monitor.execute(QueryPlan(psj, "cache-full"))


class TestPlansEndToEnd:
    def run_plan(self, query_text, warm_texts=()):
        monitor, cache, server = make_monitor()
        lookup = {"b2": B2, "b3": B3}.__getitem__
        for text in warm_texts:
            psj = make_psj(text)
            cache.store(psj, evaluate_psj(psj, lookup))
        planner = make_planner(cache, server)
        psj = make_psj(query_text)
        plan = planner.plan(psj)
        result = monitor.execute(psj and plan)
        expected = evaluate_psj(psj, lookup)
        return plan, result, expected, monitor

    def test_remote_plan_matches_direct_eval(self):
        plan, result, expected, _ = self.run_plan("q(X, Z) :- b2(X, Z), X < 2")
        assert plan.strategy == "remote"
        assert result == expected

    def test_cache_full_plan_matches(self):
        plan, result, expected, _ = self.run_plan(
            "q(Z) :- b2(2, Z)", warm_texts=["scan(X, Z) :- b2(X, Z)"]
        )
        assert plan.strategy == "cache-full"
        assert result == expected

    def test_hybrid_plan_matches(self):
        plan, result, expected, _ = self.run_plan(
            "q(Z) :- b2(2, Z), b3(Z, c2, 1)",
            warm_texts=["e12(X, Y) :- b3(X, c2, Y)"],
        )
        assert plan.strategy == "hybrid"
        assert result == expected

    def test_hybrid_charges_local_work(self):
        _plan, _result, _expected, monitor = self.run_plan(
            "q(Z) :- b2(2, Z), b3(Z, c2, 1)",
            warm_texts=["e12(X, Y) :- b3(X, c2, Y)"],
        )
        assert monitor.metrics.get(CACHE_TUPLES_PROCESSED) > 0

    def test_parallel_overlap_in_hybrid(self):
        monitor, cache, server = make_monitor()
        lookup = {"b2": B2, "b3": B3}.__getitem__
        psj_e = make_psj("e12(X, Y) :- b3(X, c2, Y)")
        cache.store(psj_e, evaluate_psj(psj_e, lookup))
        planner = make_planner(cache, server)
        psj = make_psj("q(Z) :- b2(2, Z), b3(Z, c2, 1)")
        plan = planner.plan(psj)
        assert plan.strategy == "hybrid"
        monitor.execute(plan)  # warm the RDI's schema cache (one-time cost)

        monitor.parallel = True
        before = server.clock.now
        monitor.execute(plan)
        parallel_time = server.clock.now - before

        monitor.parallel = False
        before = server.clock.now
        monitor.execute(plan)
        sequential_time = server.clock.now - before
        assert parallel_time <= sequential_time


class TestResultStream:
    def test_next_and_exhaustion(self):
        relation = relation_from_columns("r", a=[1, 2])
        stream = ResultStream(relation, "r")
        assert stream.next() == (1,)
        assert stream.next() == (2,)
        assert stream.next() is None

    def test_iteration(self):
        relation = relation_from_columns("r", a=[1, 2, 3])
        assert len(list(ResultStream(relation, "r"))) == 3

    def test_fetch_all_on_generator(self):
        gen = generator_from_rows(result_schema("g", 1), [(1,), (2,)])
        stream = ResultStream(gen, "g")
        assert stream.lazy
        assert stream.fetch_all() == [(1,), (2,)]

    def test_as_relation_materializes(self):
        gen = generator_from_rows(result_schema("g", 1), [(9,)])
        relation = ResultStream(gen, "g").as_relation()
        assert isinstance(relation, Relation)
        assert relation.rows == [(9,)]

    def test_schema_passthrough(self):
        relation = relation_from_columns("r", a=[1])
        assert ResultStream(relation, "r").schema.attributes == ("a",)

    def test_degraded_flag_defaults_false(self):
        relation = relation_from_columns("r", a=[1])
        assert not ResultStream(relation, "r").degraded
        assert ResultStream(relation, "r", degraded=True).degraded


class TestResultStreamEdgeCases:
    """Exhaustion, mixed consumption, and exactly-once lazy production."""

    def make_lazy(self, rows):
        gen = generator_from_rows(result_schema("g", 1), rows)
        produced = []
        gen.on_produce = produced.append
        return ResultStream(gen, "g"), produced

    def test_next_after_exhaustion_on_lazy_stays_none(self):
        stream, _produced = self.make_lazy([(1,), (2,)])
        assert stream.next() == (1,)
        assert stream.next() == (2,)
        assert stream.next() is None
        assert stream.next() is None  # stays exhausted, no restart

    def test_fetch_all_after_partial_next_is_complete(self):
        stream, produced = self.make_lazy([(1,), (2,), (3,)])
        assert stream.next() == (1,)
        assert stream.fetch_all() == [(1,), (2,), (3,)]
        # Each tuple was produced (and would be charged) exactly once:
        # the memoized prefix served the re-read of row 1.
        assert produced == [(1,), (2,), (3,)]

    def test_double_iteration_produces_each_tuple_once(self):
        stream, produced = self.make_lazy([(1,), (2,)])
        assert list(stream) == [(1,), (2,)]
        assert list(stream) == [(1,), (2,)]
        assert produced == [(1,), (2,)]

    def test_next_after_fetch_all_continues_from_memo(self):
        stream, produced = self.make_lazy([(1,), (2,)])
        assert stream.fetch_all() == [(1,), (2,)]
        assert stream.next() == (1,)  # fresh cursor over the memoized rows
        assert produced == [(1,), (2,)]

    def test_duplicate_rows_deduplicated_and_charged_once(self):
        stream, produced = self.make_lazy([(1,), (1,), (2,)])
        assert stream.fetch_all() == [(1,), (2,)]
        assert produced == [(1,), (2,)]

    def test_eager_stream_unaffected_by_mixed_consumption(self):
        relation = relation_from_columns("r", a=[1, 2, 3])
        stream = ResultStream(relation, "r")
        assert stream.next() == (1,)
        assert stream.fetch_all() == [(1,), (2,), (3,)]
        assert stream.next() == (2,)  # next() keeps its own cursor


class SpyRegion:
    """A ParallelRegion that reports its per-track totals on exit."""

    def __init__(self, clock, sink):
        self._region = ParallelRegion(clock)
        self._sink = sink

    def __enter__(self):
        return self._region.__enter__()

    def __exit__(self, *exc):
        self._sink.append(self._region.tracks)
        return self._region.__exit__(*exc)


def spy_on_parallel(clock):
    """Capture the track totals of every parallel region ``clock`` opens."""
    captured = []

    def parallel():
        return SpyRegion(clock, captured)

    clock.parallel = parallel
    return captured


class TestParallelEquivalence:
    """Property: parallel execution changes timing, never answers.

    Section 5.3.3 — remote and cache subqueries overlap, so a parallel
    region advances the clock by max(local, remote) while producing the
    same rows the sequential schedule would.
    """

    QUERY = "q(Z) :- b2(2, Z), b3(Z, c2, 1)"
    WARM = "e12(X, Y) :- b3(X, c2, Y)"

    def run_once(self, b2_rows, b3_rows, parallel):
        server = RemoteDBMS()
        b2 = Relation(result_schema("b2", 2), b2_rows)
        b3 = Relation(result_schema("b3", 3), b3_rows)
        server.load_table(b2.renamed("b2"))
        server.load_table(b3.renamed("b3"))
        cache = Cache()
        lookup = {"b2": b2, "b3": b3}.__getitem__
        warm = make_psj(self.WARM)
        cache.store(warm, evaluate_psj(warm, lookup))
        monitor = ExecutionMonitor(
            cache,
            RemoteInterface(server),
            server.clock,
            server.profile,
            server.metrics,
            parallel=parallel,
        )
        planner = make_planner(cache, server)
        psj = make_psj(self.QUERY)
        plan = planner.plan(psj)
        regions = spy_on_parallel(server.clock)
        before = server.clock.now
        result = monitor.execute(plan)
        elapsed = server.clock.now - before
        expected = evaluate_psj(psj, lookup)
        return result, expected, elapsed, regions, plan

    @given(
        b2_rows=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=24
        ),
        b3_rows=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.sampled_from(["c2", "c3"]),
                st.integers(0, 2),
            ),
            max_size=24,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_parallel_and_sequential_agree(self, b2_rows, b3_rows):
        par, expected, par_elapsed, regions, plan = self.run_once(
            b2_rows, b3_rows, parallel=True
        )
        seq, _expected, seq_elapsed, seq_regions, _ = self.run_once(
            b2_rows, b3_rows, parallel=False
        )
        # Same answer multiset, and both match direct evaluation.
        assert sorted(par.rows) == sorted(seq.rows) == sorted(expected.rows)
        # Parallel never takes longer than sequential.
        assert par_elapsed <= seq_elapsed + 1e-12
        assert not seq_regions  # sequential run opens no parallel region
        if regions:
            # The region advanced the clock by exactly max(local, remote);
            # work outside the region (combine/metrics) is sequential.
            overlap = sum(max(tracks.values()) for tracks in regions)
            saved = sum(sum(tracks.values()) for tracks in regions) - overlap
            assert seq_elapsed - par_elapsed == pytest.approx(saved)

    def test_hybrid_parallel_elapsed_is_max_of_tracks(self):
        b2_rows = [(x, z) for x in range(4) for z in range(4)]
        b3_rows = [
            (z, c, y) for z in range(4) for c in ("c2", "c3") for y in range(3)
        ]
        result, expected, elapsed, regions, plan = self.run_once(
            b2_rows, b3_rows, parallel=True
        )
        assert plan.strategy == "hybrid"
        assert sorted(result.rows) == sorted(expected.rows)
        assert len(regions) == 1
        tracks = regions[0]
        assert set(tracks) == {"local", "remote"}
        assert max(tracks.values()) <= elapsed
        # Everything charged outside the region is sequential tail work.
        assert elapsed >= max(tracks.values())
