"""Unit tests for the Execution Monitor and result streams."""

import pytest

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import PlanningError
from repro.common.metrics import CACHE_TUPLES_PROCESSED, Metrics
from repro.relational.generator import generator_from_rows
from repro.relational.relation import Relation, relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.caql.psj import psj_from_literals
from repro.core.cache import Cache
from repro.core.executor import ExecutionMonitor, ResultStream
from repro.core.plan import QueryPlan
from repro.core.planner import QueryPlanner
from repro.core.advice_manager import AdviceManager
from repro.core.rdi import RemoteInterface


def make_psj(text):
    return psj_of(parse_query(text))


B2 = Relation(result_schema("b2", 2), [(x, z) for x in range(4) for z in range(4)])
B3 = Relation(
    result_schema("b3", 3),
    [(z, c, y) for z in range(4) for c in ("c2", "c3") for y in range(3)],
)


def make_monitor(cache=None):
    server = RemoteDBMS()
    server.load_table(B2.renamed("b2"))
    server.load_table(B3.renamed("b3"))
    cache = cache if cache is not None else Cache()
    monitor = ExecutionMonitor(
        cache,
        RemoteInterface(server),
        server.clock,
        server.profile,
        server.metrics,
    )
    return monitor, cache, server


def make_planner(cache, server):
    manager = AdviceManager()
    manager.begin_session(None)
    rdi = RemoteInterface(server)
    return QueryPlanner(cache, manager, rdi.statistics_of, server.profile)


class TestDegenerateStrategies:
    def test_unsatisfiable_plan_empty(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X) :- b2(X, Z), 1 > 2")
        result = monitor.execute(QueryPlan(psj, "unsatisfiable"))
        assert len(result) == 0

    def test_unit_plan(self):
        monitor, _cache, _server = make_monitor()
        psj = psj_from_literals("q", [], [], ())
        result = monitor.execute(QueryPlan(psj, "unit"))
        assert result.rows == [(True,)]

    def test_unknown_strategy_rejected(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X, Z) :- b2(X, Z)")
        with pytest.raises(PlanningError):
            monitor.execute(QueryPlan(psj, "teleport"))

    def test_exact_plan_with_vanished_element(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X, Z) :- b2(X, Z)")
        with pytest.raises(PlanningError):
            monitor.execute(QueryPlan(psj, "exact"))

    def test_cache_full_plan_without_match(self):
        monitor, _cache, _server = make_monitor()
        psj = make_psj("q(X, Z) :- b2(X, Z)")
        with pytest.raises(PlanningError):
            monitor.execute(QueryPlan(psj, "cache-full"))


class TestPlansEndToEnd:
    def run_plan(self, query_text, warm_texts=()):
        monitor, cache, server = make_monitor()
        lookup = {"b2": B2, "b3": B3}.__getitem__
        for text in warm_texts:
            psj = make_psj(text)
            cache.store(psj, evaluate_psj(psj, lookup))
        planner = make_planner(cache, server)
        psj = make_psj(query_text)
        plan = planner.plan(psj)
        result = monitor.execute(psj and plan)
        expected = evaluate_psj(psj, lookup)
        return plan, result, expected, monitor

    def test_remote_plan_matches_direct_eval(self):
        plan, result, expected, _ = self.run_plan("q(X, Z) :- b2(X, Z), X < 2")
        assert plan.strategy == "remote"
        assert result == expected

    def test_cache_full_plan_matches(self):
        plan, result, expected, _ = self.run_plan(
            "q(Z) :- b2(2, Z)", warm_texts=["scan(X, Z) :- b2(X, Z)"]
        )
        assert plan.strategy == "cache-full"
        assert result == expected

    def test_hybrid_plan_matches(self):
        plan, result, expected, _ = self.run_plan(
            "q(Z) :- b2(2, Z), b3(Z, c2, 1)",
            warm_texts=["e12(X, Y) :- b3(X, c2, Y)"],
        )
        assert plan.strategy == "hybrid"
        assert result == expected

    def test_hybrid_charges_local_work(self):
        _plan, _result, _expected, monitor = self.run_plan(
            "q(Z) :- b2(2, Z), b3(Z, c2, 1)",
            warm_texts=["e12(X, Y) :- b3(X, c2, Y)"],
        )
        assert monitor.metrics.get(CACHE_TUPLES_PROCESSED) > 0

    def test_parallel_overlap_in_hybrid(self):
        monitor, cache, server = make_monitor()
        lookup = {"b2": B2, "b3": B3}.__getitem__
        psj_e = make_psj("e12(X, Y) :- b3(X, c2, Y)")
        cache.store(psj_e, evaluate_psj(psj_e, lookup))
        planner = make_planner(cache, server)
        psj = make_psj("q(Z) :- b2(2, Z), b3(Z, c2, 1)")
        plan = planner.plan(psj)
        assert plan.strategy == "hybrid"
        monitor.execute(plan)  # warm the RDI's schema cache (one-time cost)

        monitor.parallel = True
        before = server.clock.now
        monitor.execute(plan)
        parallel_time = server.clock.now - before

        monitor.parallel = False
        before = server.clock.now
        monitor.execute(plan)
        sequential_time = server.clock.now - before
        assert parallel_time <= sequential_time


class TestResultStream:
    def test_next_and_exhaustion(self):
        relation = relation_from_columns("r", a=[1, 2])
        stream = ResultStream(relation, "r")
        assert stream.next() == (1,)
        assert stream.next() == (2,)
        assert stream.next() is None

    def test_iteration(self):
        relation = relation_from_columns("r", a=[1, 2, 3])
        assert len(list(ResultStream(relation, "r"))) == 3

    def test_fetch_all_on_generator(self):
        gen = generator_from_rows(result_schema("g", 1), [(1,), (2,)])
        stream = ResultStream(gen, "g")
        assert stream.lazy
        assert stream.fetch_all() == [(1,), (2,)]

    def test_as_relation_materializes(self):
        gen = generator_from_rows(result_schema("g", 1), [(9,)])
        relation = ResultStream(gen, "g").as_relation()
        assert isinstance(relation, Relation)
        assert relation.rows == [(9,)]

    def test_schema_passthrough(self):
        relation = relation_from_columns("r", a=[1])
        assert ResultStream(relation, "r").schema.attributes == ("a",)
