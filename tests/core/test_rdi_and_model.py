"""Tests for the Remote DBMS Interface and the cache model."""

import pytest

from repro.common.errors import TranslationError, UnknownRelationError
from repro.common.metrics import REMOTE_REQUESTS
from repro.relational.relation import Relation, relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.core.cache import Cache
from repro.core.cache_model import CACHE_MODEL_SCHEMA, cache_model, cache_statistics
from repro.core.rdi import RemoteInterface


def make_server():
    server = RemoteDBMS()
    server.load_table(
        relation_from_columns("emp", id=[1, 2, 3], dept=["a", "b", "a"])
    )
    return server


def make_psj(text):
    return psj_of(parse_query(text))


class TestRemoteInterface:
    def test_fetch_matches_local_eval(self):
        server = make_server()
        rdi = RemoteInterface(server)
        psj = make_psj("q(I) :- emp(I, a)")
        local = evaluate_psj(
            psj, {"emp": Relation(result_schema("emp", 2), [(1, "a"), (2, "b"), (3, "a")])}.__getitem__
        )
        assert rdi.fetch(psj) == local

    def test_schema_cached_after_first_lookup(self):
        server = make_server()
        rdi = RemoteInterface(server)
        rdi.schema_of("emp")
        first = server.metrics.get(REMOTE_REQUESTS)
        rdi.schema_of("emp")
        assert server.metrics.get(REMOTE_REQUESTS) == first

    def test_statistics_cached(self):
        server = make_server()
        rdi = RemoteInterface(server)
        assert rdi.statistics_of("emp").cardinality == 3
        first = server.metrics.get(REMOTE_REQUESTS)
        rdi.statistics_of("emp")
        assert server.metrics.get(REMOTE_REQUESTS) == first

    def test_has_table_uses_cache(self):
        server = make_server()
        rdi = RemoteInterface(server)
        rdi.schema_of("emp")
        assert rdi.has_table("emp")
        assert not rdi.has_table("ghost")

    def test_fetch_base_relation_positional_attrs(self):
        rdi = RemoteInterface(make_server())
        relation = rdi.fetch_base_relation("emp")
        assert relation.schema.attributes == ("a0", "a1")
        assert len(relation) == 3

    def test_fetch_base_unknown(self):
        rdi = RemoteInterface(make_server())
        with pytest.raises(UnknownRelationError):
            rdi.fetch_base_relation("ghost")

    def test_fetch_unsatisfiable_rejected(self):
        rdi = RemoteInterface(make_server())
        with pytest.raises(TranslationError):
            rdi.fetch(make_psj("q(I) :- emp(I, a), 1 > 2"))

    def test_estimate_cost_positive(self):
        rdi = RemoteInterface(make_server())
        assert rdi.estimate_cost(100, 10) > 0

    def test_estimate_cost_keeps_fractional_tuples(self):
        # Regression: estimates were truncated to int, so sub-tuple
        # expectations (selectivity * cardinality < 1) looked free and
        # biased the planner toward remote execution.
        server = make_server()
        rdi = RemoteInterface(server)
        base = rdi.estimate_cost(0, 0)
        fractional = rdi.estimate_cost(0.5, 0.5)
        assert fractional > base
        expected = (
            server.profile.remote_latency
            + 0.5 * server.profile.server_per_tuple
            + 0.5 * server.profile.transfer_per_tuple
        )
        assert fractional == pytest.approx(expected)

    def test_estimate_cost_monotone_in_both_arguments(self):
        rdi = RemoteInterface(make_server())
        assert rdi.estimate_cost(10.2, 3.7) > rdi.estimate_cost(10.1, 3.7)
        assert rdi.estimate_cost(10.2, 3.8) > rdi.estimate_cost(10.2, 3.7)


class TestCacheModel:
    def fill_cache(self):
        cache = Cache()
        psj = make_psj("d1(I) :- emp(I, a)")
        element = cache.store(
            psj, Relation(result_schema("d1", 1), [(1,), (3,)]), use="probe"
        )
        cache.touch(element)
        return cache, element

    def test_model_schema(self):
        cache, _ = self.fill_cache()
        model = cache_model(cache)
        assert model.schema is CACHE_MODEL_SCHEMA
        assert len(model) == 1

    def test_model_row_contents(self):
        cache, element = self.fill_cache()
        (row,) = cache_model(cache).rows
        as_dict = dict(zip(CACHE_MODEL_SCHEMA.attributes, row))
        assert as_dict["e_id"] == element.element_id
        assert as_dict["view"] == "d1"
        assert as_dict["kind"] == "extension"
        assert as_dict["rows"] == 2
        assert as_dict["use_count"] == 1
        assert as_dict["uses"] == "probe"
        assert as_dict["pinned"] == 0

    def test_model_is_queryable_relation(self):
        cache, _ = self.fill_cache()
        model = cache_model(cache)
        assert model.column("view") == ["d1"]

    def test_statistics(self):
        cache, _ = self.fill_cache()
        stats = cache_statistics(cache)
        assert stats["elements"] == 1
        assert stats["extensions"] == 1
        assert stats["generators"] == 0
        assert stats["total_rows"] == 2
        assert 0 < stats["fill_fraction"] < 1

    def test_empty_cache_statistics(self):
        stats = cache_statistics(Cache())
        assert stats["elements"] == 0
        assert stats["fill_fraction"] == 0
