"""Tests for cache concurrency control: pins, condemnation, epochs."""

import pytest

from repro.common.errors import CacheError
from repro.common.metrics import CACHE_PIN_DEFERRALS, CACHE_STALE_REPLANS, Metrics
from repro.relational.relation import Relation
from repro.caql.parser import parse_query
from repro.caql.eval import psj_of, result_schema
from repro.core.cache import Cache
from repro.core.cms import CacheManagementSystem
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import selection_universe


def make_psj(text):
    return psj_of(parse_query(text))


def make_relation(name, n, width=2):
    schema = result_schema(name, width)
    return Relation(
        schema, [tuple(f"{name}{i}_{j}" for j in range(width)) for i in range(n)]
    )


def store(cache, text, rows=5):
    psj = make_psj(text)
    return cache.store(psj, make_relation(psj.name, rows, max(psj.arity, 1)))


class TestPinCounts:
    def test_pin_unpin_balance(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.pin(element)
        cache.pin(element)
        assert element.pin_count == 2
        assert element.pinned
        cache.unpin(element)
        assert element.pinned
        cache.unpin(element)
        assert not element.pinned

    def test_unmatched_unpin_rejected(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        with pytest.raises(CacheError):
            cache.unpin(element)

    def test_boolean_property_back_compat(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        element.pinned = True
        assert element.pin_count == 1
        element.pinned = True  # idempotent, not additive
        assert element.pin_count == 1
        element.pinned = False
        assert element.pin_count == 0

    def test_pinned_element_survives_replacement(self):
        cache = Cache(capacity_bytes=320)  # room for exactly two elements
        e1 = store(cache, "d1(X, Y) :- b1(X, Y)")
        e2 = store(cache, "d2(X, Y) :- b2(X, Y)")
        cache.pin(e2)  # e1 is more recent, but e2 is protected
        cache.touch(e1)
        store(cache, "d3(X, Y) :- b3(X, Y)")
        assert e2.element_id in cache
        assert e1.element_id not in cache


class TestCondemnation:
    def test_discard_while_pinned_defers_reclaim(self):
        metrics = Metrics()
        cache = Cache(metrics=metrics)
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.pin(element)
        cache.discard(element.element_id)
        # Logically gone: lookups and subsumption cannot find it...
        assert element.element_id not in cache
        assert cache.lookup_exact(make_psj("other(A, B) :- b1(A, B)")) is None
        assert cache.elements_for_predicate("b1") == []
        # ...but physically resident and accounted until the pin drops.
        assert element.condemned
        assert cache.condemned_elements() == [element]
        assert cache.used_bytes() > 0
        assert cache.reclaim_count == 0
        assert metrics.get(CACHE_PIN_DEFERRALS) == 1

    def test_reclaimed_exactly_once_on_last_unpin(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.pin(element)
        cache.pin(element)
        cache.discard(element.element_id)
        cache.unpin(element)
        assert cache.reclaim_count == 0  # one pin still holds it
        cache.unpin(element)
        assert cache.reclaim_count == 1
        assert cache.condemned_elements() == []
        assert cache.used_bytes() == 0
        # No way to double-reclaim: the pin ledger is already empty.
        with pytest.raises(CacheError):
            cache.unpin(element)
        assert cache.reclaim_count == 1

    def test_unpinned_discard_reclaims_immediately(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.discard(element.element_id)
        assert cache.reclaim_count == 1
        assert not element.condemned

    def test_condemned_element_stays_readable(self):
        # The whole point: an in-flight stream over a condemned element
        # keeps producing correct rows until its consumer is done.
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)", rows=3)
        cache.pin(element)
        cache.discard(element.element_id)
        assert len(element.extension()) == 3


class TestEpochs:
    def test_store_and_discard_bump_epoch(self):
        cache = Cache()
        assert cache.epoch == 0
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        assert cache.epoch == 1
        assert element.epoch == 1
        cache.discard(element.element_id)
        assert cache.epoch == 2

    def test_reusing_store_does_not_bump(self):
        cache = Cache()
        store(cache, "d1(X, Y) :- b1(X, Y)")
        store(cache, "renamed(A, B) :- b1(A, B)")  # same canonical key
        assert cache.epoch == 1

    def test_clear_bumps_epoch(self):
        cache = Cache()
        store(cache, "d1(X, Y) :- b1(X, Y)")
        cache.clear()
        assert cache.epoch == 2

    def test_validate(self):
        cache = Cache()
        element = store(cache, "d1(X, Y) :- b1(X, Y)")
        assert cache.validate(element)
        cache.discard(element.element_id)
        assert not cache.validate(element)


class TestStaleReplan:
    def make_cms(self):
        remote = RemoteDBMS()
        for table in selection_universe(rows=30, seed=5).tables:
            remote.load_table(table)
        cms = CacheManagementSystem(remote)
        cms.begin_session()
        return cms

    def test_executor_detects_invalidated_exact_plan(self):
        from repro.common.errors import StalePlanError

        cms = self.make_cms()
        cms.query(parse_query("q(I, V) :- item(I, cat0, V)")).fetch_all()
        # An exact-reuse plan whose element is yanked before execution.
        plan = cms.planner.plan(psj_of(parse_query("q2(I, V) :- item(I, cat0, V)")))
        assert plan.strategy == "exact"
        cms.cache.clear()
        with pytest.raises(StalePlanError):
            cms.monitor.execute(plan)

    def test_executor_detects_invalidated_derived_plan(self):
        from repro.common.errors import StalePlanError

        cms = self.make_cms()
        cms.query(parse_query("q(I, V) :- item(I, cat0, V)")).fetch_all()
        # A subsumption-derived plan holds direct element references; the
        # epoch tag forces their re-validation at execution time.
        plan = cms.planner.plan(
            psj_of(parse_query("q2(I, V) :- item(I, cat0, V), V >= 100"))
        )
        assert plan.cache_elements()
        assert plan.epoch == cms.cache.epoch
        cms.cache.clear()
        assert plan.epoch != cms.cache.epoch
        with pytest.raises(StalePlanError):
            cms.monitor.execute(plan)

    def test_cms_replans_and_answers_correctly(self, monkeypatch):
        from repro.common.errors import StalePlanError

        cms = self.make_cms()
        expected = sorted(
            cms.query(parse_query("q(I, V) :- item(I, cat0, V)")).fetch_all()
        )
        calls = {"n": 0}
        real_execute = cms.monitor.execute

        def invalidated_once(plan):
            if calls["n"] == 0:
                calls["n"] += 1
                raise StalePlanError("concurrent invalidation")
            return real_execute(plan)

        monkeypatch.setattr(cms.monitor, "execute", invalidated_once)
        rows = sorted(
            cms.query(parse_query("q2(I, V) :- item(I, cat0, V)")).fetch_all()
        )
        assert rows == expected
        assert cms.metrics.get(CACHE_STALE_REPLANS) == 1
