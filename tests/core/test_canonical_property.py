"""Property suite for the PSJ canonicalizer (hypothesis).

Three laws, each over generated conjunctive queries with joins and
mixed int/float constant spellings:

* **idempotence** — canonicalizing the normalized expression changes
  nothing (same key, same expression);
* **mutation invariance** — every output of the equivalent-query
  mutator (``repro.qa.generator.mutate_equivalent``) canonicalizes to
  the same key as its source;
* **answer preservation** — the normalized expression and every mutated
  spelling produce exactly the oracle's rows under direct evaluation.

Any counterexample hypothesis shrinks to is also written out as a
standard repro.qa repro file (``BRAID_QA_REPRO_DIR``, default
``.qa-repros``), replayable with ``scripts/braid_fuzz.py --replay``.
"""

import os
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caql.eval import evaluate_psj, psj_of, result_schema
from repro.caql.parser import parse_query
from repro.core.canonical import canonical_key, canonicalize
from repro.qa import write_repro
from repro.qa.generator import case_from_relations, mutate_equivalent
from repro.relational.relation import Relation

R_ROWS = [(x, y, z) for x in range(5) for y in range(5) for z in range(3)]
S_ROWS = [(z, w) for z in range(4) for w in range(3)]
DB = {
    "r": Relation(result_schema("r", 3), R_ROWS),
    "s": Relation(result_schema("s", 2), S_ROWS),
}

#: Atomic conditions with deliberately mixed constant spellings: the
#: int/float collisions (2 vs 2.0) are the canonicalizer's hard cases.
CONDITIONS = [
    f"{var} {op} {lit}"
    for var in ("X", "Y", "Z")
    for op in ("<", "=<", ">", ">=", "=", "\\=")
    for lit in (0, 2, "2.0", 4, "3.5")
]

condition_sets = st.lists(st.sampled_from(CONDITIONS), unique=True, max_size=4)
bodies = st.sampled_from(
    [
        ("r(X, Y, Z)", "q(X, Y, Z)"),
        ("r(X, Y, Z), s(Z, W)", "q(X, W)"),
        ("r(X, Y, Z), r(Y, X, Z)", "q(X, Y)"),
    ]
)
mutation_seeds = st.integers(min_value=0, max_value=2**32 - 1)


def query_text(body_head, conditions):
    body, head = body_head
    return f"{head} :- {', '.join([body] + list(conditions))}"


def rows_of(text):
    return set(evaluate_psj(psj_of(parse_query(text)), DB.__getitem__).rows)


def save_counterexample(reason, *texts):
    """Persist the (shrunk) failing inputs as a replayable repro file."""
    directory = os.environ.get("BRAID_QA_REPRO_DIR", ".qa-repros")
    os.makedirs(directory, exist_ok=True)
    case = case_from_relations(DB, list(texts))
    path = os.path.join(directory, f"repro-canonical-{case.fingerprint()[:12]}.json")
    write_repro(path, case, reason=reason)
    return path


@settings(max_examples=100, deadline=None)
@given(bodies, condition_sets)
def test_canonicalization_is_idempotent(body_head, conditions):
    text = query_text(body_head, conditions)
    form = canonicalize(psj_of(parse_query(text)))
    if form.unsatisfiable:
        return  # the unsat fast path has no normalized expression to re-run
    again = canonicalize(form.query)
    if again.key != form.key or again.query != form.query:
        save_counterexample("property: canonicalization not idempotent", text)
        raise AssertionError(f"canonicalization not idempotent for {text}")


@settings(max_examples=100, deadline=None)
@given(bodies, condition_sets, mutation_seeds)
def test_mutations_preserve_the_canonical_key(body_head, conditions, seed):
    text = query_text(body_head, conditions)
    original_key = canonical_key(psj_of(parse_query(text)))
    mutated = mutate_equivalent(text, random.Random(seed))
    mutated_key = canonical_key(psj_of(parse_query(mutated)))
    if mutated_key != original_key:
        save_counterexample(
            "property: mutation changed the canonical key", text, mutated
        )
        raise AssertionError(
            f"mutation changed the canonical key:\n  {text}\n  {mutated}"
        )


@settings(max_examples=100, deadline=None)
@given(bodies, condition_sets, mutation_seeds)
def test_canonicalization_preserves_answers(body_head, conditions, seed):
    text = query_text(body_head, conditions)
    psj = psj_of(parse_query(text))
    oracle = set(evaluate_psj(psj, DB.__getitem__).rows)

    form = canonicalize(psj)
    normalized_rows = (
        set() if form.unsatisfiable
        else set(evaluate_psj(form.query, DB.__getitem__).rows)
    )
    if normalized_rows != oracle:
        save_counterexample("property: normalized expression diverges", text)
        raise AssertionError(f"normalized expression diverges for {text}")

    mutated = mutate_equivalent(text, random.Random(seed))
    if rows_of(mutated) != oracle:
        save_counterexample("property: mutated spelling diverges", text, mutated)
        raise AssertionError(f"mutated spelling diverges:\n  {text}\n  {mutated}")


def test_counterexamples_become_replayable_repros(tmp_path, monkeypatch):
    """The auto-save path itself: written files load and replay cleanly."""
    monkeypatch.setenv("BRAID_QA_REPRO_DIR", str(tmp_path))
    text = query_text(("r(X, Y, Z)", "q(X, Y, Z)"), ["X < 2"])
    path = save_counterexample("demo", text)
    from repro.qa import load_repro, replay

    loaded = load_repro(path)
    assert loaded.queries == [text]
    assert not replay(path).failed
