"""End-to-end tests for the Cache Management System."""

import pytest

from repro.common.errors import AdviceError
from repro.common.metrics import (
    CACHE_GENERALIZATIONS,
    CACHE_HITS_CANONICAL,
    CACHE_HITS_EXACT,
    CACHE_HITS_SUBSUMED,
    CACHE_INDEX_BUILDS,
    CACHE_MISSES,
    CACHE_PREFETCHES,
    REMOTE_REQUESTS,
    REMOTE_TUPLES,
)
from repro.logic.parser import parse_atom
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.remote.sqlite_backend import SqliteEngine
from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.ast import AggregateQuery, SetOfQuery
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures


def load_tables(server):
    server.load_table(
        relation_from_columns(
            "parent",
            par=["tom", "tom", "bob", "bob", "liz"],
            child=["bob", "liz", "ann", "pat", "joe"],
        )
    )
    server.load_table(
        relation_from_columns(
            "age",
            person=["tom", "bob", "liz", "ann", "pat", "joe"],
            years=[60, 35, 33, 8, 10, 2],
        )
    )
    return server


@pytest.fixture
def cms():
    system = CacheManagementSystem(load_tables(RemoteDBMS()))
    system.begin_session()
    return system


class TestBasicAnswers:
    def test_selection(self, cms):
        result = cms.query(parse_query("q(Y) :- parent(tom, Y)"))
        assert set(result.fetch_all()) == {("bob",), ("liz",)}

    def test_join(self, cms):
        result = cms.query(parse_query("q(X, A) :- parent(X, Y), age(Y, A), A < 20"))
        assert set(result.fetch_all()) == {("bob", 8), ("bob", 10), ("liz", 2)}

    def test_boolean_query(self, cms):
        result = cms.query(parse_query("q(tom, bob) :- parent(tom, bob)"))
        assert result.fetch_all() == [("tom", "bob")]

    def test_boolean_query_false(self, cms):
        result = cms.query(parse_query("q(bob, tom) :- parent(bob, tom)"))
        assert result.fetch_all() == []

    def test_unsatisfiable(self, cms):
        result = cms.query(parse_query("q(Y) :- parent(tom, Y), 1 > 2"))
        assert result.fetch_all() == []

    def test_evaluable_residue(self, cms):
        result = cms.query(parse_query("q(X, S) :- age(X, A), plus(A, 1, S), A > 30"))
        assert set(result.fetch_all()) == {("tom", 61), ("bob", 36), ("liz", 34)}

    def test_stream_single_solution(self, cms):
        stream = cms.query(parse_query("q(Y) :- parent(tom, Y)"))
        first = stream.next()
        assert first in {("bob",), ("liz",)}
        second = stream.next()
        assert second is not None and second != first
        assert stream.next() is None

    def test_works_against_sqlite_backend(self):
        server = load_tables(RemoteDBMS(engine=SqliteEngine()))
        system = CacheManagementSystem(server)
        system.begin_session()
        result = system.query(parse_query("q(Y) :- parent(tom, Y)"))
        assert set(result.fetch_all()) == {("bob",), ("liz",)}


class TestCachingBehaviour:
    def test_repeat_query_is_exact_hit(self, cms):
        q = parse_query("q(Y) :- parent(tom, Y)")
        cms.query(q)
        requests_before = cms.metrics.get(REMOTE_REQUESTS)
        again = cms.query(q)
        assert set(again.fetch_all()) == {("bob",), ("liz",)}
        assert cms.metrics.get(REMOTE_REQUESTS) == requests_before
        assert cms.metrics.get(CACHE_HITS_EXACT) == 1

    def test_subsumption_reuse(self, cms):
        cms.query(parse_query("scan(X, Y) :- parent(X, Y)"))
        requests_before = cms.metrics.get(REMOTE_REQUESTS)
        result = cms.query(parse_query("q(Y) :- parent(bob, Y)"))
        assert set(result.fetch_all()) == {("ann",), ("pat",)}
        assert cms.metrics.get(REMOTE_REQUESTS) == requests_before
        assert cms.metrics.get(CACHE_HITS_SUBSUMED) == 1

    def test_range_subsumption(self, cms):
        cms.query(parse_query("adults(X, A) :- age(X, A), A > 9"))
        before = cms.metrics.get(REMOTE_REQUESTS)
        result = cms.query(parse_query("q(X, A) :- age(X, A), A > 30"))
        assert set(result.fetch_all()) == {("tom", 60), ("bob", 35), ("liz", 33)}
        assert cms.metrics.get(REMOTE_REQUESTS) == before

    def test_caching_disabled(self):
        system = CacheManagementSystem(
            load_tables(RemoteDBMS()), features=CMSFeatures.none()
        )
        system.begin_session()
        q = parse_query("q(Y) :- parent(tom, Y)")
        system.query(q)
        before = system.metrics.get(REMOTE_REQUESTS)
        system.query(q)
        assert system.metrics.get(REMOTE_REQUESTS) == before + 1
        assert len(system.cache) == 0

    def test_different_constants_are_misses_without_generalization(self, cms):
        cms.query(parse_query("q(Y) :- parent(tom, Y)"))
        cms.query(parse_query("q(Y) :- parent(bob, Y)"))
        assert cms.metrics.get(CACHE_MISSES) == 2

    def test_cache_model_reflects_contents(self, cms):
        cms.query(parse_query("q(Y) :- parent(tom, Y)"))
        model = cms.cache_model()
        assert len(model) == 1
        stats = cms.cache_statistics()
        assert stats["elements"] == 1


class TestAdviceDrivenExecution:
    def make_advice(self):
        dkids = annotate(parse_query("dkids(P, C) :- parent(P, C)"), "?^")
        path = Sequence(
            (QueryPattern("dkids", ("P?", "C^")),), lower=0, upper=Cardinality("P")
        )
        return AdviceSet.from_views([dkids], path_expression=path)

    def test_generalization_amortizes_requests(self, cms):
        cms.begin_session(self.make_advice())
        for person in ("tom", "bob", "liz"):
            result = cms.query(parse_query(f"dkids({person}, C) :- parent({person}, C)"))
            result.fetch_all()
        assert cms.metrics.get(CACHE_GENERALIZATIONS) == 1
        # One data request (the generalized fetch) for all three queries.
        assert cms.metrics.get(CACHE_HITS_SUBSUMED) >= 2

    def test_generalization_builds_consumer_index(self, cms):
        cms.begin_session(self.make_advice())
        cms.query(parse_query("dkids(tom, C) :- parent(tom, C)"))
        assert cms.metrics.get(CACHE_INDEX_BUILDS) >= 1

    def test_query_pattern_interface(self, cms):
        cms.begin_session(self.make_advice())
        stream = cms.query_pattern(parse_atom("dkids(tom, C)"))
        assert set(stream.fetch_all()) == {("tom", "bob"), ("tom", "liz")}

    def test_query_pattern_unknown_view(self, cms):
        cms.begin_session(self.make_advice())
        with pytest.raises(AdviceError):
            cms.query_pattern(parse_atom("nosuch(tom, C)"))

    def test_query_pattern_arity_checked(self, cms):
        cms.begin_session(self.make_advice())
        with pytest.raises(AdviceError):
            cms.query_pattern(parse_atom("dkids(tom)"))

    def test_prefetch_companions(self, cms):
        dparents = annotate(parse_query("dparents(P, C) :- parent(P, C)"), "^^")
        dages = annotate(parse_query("dages(X, A) :- age(X, A)"), "^^")
        path = Sequence((QueryPattern("dparents"), QueryPattern("dages")))
        advice = AdviceSet.from_views([dparents, dages], path_expression=path)
        cms.begin_session(advice)
        cms.query(parse_query("dparents(P, C) :- parent(P, C)")).fetch_all()
        assert cms.metrics.get(CACHE_PREFETCHES) == 1
        before = cms.metrics.get(REMOTE_REQUESTS)
        cms.query(parse_query("dages(X, A) :- age(X, A)")).fetch_all()
        assert cms.metrics.get(REMOTE_REQUESTS) == before  # served by prefetch

    def test_lazy_stream_for_pure_producer(self, cms):
        dall = annotate(parse_query("dall(P, C) :- parent(P, C)"), "^^")
        advice = AdviceSet.from_views([dall])
        cms.begin_session(advice)
        # Warm the cache with the full extension first.
        cms.query(parse_query("warm(P, C) :- parent(P, C)")).fetch_all()
        stream = cms.query(parse_query("dall(P, C) :- parent(P, C), P \\= liz"))
        assert stream.lazy
        first = stream.next()
        assert first is not None


class TestHybridExecution:
    def test_hybrid_combines_cache_and_remote(self, cms):
        # Warm the age relation (selective part stays remote).
        cms.query(parse_query("ages(X, A) :- age(X, A)")).fetch_all()
        result = cms.query(
            parse_query("q(C, A) :- parent(tom, C), age(C, A)")
        )
        assert set(result.fetch_all()) == {("bob", 35), ("liz", 33)}

    def test_hybrid_ships_less_than_whole(self, cms):
        cms.query(parse_query("ages(X, A) :- age(X, A)")).fetch_all()
        shipped_before = cms.metrics.get(REMOTE_TUPLES)
        cms.query(parse_query("q(C, A) :- parent(tom, C), age(C, A)")).fetch_all()
        shipped = cms.metrics.get(REMOTE_TUPLES) - shipped_before
        # Only the parent(tom, _) part crosses the wire: 2 tuples.
        assert shipped <= 2

    def test_parallel_region_overlaps_costs(self):
        # With parallelism the clock advances by max(remote, local), so a
        # hybrid run under parallel=True finishes no later than the same
        # run with parallel=False.
        def run(parallel):
            features = CMSFeatures(parallel=parallel)
            system = CacheManagementSystem(load_tables(RemoteDBMS()), features=features)
            system.begin_session()
            system.query(parse_query("ages(X, A) :- age(X, A)")).fetch_all()
            system.query(parse_query("q(C, A) :- parent(tom, C), age(C, A)")).fetch_all()
            return system.clock.now

        assert run(True) <= run(False)


class TestSecondOrderQueries:
    def test_aggregate(self, cms):
        base = parse_query("kids(P, C) :- parent(P, C)")
        agg = AggregateQuery(base, group_by=(0,), aggregations=(("count", 1, "n"),))
        result = cms.query(agg)
        assert set(result.fetch_all()) == {("tom", 2), ("bob", 2), ("liz", 1)}

    def test_setof(self, cms):
        base = parse_query("kids(C) :- parent(P, C)")
        result = cms.query(SetOfQuery(base))
        assert len(result.fetch_all()) == 5

    def test_bagof_counts(self, cms):
        base = parse_query("parents(P) :- parent(P, C)")
        result = cms.query(SetOfQuery(base, with_counts=True))
        assert all(row[-1] == 1 for row in result.fetch_all())

    def test_aggregate_base_is_cached(self, cms):
        base = parse_query("kids(P, C) :- parent(P, C)")
        agg = AggregateQuery(base, group_by=(0,), aggregations=(("count", 1, "n"),))
        cms.query(agg)
        before = cms.metrics.get(REMOTE_REQUESTS)
        cms.query(agg)
        assert cms.metrics.get(REMOTE_REQUESTS) == before


class TestMetadata:
    def test_schema_passthrough_cached(self, cms):
        cms.schema_of("parent")
        before = cms.metrics.get(REMOTE_REQUESTS)
        cms.schema_of("parent")
        assert cms.metrics.get(REMOTE_REQUESTS) == before

    def test_statistics(self, cms):
        stats = cms.statistics_of("age")
        assert stats.cardinality == 6


class TestCanonicalTier:
    """Variant spellings of a cached ask land on the canonical tier."""

    BASE = "q(X) :- age(X, A), A > 20, A < 60"
    #: Same question: conjuncts shuffled, variables renamed, a redundant
    #: bound added, a constant respelled.
    VARIANT = "q(P) :- B < 60.0, age(P, B), B > 10, B > 20"

    def test_variant_spelling_is_a_canonical_hit(self, cms):
        base_rows = set(cms.query(parse_query(self.BASE)).fetch_all())
        before = cms.metrics.get(REMOTE_REQUESTS)
        result = cms.query(parse_query(self.VARIANT))
        assert set(result.fetch_all()) == base_rows
        assert cms.metrics.get(REMOTE_REQUESTS) == before
        assert cms.metrics.get(CACHE_HITS_CANONICAL) == 1
        assert cms.metrics.get(CACHE_HITS_EXACT) == 1

    def test_explain_names_the_canonical_hit(self, cms):
        cms.query(parse_query(self.BASE))
        explanation = cms.explain(parse_query(self.VARIANT))
        assert explanation.strategy == "exact"
        assert any("canonical hit" in note for note in explanation.notes)

    def test_ablation_falls_back_to_subsumption(self):
        system = CacheManagementSystem(
            load_tables(RemoteDBMS()), features=CMSFeatures(canonical=False)
        )
        system.begin_session()
        base_rows = set(system.query(parse_query(self.BASE)).fetch_all())
        assert set(system.query(parse_query(self.VARIANT)).fetch_all()) == base_rows
        assert system.metrics.get(CACHE_HITS_CANONICAL) == 0
        assert system.metrics.get(CACHE_HITS_SUBSUMED) == 1

    def test_canonically_unsatisfiable_query_answers_empty_locally(self, cms):
        before = cms.metrics.get(REMOTE_REQUESTS)
        result = cms.query(parse_query("q(X) :- age(X, A), A > 30, A < 20"))
        assert result.fetch_all() == []
        assert cms.metrics.get(REMOTE_REQUESTS) == before
