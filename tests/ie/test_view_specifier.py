"""Tests for the view specifier, anchored on the paper's examples."""


from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom, parse_clause
from repro.logic.terms import Var
from repro.advice.view_spec import Binding
from repro.ie.extractor import extract_problem_graph
from repro.ie.shaper import shape
from repro.ie.view_specifier import (
    SpecifierConfig,
    minimal_argument_set,
    specify_views,
)

PAPER_DB = (("b1", 2), ("b2", 2), ("b3", 3))


def paper_kb():
    """Example 1 of Section 4.2.2."""
    kb = KnowledgeBase()
    for pred, arity in PAPER_DB:
        kb.declare_database(pred, arity)
    kb.add_rules(
        """
        k1(X, Y) :- b1(c1, Y), k2(X, Y).
        k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
        k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
        """
    )
    return kb


def specified(kb, query, config=None, shaped=True):
    graph = extract_problem_graph(kb, parse_atom(query))
    if shaped:
        shape(graph, kb, reorder=False)
    return graph, specify_views(graph, kb, config)


class TestMinimalArgumentSet:
    def test_paper_formula_example(self):
        # k9(X,Y) <- k2(X,Z) & b1(Z,W) & b2(W,U) & b3(U,V) & k3(V,Y)
        # run = b1,b2,b3 -> d(Z, V).
        clause = parse_clause(
            "k9(X, Y) :- k2(X, Z), b1(Z, W), b2(W, U), b3(U, V), k3(V, Y)."
        )
        run = list(clause.body[1:4])
        rest = [clause.body[0], clause.body[4]]
        answers = minimal_argument_set(clause.head, run, rest)
        assert answers == [Var("Z"), Var("V")]

    def test_head_variables_kept(self):
        clause = parse_clause("p(A) :- b1(A, B).")
        answers = minimal_argument_set(clause.head, list(clause.body), [])
        assert answers == [Var("A")]

    def test_internal_variables_dropped(self):
        clause = parse_clause("p(A) :- b1(A, B), b2(B, C).")
        answers = minimal_argument_set(clause.head, list(clause.body), [])
        assert Var("B") not in answers
        assert Var("C") not in answers

    def test_order_by_first_occurrence_in_run(self):
        clause = parse_clause("p(B, A) :- b1(A, B).")
        answers = minimal_argument_set(clause.head, list(clause.body), [])
        assert answers == [Var("A"), Var("B")]


class TestPaperExample1:
    def test_three_views_produced(self):
        kb = paper_kb()
        _graph, result = specified(kb, "k1(X, Y)")
        assert len(result.views) == 3

    def test_d1_shape(self):
        kb = paper_kb()
        _graph, result = specified(kb, "k1(X, Y)")
        d1 = result.views[0]
        assert [l.pred for l in d1.definition.literals] == ["b1"]
        assert d1.arity == 1
        assert d1.annotations == (Binding.PRODUCER,)
        assert d1.rule_ids == ("R1",)

    def test_d2_shape(self):
        kb = paper_kb()
        _graph, result = specified(kb, "k1(X, Y)")
        d2 = result.views[1]
        assert [l.pred for l in d2.definition.literals] == ["b2", "b3"]
        assert d2.arity == 2
        # X is produced; Y was bound by d1 before k2 is invoked.
        assert d2.annotations == (Binding.PRODUCER, Binding.CONSUMER)
        assert d2.rule_ids == ("R2",)

    def test_d3_shape(self):
        kb = paper_kb()
        _graph, result = specified(kb, "k1(X, Y)")
        d3 = result.views[2]
        assert [l.pred for l in d3.definition.literals] == ["b3", "b1"]
        assert d3.annotations == (Binding.PRODUCER, Binding.CONSUMER)
        assert d3.rule_ids == ("R3",)

    def test_runs_recorded_on_nodes(self):
        kb = paper_kb()
        graph, result = specified(kb, "k1(X, Y)")
        (r1,) = graph.alternatives
        assert len(r1.runs) == 1
        start, end, name, answers = r1.runs[0]
        assert (start, end) == (0, 1)
        assert name == result.views[0].name


class TestMaxConjuncts:
    def test_interpreted_config_splits_runs(self):
        kb = paper_kb()
        _graph, result = specified(
            kb, "k1(X, Y)", SpecifierConfig(max_conjuncts=1, flatten=0)
        )
        # Every view holds exactly one database literal.
        for view in result.views:
            database_literals = [
                l for l in view.definition.literals if l.pred.startswith("b")
            ]
            assert len(database_literals) == 1
        assert len(result.views) == 5  # b1 | b2, b3 | b3, b1

    def test_comparisons_ride_with_runs(self):
        kb = KnowledgeBase()
        kb.declare_database("age", 2)
        kb.add_rules("adult(X) :- age(X, A), A >= 18.")
        _graph, result = specified(kb, "adult(X)")
        (view,) = result.views
        assert [l.pred for l in view.definition.literals] == ["age", ">="]

    def test_negated_database_literal_excluded_from_runs(self):
        kb = KnowledgeBase()
        kb.declare_database("person", 1)
        kb.declare_database("parent", 2)
        kb.add_rules("childless(X) :- person(X), \\+ parent(X, Y).")
        _graph, result = specified(kb, "childless(X)")
        # Only the positive literal forms a view.
        assert len(result.views) == 1
        assert result.views[0].definition.literals[0].pred == "person"


class TestFlattening:
    def test_single_rule_inlined(self):
        kb = KnowledgeBase()
        kb.declare_database("b1", 2)
        kb.declare_database("b2", 2)
        kb.add_rules(
            """
            p(X, Y) :- b1(X, Z), helper(Z, Y).
            helper(A, B) :- b2(A, B).
            """
        )
        _graph, result = specified(kb, "p(X, Y)", SpecifierConfig(flatten=2))
        # Flattening merges b1 and b2 into one two-literal run.
        assert len(result.views) == 1
        assert [l.pred for l in result.views[0].definition.literals] == ["b1", "b2"]

    def test_no_flattening_keeps_separate_views(self):
        kb = KnowledgeBase()
        kb.declare_database("b1", 2)
        kb.declare_database("b2", 2)
        kb.add_rules(
            """
            p(X, Y) :- b1(X, Z), helper(Z, Y).
            helper(A, B) :- b2(A, B).
            """
        )
        _graph, result = specified(kb, "p(X, Y)", SpecifierConfig(flatten=0))
        assert len(result.views) == 2

    def test_disjunctive_helper_not_inlined(self):
        kb = KnowledgeBase()
        kb.declare_database("b1", 2)
        kb.declare_database("b2", 2)
        kb.declare_database("b3", 2)
        kb.add_rules(
            """
            p(X, Y) :- b1(X, Z), helper(Z, Y).
            helper(A, B) :- b2(A, B).
            helper(A, B) :- b3(A, B).
            """
        )
        _graph, result = specified(kb, "p(X, Y)", SpecifierConfig(flatten=2))
        assert len(result.views) == 3  # b1 | b2 | b3 (disjunction preserved)


class TestRootDatabaseQuery:
    def test_root_view_created(self):
        kb = paper_kb()
        _graph, result = specified(kb, "b1(c1, Y)")
        assert result.root_view is not None
        view = result.by_name[result.root_view]
        assert view.definition.literals[0].pred == "b1"
        assert view.arity == 1


class TestViewNameReuse:
    def test_identical_runs_share_names(self):
        kb = paper_kb()
        graph, result = specified(kb, "k1(X, Y)")
        before = len(result.views)
        # Re-specify the same graph into the same registry: nothing new.
        specify_views(graph, kb, result=result)
        assert len(result.views) == before
