"""Tests for problem graph extraction."""

import pytest

from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom
from repro.logic.terms import Atom, Const
from repro.ie.extractor import extract_problem_graph
from repro.ie.problem_graph import (
    BUILTIN,
    DATABASE,
    RECURSIVE_REF,
    UNKNOWN,
    USER,
    database_leaves,
    iter_and_nodes,
    render,
)


@pytest.fixture
def kb():
    base = KnowledgeBase()
    base.declare_database("parent", 2)
    base.declare_database("person", 1)
    base.add_rules(
        """
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
        adult(X) :- person(X), age_over(X, 18).
        age_over(X, N) :- parent(X, Y).
        """
    )
    return base


class TestLeaves:
    def test_database_goal_is_leaf(self, kb):
        graph = extract_problem_graph(kb, parse_atom("parent(tom, X)"))
        assert graph.kind == DATABASE
        assert graph.is_leaf

    def test_builtin_goal_is_leaf(self, kb):
        from repro.logic.terms import Var

        graph = extract_problem_graph(kb, Atom("<", (Var("X"), Var("Y"))))
        assert graph.kind == BUILTIN

    def test_unknown_goal(self, kb):
        graph = extract_problem_graph(kb, parse_atom("mystery(X)"))
        assert graph.kind == UNKNOWN


class TestExpansion:
    def test_user_goal_expands_alternatives(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        assert graph.kind == USER
        assert len(graph.alternatives) == 2
        assert [a.rule_id for a in graph.alternatives] == ["R1", "R2"]

    def test_constants_pushed_during_extraction(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        first_rule = graph.alternatives[0]
        parent_leaf = first_rule.body[0]
        assert parent_leaf.goal.args[0] == Const("tom")

    def test_recursive_occurrence_not_reexpanded(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        second_rule = graph.alternatives[1]
        kinds = [child.kind for child in second_rule.body]
        assert kinds == [DATABASE, RECURSIVE_REF]

    def test_nested_user_predicates(self, kb):
        graph = extract_problem_graph(kb, parse_atom("adult(X)"))
        (rule,) = graph.alternatives
        assert [c.kind for c in rule.body] == [DATABASE, USER]
        inner = rule.body[1]
        assert inner.alternatives[0].rule_id == "R4"

    def test_head_clash_culls_alternative(self, kb):
        kb.add_rules("special(tom).\nspecial(bob).")
        graph = extract_problem_graph(kb, parse_atom("special(liz)"))
        assert graph.alternatives == []  # neither fact head unifies

    def test_matching_fact_included(self, kb):
        kb.add_rules("special(tom).")
        graph = extract_problem_graph(kb, parse_atom("special(tom)"))
        assert len(graph.alternatives) == 1
        assert graph.alternatives[0].body == []


class TestHelpers:
    def test_database_leaves_in_order(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        leaves = database_leaves(graph)
        assert len(leaves) == 2  # one per rule's parent literal
        assert all(leaf.goal.pred == "parent" for leaf in leaves)

    def test_iter_and_nodes(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        assert len(list(iter_and_nodes(graph))) == 2

    def test_render_contains_structure(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        text = render(graph)
        assert "AND[R1]" in text
        assert "recursive-ref" in text

    def test_variables_renamed_apart_between_rules(self, kb):
        graph = extract_problem_graph(kb, parse_atom("ancestor(tom, W)"))
        r1_vars = set()
        r2_vars = set()
        for leaf in graph.alternatives[0].body:
            r1_vars |= leaf.goal.variables()
        for leaf in graph.alternatives[1].body:
            r2_vars |= leaf.goal.variables()
        # W is shared (the query variable); rule-internal vars are not.
        internal_overlap = (r1_vars & r2_vars) - parse_atom("ancestor(tom, W)").variables()
        assert not internal_overlap
