"""Tests for the problem graph shaper."""


from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom
from repro.logic.soa import FunctionalDependency, MutualExclusion
from repro.logic.terms import Atom, Const, Var
from repro.relational.statistics import RelationStatistics
from repro.ie.extractor import extract_problem_graph
from repro.ie.shaper import shape


def make_kb(rules, database=(("b1", 2), ("b2", 2), ("big", 2), ("small", 2))):
    kb = KnowledgeBase()
    for pred, arity in database:
        kb.declare_database(pred, arity)
    kb.add_rules(rules)
    return kb


class TestBuiltinFolding:
    def test_true_ground_builtin_removed(self):
        kb = make_kb("p(X) :- b1(X, Y), 1 < 2.")
        graph = shape(extract_problem_graph(kb, parse_atom("p(X)")), kb)
        (rule,) = graph.alternatives
        assert [c.goal.pred for c in rule.body] == ["b1"]

    def test_false_ground_builtin_culls_rule(self):
        kb = make_kb("p(X) :- b1(X, Y), 2 < 1.")
        graph = shape(extract_problem_graph(kb, parse_atom("p(X)")), kb)
        assert graph.alternatives == []

    def test_equality_binding_propagates(self):
        kb = make_kb("p(X) :- X = 5, b1(X, Y).")
        graph = shape(extract_problem_graph(kb, parse_atom("p(X)")), kb)
        (rule,) = graph.alternatives
        b1 = next(c for c in rule.body if c.goal.pred == "b1")
        assert b1.goal.args[0] == Const(5)

    def test_query_constant_triggers_folding(self):
        kb = make_kb("p(X) :- b1(X, Y), X < 3.")
        graph = shape(extract_problem_graph(kb, parse_atom("p(1)")), kb)
        (rule,) = graph.alternatives
        assert [c.goal.pred for c in rule.body] == ["b1"]
        graph2 = shape(extract_problem_graph(kb, parse_atom("p(9)")), kb)
        assert graph2.alternatives == []


class TestMutualExclusionCulling:
    def test_exclusive_pair_culls_rule(self):
        kb = make_kb("p(X) :- male(X), female(X).", database=(("male", 1), ("female", 1)))
        kb.add_soa(MutualExclusion((Atom("male", (Var("A"),)), Atom("female", (Var("A"),)))))
        graph = shape(extract_problem_graph(kb, parse_atom("p(X)")), kb)
        assert graph.alternatives == []

    def test_non_exclusive_rule_survives(self):
        kb = make_kb("p(X) :- male(X), tall(X).", database=(("male", 1), ("tall", 1), ("female", 1)))
        kb.add_soa(MutualExclusion((Atom("male", (Var("A"),)), Atom("female", (Var("A"),)))))
        graph = shape(extract_problem_graph(kb, parse_atom("p(X)")), kb)
        assert len(graph.alternatives) == 1


class TestOrdering:
    def stats(self, pred):
        table = {"big": 10_000, "small": 10}
        stats = RelationStatistics(cardinality=table.get(pred, 100))
        return stats

    def test_smaller_relation_first(self):
        kb = make_kb("p(X, Y) :- big(X, Z), small(Z, Y).")
        graph = shape(
            extract_problem_graph(kb, parse_atom("p(X, Y)")), kb, stats_of=self.stats
        )
        (rule,) = graph.alternatives
        assert [c.goal.pred for c in rule.body] == ["small", "big"]

    def test_bound_arguments_reduce_cost(self):
        # big has a constant argument: selectivity discounts beat small.
        kb = make_kb("p(Y) :- big(c, Z), small(Z, Y).")
        graph = shape(
            extract_problem_graph(kb, parse_atom("p(Y)")), kb, stats_of=self.stats
        )
        (rule,) = graph.alternatives
        # big: 10000 * 0.1 = 1000 vs small: 10 -> small still first.
        assert rule.body[0].goal.pred == "small"

    def test_fd_key_lookup_first(self):
        kb = make_kb("p(Y) :- big(c, Y), small(Y, Z).")
        kb.add_soa(FunctionalDependency("big", 2, (0,), (1,)))
        graph = shape(
            extract_problem_graph(kb, parse_atom("p(Y)")), kb, stats_of=self.stats
        )
        (rule,) = graph.alternatives
        assert rule.body[0].goal.pred == "big"  # key bound: one row

    def test_builtin_waits_for_bindings(self):
        kb = make_kb("p(X, Y) :- X < Y, b1(X, Z), b2(Z, Y).")
        graph = shape(extract_problem_graph(kb, parse_atom("p(X, Y)")), kb)
        (rule,) = graph.alternatives
        preds = [c.goal.pred for c in rule.body]
        assert preds.index("<") > preds.index("b1")
        assert preds.index("<") > preds.index("b2")

    def test_reorder_disabled(self):
        kb = make_kb("p(X, Y) :- big(X, Z), small(Z, Y).")
        graph = shape(
            extract_problem_graph(kb, parse_atom("p(X, Y)")),
            kb,
            stats_of=self.stats,
            reorder=False,
        )
        (rule,) = graph.alternatives
        assert [c.goal.pred for c in rule.body] == ["big", "small"]

    def test_nested_rules_shaped(self):
        kb = make_kb(
            """
            p(X) :- q(X).
            q(X) :- big(X, Y), 2 < 1.
            """
        )
        graph = shape(extract_problem_graph(kb, parse_atom("p(X)")), kb)
        (rule,) = graph.alternatives
        inner = rule.body[0]
        assert inner.alternatives == []  # culled inside the nested rule
