"""Tests for answer justification (proof trees)."""


from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.core.cms import CacheManagementSystem
from repro.ie.engine import InferenceEngine
from repro.ie.explain import BUILTIN_FACT, DATABASE_FACT, NEGATION, RULE, Explainer


def build():
    server = RemoteDBMS()
    server.load_table(
        relation_from_columns(
            "parent",
            par=["tom", "tom", "bob"],
            child=["bob", "liz", "ann"],
        )
    )
    server.load_table(
        relation_from_columns(
            "age", person=["tom", "bob", "liz", "ann"], years=[60, 35, 33, 8]
        )
    )
    kb = KnowledgeBase()
    kb.declare_database("parent", 2)
    kb.declare_database("age", 2)
    kb.add_rules(
        """
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
        minor(X) :- age(X, A), A < 18.
        orphan_like(X) :- age(X, A), \\+ parent(P, X).
        """
    )
    cms = CacheManagementSystem(server)
    cms.begin_session()
    return kb, cms


class TestProofShapes:
    def test_database_fact(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("parent(tom, bob)"))
        assert proof.kind == DATABASE_FACT
        assert proof.children == ()

    def test_false_goal_has_no_proof(self):
        kb, cms = build()
        assert Explainer(kb, cms).explain(parse_atom("parent(bob, tom)")) is None

    def test_single_rule(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("ancestor(tom, bob)"))
        assert proof.kind == RULE
        assert proof.rule_id == "R1"
        assert [c.kind for c in proof.children] == [DATABASE_FACT]

    def test_recursive_proof(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("ancestor(tom, ann)"))
        assert proof.rules_used() == ["R2", "R1"]
        facts = [str(f) for f in proof.facts_used()]
        assert facts == ["parent(tom, bob)", "parent(bob, ann)"]

    def test_builtin_step(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("minor(ann)"))
        kinds = [c.kind for c in proof.children]
        assert kinds == [DATABASE_FACT, BUILTIN_FACT]

    def test_negation_step(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("orphan_like(tom)"))
        assert proof is not None
        assert proof.children[1].kind == NEGATION

    def test_negation_blocks_proof(self):
        kb, cms = build()
        assert Explainer(kb, cms).explain(parse_atom("orphan_like(ann)")) is None


class TestRendering:
    def test_render_indents_and_labels(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("ancestor(tom, ann)"))
        text = proof.render()
        assert "[R2]" in text
        assert "[database]" in text
        assert "\n  " in text  # indentation

    def test_str_is_render(self):
        kb, cms = build()
        proof = Explainer(kb, cms).explain(parse_atom("parent(tom, bob)"))
        assert str(proof) == proof.render()


class TestEngineIntegration:
    def test_explain_specific_solution(self):
        kb, cms = build()
        engine = InferenceEngine(kb, cms)
        solutions = engine.ask_all("ancestor(tom, W)")
        target = next(s for s in solutions if s["W"] == "ann")
        proof = engine.explain("ancestor(tom, W)", target)
        assert str(proof.goal) == "ancestor(tom, ann)"
        assert proof.rules_used() == ["R2", "R1"]

    def test_explain_without_solution_proves_first(self):
        kb, cms = build()
        engine = InferenceEngine(kb, cms)
        proof = engine.explain("ancestor(tom, W)")
        assert proof is not None
        assert proof.kind == RULE

    def test_explain_unprovable(self):
        kb, cms = build()
        engine = InferenceEngine(kb, cms)
        assert engine.explain("ancestor(ann, tom)") is None

    def test_explanations_hit_the_cache(self):
        kb, cms = build()
        engine = InferenceEngine(kb, cms)
        solutions = engine.ask_all("ancestor(tom, W)")
        requests = cms.metrics.get("remote.requests")
        engine.explain("ancestor(tom, W)", solutions[0])
        # Justification re-checks facts the inference already fetched.
        assert cms.metrics.get("remote.requests") <= requests + 2

    def test_explain_through_braid_facade(self):
        from repro.braid import BraidSystem
        from repro.workloads.genealogy import genealogy

        system = BraidSystem.from_workload(genealogy(generations=3, branching=2, roots=1))
        (solution, *_rest) = system.ask_all("grandparent(p0, W)")
        proof = system.explain("grandparent(p0, W)", solution)
        assert proof is not None
        assert len(proof.facts_used()) == 2
