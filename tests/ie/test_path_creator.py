"""Tests for path expression creation, against the paper's two examples."""


from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom
from repro.logic.soa import MutualExclusion
from repro.logic.terms import Atom, Var
from repro.advice.path_expression import Alternation, Cardinality, QueryPattern, Sequence
from repro.advice.tracker import PathTracker
from repro.ie.extractor import extract_problem_graph
from repro.ie.path_creator import create_path_expression
from repro.ie.shaper import shape
from repro.ie.view_specifier import specify_views

PAPER_DB = (("b1", 2), ("b2", 2), ("b3", 3))


def path_for(rules, query, database=PAPER_DB, soas=()):
    kb = KnowledgeBase()
    for pred, arity in database:
        kb.declare_database(pred, arity)
    kb.add_rules(rules)
    for soa in soas:
        kb.add_soa(soa)
    graph = extract_problem_graph(kb, parse_atom(query))
    shape(graph, kb, reorder=False)
    views = specify_views(graph, kb)
    return create_path_expression(graph, kb, views), views


EXAMPLE1_RULES = """
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
"""

EXAMPLE2_RULES = """
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- k3(X), b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- k4(X), b3(X, c3, Z), b1(Z, Y).
k3(a).
k4(b).
"""


class TestExample1:
    """Expected: (d1(Y^), (d2(X^, Y?), d3(X^, Y?))^<0,|Y|>)^<1,1>."""

    def test_overall_shape(self):
        path, _views = path_for(EXAMPLE1_RULES, "k1(X, Y)")
        assert isinstance(path, Sequence)
        assert path.lower == 1 and path.upper == 1
        head, inner = path.elements
        assert isinstance(head, QueryPattern) and head.view == "d1"
        assert isinstance(inner, Sequence)
        assert inner.lower == 0
        assert inner.upper == Cardinality("Y")

    def test_inner_is_ordered_sequence(self):
        path, _views = path_for(EXAMPLE1_RULES, "k1(X, Y)")
        inner = path.elements[1]
        assert [p.view for p in inner.elements] == ["d2", "d3"]

    def test_rendered_form(self):
        path, _views = path_for(EXAMPLE1_RULES, "k1(X, Y)")
        assert str(path) == "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))^<0,|Y|>)^<1,1>"

    def test_tracking_example1(self):
        path, _views = path_for(EXAMPLE1_RULES, "k1(X, Y)")
        tracker = PathTracker(path)
        assert tracker.predicted_next() == {"d1"}
        tracker.observe("d1")
        assert "d2" in tracker.predicted_next()
        assert "d1" not in tracker.predicted_next()


class TestExample2:
    """Expected: (d1(Y^), ([d2(X^, Y?), d3(X^, Y?)])^<0,|Y|>)^<1,1>."""

    def test_alternation_from_guards(self):
        path, _views = path_for(EXAMPLE2_RULES, "k1(X, Y)")
        inner = path.elements[1]
        assert isinstance(inner, Sequence)
        (alternation,) = inner.elements
        assert isinstance(alternation, Alternation)
        assert {p.view for p in alternation.members} == {"d2", "d3"}

    def test_rendered_form(self):
        # The paper reuses example 1's annotations (X^) here; our boundness
        # analysis is finer: the IE-only guard k3(X)/k4(X) binds X before
        # the run executes, so X is genuinely a consumer (X?) in these
        # rules.  Structure (alternation under <0,|Y|>) matches the paper.
        path, _views = path_for(EXAMPLE2_RULES, "k1(X, Y)")
        assert str(path) == "(d1(Y^), ([d2(X?, Y?), d3(X?, Y?)])^<0,|Y|>)^<1,1>"

    def test_selection_term_from_mutual_exclusion(self):
        me = MutualExclusion((Atom("k3", (Var("A"),)), Atom("k4", (Var("A"),))))
        path, _views = path_for(EXAMPLE2_RULES, "k1(X, Y)", soas=(me,))
        alternation = path.elements[1].elements[0]
        assert alternation.selection == 1

    def test_tracking_example2(self):
        path, _views = path_for(EXAMPLE2_RULES, "k1(X, Y)")
        tracker = PathTracker(path)
        tracker.observe("d1")
        assert tracker.predicted_next() == {"d2", "d3"}


class TestRecursion:
    def test_recursive_region_unbounded(self):
        path, _views = path_for(
            """
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
            """,
            "ancestor(tom, W)",
            database=(("parent", 2),),
        )
        text = str(path)
        assert "^<0,*>" in text

    def test_tracker_accepts_deep_recursion(self):
        path, views = path_for(
            """
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
            """,
            "ancestor(tom, W)",
            database=(("parent", 2),),
        )
        tracker = PathTracker(path)
        names = [v.name for v in views.views]
        tracker.observe(names[0])
        for _ in range(10):
            assert tracker.observe(names[1])


class TestDegenerate:
    def test_no_database_access_no_path(self):
        kb = KnowledgeBase()
        kb.add_rules("p(a).\np(b).")
        graph = extract_problem_graph(kb, parse_atom("p(X)"))
        shape(graph, kb)
        views = specify_views(graph, kb)
        assert create_path_expression(graph, kb, views) is None

    def test_single_rule_no_repetition_wrapper(self):
        path, _views = path_for(
            "p(X, Y) :- b1(X, Y).", "p(X, Y)"
        )
        assert isinstance(path, Sequence)
        (pattern,) = path.elements
        assert isinstance(pattern, QueryPattern)
