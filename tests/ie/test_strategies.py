"""Unit tests for the compiled strategy (unfolding + bottom-up paths)."""

import pytest

from repro.common.errors import InferenceError
from repro.common.metrics import REMOTE_TUPLES
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom
from repro.logic.soa import RecursiveStructure
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.core.cms import CacheManagementSystem
from repro.ie.strategies import (
    INTERPRETIVE_CONFIGS,
    CompiledStrategy,
    specifier_config_for,
)


def build(rules, tables, soas=()):
    server = RemoteDBMS()
    for table in tables:
        server.load_table(table)
    kb = KnowledgeBase()
    for table in tables:
        kb.declare_database(table.schema.name, table.schema.arity)
    kb.add_rules(rules)
    for soa in soas:
        kb.add_soa(soa)
    cms = CacheManagementSystem(server)
    cms.begin_session()
    return CompiledStrategy(kb, cms), cms


EDGE = relation_from_columns("edge", a=[1, 1, 2, 3], b=[2, 3, 4, 4])
LABEL = relation_from_columns("label", n=[1, 2, 3, 4], tag=["x", "y", "x", "y"])


class TestUnfolding:
    def test_two_level_unfold(self):
        strategy, cms = build(
            """
            two_hop(X, Z) :- hop(X, Y), hop(Y, Z).
            hop(X, Y) :- edge(X, Y).
            """,
            [EDGE],
        )
        result = strategy.solve(parse_atom("two_hop(1, W)"))
        assert set(result.relation.rows) == {(4,)}

    def test_disjunction_unions_branches(self):
        strategy, _cms = build(
            """
            tagged(X) :- label(X, x).
            tagged(X) :- label(X, y).
            """,
            [LABEL],
        )
        result = strategy.solve(parse_atom("tagged(W)"))
        assert set(result.relation.rows) == {(1,), (2,), (3,), (4,)}

    def test_constants_pushed_into_branches(self):
        strategy, cms = build(
            "xnode(N) :- label(N, x).",
            [LABEL],
        )
        strategy.solve(parse_atom("xnode(W)"))
        # Only the selected rows crossed the wire, not the whole relation.
        assert cms.metrics.get(REMOTE_TUPLES) == 2

    def test_local_facts_become_answers(self):
        strategy, _cms = build(
            """
            known(99).
            known(X) :- label(X, x).
            """,
            [LABEL],
        )
        result = strategy.solve(parse_atom("known(W)"))
        assert (99,) in result.relation
        assert (1,) in result.relation

    def test_boolean_query_true(self):
        strategy, _cms = build("linked(X, Y) :- edge(X, Y).", [EDGE])
        result = strategy.solve(parse_atom("linked(1, 2)"))
        assert result.relation.rows == [(True,)]

    def test_boolean_query_false(self):
        strategy, _cms = build("linked(X, Y) :- edge(X, Y).", [EDGE])
        result = strategy.solve(parse_atom("linked(4, 1)"))
        assert result.relation.rows == []

    def test_repeated_variable_in_query(self):
        strategy, _cms = build("pair(X, Y) :- edge(X, Y).", [EDGE])
        loops = strategy.solve(parse_atom("pair(W, W)"))
        assert loops.relation.rows == []  # no self-loops in EDGE

    def test_builtins_ride_along(self):
        strategy, _cms = build(
            "big_edge(X, Y) :- edge(X, Y), Y >= 4.",
            [EDGE],
        )
        result = strategy.solve(parse_atom("big_edge(W, Z)"))
        assert set(result.relation.rows) == {(2, 4), (3, 4)}


class TestBottomUpFallback:
    def test_recursive_uses_bottom_up(self):
        strategy, cms = build(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            """,
            [EDGE],
        )
        result = strategy.solve(parse_atom("reach(1, W)"))
        assert set(result.relation.rows) == {(2,), (3,), (4,)}

    def test_closure_soa_fast_path(self):
        strategy, _cms = build(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            """,
            [EDGE],
            soas=(RecursiveStructure("reach", "edge"),),
        )
        result = strategy.solve(parse_atom("reach(1, W)"))
        assert set(result.relation.rows) == {(2,), (3,), (4,)}

    def test_mixed_recursive_and_not(self):
        strategy, _cms = build(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            reach_tag(X, T) :- reach(1, X), label(X, T).
            """,
            [EDGE, LABEL],
        )
        result = strategy.solve(parse_atom("reach_tag(W, T)"))
        assert set(result.relation.rows) == {(2, "y"), (3, "x"), (4, "y")}

    def test_negation_rejected(self):
        strategy, _cms = build(
            "lonely(X) :- label(X, T), \\+ edge(X, Y).",
            [EDGE, LABEL],
        )
        with pytest.raises(InferenceError):
            strategy.solve(parse_atom("lonely(W)"))

    def test_negated_query_rejected(self):
        strategy, _cms = build("p(X) :- edge(X, Y).", [EDGE])
        from repro.logic.terms import Atom, Var

        with pytest.raises(InferenceError):
            strategy.solve(Atom("p", (Var("X"),), negated=True))


class TestConfigs:
    def test_interpretive_configs(self):
        assert specifier_config_for("interpreted").max_conjuncts == 1
        assert specifier_config_for("conjunction").max_conjuncts is None

    def test_unknown_config_rejected(self):
        with pytest.raises(InferenceError):
            specifier_config_for("compiled")

    def test_config_table_complete(self):
        assert set(INTERPRETIVE_CONFIGS) == {"interpreted", "conjunction"}
