"""End-to-end tests for the inference engine across all strategies."""

import pytest

from repro.common.errors import InferenceError
from repro.common.metrics import IE_CAQL_QUERIES, REMOTE_REQUESTS, REMOTE_TUPLES
from repro.logic.kb import KnowledgeBase
from repro.logic.soa import RecursiveStructure
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.core.cms import CacheManagementSystem
from repro.ie.engine import InferenceEngine

FAMILY = {
    "parent": dict(
        par=["tom", "tom", "bob", "bob", "ann", "liz"],
        child=["bob", "liz", "ann", "pat", "joe", "sue"],
    ),
    "age": dict(
        person=["tom", "bob", "liz", "ann", "pat", "joe", "sue"],
        years=[60, 35, 33, 12, 10, 2, 1],
    ),
    "male": dict(person=["tom", "bob", "pat", "joe"]),
}

RULES = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
father(X, Y) :- parent(X, Y), male(X).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
minor(X) :- age(X, A), A < 18.
adult_parent(X) :- parent(X, Y), age(X, A), A >= 18.
childless(X) :- age(X, A), \\+ parent(X, Y).
"""


def build_system():
    server = RemoteDBMS()
    for name, columns in FAMILY.items():
        server.load_table(relation_from_columns(name, **columns))
    kb = KnowledgeBase()
    kb.declare_database("parent", 2)
    kb.declare_database("age", 2)
    kb.declare_database("male", 1)
    kb.add_rules(RULES)
    kb.add_soa(RecursiveStructure("ancestor", "parent"))
    cms = CacheManagementSystem(server)
    return kb, cms


@pytest.fixture(params=["interpreted", "conjunction", "compiled"])
def engine(request):
    kb, cms = build_system()
    return InferenceEngine(kb, cms, strategy=request.param)


class TestCorrectnessAcrossStrategies:
    def test_database_query(self, engine):
        solutions = engine.ask_all("parent(tom, W)")
        assert sorted(s["W"] for s in solutions) == ["bob", "liz"]

    def test_single_rule(self, engine):
        solutions = engine.ask_all("grandparent(tom, W)")
        assert sorted(s["W"] for s in solutions) == ["ann", "pat", "sue"]

    def test_join_with_comparison(self, engine):
        solutions = engine.ask_all("minor(X)")
        assert sorted(s["X"] for s in solutions) == ["ann", "joe", "pat", "sue"]

    def test_recursion(self, engine):
        solutions = engine.ask_all("ancestor(tom, W)")
        assert sorted(s["W"] for s in solutions) == [
            "ann", "bob", "joe", "liz", "pat", "sue",
        ]

    def test_bound_query_succeeds(self, engine):
        assert engine.ask("ancestor(tom, joe)").exists()

    def test_bound_query_fails(self, engine):
        assert not engine.ask("ancestor(joe, tom)").exists()

    def test_two_relation_join(self, engine):
        solutions = engine.ask_all("father(X, Y)")
        pairs = sorted((s["X"], s["Y"]) for s in solutions)
        assert pairs == [("bob", "ann"), ("bob", "pat"), ("tom", "bob"), ("tom", "liz")]

    def test_multi_condition_rule(self, engine):
        solutions = engine.ask_all("adult_parent(X)")
        # ann is a parent but only 12: excluded by the age condition.
        assert sorted({s["X"] for s in solutions}) == ["bob", "liz", "tom"]


class TestInterpretiveSpecifics:
    def test_negation_as_failure(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="conjunction")
        solutions = engine.ask_all("childless(X)")
        assert sorted({s["X"] for s in solutions}) == ["joe", "pat", "sue"]

    def test_compiled_rejects_negation(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="compiled")
        with pytest.raises(InferenceError):
            engine.ask("childless(X)")

    def test_first_solution_is_lazy(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="conjunction")
        first = engine.ask_first("ancestor(tom, W)")
        assert first is not None
        # Pulling only one solution must not have explored the whole tree:
        # fewer CAQL queries than the full enumeration needs.
        queries_first = cms.metrics.get(IE_CAQL_QUERIES)
        kb2, cms2 = build_system()
        engine2 = InferenceEngine(kb2, cms2, strategy="conjunction")
        engine2.ask_all("ancestor(tom, W)")
        assert queries_first < cms2.metrics.get(IE_CAQL_QUERIES)

    def test_depth_limit(self):
        server = RemoteDBMS()
        server.load_table(relation_from_columns("edge", a=[1, 2], b=[2, 1]))
        kb = KnowledgeBase()
        kb.declare_database("edge", 2)
        kb.add_rules(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            """
        )
        cms = CacheManagementSystem(server)
        engine = InferenceEngine(kb, cms, strategy="conjunction", max_depth=10)
        with pytest.raises(InferenceError):
            engine.ask_all("path(1, 9)")

    def test_cyclic_data_via_compiled(self):
        server = RemoteDBMS()
        server.load_table(relation_from_columns("edge", a=[1, 2], b=[2, 1]))
        kb = KnowledgeBase()
        kb.declare_database("edge", 2)
        kb.add_rules(
            """
            path(X, Y) :- edge(X, Y).
            path(X, Y) :- edge(X, Z), path(Z, Y).
            """
        )
        cms = CacheManagementSystem(server)
        engine = InferenceEngine(kb, cms, strategy="compiled")
        solutions = engine.ask_all("path(1, W)")
        assert sorted(s["W"] for s in solutions) == [1, 2]


class TestICRangeCharacteristics:
    """Section 2: the strategies differ in request count and granularity."""

    def test_interpreted_issues_more_caql_queries(self):
        counts = {}
        for strategy in ("interpreted", "conjunction", "compiled"):
            kb, cms = build_system()
            engine = InferenceEngine(kb, cms, strategy=strategy)
            engine.ask_all("adult_parent(X)")
            counts[strategy] = cms.metrics.get(IE_CAQL_QUERIES)
        assert counts["interpreted"] > counts["conjunction"]
        # Compiled issues one whole-relation request per base relation.
        assert counts["compiled"] <= counts["interpreted"]

    def test_compiled_ships_whole_relations_for_recursion(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="compiled")
        engine.ask_all("ancestor(tom, W)")
        # Recursion needs the whole parent relation on the workstation.
        assert cms.metrics.get(REMOTE_TUPLES) >= 6

    def test_compiled_unfolds_nonrecursive_queries(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="compiled")
        solutions = engine.ask_all("grandparent(tom, W)")
        assert sorted(s["W"] for s in solutions) == ["ann", "pat", "sue"]
        # The join was pushed to the server: only results crossed the wire.
        assert cms.metrics.get(REMOTE_TUPLES) == 3

    def test_conjunction_pushes_join_to_server(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="conjunction")
        engine.ask_all("father(X, Y)")
        # One data request for the whole (parent ⋈ male) conjunction.
        shipped = cms.metrics.get(REMOTE_TUPLES)
        assert shipped == 4


class TestAdviceIntegration:
    def test_advice_generated_by_default(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="conjunction")
        engine.ask_first("grandparent(tom, W)")
        assert engine.last_advice is not None
        assert engine.last_advice.views
        assert engine.last_advice.path_expression is not None

    def test_advice_disabled(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="conjunction", generate_advice=False)
        engine.ask_first("grandparent(tom, W)")
        assert engine.last_advice is None

    def test_repeat_question_hits_cache(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms, strategy="conjunction")
        engine.ask_all("grandparent(tom, W)")
        before = cms.metrics.get(REMOTE_REQUESTS)
        engine.ask_all("grandparent(tom, W)")
        assert cms.metrics.get(REMOTE_REQUESTS) == before

    def test_unknown_strategy_rejected(self):
        kb, cms = build_system()
        with pytest.raises(InferenceError):
            InferenceEngine(kb, cms, strategy="quantum")


class TestSolutions:
    def test_solution_dict_keys(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms)
        (solution,) = engine.ask_all("parent(X, joe)")
        assert solution == {"X": "ann"}

    def test_ground_query_solution_is_empty_dict(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms)
        solutions = engine.ask_all("parent(tom, bob)")
        assert solutions == [{}]

    def test_first_none_when_no_solutions(self):
        kb, cms = build_system()
        engine = InferenceEngine(kb, cms)
        assert engine.ask_first("parent(joe, X)") is None
