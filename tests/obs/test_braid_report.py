"""The trace/telemetry report script: root detection on truncated traces,
zero-span tolerance, and the ``--metrics`` telemetry rendering."""

import importlib.util
import json
import pathlib

import pytest

SCRIPT = (
    pathlib.Path(__file__).resolve().parents[2] / "scripts" / "braid_report.py"
)
spec = importlib.util.spec_from_file_location("braid_report", SCRIPT)
braid_report = importlib.util.module_from_spec(spec)
spec.loader.exec_module(braid_report)


def span_line(span_id, name, start, end, parent=None) -> str:
    return json.dumps(
        {
            "span": span_id,
            "name": name,
            "start": start,
            "end": end,
            "parent": parent,
            "attributes": {},
            "events": [],
        }
    )


class TestRootDetection:
    def test_orphaned_subtrees_still_render(self):
        # The parent span was filtered/truncated out of the trace: its
        # children must render as roots, not vanish.
        text = "\n".join(
            [
                span_line("a", "cms.query", 0.0, 1.0, parent="gone"),
                span_line("b", "planner.plan", 0.0, 0.2, parent="a"),
            ]
        )
        rendered = braid_report.report(text)
        assert "cms.query" in rendered
        assert "planner.plan" in rendered
        lines = braid_report.render_tree(*braid_report.load_trace(text))
        assert lines[0].startswith("[")  # the orphan renders at depth 0
        assert lines[1].startswith("  ")  # ...with its child nested

    def test_null_parent_spans_stay_roots(self):
        text = span_line("a", "cms.query", 0.0, 1.0, parent=None)
        lines = braid_report.render_tree(*braid_report.load_trace(text))
        assert len(lines) == 1

    def test_empty_trace_is_tolerated(self):
        assert braid_report.report("") == "(empty trace)"
        assert braid_report.report("\n\n") == "(empty trace)"


class TestMetricsRendering:
    def series(self) -> str:
        header = {
            "series": "telemetry",
            "version": 1,
            "interval": 0.5,
            "scope": "",
        }
        sample = {
            "sample": 0,
            "t": 0.5,
            "due": 0.5,
            "label": "",
            "deltas": {"remote.requests": 3},
            "gauges": {"server.queue_depth_high_water": 2},
            "histograms": {
                "cms.query_sim_seconds": {
                    "count": 3,
                    "p50": 0.1,
                    "p99": 0.2,
                    "max": 0.2,
                }
            },
            "scopes": {"alice": {"deltas": {"remote.requests": 2}, "gauges": {}}},
        }
        return json.dumps(header) + "\n" + json.dumps(sample) + "\n"

    def test_renders_deltas_gauges_scopes_and_histograms(self):
        text = braid_report.render_metrics(self.series())
        assert "interval=0.5s" in text
        assert "remote.requests" in text
        assert "server.queue_depth_high_water" in text
        assert "scope alice" in text
        assert "cms.query_sim_seconds" in text
        assert "p99=0.200000" in text

    def test_rejects_non_telemetry_input(self):
        with pytest.raises(SystemExit):
            braid_report.render_metrics('{"not": "telemetry"}\n')

    def test_empty_series_is_tolerated(self):
        assert braid_report.render_metrics("") == "(empty telemetry series)"

    def test_cli_metrics_mode(self, tmp_path, capsys):
        path = tmp_path / "series.telemetry.jsonl"
        path.write_text(self.series())
        assert braid_report.main(["--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "remote.requests" in out

    def test_cli_metrics_mode_missing_file(self, capsys):
        assert braid_report.main(["--metrics", "/nonexistent/x.jsonl"]) == 2
