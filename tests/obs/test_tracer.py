"""Tracer mechanics: nesting, simulated timestamps, events, opt-out."""

from repro.common.clock import SimClock
from repro.obs import Tracer


def make_tracer() -> Tracer:
    return Tracer(SimClock())


class TestSpans:
    def test_span_stamps_simulated_time(self):
        tracer = make_tracer()
        tracer.clock.advance(1.5)
        with tracer.span("work") as span:
            tracer.clock.advance(0.5)
        assert span.start == 1.5
        assert span.end == 2.0
        assert span.duration == 0.5

    def test_spans_never_advance_the_clock(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert tracer.clock.now == 0.0

    def test_nesting_follows_the_span_stack(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_a_parent(self):
        tracer = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_span_ids_are_sequential_from_one(self):
        tracer = make_tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert (a.span_id, b.span_id) == (1, 2)

    def test_spans_recorded_in_opening_order(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["outer", "inner"]

    def test_attributes_via_kwargs_and_set(self):
        tracer = make_tracer()
        with tracer.span("work", view="q1") as span:
            span.set("rows", 7)
        assert span.attributes == {"view": "q1", "rows": 7}

    def test_exception_closes_the_span_and_marks_error(self):
        tracer = make_tracer()
        try:
            with tracer.span("work") as span:
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.closed
        assert span.attributes["error"] == "ValueError"
        assert tracer.current() is None


class TestEvents:
    def test_event_lands_on_the_open_span(self):
        tracer = make_tracer()
        with tracer.span("work") as span:
            tracer.clock.advance(0.25)
            tracer.event("tick", n=1)
        assert len(span.events) == 1
        event = span.events[0]
        assert event.name == "tick"
        assert event.time == 0.25
        assert event.attributes_dict() == {"n": 1}

    def test_event_without_open_span_is_an_orphan(self):
        tracer = make_tracer()
        tracer.event("stray")
        assert not tracer.spans
        assert [event.name for event in tracer.orphan_events] == ["stray"]

    def test_event_attribute_order_is_canonical(self):
        tracer = make_tracer()
        tracer.event("e", b=2, a=1)
        assert tracer.orphan_events[0].attributes == (("a", 1), ("b", 2))


class TestReset:
    def test_reset_drops_everything_and_restarts_ids(self):
        tracer = make_tracer()
        with tracer.span("a"):
            tracer.event("e")
        tracer.event("orphan")
        tracer.reset()
        assert tracer.spans == []
        assert tracer.orphan_events == []
        with tracer.span("b") as span:
            pass
        assert span.span_id == 1


class TestDisabled:
    def test_disabled_is_a_shared_singleton(self):
        assert Tracer.disabled() is Tracer.disabled()

    def test_disabled_records_nothing(self):
        tracer = Tracer.disabled()
        with tracer.span("work", view="q") as span:
            span.set("k", "v")
            span.event("e")
            tracer.event("f")
        assert tracer.spans == ()
        assert tracer.orphan_events == ()
        assert tracer.to_jsonl() == ""

    def test_disabled_span_supports_the_full_surface(self):
        span = Tracer.disabled().span("x")
        assert span.set("a", 1) is span
        assert span.attributes == {}
        assert span.duration == 0.0
        assert span.closed

    def test_enabled_flags(self):
        assert Tracer(SimClock()).enabled
        assert not Tracer.disabled().enabled
