"""Sliding-window SLO monitors: deterministic windowing, edge-triggered
breach/recovery, and the ledger/trace side effects."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.metrics import SLO_BREACHES, Metrics
from repro.obs.slo import SLOMonitor, SLOPolicy
from repro.obs.tracer import Tracer


def make(policy: SLOPolicy | None = None, tracing: bool = False):
    clock = SimClock()
    metrics = Metrics()
    tracer = Tracer(clock) if tracing else None
    monitor = SLOMonitor(
        policy or SLOPolicy(p99_seconds=1.0, min_samples=3, window_seconds=10.0),
        clock,
        metrics,
        tracer,
    )
    return clock, metrics, monitor


class TestPolicy:
    def test_rejects_bad_window_and_min_samples(self):
        with pytest.raises(ValueError):
            SLOPolicy(window_seconds=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(min_samples=0)

    def test_targets_cover_only_configured_percentiles(self):
        assert SLOPolicy(p50_seconds=0.5).targets() == [(50, 0.5)]
        assert SLOPolicy(p99_seconds=2.0).targets() == [(99, 2.0)]
        assert SLOPolicy(p50_seconds=0.5, p99_seconds=2.0).targets() == [
            (50, 0.5),
            (99, 2.0),
        ]


class TestBreachDetection:
    def test_no_evaluation_below_min_samples(self):
        _clock, metrics, monitor = make()
        monitor.observe("s", 100.0)
        monitor.observe("s", 100.0)
        assert not monitor.in_breach("s", 99)
        assert metrics.get(SLO_BREACHES) == 0

    def test_breach_is_edge_triggered_once(self):
        _clock, metrics, monitor = make()
        for _ in range(6):
            monitor.observe("s", 5.0)  # every observation over target
        assert monitor.in_breach("s", 99)
        assert metrics.get(SLO_BREACHES) == 1  # one edge, not six
        assert monitor.breach_count == 1

    def test_recovery_rearms_the_trigger(self):
        clock, metrics, monitor = make(
            SLOPolicy(p99_seconds=1.0, min_samples=3, window_seconds=2.0)
        )
        for _ in range(3):
            monitor.observe("s", 5.0)
        assert monitor.in_breach("s", 99)
        # Slow observations age out of the 2s window; fast ones replace them.
        clock.advance(3.0)
        for _ in range(3):
            monitor.observe("s", 0.1)
        assert not monitor.in_breach("s", 99)
        for _ in range(3):
            monitor.observe("s", 5.0)
        assert monitor.in_breach("s", 99)
        assert metrics.get(SLO_BREACHES) == 2  # re-armed after recovery

    def test_scopes_are_independent(self):
        _clock, _metrics, monitor = make()
        for _ in range(3):
            monitor.observe("slow", 5.0)
            monitor.observe("fast", 0.1)
        assert monitor.in_breach("slow", 99)
        assert not monitor.in_breach("fast", 99)

    def test_windowing_is_by_simulated_time(self):
        clock, _metrics, monitor = make(
            SLOPolicy(p99_seconds=1.0, min_samples=2, window_seconds=5.0)
        )
        monitor.observe("s", 9.0)
        clock.advance(6.0)  # the slow sample ages out
        monitor.observe("s", 0.1)
        monitor.observe("s", 0.1)
        assert not monitor.in_breach("s", 99)
        assert monitor.report()["s"]["samples"] == 2


class TestSideEffects:
    def test_breach_and_recovery_emit_trace_events(self):
        clock, _metrics, monitor = make(
            SLOPolicy(p99_seconds=1.0, min_samples=2, window_seconds=2.0),
            tracing=True,
        )
        for _ in range(2):
            monitor.observe("s", 5.0)
        clock.advance(3.0)
        for _ in range(2):
            monitor.observe("s", 0.1)
        events = [
            json.loads(line)
            for line in monitor.tracer.to_jsonl().splitlines()
            if '"event"' in line
        ]
        names = [e["event"] for e in events]
        assert names == ["slo.breach", "slo.recovered"]
        breach = events[0]["attributes"]
        assert breach["scope"] == "s"
        assert breach["percentile"] == 99
        assert breach["value"] == pytest.approx(5.0)
        assert breach["target"] == pytest.approx(1.0)

    def test_observation_never_advances_the_clock(self):
        clock, metrics, monitor = make()
        before = clock.now
        for _ in range(10):
            monitor.observe("s", 5.0)
        assert clock.now == before
        # The only ledger side effect is the breach counter itself.
        assert metrics.snapshot() == {SLO_BREACHES: 1}


class TestReporting:
    def test_report_orders_scopes_and_flags_breaches(self):
        _clock, _metrics, monitor = make()
        for _ in range(3):
            monitor.observe("b", 5.0)
            monitor.observe("a", 0.1)
        report = monitor.report()
        assert list(report) == ["a", "b"]
        assert report["b"]["breach_p99"] is True
        assert report["a"]["breach_p99"] is False
        assert report["a"]["samples"] == 3

    def test_overall_merges_every_window(self):
        _clock, _metrics, monitor = make()
        for value in (0.1, 0.2):
            monitor.observe("a", value)
        for value in (0.3, 0.4):
            monitor.observe("b", value)
        merged = monitor.overall()
        assert merged.count == 4
        assert merged.percentile(99) == pytest.approx(0.4)
