"""The regression gate: flattening, tolerance bands, baseline policy,
and the CLI's exit codes (driven as a subprocess, the way CI runs it)."""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.obs.regress import (
    compare,
    dump_baseline,
    flatten,
    make_baseline,
)

REPO = pathlib.Path(__file__).resolve().parents[2]
SCRIPT = REPO / "scripts" / "braid_regress.py"


def summary(**overrides) -> dict:
    document = {
        "schema_version": 2,
        "experiments": {
            "E1": {
                "experiment": "E1",
                "title": "ablation",
                "results": {
                    "headers": ["mode", "requests", "sim time (s)"],
                    "rows": [["full", 10, 1.5], ["no-cache", 40, 6.0]],
                },
            },
            "E18": {
                "experiment": "E18",
                "title": "columnar",
                "results": {"workloads": [{"columnar_seconds": 0.01}]},
            },
        },
    }
    document.update(overrides)
    return document


class TestFlatten:
    def test_tables_flatten_to_row_and_column_names(self):
        flat = flatten(summary())
        assert flat["E1.full.requests"] == 10
        assert flat["E1.no-cache.sim time (s)"] == 6.0
        assert flat["E18.workloads[0].columnar_seconds"] == 0.01

    def test_duplicate_row_keys_are_disambiguated(self):
        document = summary()
        document["experiments"]["E1"]["results"]["rows"].append(["full", 11, 1.6])
        flat = flatten(document)
        assert flat["E1.full.requests"] == 10
        assert flat["E1.full#2.requests"] == 11

    def test_booleans_are_not_metrics(self):
        document = summary()
        document["experiments"]["E1"]["results"]["degraded"] = True
        assert "E1.degraded" not in flatten(document)


class TestCompare:
    def test_identical_summaries_pass(self):
        baseline = make_baseline(summary())
        report = compare(baseline, summary())
        assert report.ok
        assert report.compared > 0
        assert not report.regressions and not report.missing

    def test_changed_simulated_metric_fails_both_directions(self):
        baseline = make_baseline(summary())
        worse = summary()
        worse["experiments"]["E1"]["results"]["rows"][0][1] = 11
        better = summary()
        better["experiments"]["E1"]["results"]["rows"][0][1] = 9
        assert not compare(baseline, worse).ok
        assert not compare(baseline, better).ok  # determinism break

    def test_wall_clock_paths_are_ignored(self):
        baseline = make_baseline(summary())
        fresh = summary()
        fresh["experiments"]["E18"]["results"]["workloads"][0][
            "columnar_seconds"
        ] = 99.0
        report = compare(baseline, fresh)
        assert report.ok
        assert report.ignored > 0

    def test_missing_metric_fails(self):
        baseline = make_baseline(summary())
        fresh = summary()
        del fresh["experiments"]["E1"]
        report = compare(baseline, fresh)
        assert not report.ok
        assert report.missing
        assert "FAIL" in report.render()

    def test_new_metric_is_informational(self):
        baseline = make_baseline(summary())
        fresh = summary()
        fresh["experiments"]["E99"] = {
            "experiment": "E99",
            "title": "new",
            "results": {"value": 1.0},
        }
        report = compare(baseline, fresh)
        assert report.ok
        assert [f.path for f in report.new] == ["E99.value"]

    def test_tolerance_band_admits_drift(self):
        baseline = make_baseline(summary(), tolerances={"E1.full.requests": 0.5})
        fresh = summary()
        fresh["experiments"]["E1"]["results"]["rows"][0][1] = 14  # +40% < 50%
        assert compare(baseline, fresh).ok

    def test_baseline_policy_fields_apply(self):
        baseline = make_baseline(summary(), default_tolerance=0.5)
        fresh = summary()
        fresh["experiments"]["E1"]["results"]["rows"][0][2] = 2.0  # +33%
        assert compare(baseline, fresh).ok

    def test_render_and_dict_agree_on_the_verdict(self):
        baseline = make_baseline(summary())
        fresh = summary()
        fresh["experiments"]["E1"]["results"]["rows"][0][1] = 11
        report = compare(baseline, fresh)
        assert "REGRESS" in report.render()
        assert report.to_dict()["ok"] is False


class TestBaselineIO:
    def test_dump_is_canonical_and_versioned(self):
        baseline = make_baseline(summary(), default_tolerance=0.1)
        text = dump_baseline(baseline)
        parsed = json.loads(text)
        assert parsed["baseline_schema_version"] == 1
        assert parsed["summary_schema_version"] == 2
        assert parsed["default_tolerance"] == 0.1
        assert dump_baseline(parsed) == text


class TestCLI:
    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(SCRIPT), *args],
            capture_output=True,
            text=True,
        )

    def test_exit_codes(self, tmp_path):
        summary_path = tmp_path / "summary.json"
        baseline_path = tmp_path / "baseline.json"
        summary_path.write_text(json.dumps(summary()))

        frozen = self.run_cli(
            "--summary", str(summary_path),
            "--baseline", str(baseline_path),
            "--write-baseline",
        )
        assert frozen.returncode == 0, frozen.stderr

        clean = self.run_cli(
            "--summary", str(summary_path), "--baseline", str(baseline_path)
        )
        assert clean.returncode == 0, clean.stderr
        assert "PASS" in clean.stdout

        perturbed = summary()
        perturbed["experiments"]["E1"]["results"]["rows"][0][1] = 11
        summary_path.write_text(json.dumps(perturbed))
        failed = self.run_cli(
            "--summary", str(summary_path), "--baseline", str(baseline_path)
        )
        assert failed.returncode == 1
        assert "REGRESS" in failed.stdout
        assert "FAIL" in failed.stdout

        missing = self.run_cli(
            "--summary", str(tmp_path / "nope.json"),
            "--baseline", str(baseline_path),
        )
        assert missing.returncode == 2

    def test_json_output(self, tmp_path):
        summary_path = tmp_path / "summary.json"
        baseline_path = tmp_path / "baseline.json"
        summary_path.write_text(json.dumps(summary()))
        self.run_cli(
            "--summary", str(summary_path),
            "--baseline", str(baseline_path),
            "--write-baseline",
        )
        result = self.run_cli(
            "--summary", str(summary_path),
            "--baseline", str(baseline_path),
            "--json",
        )
        assert result.returncode == 0
        verdict = json.loads(result.stdout)
        assert verdict["ok"] is True
        assert verdict["compared"] > 0
