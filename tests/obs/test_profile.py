"""The trace-driven profiler: exact attribution, phase conservation, and
the committed E19 federation trace as a fixture.

The conservation law under test: attribution partitions each query span's
duration by self-time, so per-query phase sums equal the span duration
*exactly* (float tolerance), nothing double-counted, nothing dropped —
on synthetic traces where the right answer is computable by hand, on a
live traced session, and on the committed ``E19.trace.jsonl`` artifact.
"""

import pathlib

import pytest

from repro.obs.profile import PHASES, load_spans, profile_trace

E19_TRACE = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "results"
    / "E19.trace.jsonl"
)


def span(
    span_id: str,
    name: str,
    start: float,
    end: float | None,
    parent: str | None = None,
    attributes: dict | None = None,
    events: list | None = None,
) -> dict:
    return {
        "span": span_id,
        "name": name,
        "start": start,
        "end": end,
        "parent": parent,
        "attributes": attributes or {},
        "events": events or [],
    }


class TestSyntheticAttribution:
    def test_self_time_partition_by_hand(self):
        spans = [
            span("q", "cms.query", 0.0, 1.0, attributes={"view": "v"}),
            span("p", "planner.plan", 0.0, 0.2, parent="q"),
            span("x", "executor.execute", 0.2, 0.9, parent="q",
                 attributes={"strategy": "hybrid"}),
            span("f", "rdi.fetch", 0.3, 0.8, parent="x"),
        ]
        profile = profile_trace(spans)
        assert len(profile.queries) == 1
        phases = profile.queries[0].phases
        assert phases["plan"] == pytest.approx(0.2)
        assert phases["remote"] == pytest.approx(0.5)
        assert phases["gather"] == pytest.approx(0.2)  # execute minus fetch
        assert phases["compute"] == pytest.approx(0.1)  # query shell
        assert sum(phases.values()) == pytest.approx(1.0)

    def test_retry_backoff_moves_from_remote_to_retry(self):
        spans = [
            span("q", "cms.query", 0.0, 1.0, attributes={"view": "v"}),
            span(
                "f",
                "rdi.fetch",
                0.0,
                1.0,
                parent="q",
                events=[
                    {
                        "name": "rdi.retry",
                        "t": 0.2,
                        "attributes": {"attempt": 1, "backoff_seconds": 0.3},
                    }
                ],
            ),
        ]
        profile = profile_trace(spans)
        phases = profile.queries[0].phases
        assert phases["retry"] == pytest.approx(0.3)
        assert phases["remote"] == pytest.approx(0.7)
        assert sum(phases.values()) == pytest.approx(1.0)

    def test_cache_strategy_execute_is_cache_phase(self):
        spans = [
            span("q", "cms.query", 0.0, 0.5, attributes={"view": "v"}),
            span("x", "executor.execute", 0.0, 0.4, parent="q",
                 attributes={"strategy": "exact"}),
        ]
        phases = profile_trace(spans).queries[0].phases
        assert phases["cache"] == pytest.approx(0.4)
        assert phases["compute"] == pytest.approx(0.1)

    def test_parallel_tracks_attributed_to_dominant_track(self):
        spans = [
            span("q", "cms.query", 0.0, 1.0, attributes={"view": "v"}),
            span(
                "pt",
                "executor.parallel_tracks",
                0.0,
                0.8,
                parent="q",
                attributes={
                    "track.remote": 0.8,
                    "track.local": 0.3,
                    "overlap_saved_seconds": 0.3,
                },
            ),
        ]
        profile = profile_trace(spans)
        phases = profile.queries[0].phases
        assert phases["remote"] == pytest.approx(0.8)
        assert profile.queries[0].overlap_saved == pytest.approx(0.3)

    def test_nested_queries_roll_into_the_top_level_one(self):
        spans = [
            span("q1", "cms.query", 0.0, 1.0, attributes={"view": "outer"}),
            span("q2", "cms.query", 0.2, 0.6, parent="q1",
                 attributes={"view": "inner"}),
        ]
        profile = profile_trace(spans)
        assert [q.view for q in profile.queries] == ["outer"]
        assert sum(profile.queries[0].phases.values()) == pytest.approx(1.0)

    def test_unfinished_spans_are_counted_and_skipped(self):
        spans = [
            span("q", "cms.query", 0.0, None, attributes={"view": "v"}),
            span("q2", "cms.query", 0.0, 0.5, attributes={"view": "w"}),
            span("p", "planner.plan", 0.0, None, parent="q2"),
        ]
        profile = profile_trace(spans)
        assert profile.unfinished == 2
        assert [q.view for q in profile.queries] == ["w"]

    def test_empty_trace_profiles_to_nothing(self):
        profile = profile_trace([])
        assert profile.queries == []
        assert profile.total_seconds == 0.0
        assert "0 queries" in profile.render()


class TestCommittedE19Trace:
    """The committed federation trace is a regression fixture: its
    attribution is stable and conserves every query's duration."""

    @pytest.fixture(scope="class")
    def profile(self):
        return profile_trace(E19_TRACE.read_text())

    def test_every_query_conserves_its_duration(self, profile):
        assert profile.queries
        for query in profile.queries:
            assert sum(query.phases.values()) == pytest.approx(
                query.duration, abs=1e-9
            )

    def test_totals_conserve_the_trace(self, profile):
        assert sum(profile.totals.values()) == pytest.approx(
            profile.total_seconds, abs=1e-9
        )

    def test_federation_trace_is_remote_dominated(self, profile):
        assert profile.totals["remote"] > profile.totals.get("plan", 0.0)
        assert profile.hot_remote  # scatter parts show up as fetched views
        assert profile.hot_tables  # rdi.route events carry the base tables

    def test_queries_match_the_trace_span_count(self, profile):
        spans = load_spans(E19_TRACE.read_text())
        top_level = [
            s for s in spans
            if s["name"] == "cms.query" and s.get("parent") is None
        ]
        assert len(profile.queries) == len(top_level)

    def test_json_rendering_is_canonical(self, profile):
        first = profile.to_json()
        second = profile_trace(E19_TRACE.read_text()).to_json()
        assert first == second
        assert '"totals"' in first

    def test_text_rendering_mentions_every_phase_with_time(self, profile):
        text = profile.render(top=3)
        for phase in PHASES:
            if profile.totals.get(phase):
                assert phase in text
