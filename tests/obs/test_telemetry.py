"""The metrics sampler: cadence, delta correctness, determinism, and the
JSONL round trip.

The load-bearing property is **sample-then-diff equals direct deltas**:
however a run's counter increments are interleaved with cadence
boundaries, summing a series' per-sample deltas must reproduce exactly
the diff of the final ledger against the ledger at attach time — sampling
is a change of representation, never a change of information.  A
hypothesis suite drives random increment/advance schedules through that
invariant.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimClock
from repro.common.metrics import Metrics
from repro.obs.telemetry import (
    MetricsSampler,
    TelemetrySample,
    dump_series,
    load_series,
)


def make() -> tuple[Metrics, SimClock, MetricsSampler]:
    metrics = Metrics()
    clock = SimClock()
    sampler = MetricsSampler(metrics, clock, interval=1.0)
    return metrics, clock, sampler


class TestCadence:
    def test_not_due_before_the_first_boundary(self):
        metrics, clock, sampler = make()
        metrics.incr("x")
        clock.advance(0.5)
        assert sampler.maybe_sample() is None
        assert sampler.samples == []

    def test_due_at_the_boundary(self):
        metrics, clock, sampler = make()
        clock.advance(1.0)
        sample = sampler.maybe_sample()
        assert sample is not None
        assert sample.due == 1.0
        assert sample.time == 1.0

    def test_one_sample_per_call_even_across_many_boundaries(self):
        metrics, clock, sampler = make()
        metrics.incr("x", 7)
        clock.advance(5.3)  # five boundaries crossed in one burst
        sample = sampler.maybe_sample()
        assert sample is not None
        assert sample.due == 1.0  # the first boundary that fell due
        assert sample.time == 5.3  # ...but taken at the actual time
        assert sampler.maybe_sample() is None  # cadence resumed after now
        clock.advance(0.8)  # now at 6.1 > boundary 6.0
        follow = sampler.maybe_sample()
        assert follow is not None and follow.due == 6.0

    def test_zero_or_negative_interval_is_rejected(self):
        metrics, clock, _ = make()
        with pytest.raises(ValueError):
            MetricsSampler(metrics, clock, interval=0.0)
        with pytest.raises(ValueError):
            MetricsSampler(metrics, clock, interval=-1.0)

    def test_forced_sample_is_labeled_and_out_of_cadence(self):
        metrics, clock, sampler = make()
        metrics.incr("x", 2)
        clock.advance(0.25)
        sample = sampler.sample_now(label="final")
        assert sample.label == "final"
        assert sample.time == 0.25
        assert sample.deltas == {"x": 2}


class TestDeltas:
    def test_deltas_are_per_interval_not_cumulative(self):
        metrics, clock, sampler = make()
        metrics.incr("x", 3)
        clock.advance(1.0)
        first = sampler.maybe_sample()
        metrics.incr("x", 2)
        clock.advance(1.0)
        second = sampler.maybe_sample()
        assert first.deltas == {"x": 3}
        assert second.deltas == {"x": 2}

    def test_gauges_are_levels_not_deltas(self):
        metrics, clock, sampler = make()
        metrics.gauge_max("queue_high_water", 4)
        clock.advance(1.0)
        first = sampler.maybe_sample()
        clock.advance(1.0)
        second = sampler.maybe_sample()  # unchanged gauge still reported
        assert first.gauges == {"queue_high_water": 4}
        assert second.gauges == {"queue_high_water": 4}
        assert "queue_high_water" not in second.deltas

    def test_scope_blocks_cover_child_ledgers(self):
        metrics, clock, sampler = make()
        metrics.scope("alice").incr("hits", 2)
        metrics.scope("bob").incr("hits", 1)
        clock.advance(1.0)
        sample = sampler.maybe_sample()
        assert sample.scopes["alice"]["deltas"] == {"hits": 2}
        assert sample.scopes["bob"]["deltas"] == {"hits": 1}
        # Child increments propagated to the root ledger too.
        assert sample.deltas == {"hits": 3}

    def test_sampling_never_mutates_the_ledger_or_clock(self):
        metrics, clock, sampler = make()
        metrics.incr("x", 5)
        metrics.observe("lat", 0.25)
        clock.advance(2.0)
        before = (metrics.snapshot(), metrics.histogram_summaries(), clock.now)
        sampler.maybe_sample()
        sampler.sample_now()
        after = (metrics.snapshot(), metrics.histogram_summaries(), clock.now)
        assert after == before


class TestSeries:
    def run_series(self) -> MetricsSampler:
        metrics, clock, sampler = make()
        for step in range(5):
            metrics.incr("x", step)
            metrics.observe("lat", 0.1 * (step + 1))
            metrics.scope("s").incr("y")
            clock.advance(0.7)
            sampler.maybe_sample()
        return sampler

    def test_round_trip_is_exact(self):
        sampler = self.run_series()
        text = sampler.to_jsonl()
        header, samples = load_series(text)
        assert header == sampler.header()
        assert dump_series(header, samples) == text
        assert [s.to_record() for s in samples] == [
            s.to_record() for s in sampler.samples
        ]

    def test_same_schedule_is_byte_identical(self):
        first, second = self.run_series(), self.run_series()
        assert first.to_jsonl() == second.to_jsonl()
        assert first.fingerprint() == second.fingerprint()

    def test_load_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_series('{"neither": 1}\n')

    def test_write_reads_back(self, tmp_path):
        sampler = self.run_series()
        path = tmp_path / "series.jsonl"
        sampler.write(path)
        assert path.read_text() == sampler.to_jsonl()

    def test_sample_record_shape(self):
        sample = TelemetrySample(index=0, time=1.5, due=1.0, deltas={"x": 1})
        record = sample.to_record()
        assert record["sample"] == 0
        assert record["t"] == 1.5
        assert record["due"] == 1.0
        assert TelemetrySample.from_record(record).to_record() == record


#: One schedule step: (counter index, increment, sim-time advance).
STEPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    ),
    max_size=30,
)


class TestSampleThenDiff:
    @given(steps=STEPS)
    @settings(max_examples=200, deadline=None)
    def test_summed_deltas_equal_the_direct_counter_diff(self, steps):
        metrics = Metrics()
        clock = SimClock()
        attach_state = metrics.snapshot()
        sampler = MetricsSampler(metrics, clock, interval=1.0)
        for counter, amount, advance in steps:
            if amount:
                metrics.incr(f"c{counter}", amount)
            if advance:
                clock.advance(advance)
            sampler.maybe_sample()
        sampler.sample_now(label="final")  # flush the tail interval

        summed: dict[str, float] = {}
        for sample in sampler.samples:
            for name, delta in sample.deltas.items():
                summed[name] = summed.get(name, 0) + delta
        direct = metrics.diff(attach_state)
        assert summed == {k: v for k, v in direct.items() if v}
