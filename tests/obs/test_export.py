"""Trace exporters: canonical JSONL, fingerprints, Chrome trace format."""

import hashlib
import json

from repro.common.clock import SimClock
from repro.obs import Tracer, chrome_trace, jsonl_trace, trace_fingerprint


def sample_tracer() -> Tracer:
    tracer = Tracer(SimClock())
    with tracer.span("cms.query", view="q1", session="alice"):
        tracer.clock.advance(0.5)
        tracer.event("stream.ready", rows=3)
        with tracer.span("rdi.fetch", session="alice"):
            tracer.clock.advance(0.25)
    tracer.event("stray", n=1)
    return tracer


class TestJsonl:
    def test_one_record_per_span_then_orphans(self):
        lines = jsonl_trace(sample_tracer()).splitlines()
        assert len(lines) == 3
        first, second, third = (json.loads(line) for line in lines)
        assert first["name"] == "cms.query"
        assert second["name"] == "rdi.fetch"
        assert second["parent"] == first["span"]
        assert third == {"event": "stray", "t": 0.75, "attributes": {"n": 1}}

    def test_span_record_shape(self):
        record = json.loads(jsonl_trace(sample_tracer()).splitlines()[0])
        assert record["span"] == 1
        assert record["parent"] is None
        assert record["start"] == 0.0
        assert record["end"] == 0.75
        assert record["attributes"] == {"session": "alice", "view": "q1"}
        assert record["events"] == [
            {"t": 0.5, "name": "stream.ready", "attributes": {"rows": 3}}
        ]

    def test_output_is_canonical_json(self):
        for line in jsonl_trace(sample_tracer()).splitlines():
            record = json.loads(line)
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_empty_tracer_exports_empty_string(self):
        assert jsonl_trace(Tracer(SimClock())) == ""

    def test_nonempty_export_ends_with_newline(self):
        assert jsonl_trace(sample_tracer()).endswith("\n")

    def test_non_json_attribute_values_are_coerced(self):
        tracer = Tracer(SimClock())
        with tracer.span("s", names={"b", "a"}, obj=object()) as span:
            span.set("pair", ("x", 1))
        record = json.loads(jsonl_trace(tracer))
        assert record["attributes"]["names"] == ["a", "b"]
        assert record["attributes"]["pair"] == ["x", 1]
        assert isinstance(record["attributes"]["obj"], str)


class TestFingerprint:
    def test_fingerprint_is_sha256_of_the_jsonl(self):
        tracer = sample_tracer()
        expected = hashlib.sha256(jsonl_trace(tracer).encode()).hexdigest()
        assert trace_fingerprint(tracer) == expected
        assert tracer.fingerprint() == expected

    def test_identical_traces_have_equal_fingerprints(self):
        assert trace_fingerprint(sample_tracer()) == trace_fingerprint(
            sample_tracer()
        )

    def test_any_difference_changes_the_fingerprint(self):
        tracer = sample_tracer()
        other = sample_tracer()
        other.spans[0].set("extra", True)
        assert trace_fingerprint(tracer) != trace_fingerprint(other)


class TestChrome:
    def test_valid_trace_event_json(self):
        doc = json.loads(chrome_trace(sample_tracer()))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = [record["ph"] for record in doc["traceEvents"]]
        assert "M" in phases and "X" in phases and "i" in phases

    def test_spans_become_complete_events_in_microseconds(self):
        doc = json.loads(chrome_trace(sample_tracer()))
        complete = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        query = next(r for r in complete if r["name"] == "cms.query")
        assert query["ts"] == 0.0
        assert query["dur"] == 750_000.0

    def test_sessions_get_their_own_thread_lanes(self):
        tracer = Tracer(SimClock())
        with tracer.span("s", session="bob"):
            pass
        with tracer.span("s", session="alice"):
            pass
        doc = json.loads(chrome_trace(tracer))
        names = {
            r["args"]["name"]: r["tid"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        # Sorted session names → stable tid assignment.
        assert names == {"session alice": 1, "session bob": 2}

    def test_disabled_tracer_exports_an_empty_document(self):
        doc = json.loads(Tracer.disabled().to_chrome())
        assert [r["ph"] for r in doc["traceEvents"]] == ["M"]
