"""Tests for the comparison baselines."""

import pytest

from repro.common.metrics import (
    CACHE_HITS_EXACT,
    CACHE_MISSES,
    REMOTE_REQUESTS,
    REMOTE_TUPLES,
)
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.caql.parser import parse_query
from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.loose import LooseCoupling
from repro.baselines.relation_cache import SingleRelationBuffer


def make_server():
    server = RemoteDBMS()
    server.load_table(
        relation_from_columns(
            "parent",
            par=["tom", "tom", "bob", "bob"],
            child=["bob", "liz", "ann", "pat"],
        )
    )
    server.load_table(
        relation_from_columns(
            "age", person=["tom", "bob", "liz", "ann", "pat"], years=[60, 35, 33, 8, 10]
        )
    )
    return server


TOM_KIDS = parse_query("q(Y) :- parent(tom, Y)")
BOB_KIDS = parse_query("q(Y) :- parent(bob, Y)")
JOIN = parse_query("j(X, A) :- parent(X, Y), age(Y, A), A < 20")


class TestAnswersAgree:
    """All baselines must return the same answers as direct evaluation."""

    @pytest.mark.parametrize("cls", [LooseCoupling, ExactMatchCache, SingleRelationBuffer])
    def test_selection(self, cls):
        bridge = cls(make_server())
        assert set(bridge.query(TOM_KIDS).fetch_all()) == {("bob",), ("liz",)}

    @pytest.mark.parametrize("cls", [LooseCoupling, ExactMatchCache, SingleRelationBuffer])
    def test_join(self, cls):
        bridge = cls(make_server())
        assert set(bridge.query(JOIN).fetch_all()) == {("bob", 8), ("bob", 10)}

    @pytest.mark.parametrize("cls", [LooseCoupling, ExactMatchCache, SingleRelationBuffer])
    def test_unsatisfiable(self, cls):
        bridge = cls(make_server())
        query = parse_query("q(Y) :- parent(tom, Y), 1 > 2")
        assert bridge.query(query).fetch_all() == []

    @pytest.mark.parametrize("cls", [LooseCoupling, ExactMatchCache, SingleRelationBuffer])
    def test_evaluable_residue(self, cls):
        bridge = cls(make_server())
        query = parse_query("q(X, S) :- age(X, A), plus(A, 1, S), A > 30")
        assert set(bridge.query(query).fetch_all()) == {
            ("tom", 61), ("bob", 36), ("liz", 34),
        }


class TestLooseCoupling:
    def test_every_query_goes_remote(self):
        bridge = LooseCoupling(make_server())
        bridge.query(TOM_KIDS).fetch_all()
        data_requests_after_first = bridge.metrics.get(REMOTE_REQUESTS)
        bridge.query(TOM_KIDS).fetch_all()
        assert bridge.metrics.get(REMOTE_REQUESTS) > data_requests_after_first

    def test_misses_counted(self):
        bridge = LooseCoupling(make_server())
        bridge.query(TOM_KIDS)
        bridge.query(TOM_KIDS)
        assert bridge.metrics.get(CACHE_MISSES) == 2

    def test_advice_accepted_and_ignored(self):
        bridge = LooseCoupling(make_server())
        bridge.begin_session(None)
        bridge.query(TOM_KIDS)


class TestExactMatchCache:
    def test_exact_repeat_hits(self):
        bridge = ExactMatchCache(make_server())
        bridge.query(TOM_KIDS).fetch_all()
        before = bridge.metrics.get(REMOTE_REQUESTS)
        bridge.query(TOM_KIDS).fetch_all()
        assert bridge.metrics.get(REMOTE_REQUESTS) == before
        assert bridge.metrics.get(CACHE_HITS_EXACT) == 1

    def test_subsumable_query_still_misses(self):
        """The defining limitation: no reuse without an exact match."""
        bridge = ExactMatchCache(make_server())
        scan = parse_query("s(X, Y) :- parent(X, Y)")
        bridge.query(scan).fetch_all()
        bridge.query(TOM_KIDS).fetch_all()  # derivable, but not exact
        assert bridge.metrics.get(CACHE_MISSES) == 2

    def test_lru_capacity(self):
        bridge = ExactMatchCache(make_server(), capacity_bytes=150)
        bridge.query(TOM_KIDS).fetch_all()
        bridge.query(BOB_KIDS).fetch_all()
        bridge.query(JOIN).fetch_all()
        assert bridge.used_bytes() <= 150

    def test_oversized_result_not_cached(self):
        bridge = ExactMatchCache(make_server(), capacity_bytes=10)
        bridge.query(TOM_KIDS).fetch_all()
        assert bridge.cached_result_count == 0

    def test_variable_renaming_still_exact(self):
        bridge = ExactMatchCache(make_server())
        bridge.query(parse_query("a(Y) :- parent(tom, Y)")).fetch_all()
        bridge.query(parse_query("b(W) :- parent(tom, W)")).fetch_all()
        assert bridge.metrics.get(CACHE_HITS_EXACT) == 1


class TestSingleRelationBuffer:
    def test_whole_relations_shipped(self):
        bridge = SingleRelationBuffer(make_server())
        bridge.query(TOM_KIDS).fetch_all()
        # All 4 parent tuples crossed the wire for a 2-tuple answer.
        assert bridge.metrics.get(REMOTE_TUPLES) == 4

    def test_reuse_across_different_selections(self):
        bridge = SingleRelationBuffer(make_server())
        bridge.query(TOM_KIDS).fetch_all()
        before = bridge.metrics.get(REMOTE_REQUESTS)
        bridge.query(BOB_KIDS).fetch_all()  # same relation: no new request
        assert bridge.metrics.get(REMOTE_REQUESTS) == before

    def test_joins_run_locally(self):
        bridge = SingleRelationBuffer(make_server())
        bridge.query(JOIN).fetch_all()
        assert bridge.metrics.get(REMOTE_TUPLES) == 9  # parent(4) + age(5)
        assert set(bridge.buffered_relations) == {"parent", "age"}

    def test_lru_eviction(self):
        bridge = SingleRelationBuffer(make_server(), capacity_bytes=90)
        bridge.query(TOM_KIDS).fetch_all()
        bridge.query(parse_query("q(X, A) :- age(X, A)")).fetch_all()
        assert len(bridge.buffered_relations) <= 1
