"""Integration tests for the BrAID facade across bridges and strategies."""

import pytest

from repro.braid import BraidConfig, BraidSystem
from repro.common.errors import BraidError
from repro.common.metrics import REMOTE_REQUESTS
from repro.core.cms import CMSFeatures
from repro.workloads.genealogy import genealogy
from repro.workloads.suppliers import suppliers
from repro.workloads.synthetic import fanout_graph


@pytest.fixture(scope="module")
def family():
    return genealogy(generations=3, branching=2, roots=1, seed=9)


class TestBridgesAgree:
    """Every bridge must produce identical answers (only costs differ)."""

    @pytest.mark.parametrize("bridge", ["cms", "loose", "exact-cache", "relation-buffer"])
    def test_same_answers(self, family, bridge):
        system = BraidSystem.from_workload(family, BraidConfig(bridge=bridge))
        reference = BraidSystem.from_workload(family, BraidConfig(bridge="loose"))
        for query in family.example_queries.values():
            got = sorted(map(str, system.ask_all(query)))
            expected = sorted(map(str, reference.ask_all(query)))
            assert got == expected, query

    def test_cms_costs_less_than_loose_on_repetition(self, family):
        def run(bridge):
            system = BraidSystem.from_workload(family, BraidConfig(bridge=bridge))
            for _ in range(3):
                system.ask_all("ancestor(p0, W)")
            return system.metrics.get(REMOTE_REQUESTS), system.clock.now

        cms_requests, cms_time = run("cms")
        loose_requests, loose_time = run("loose")
        assert cms_requests < loose_requests
        assert cms_time < loose_time


class TestStrategiesAgree:
    @pytest.mark.parametrize("strategy", ["interpreted", "conjunction", "compiled"])
    def test_same_answers(self, family, strategy):
        system = BraidSystem.from_workload(family, BraidConfig(strategy=strategy))
        solutions = system.ask_all("ancestor(p0, W)")
        reference = BraidSystem.from_workload(family).ask_all("ancestor(p0, W)")
        # Distinct answers agree; multiplicity is strategy-specific.
        assert {str(s) for s in solutions} == {str(s) for s in reference}


class TestBackends:
    def test_sqlite_backend_agrees(self, family):
        pure = BraidSystem.from_workload(family)
        lite = BraidSystem.from_workload(family, BraidConfig(backend="sqlite"))
        q = "grandparent(p0, W)"
        assert sorted(map(str, pure.ask_all(q))) == sorted(map(str, lite.ask_all(q)))

    def test_unknown_backend_rejected(self, family):
        with pytest.raises(BraidError):
            BraidSystem.from_workload(family, BraidConfig(backend="oracle"))

    def test_unknown_bridge_rejected(self, family):
        with pytest.raises(BraidError):
            BraidSystem.from_workload(family, BraidConfig(bridge="quantum"))


class TestFeatures:
    def test_features_none_behaves_like_loose(self, family):
        ablated = BraidSystem.from_workload(
            family, BraidConfig(features=CMSFeatures.none())
        )
        loose = BraidSystem.from_workload(family, BraidConfig(bridge="loose"))
        q = "grandparent(p0, W)"
        ablated.ask_all(q)
        ablated.ask_all(q)
        loose.ask_all(q)
        loose.ask_all(q)
        # Same number of data requests: no reuse in either.
        assert ablated.metrics.get(REMOTE_REQUESTS) == loose.metrics.get(REMOTE_REQUESTS)


class TestReporting:
    def test_report_contains_sections(self, family):
        system = BraidSystem.from_workload(family)
        system.ask_all("minor(X)")
        report = system.report()
        assert "simulated time" in report
        assert "remote.requests" in report
        assert "cache:" in report

    def test_reset_measurements(self, family):
        system = BraidSystem.from_workload(family)
        system.ask_all("minor(X)")
        system.reset_measurements()
        assert system.clock.now == 0.0
        assert system.metrics.get(REMOTE_REQUESTS) == 0


class TestOtherWorkloads:
    def test_suppliers_queries(self):
        system = BraidSystem.from_workload(suppliers(n_suppliers=8, n_parts=10, n_shipments=40))
        heavy = system.ask_all("heavy_part(P)")
        assert all(set(s) == {"P"} for s in heavy)
        preferred = system.ask_all("preferred_source(S, P)")
        assert all(set(s) == {"S", "P"} for s in preferred)

    def test_fanout_reachability_compiled(self):
        workload = fanout_graph(nodes=25, seed=2)
        system = BraidSystem.from_workload(workload, BraidConfig(strategy="compiled"))
        reachable = system.ask_all("reach(n0, W)")
        assert reachable  # n0 reaches something in a layered DAG
