"""Failure injection: errors must surface cleanly, never corrupt state."""

import pytest

from repro.common.errors import (
    BraidError,
    CacheCapacityError,
    RemoteDBMSError,
    UnknownRelationError,
)
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem
from repro.relational.relation import relation_from_columns
from repro.remote.server import RemoteDBMS
from repro.remote.sql import FetchTableQuery


def make_cms(**kwargs):
    server = RemoteDBMS()
    server.load_table(relation_from_columns("t", a=[1, 2, 3], b=[4, 5, 6]))
    cms = CacheManagementSystem(server, **kwargs)
    cms.begin_session()
    return cms, server


class TestUnknownRelations:
    def test_query_on_missing_table(self):
        cms, _server = make_cms()
        with pytest.raises(UnknownRelationError):
            cms.query(parse_query("q(X) :- ghost(X)")).fetch_all()

    def test_error_is_a_braid_error(self):
        cms, _server = make_cms()
        with pytest.raises(BraidError):
            cms.query(parse_query("q(X) :- ghost(X)")).fetch_all()

    def test_cms_still_usable_after_error(self):
        cms, _server = make_cms()
        with pytest.raises(UnknownRelationError):
            cms.query(parse_query("q(X) :- ghost(X)")).fetch_all()
        result = cms.query(parse_query("q(A, B) :- t(A, B)")).fetch_all()
        assert len(result) == 3

    def test_arity_mismatch_surfaces(self):
        cms, _server = make_cms()
        with pytest.raises(BraidError):
            cms.query(parse_query("q(X) :- t(X)")).fetch_all()


class TestBrokenEngine:
    class ExplodingEngine:
        """An engine that fails on every request."""

        def create_table(self, relation):
            self.schema = relation.schema

        def execute(self, request):
            raise RemoteDBMSError("disk on fire")

    def test_engine_failure_propagates(self):
        server = RemoteDBMS(engine=self.ExplodingEngine())
        server.load_table(relation_from_columns("t", a=[1]))
        with pytest.raises(RemoteDBMSError):
            server.execute(FetchTableQuery("t"))

    def test_cms_propagates_engine_failure(self):
        server = RemoteDBMS(engine=self.ExplodingEngine())
        server.load_table(relation_from_columns("t", a=[1]))
        cms = CacheManagementSystem(server)
        cms.begin_session()
        with pytest.raises(RemoteDBMSError):
            cms.query(parse_query("q(A) :- t(A)")).fetch_all()


class TestTinyCache:
    def test_results_still_correct_when_nothing_fits(self):
        # Capacity so small no element can be stored: every query refetches
        # but answers stay correct.
        cms, server = make_cms(capacity_bytes=8)
        q = parse_query("q(A, B) :- t(A, B)")
        first = cms.query(q).fetch_all()
        second = cms.query(q).fetch_all()
        assert first == second
        assert len(cms.cache) == 0
        assert server.metrics.get("remote.requests") >= 2

    def test_store_raises_but_query_succeeds(self):
        cms, _server = make_cms(capacity_bytes=8)
        result = cms.query(parse_query("q(A, B) :- t(A, B)")).fetch_all()
        assert len(result) == 3  # CacheCapacityError swallowed internally

    def test_direct_store_raises(self):
        from repro.caql.eval import psj_of, result_schema
        from repro.relational.relation import Relation

        cms, _server = make_cms(capacity_bytes=8)
        psj = psj_of(parse_query("q(A, B) :- t(A, B)"))
        big = Relation(result_schema("q", 2), [(i, i) for i in range(100)])
        with pytest.raises(CacheCapacityError):
            cms.cache.store(psj, big)


class TestStreamMisuse:
    def test_exhausted_stream_stays_exhausted(self):
        cms, _server = make_cms()
        stream = cms.query(parse_query("q(A) :- t(A, 4)"))
        assert stream.next() == (1,)
        assert stream.next() is None
        assert stream.next() is None

    def test_fetch_all_after_partial_next(self):
        cms, _server = make_cms()
        stream = cms.query(parse_query("q(A, B) :- t(A, B)"))
        stream.next()
        assert len(stream.fetch_all()) == 3  # fetch_all is complete, not a tail
