"""Failure injection: errors must surface cleanly, never corrupt state.

The second half of this file exercises the fault-injected link end to end
through the CMS: injected outages, retry/backoff, the circuit breaker, and
graceful degradation from the stale archive and partial cache answers.
"""

import pytest

from repro.common.errors import (
    BraidError,
    CacheCapacityError,
    RemoteDBMSError,
    UnknownRelationError,
)
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.relational.relation import relation_from_columns
from repro.remote.faults import FaultPolicy, RetryPolicy
from repro.remote.server import RemoteDBMS
from repro.remote.sql import FetchTableQuery
from repro.workloads.genealogy import genealogy
from repro.workloads.queries import StreamSpec, repeated_selection_stream

OUTAGE = FaultPolicy(seed=0, transient_rate=1.0)


def make_cms(**kwargs):
    server = RemoteDBMS()
    server.load_table(relation_from_columns("t", a=[1, 2, 3], b=[4, 5, 6]))
    cms = CacheManagementSystem(server, **kwargs)
    cms.begin_session()
    return cms, server


class TestUnknownRelations:
    def test_query_on_missing_table(self):
        cms, _server = make_cms()
        with pytest.raises(UnknownRelationError):
            cms.query(parse_query("q(X) :- ghost(X)")).fetch_all()

    def test_error_is_a_braid_error(self):
        cms, _server = make_cms()
        with pytest.raises(BraidError):
            cms.query(parse_query("q(X) :- ghost(X)")).fetch_all()

    def test_cms_still_usable_after_error(self):
        cms, _server = make_cms()
        with pytest.raises(UnknownRelationError):
            cms.query(parse_query("q(X) :- ghost(X)")).fetch_all()
        result = cms.query(parse_query("q(A, B) :- t(A, B)")).fetch_all()
        assert len(result) == 3

    def test_arity_mismatch_surfaces(self):
        cms, _server = make_cms()
        with pytest.raises(BraidError):
            cms.query(parse_query("q(X) :- t(X)")).fetch_all()


class TestBrokenEngine:
    class ExplodingEngine:
        """An engine that fails on every request."""

        def create_table(self, relation):
            self.schema = relation.schema

        def execute(self, request):
            raise RemoteDBMSError("disk on fire")

    def test_engine_failure_propagates(self):
        server = RemoteDBMS(engine=self.ExplodingEngine())
        server.load_table(relation_from_columns("t", a=[1]))
        with pytest.raises(RemoteDBMSError):
            server.execute(FetchTableQuery("t"))

    def test_cms_propagates_engine_failure(self):
        server = RemoteDBMS(engine=self.ExplodingEngine())
        server.load_table(relation_from_columns("t", a=[1]))
        cms = CacheManagementSystem(server)
        cms.begin_session()
        with pytest.raises(RemoteDBMSError):
            cms.query(parse_query("q(A) :- t(A)")).fetch_all()


class TestTinyCache:
    def test_results_still_correct_when_nothing_fits(self):
        # Capacity so small no element can be stored: every query refetches
        # but answers stay correct.
        cms, server = make_cms(capacity_bytes=8)
        q = parse_query("q(A, B) :- t(A, B)")
        first = cms.query(q).fetch_all()
        second = cms.query(q).fetch_all()
        assert first == second
        assert len(cms.cache) == 0
        assert server.metrics.get("remote.requests") >= 2

    def test_store_raises_but_query_succeeds(self):
        cms, _server = make_cms(capacity_bytes=8)
        result = cms.query(parse_query("q(A, B) :- t(A, B)")).fetch_all()
        assert len(result) == 3  # CacheCapacityError swallowed internally

    def test_direct_store_raises(self):
        from repro.caql.eval import psj_of, result_schema
        from repro.relational.relation import Relation

        cms, _server = make_cms(capacity_bytes=8)
        psj = psj_of(parse_query("q(A, B) :- t(A, B)"))
        big = Relation(result_schema("q", 2), [(i, i) for i in range(100)])
        with pytest.raises(CacheCapacityError):
            cms.cache.store(psj, big)


class TestStreamMisuse:
    def test_exhausted_stream_stays_exhausted(self):
        cms, _server = make_cms()
        stream = cms.query(parse_query("q(A) :- t(A, 4)"))
        assert stream.next() == (1,)
        assert stream.next() is None
        assert stream.next() is None

    def test_fetch_all_after_partial_next(self):
        cms, _server = make_cms()
        stream = cms.query(parse_query("q(A, B) :- t(A, B)"))
        stream.next()
        assert len(stream.fetch_all()) == 3  # fetch_all is complete, not a tail


class TestDegradedFallback:
    """Exhausted retries fall back to stale/partial cache answers."""

    def make(self, **features):
        # caching off by default so repeat queries must go remote — the
        # stale archive (not the live cache) is what serves the outage.
        features.setdefault("caching", False)
        features.setdefault("retry_policy", RetryPolicy(max_retries=1))
        cms, server = make_cms(features=CMSFeatures(**features))
        return cms, server

    def test_stale_archive_serves_exact_repeat(self):
        cms, server = self.make()
        q = parse_query("q(A, B) :- t(A, B)")
        fresh = cms.query(q)
        rows = fresh.fetch_all()
        assert not fresh.degraded

        server.set_fault_policy(OUTAGE)
        stale = cms.query(q)
        assert sorted(stale.fetch_all()) == sorted(rows)
        assert stale.degraded
        assert server.metrics.get("remote.degraded_answers") == 1

    def test_stale_archive_serves_subsumed_query(self):
        cms, server = self.make()
        cms.query(parse_query("q(A, B) :- t(A, B)")).fetch_all()
        server.set_fault_policy(OUTAGE)
        narrower = cms.query(parse_query("p(B) :- t(2, B)"))
        assert narrower.fetch_all() == [(5,)]
        assert narrower.degraded

    def test_partial_answer_from_cache_parts(self):
        # t is big and cached, s is small and remote: the hybrid split wins
        # the plan comparison, so when the s-side fetch fails only the
        # cached t-side can be served.
        server = RemoteDBMS()
        server.load_table(
            relation_from_columns(
                "t", a=list(range(200)), b=[4 + i % 2 for i in range(200)]
            )
        )
        server.load_table(relation_from_columns("s", b=[4, 5], c=[7, 8]))
        cms = CacheManagementSystem(
            server, features=CMSFeatures(retry_policy=RetryPolicy(max_retries=1))
        )
        cms.begin_session()
        cms.query(parse_query("q1(A, B) :- t(A, B)")).fetch_all()  # caches t

        server.set_fault_policy(OUTAGE)
        joined = cms.query(parse_query("q2(A, C) :- t(A, B), s(B, C)"))
        rows = joined.fetch_all()
        assert joined.degraded
        # The t-side column is real; the unreachable s-side is unknown.
        assert sorted(row[0] for row in rows) == list(range(200))
        assert all(row[1] is None for row in rows)

    def test_degraded_answers_are_not_archived(self):
        cms, server = self.make()
        q = parse_query("q(A, B) :- t(A, B)")
        cms.query(q).fetch_all()
        archived = len(cms._archive)
        server.set_fault_policy(OUTAGE)
        assert cms.query(q).degraded
        assert len(cms._archive) == archived  # stale copy not re-archived

    def test_recovery_clears_the_degraded_flag(self):
        cms, server = self.make()
        q = parse_query("q(A, B) :- t(A, B)")
        cms.query(q).fetch_all()
        server.set_fault_policy(OUTAGE)
        assert cms.query(q).degraded
        server.set_fault_policy(None)
        assert not cms.query(q).degraded

    def test_degradation_disabled_propagates_the_error(self):
        cms, server = self.make(degradation=False)
        q = parse_query("q(A, B) :- t(A, B)")
        cms.query(q).fetch_all()
        server.set_fault_policy(OUTAGE)
        with pytest.raises(RemoteDBMSError):
            cms.query(q).fetch_all()

    def test_nothing_to_degrade_to_propagates_the_error(self):
        cms, server = self.make()
        server.set_fault_policy(OUTAGE)  # outage before anything was seen
        with pytest.raises(RemoteDBMSError):
            cms.query(parse_query("q(A, B) :- t(A, B)")).fetch_all()

    def test_aggregate_over_degraded_base_is_flagged(self):
        from repro.caql.ast import AggregateQuery

        cms, server = self.make()
        base = parse_query("q(A, B) :- t(A, B)")
        cms.query(base).fetch_all()
        server.set_fault_policy(OUTAGE)
        stream = cms.query(
            AggregateQuery(base, group_by=(), aggregations=(("count", 0, "n"),))
        )
        assert stream.fetch_all() == [(3,)]
        assert stream.degraded


class TestFaultedWorkload:
    """Acceptance scenario: an E2-style session over a 20%-flaky link with a
    total outage in the middle must complete with every query answered."""

    def run_session(self, seed):
        server = RemoteDBMS(faults=FaultPolicy(seed=seed, transient_rate=0.2))
        for table in genealogy(seed=23).tables:
            server.load_table(table)
        # Tiny cache: elements evict constantly, so outage-time answers
        # really come from the stale archive, not lucky cache residency.
        cms = CacheManagementSystem(server, capacity_bytes=600)
        cms.begin_session()
        people = [f"p{i}" for i in range(22)]
        queries = list(
            repeated_selection_stream(
                "q(Y) :- parent($C, Y)", people, StreamSpec(60, 0.6, seed=7)
            )
        )
        answered = degraded = failed = 0
        for i, q in enumerate(queries):
            if i == 30:
                server.set_fault_policy(FaultPolicy(seed=seed + 1, transient_rate=1.0))
            if i == 35:
                server.set_fault_policy(FaultPolicy(seed=seed + 2, transient_rate=0.2))
            try:
                stream = cms.query(q)
                stream.fetch_all()
                answered += 1
                degraded += stream.degraded
            except RemoteDBMSError:
                failed += 1
        return {
            "answered": answered,
            "degraded": degraded,
            "failed": failed,
            "snapshot": server.metrics.snapshot(),
            "clock": server.clock.now,
        }

    def test_availability_under_faults(self):
        outcome = self.run_session(seed=11)
        total = outcome["answered"] + outcome["failed"]
        assert total == 60
        assert outcome["answered"] / total >= 0.95
        assert outcome["degraded"] > 0
        snapshot = outcome["snapshot"]
        assert snapshot["remote.retries"] > 0
        assert snapshot["remote.degraded_answers"] > 0
        assert snapshot["remote.faults_injected"] > 0

    def test_same_seed_runs_are_byte_identical(self):
        assert self.run_session(seed=11) == self.run_session(seed=11)

    def test_breaker_cycles_during_long_outage(self):
        server = RemoteDBMS()
        for table in genealogy(seed=23).tables:
            server.load_table(table)
        cms = CacheManagementSystem(server, capacity_bytes=600)
        cms.begin_session()
        people = [f"p{i}" for i in range(22)]
        queries = list(
            repeated_selection_stream(
                "q(Y) :- parent($C, Y)", people, StreamSpec(60, 0.6, seed=7)
            )
        )
        for i, q in enumerate(queries):
            if i == 30:
                server.set_fault_policy(FaultPolicy(seed=12, transient_rate=1.0))
            if i == 40:
                server.set_fault_policy(None)
            try:
                cms.query(q).fetch_all()
            except RemoteDBMSError:
                pass
        changes = server.metrics.get("remote.breaker_state_changes")
        # At least one full open -> half-open -> closed recovery.
        assert changes >= 3
        assert cms.rdi.breaker.state == "closed"
