"""Property: advice changes costs, never answers.

Section 3: advice is "not necessary for the CMS to function" — and by
construction it must never change what a query returns, only how cheaply.
The same holds for the inference strategies: every strategy and every
advice setting must agree on the solution set.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.braid import BraidConfig, BraidSystem
from repro.workloads.genealogy import genealogy

WORKLOAD = genealogy(generations=4, branching=2, roots=2, seed=77)

QUERY_TEMPLATES = [
    "ancestor({p}, W)",
    "grandparent({p}, W)",
    "sibling({p}, S)",
    "father(X, {p})",
    "minor(X)",
    "uncle(U, N)",
    "parent_of_minor(X)",
    "same_generation({p}, Y)",
]
PEOPLE = [f"p{i}" for i in range(0, 12)]

queries = st.builds(
    lambda template, person: template.format(p=person),
    st.sampled_from(QUERY_TEMPLATES),
    st.sampled_from(PEOPLE),
)


def solutions(system, query):
    # Compare distinct answers: interpretive strategies may repeat a
    # solution once per derivation (Prolog semantics), compiled may not.
    return sorted({str(s) for s in system.ask_all(query)})


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(queries, min_size=1, max_size=3))
def test_advice_never_changes_answers(sequence):
    advised = BraidSystem.from_workload(WORKLOAD, BraidConfig(generate_advice=True))
    unadvised = BraidSystem.from_workload(WORKLOAD, BraidConfig(generate_advice=False))
    for query in sequence:
        assert solutions(advised, query) == solutions(unadvised, query), query


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(queries)
def test_strategies_agree(query):
    reference = None
    for strategy in ("interpreted", "conjunction", "compiled"):
        system = BraidSystem.from_workload(WORKLOAD, BraidConfig(strategy=strategy))
        got = solutions(system, query)
        if reference is None:
            reference = got
        else:
            assert got == reference, f"{query} under {strategy}"


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(queries, min_size=2, max_size=4))
def test_session_order_never_changes_answers(sequence):
    """Cache state built by earlier questions must not alter later answers."""
    system = BraidSystem.from_workload(WORKLOAD)
    fresh_answers = []
    for query in sequence:
        fresh = BraidSystem.from_workload(WORKLOAD)
        fresh_answers.append(solutions(fresh, query))
    for query, expected in zip(sequence, fresh_answers):
        assert solutions(system, query) == expected, query
