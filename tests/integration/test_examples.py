"""Every example script must run cleanly (they are part of the API docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something"


def test_examples_exist():
    assert len(EXAMPLES) >= 4
