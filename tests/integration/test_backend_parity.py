"""Property test: the pure-Python and sqlite remote backends agree.

The paper's requirement is an *unmodified conventional DBMS*; this repo
provides two interchangeable ones.  Whatever the CMS ships to either must
come back identical — asserted over random conjunctive queries.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.server import RemoteDBMS
from repro.remote.sqlite_backend import SqliteEngine

R_ROWS = [(x, y) for x in range(6) for y in range(6) if (x + 2 * y) % 3]
S_ROWS = [(y, f"tag{y % 3}", z) for y in range(6) for z in range(3)]


def load(server: RemoteDBMS) -> RemoteDBMS:
    server.load_table(Relation(Schema("r", ("a", "b")), R_ROWS))
    server.load_table(Relation(Schema("s", ("c", "d", "e")), S_ROWS))
    return server


TEMPLATES = [
    "q(X, Y) :- r(X, Y)",
    "q(Y) :- r({c}, Y)",
    "q(X, Y) :- r(X, Y), Y > {c}",
    "q(X, D) :- r(X, Y), s(Y, D, E)",
    "q(X) :- r(X, Y), s(Y, tag1, {e})",
    "q(X, Y2) :- r(X, Y), r(Y, Y2), X \\= Y2",
    "q({c}, Y) :- r({c}, Y)",
]

queries = st.builds(
    lambda template, c, e: parse_query(template.format(c=c, e=e)),
    st.sampled_from(TEMPLATES),
    st.integers(0, 5),
    st.integers(0, 2),
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(queries, min_size=1, max_size=4))
def test_backends_agree(sequence):
    pure = CacheManagementSystem(load(RemoteDBMS()))
    lite = CacheManagementSystem(load(RemoteDBMS(engine=SqliteEngine())))
    pure.begin_session()
    lite.begin_session()
    for query in sequence:
        got_pure = set(pure.query(query).fetch_all())
        got_lite = set(lite.query(query).fetch_all())
        assert got_pure == got_lite, str(query)
