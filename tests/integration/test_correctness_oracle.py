"""The correctness oracle: every bridge, any cache state, same answers.

The single most important invariant in the system: no matter which
features are enabled and what the cache already contains, a CAQL query's
answer must equal direct evaluation against the base data.  Hypothesis
drives random query sequences through randomly configured bridges and
compares every result against the oracle.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.caql.eval import evaluate_conjunctive
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.loose import LooseCoupling
from repro.baselines.relation_cache import SingleRelationBuffer
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.server import RemoteDBMS
from repro.caql.eval import result_schema

# A compact but structurally rich database.
R_ROWS = [(x, y) for x in range(5) for y in range(5) if (x * 3 + y) % 4 != 0]
S_ROWS = [(y, z, z % 3) for y in range(5) for z in range(4)]
DB = {
    "r": Relation(result_schema("r", 2), R_ROWS),
    "s": Relation(result_schema("s", 3), S_ROWS),
}


def load_server() -> RemoteDBMS:
    server = RemoteDBMS()
    server.load_table(Relation(Schema("r", ("a", "b")), R_ROWS))
    server.load_table(Relation(Schema("s", ("c", "d", "e")), S_ROWS))
    return server


# -- query pool --------------------------------------------------------------------
# Parameterized templates spanning selections, joins, self-joins, ranges,
# constant answers, and boolean queries.
TEMPLATES = [
    "q(X, Y) :- r(X, Y)",
    "q(Y) :- r({c1}, Y)",
    "q(X) :- r(X, {c1})",
    "q(X, Y) :- r(X, Y), X < {c2}",
    "q(X, Y) :- r(X, Y), Y >= {c1}",
    "q(X, Z) :- r(X, Y), s(Y, Z, E)",
    "q(X, Z) :- r(X, Y), s(Y, Z, {c3})",
    "q(Y, E) :- r({c1}, Y), s(Y, Z, E)",
    "q(X, Y2) :- r(X, Y), r(Y, Y2)",
    "q(X) :- r(X, X)",
    "q({c1}, Y) :- r({c1}, Y)",
    "q(X, Y) :- r(X, Y), X \\= Y",
    "q(D) :- s({c1}, D, E), D > {c3}",
]

constants = st.fixed_dictionaries(
    {
        "c1": st.integers(0, 4),
        "c2": st.integers(1, 5),
        "c3": st.integers(0, 2),
    }
)
queries = st.builds(
    lambda template, consts: parse_query(template.format(**consts)),
    st.sampled_from(TEMPLATES),
    constants,
)
query_sequences = st.lists(queries, min_size=1, max_size=6)

feature_sets = st.builds(
    CMSFeatures,
    caching=st.booleans(),
    subsumption=st.booleans(),
    lazy=st.booleans(),
    parallel=st.booleans(),
)

oracle_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def oracle(query):
    return set(evaluate_conjunctive(query, DB.__getitem__).rows)


@oracle_settings
@given(query_sequences, feature_sets)
def test_cms_matches_oracle(sequence, features):
    cms = CacheManagementSystem(load_server(), features=features)
    cms.begin_session()
    for query in sequence:
        got = set(cms.query(query).fetch_all())
        assert got == oracle(query), f"{query} under {features}"


@oracle_settings
@given(query_sequences, st.integers(600, 4000))
def test_cms_matches_oracle_under_cache_pressure(sequence, capacity):
    cms = CacheManagementSystem(load_server(), capacity_bytes=capacity)
    cms.begin_session()
    for query in sequence:
        got = set(cms.query(query).fetch_all())
        assert got == oracle(query), f"{query} at capacity {capacity}"


@oracle_settings
@given(query_sequences)
def test_baselines_match_oracle(sequence):
    bridges = [
        LooseCoupling(load_server()),
        ExactMatchCache(load_server()),
        SingleRelationBuffer(load_server()),
    ]
    for query in sequence:
        expected = oracle(query)
        for bridge in bridges:
            got = set(bridge.query(query).fetch_all())
            assert got == expected, f"{query} via {bridge.name}"


@oracle_settings
@given(query_sequences)
def test_cache_state_never_leaks_wrong_rows(sequence):
    """Interleave the same sequence twice: second pass (cache-heavy) must
    equal the first (cache-cold) answer for answer stability."""
    cms = CacheManagementSystem(load_server())
    cms.begin_session()
    first_pass = [set(cms.query(q).fetch_all()) for q in sequence]
    second_pass = [set(cms.query(q).fetch_all()) for q in sequence]
    assert first_pass == second_pass
