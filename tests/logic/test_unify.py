"""Tests for unification and one-directional (subsumption) matching."""

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.terms import Atom, Const, Substitution, Var
from repro.logic.unify import instance_of, match_one_way, unify, unify_terms, variant

X, Y, Z = Var("X"), Var("Y"), Var("Z")
a, b, c = Const("a"), Const("b"), Const("c")


class TestUnifyTerms:
    def test_identical_constants(self):
        assert unify_terms(a, a, Substitution()) is not None

    def test_clashing_constants(self):
        assert unify_terms(a, b, Substitution()) is None

    def test_var_binds_constant(self):
        s = unify_terms(X, a, Substitution())
        assert s.resolve(X) == a

    def test_var_binds_var(self):
        s = unify_terms(X, Y, Substitution())
        assert s.resolve(X) == s.resolve(Y)

    def test_respects_existing_bindings(self):
        s0 = Substitution().bind(X, a)
        assert unify_terms(X, b, s0) is None
        assert unify_terms(X, a, s0) == s0


class TestUnifyAtoms:
    def test_different_predicates_fail(self):
        assert unify(Atom("p", (X,)), Atom("q", (X,))) is None

    def test_different_arities_fail(self):
        assert unify(Atom("p", (X,)), Atom("p", (X, Y))) is None

    def test_polarity_must_agree(self):
        assert unify(Atom("p", (X,)), Atom("p", (X,), negated=True)) is None

    def test_bindings_flow_both_ways(self):
        s = unify(Atom("p", (X, b)), Atom("p", (a, Y)))
        assert s.resolve(X) == a
        assert s.resolve(Y) == b

    def test_repeated_variable_constraint(self):
        assert unify(Atom("p", (X, X)), Atom("p", (a, b))) is None
        s = unify(Atom("p", (X, X)), Atom("p", (a, a)))
        assert s.resolve(X) == a

    def test_unifier_makes_atoms_equal(self):
        left = Atom("p", (X, b, Z))
        right = Atom("p", (a, Y, Y))
        s = unify(left, right)
        assert s.apply(left) == s.apply(right)


class TestMatchOneWay:
    """The CMS subsumption-check matching rule of Section 5.3.2."""

    def test_general_var_matches_query_constant(self):
        # E = b21(X, Y) subsumes Q = b21(X, 2): Y may take the value 2.
        s = match_one_way(Atom("b21", (X, Y)), Atom("b21", (X, Const(2))))
        assert s is not None
        assert s.resolve(Y) == Const(2)

    def test_query_variable_cannot_match_element_constant(self):
        # E = b21(3, Y) does not subsume Q = b21(X, 2): X ranges wider than 3.
        assert match_one_way(Atom("b21", (Const(3), Y)), Atom("b21", (X, Const(2)))) is None

    def test_identical_constants_match(self):
        # E = b21(X, 2) subsumes Q = b21(X, 2) (paper's E3 example).
        s = match_one_way(Atom("b21", (X, Const(2))), Atom("b21", (Y, Const(2))))
        assert s is not None

    def test_general_var_matches_query_variable(self):
        s = match_one_way(Atom("p", (X,)), Atom("p", (Y,)))
        assert s.resolve(X) == Y

    def test_repeated_general_var_must_match_consistently(self):
        assert match_one_way(Atom("p", (X, X)), Atom("p", (a, b))) is None
        assert match_one_way(Atom("p", (X, X)), Atom("p", (a, a))) is not None

    def test_predicate_and_arity_must_agree(self):
        assert match_one_way(Atom("p", (X,)), Atom("q", (a,))) is None
        assert match_one_way(Atom("p", (X,)), Atom("p", (a, b))) is None


class TestInstanceAndVariant:
    def test_instance_of(self):
        assert instance_of(Atom("p", (a, b)), Atom("p", (X, Y)))
        assert not instance_of(Atom("p", (X, b)), Atom("p", (a, Y)))

    def test_every_atom_instance_of_itself(self):
        atom = Atom("p", (X, a))
        assert instance_of(atom, atom)

    def test_variant_true_for_renaming(self):
        assert variant(Atom("p", (X, Y)), Atom("p", (Z, X)))

    def test_variant_false_for_collapsing(self):
        assert not variant(Atom("p", (X, Y)), Atom("p", (Z, Z)))

    def test_variant_false_for_specialization(self):
        assert not variant(Atom("p", (X,)), Atom("p", (a,)))


# -- property-based tests -------------------------------------------------------

var_names = st.sampled_from(["X", "Y", "Z", "W"])
const_values = st.integers(0, 3)
terms = st.one_of(var_names.map(Var), const_values.map(Const))
atoms = st.builds(
    Atom,
    pred=st.sampled_from(["p", "q"]),
    args=st.lists(terms, min_size=1, max_size=3).map(tuple),
)
ground_atoms = st.builds(
    Atom,
    pred=st.sampled_from(["p", "q"]),
    args=st.lists(const_values.map(Const), min_size=1, max_size=3).map(tuple),
)


@given(atoms, atoms)
def test_unify_symmetric_success(left, right):
    assert (unify(left, right) is None) == (unify(right, left) is None)


@given(atoms, atoms)
def test_unifier_is_a_solution(left, right):
    s = unify(left, right)
    if s is not None:
        assert s.apply(left) == s.apply(right)


@given(atoms)
def test_unify_reflexive(atom):
    assert unify(atom, atom) is not None


@given(atoms, ground_atoms)
def test_match_one_way_sound(general, ground):
    """If match succeeds, applying the match maps general onto the query."""
    s = match_one_way(general, ground)
    if s is not None:
        assert s.apply(general) == ground


@given(atoms, ground_atoms)
def test_match_implies_unify(general, ground):
    if match_one_way(general, ground) is not None:
        assert unify(general, ground) is not None
