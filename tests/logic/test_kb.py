"""Tests for the knowledge base."""

import pytest

from repro.common.errors import KnowledgeBaseError
from repro.logic.kb import KnowledgeBase, knowledge_base_from_source
from repro.logic.parser import parse_atom, parse_clause
from repro.logic.soa import RecursiveStructure
from repro.logic.terms import Atom, Var

ANCESTOR_RULES = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""


@pytest.fixture
def kb():
    base = KnowledgeBase()
    base.declare_database("parent", 2)
    base.add_rules(ANCESTOR_RULES)
    return base


class TestClassification:
    def test_database(self, kb):
        assert kb.classify(parse_atom("parent(X, Y)")) == "database"

    def test_user(self, kb):
        assert kb.classify(parse_atom("ancestor(X, Y)")) == "user"

    def test_builtin(self, kb):
        assert kb.classify(Atom("<", (Var("X"), Var("Y")))) == "builtin"

    def test_unknown(self, kb):
        assert kb.classify(parse_atom("mystery(X)")) == "unknown"

    def test_arity_distinguishes(self, kb):
        assert kb.classify(parse_atom("parent(X, Y, Z)")) == "unknown"


class TestDeclarations:
    def test_rule_for_database_relation_rejected(self, kb):
        with pytest.raises(KnowledgeBaseError):
            kb.add_clause(parse_clause("parent(X, Y) :- ancestor(X, Y)."))

    def test_database_declaration_after_rules_rejected(self, kb):
        with pytest.raises(KnowledgeBaseError):
            kb.declare_database("ancestor", 2)

    def test_rule_for_builtin_rejected(self, kb):
        with pytest.raises(KnowledgeBaseError):
            kb.add_clause(parse_clause("plus(X, Y, Z) :- ancestor(X, Y)."))

    def test_local_facts_allowed(self, kb):
        kb.add_rules("vip(tom).")
        assert kb.classify(parse_atom("vip(X)")) == "user"


class TestClauseAccess:
    def test_clauses_for(self, kb):
        clauses = kb.clauses_for(parse_atom("ancestor(X, Y)"))
        assert len(clauses) == 2

    def test_clauses_for_unknown_empty(self, kb):
        assert kb.clauses_for(parse_atom("mystery(X)")) == []

    def test_clause_order_preserved(self, kb):
        clauses = kb.clauses_for(parse_atom("ancestor(X, Y)"))
        assert len(clauses[0].body) == 1
        assert len(clauses[1].body) == 2


class TestConnectionGraph:
    def test_edges(self, kb):
        graph = kb.connection_graph()
        assert graph[("ancestor", 2)] == {("parent", 2), ("ancestor", 2)}

    def test_reachable(self, kb):
        reachable = kb.reachable_signatures(("ancestor", 2))
        assert ("parent", 2) in reachable
        assert ("ancestor", 2) in reachable

    def test_relevant_database_relations(self, kb):
        relations = kb.relevant_database_relations(parse_atom("ancestor(tom, X)"))
        assert relations == {("parent", 2)}

    def test_negated_literals_counted(self):
        kb = KnowledgeBase()
        kb.declare_database("parent", 2)
        kb.declare_database("person", 1)
        kb.add_rules("orphan(X) :- person(X), \\+ parent(Y, X).")
        relations = kb.relevant_database_relations(parse_atom("orphan(X)"))
        assert relations == {("person", 1), ("parent", 2)}

    def test_is_recursive(self, kb):
        assert kb.is_recursive(("ancestor", 2))

    def test_non_recursive(self):
        kb = KnowledgeBase()
        kb.declare_database("parent", 2)
        kb.add_rules("father(X, Y) :- parent(X, Y), male(X).")
        kb.add_rules("male(tom).")
        assert not kb.is_recursive(("father", 2))

    def test_mutual_recursion_detected(self):
        kb = KnowledgeBase()
        kb.declare_database("edge", 2)
        kb.add_rules(
            """
            even_path(X, Y) :- edge(X, Z), odd_path(Z, Y).
            odd_path(X, Y) :- edge(X, Y).
            odd_path(X, Y) :- edge(X, Z), even_path(Z, Y).
            """
        )
        assert kb.is_recursive(("even_path", 2))
        assert kb.is_recursive(("odd_path", 2))


class TestValidation:
    def test_valid_kb_has_no_problems(self, kb):
        assert kb.validate() == []

    def test_undefined_predicate_flagged(self):
        kb = KnowledgeBase()
        kb.add_rules("p(X) :- q(X).")
        problems = kb.validate()
        assert len(problems) == 1
        assert "q/1" in problems[0]


class TestConvenienceConstructor:
    def test_from_source(self):
        kb = knowledge_base_from_source(
            ANCESTOR_RULES,
            database=[("parent", 2)],
            soas=[RecursiveStructure("ancestor", "parent")],
        )
        assert kb.classify(parse_atom("parent(X, Y)")) == "database"
        assert kb.soas.recursive_for("ancestor") is not None
