"""Tests for terms, atoms, and substitutions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.logic.terms import (
    Atom,
    Const,
    Substitution,
    Var,
    fresh_var,
    rename_apart,
)

X, Y, Z = Var("X"), Var("Y"), Var("Z")
a, b = Const("a"), Const("b")


class TestTerms:
    def test_vars_equal_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_consts_equal_by_value(self):
        assert Const(1) == Const(1)
        assert Const(1) != Const("1")

    def test_terms_hashable(self):
        assert len({Var("X"), Var("X"), Const(1), Const(1)}) == 2

    def test_fresh_vars_distinct(self):
        assert fresh_var() != fresh_var()

    def test_str_forms(self):
        assert str(Var("Who")) == "Who"
        assert str(Const("tom")) == "tom"
        assert str(Const(42)) == "42"


class TestAtom:
    def test_signature(self):
        assert Atom("p", (X, a)).signature == ("p", 2)

    def test_args_coerced_to_tuple(self):
        atom = Atom("p", [X, a])
        assert isinstance(atom.args, tuple)

    def test_variables_and_constants(self):
        atom = Atom("p", (X, a, Y, X))
        assert atom.variables() == {X, Y}
        assert atom.constants() == {a}

    def test_is_ground(self):
        assert Atom("p", (a, b)).is_ground()
        assert not Atom("p", (a, X)).is_ground()

    def test_str(self):
        assert str(Atom("p", (X, a))) == "p(X, a)"
        assert str(Atom("p", ())) == "p"
        assert str(Atom("p", (X,), negated=True)) == "\\+p(X)"

    def test_positive_strips_negation(self):
        atom = Atom("p", (X,), negated=True)
        assert atom.positive() == Atom("p", (X,))

    def test_atoms_hashable(self):
        assert len({Atom("p", (X,)), Atom("p", (X,))}) == 1


class TestSubstitution:
    def test_empty_is_identity(self):
        atom = Atom("p", (X, a))
        assert Substitution().apply(atom) == atom

    def test_bind_and_apply(self):
        s = Substitution().bind(X, a)
        assert s.apply(Atom("p", (X, Y))) == Atom("p", (a, Y))

    def test_bind_resolves_chains(self):
        s = Substitution().bind(X, Y).bind(Y, a)
        assert s.resolve(X) == a

    def test_bind_is_functional(self):
        s1 = Substitution()
        s2 = s1.bind(X, a)
        assert X not in s1
        assert s2[X] == a

    def test_self_binding_is_noop(self):
        s = Substitution().bind(X, X)
        assert len(s) == 0

    def test_apply_preserves_negation(self):
        s = Substitution().bind(X, a)
        out = s.apply(Atom("p", (X,), negated=True))
        assert out.negated

    def test_compose_applies_left_then_right(self):
        left = Substitution().bind(X, Y)
        right = Substitution().bind(Y, a)
        composed = left.compose(right)
        assert composed.resolve(X) == a
        assert composed.resolve(Y) == a

    def test_restricted(self):
        s = Substitution().bind(X, a).bind(Y, b)
        r = s.restricted([X])
        assert X in r and Y not in r

    def test_equality_and_hash(self):
        s1 = Substitution().bind(X, a)
        s2 = Substitution({X: a})
        assert s1 == s2
        assert hash(s1) == hash(s2)


class TestRenameApart:
    def test_renames_consistently_within_call(self):
        atoms = [Atom("p", (X, Y)), Atom("q", (X,))]
        renamed, _ = rename_apart(atoms)
        assert renamed[0].args[0] == renamed[1].args[0]
        assert renamed[0].args[0] != X

    def test_distinct_calls_produce_distinct_vars(self):
        first, _ = rename_apart([Atom("p", (X,))])
        second, _ = rename_apart([Atom("p", (X,))])
        assert first[0].args[0] != second[0].args[0]

    def test_constants_untouched(self):
        renamed, _ = rename_apart([Atom("p", (a, X))])
        assert renamed[0].args[0] == a


# -- property-based tests -------------------------------------------------------

var_names = st.sampled_from(["X", "Y", "Z", "W", "U"])
const_values = st.one_of(st.integers(-5, 5), st.sampled_from(["a", "b", "c"]))
terms = st.one_of(var_names.map(Var), const_values.map(Const))
atoms = st.builds(
    Atom,
    pred=st.sampled_from(["p", "q", "r"]),
    args=st.lists(terms, min_size=0, max_size=4).map(tuple),
)


@given(atoms)
def test_apply_empty_substitution_is_identity(atom):
    assert Substitution().apply(atom) == atom


@given(atoms)
def test_ground_atoms_fixed_by_any_binding(atom):
    s = Substitution().bind(Var("X"), Const("a"))
    if atom.is_ground():
        assert s.apply(atom) == atom


@given(atoms)
def test_apply_is_idempotent(atom):
    s = Substitution().bind(Var("X"), Const(1)).bind(Var("Y"), Const(2))
    once = s.apply(atom)
    assert s.apply(once) == once


@given(atoms)
def test_rename_apart_preserves_shape(atom):
    renamed, _ = rename_apart([atom])
    out = renamed[0]
    assert out.pred == atom.pred
    assert out.arity == atom.arity
    for original, new in zip(atom.args, out.args):
        assert isinstance(original, Const) == isinstance(new, Const)
        if isinstance(original, Const):
            assert original == new
