"""Tests for second-order assertions."""

import pytest

from repro.common.errors import KnowledgeBaseError
from repro.logic.soa import (
    FunctionalDependency,
    MutualExclusion,
    RecursiveStructure,
    SOARegistry,
)
from repro.logic.terms import Atom, Const, Var

X, Y = Var("X"), Var("Y")
a, b = Const("a"), Const("b")


class TestMutualExclusion:
    def test_needs_two_alternatives(self):
        with pytest.raises(KnowledgeBaseError):
            MutualExclusion((Atom("p", (X,)),))

    def test_max_true_bounds(self):
        alternatives = (Atom("p", (X,)), Atom("q", (X,)))
        with pytest.raises(KnowledgeBaseError):
            MutualExclusion(alternatives, max_true=2)
        with pytest.raises(KnowledgeBaseError):
            MutualExclusion(alternatives, max_true=0)

    def test_covers_matching_pair(self):
        me = MutualExclusion((Atom("male", (X,)), Atom("female", (X,))))
        assert me.covers([Atom("male", (a,)), Atom("female", (a,))])

    def test_shared_variable_enforced(self):
        me = MutualExclusion((Atom("male", (X,)), Atom("female", (X,))))
        assert not me.covers([Atom("male", (a,)), Atom("female", (b,))])

    def test_same_alternative_not_reused(self):
        me = MutualExclusion((Atom("male", (X,)), Atom("female", (X,))))
        assert not me.covers([Atom("male", (a,)), Atom("male", (a,))])

    def test_order_of_goals_irrelevant(self):
        me = MutualExclusion((Atom("male", (X,)), Atom("female", (X,))))
        assert me.covers([Atom("female", (a,)), Atom("male", (a,))])

    def test_too_many_goals(self):
        me = MutualExclusion((Atom("p", (X,)), Atom("q", (X,))))
        goals = [Atom("p", (a,)), Atom("q", (a,)), Atom("p", (b,))]
        assert not me.covers(goals)

    def test_three_way_exclusion(self):
        me = MutualExclusion(
            (Atom("solid", (X,)), Atom("liquid", (X,)), Atom("gas", (X,)))
        )
        assert me.covers([Atom("solid", (a,)), Atom("gas", (a,))])


class TestFunctionalDependency:
    def test_positions_validated(self):
        with pytest.raises(KnowledgeBaseError):
            FunctionalDependency("p", 2, (0,), (5,))

    def test_overlap_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            FunctionalDependency("p", 2, (0,), (0,))

    def test_key_bound(self):
        fd = FunctionalDependency("employee", 3, (0,), (1, 2))
        assert fd.key_bound(Atom("employee", (a, X, Y)))
        assert not fd.key_bound(Atom("employee", (X, a, b)))

    def test_key_bound_wrong_signature(self):
        fd = FunctionalDependency("employee", 3, (0,), (1, 2))
        assert not fd.key_bound(Atom("employee", (a, X)))
        assert not fd.key_bound(Atom("manager", (a, X, Y)))

    def test_determined_positions(self):
        fd = FunctionalDependency("employee", 3, (0,), (1, 2))
        assert fd.determined_positions(Atom("employee", (a, X, Y))) == (1, 2)
        assert fd.determined_positions(Atom("employee", (X, a, b))) == ()


class TestRecursiveStructure:
    def test_transitive_closure_declared(self):
        rs = RecursiveStructure("ancestor", "parent")
        assert rs.kind == "transitive"

    def test_unsupported_kind_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            RecursiveStructure("foo", "bar", kind="reflexive")

    def test_non_binary_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            RecursiveStructure("foo", "bar", arity=3)


class TestRegistry:
    def test_dispatch_by_type(self):
        registry = SOARegistry()
        registry.add(MutualExclusion((Atom("p", (X,)), Atom("q", (X,)))))
        registry.add(FunctionalDependency("r", 2, (0,), (1,)))
        registry.add(RecursiveStructure("anc", "par"))
        assert len(registry.mutual_exclusions) == 1
        assert len(registry.functional_dependencies) == 1
        assert len(registry.recursive_structures) == 1

    def test_fds_for(self):
        registry = SOARegistry()
        registry.add(FunctionalDependency("r", 2, (0,), (1,)))
        assert registry.fds_for("r", 2)
        assert not registry.fds_for("r", 3)
        assert not registry.fds_for("s", 2)

    def test_recursive_for(self):
        registry = SOARegistry()
        registry.add(RecursiveStructure("anc", "par"))
        assert registry.recursive_for("anc") is not None
        assert registry.recursive_for("par") is None

    def test_exclusive_pair(self):
        registry = SOARegistry()
        registry.add(MutualExclusion((Atom("male", (X,)), Atom("female", (X,)))))
        assert registry.exclusive_pair(Atom("male", (a,)), Atom("female", (a,)))
        assert not registry.exclusive_pair(Atom("male", (a,)), Atom("female", (b,)))

    def test_exclusions_mentioning(self):
        registry = SOARegistry()
        registry.add(MutualExclusion((Atom("male", (X,)), Atom("female", (X,)))))
        assert registry.exclusions_mentioning("male")
        assert not registry.exclusions_mentioning("person")

    def test_unknown_type_rejected(self):
        registry = SOARegistry()
        with pytest.raises(KnowledgeBaseError):
            registry.add("not an SOA")
