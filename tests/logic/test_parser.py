"""Tests for the Datalog/Prolog-style parser."""

import pytest

from repro.common.errors import ParseError
from repro.logic.parser import (
    parse_atom,
    parse_clause,
    parse_literals,
    parse_program,
)
from repro.logic.terms import Atom, Const, Var


class TestTerms:
    def test_lowercase_is_constant(self):
        atom = parse_atom("p(tom)")
        assert atom.args == (Const("tom"),)

    def test_uppercase_is_variable(self):
        atom = parse_atom("p(X)")
        assert atom.args == (Var("X"),)

    def test_underscore_starts_variable(self):
        atom = parse_atom("p(_thing)")
        assert atom.args == (Var("_thing"),)

    def test_integer_constant(self):
        assert parse_atom("p(42)").args == (Const(42),)

    def test_negative_and_float_constants(self):
        atom = parse_atom("p(-3, 2.5)")
        assert atom.args == (Const(-3), Const(2.5))

    def test_quoted_string_constant(self):
        atom = parse_atom("p('Hello World')")
        assert atom.args == (Const("Hello World"),)

    def test_zero_arity_atom(self):
        assert parse_atom("halt") == Atom("halt", ())


class TestClauses:
    def test_fact(self):
        clause = parse_clause("parent(tom, bob).")
        assert clause.is_fact
        assert clause.head == Atom("parent", (Const("tom"), Const("bob")))

    def test_rule(self):
        clause = parse_clause("ancestor(X, Y) :- parent(X, Y).")
        assert not clause.is_fact
        assert clause.head.pred == "ancestor"
        assert [b.pred for b in clause.body] == ["parent"]

    def test_multi_literal_body(self):
        clause = parse_clause("ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).")
        assert len(clause.body) == 2

    def test_negated_literal(self):
        clause = parse_clause("orphan(X) :- person(X), \\+ parent(Y, X).")
        assert clause.body[1].negated
        assert clause.body[1].pred == "parent"

    def test_comparison_literal(self):
        clause = parse_clause("adult(X) :- age(X, A), A >= 18.")
        comparison = clause.body[1]
        assert comparison.pred == ">="
        assert comparison.args == (Var("A"), Const(18))

    def test_all_comparison_operators(self):
        literals = parse_literals("A < B, A > B, A =< B, A >= B, A = B, A \\= B")
        assert [lit.pred for lit in literals] == ["<", ">", "=<", ">=", "=", "\\="]

    def test_neq_alias(self):
        (literal,) = parse_literals("A != B")
        assert literal.pred == "\\="

    def test_clause_roundtrip_str(self):
        text = "ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y)."
        assert str(parse_clause(text)) == text


class TestProgram:
    def test_multiple_clauses(self):
        program = parse_program(
            """
            parent(tom, bob).
            parent(bob, ann).
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
            """
        )
        assert len(program) == 4
        assert sum(clause.is_fact for clause in program) == 2

    def test_comments_ignored(self):
        program = parse_program("% a comment\np(a). % trailing\n")
        assert len(program) == 1

    def test_empty_program(self):
        assert parse_program("") == []


class TestErrors:
    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(a)")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_atom("p(a")

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_program("p(a) & q(b).")

    def test_trailing_input_after_atom(self):
        with pytest.raises(ParseError):
            parse_atom("p(a) q(b)")

    def test_error_reports_position(self):
        try:
            parse_program("p(a) @")
        except ParseError as exc:
            assert exc.position is not None
        else:
            pytest.fail("expected ParseError")

    def test_rule_head_cannot_be_comparison(self):
        with pytest.raises(ParseError):
            parse_clause("X < Y :- p(X, Y).")
