"""Tests for evaluable built-in relations."""

import pytest

from repro.common.errors import EvaluationError
from repro.logic.builtins import BuiltinRegistry
from repro.logic.terms import Atom, Const, Substitution, Var

X, Y = Var("X"), Var("Y")


@pytest.fixture
def registry():
    return BuiltinRegistry()


def solutions(registry, atom, subst=None):
    return list(registry.evaluate(atom, subst or Substitution()))


class TestComparisons:
    def test_less_than_holds(self, registry):
        assert len(solutions(registry, Atom("<", (Const(1), Const(2))))) == 1

    def test_less_than_fails(self, registry):
        assert solutions(registry, Atom("<", (Const(2), Const(1)))) == []

    def test_le_ge(self, registry):
        assert solutions(registry, Atom("=<", (Const(2), Const(2))))
        assert solutions(registry, Atom(">=", (Const(2), Const(2))))

    def test_uses_substitution_bindings(self, registry):
        s = Substitution().bind(X, Const(5))
        assert solutions(registry, Atom(">", (X, Const(3))), s)

    def test_unbound_argument_raises(self, registry):
        with pytest.raises(EvaluationError):
            solutions(registry, Atom("<", (X, Const(1))))

    def test_incomparable_types_raise(self, registry):
        with pytest.raises(EvaluationError):
            solutions(registry, Atom("<", (Const("a"), Const(1))))


class TestEquality:
    def test_equals_binds_left_var(self, registry):
        (result,) = solutions(registry, Atom("=", (X, Const(7))))
        assert result.resolve(X) == Const(7)

    def test_equals_binds_right_var(self, registry):
        (result,) = solutions(registry, Atom("=", (Const(7), X)))
        assert result.resolve(X) == Const(7)

    def test_equals_check_when_ground(self, registry):
        assert solutions(registry, Atom("=", (Const(1), Const(1))))
        assert solutions(registry, Atom("=", (Const(1), Const(2)))) == []

    def test_not_equals(self, registry):
        assert solutions(registry, Atom("\\=", (Const(1), Const(2))))
        assert solutions(registry, Atom("\\=", (Const(1), Const(1)))) == []


class TestArithmetic:
    def test_plus_forward(self, registry):
        (result,) = solutions(registry, Atom("plus", (Const(2), Const(3), X)))
        assert result.resolve(X) == Const(5)

    def test_plus_inverse_first(self, registry):
        (result,) = solutions(registry, Atom("plus", (X, Const(3), Const(5))))
        assert result.resolve(X) == Const(2)

    def test_plus_inverse_second(self, registry):
        (result,) = solutions(registry, Atom("plus", (Const(2), X, Const(5))))
        assert result.resolve(X) == Const(3)

    def test_plus_check_mode(self, registry):
        assert solutions(registry, Atom("plus", (Const(2), Const(3), Const(5))))
        assert solutions(registry, Atom("plus", (Const(2), Const(3), Const(6)))) == []

    def test_plus_two_unbound_raises(self, registry):
        with pytest.raises(EvaluationError):
            solutions(registry, Atom("plus", (X, Y, Const(5))))

    def test_times_inverse_division_by_zero(self, registry):
        with pytest.raises(EvaluationError):
            solutions(registry, Atom("times", (X, Const(0), Const(5))))

    def test_abs(self, registry):
        (result,) = solutions(registry, Atom("abs", (Const(-4), X)))
        assert result.resolve(X) == Const(4)


class TestRegistry:
    def test_is_builtin(self, registry):
        assert registry.is_builtin(Atom("<", (X, Y)))
        assert not registry.is_builtin(Atom("parent", (X, Y)))

    def test_arity_matters(self, registry):
        assert not registry.is_builtin(Atom("<", (X,)))

    def test_unknown_builtin_raises(self, registry):
        with pytest.raises(EvaluationError):
            solutions(registry, Atom("frobnicate", (X,)))

    def test_custom_registration(self, registry):
        def always(atom, subst):
            yield subst

        registry.register("true", 0, always)
        assert solutions(registry, Atom("true", ()))
