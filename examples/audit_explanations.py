#!/usr/bin/env python3
"""An auditing assistant: answers *with justifications*.

The paper attaches rule identifiers to view specifications "for human
consumption ... when the problems of debugging and answer justification
are addressed" (Section 4.2.1).  This example shows that facility — every
answer can be explained as a proof tree of rules (by identifier), database
facts, and built-in checks — plus the CAQL quantifiers (EXISTS / THE /
ALL) evaluated by the CMS.

Run:  python examples/audit_explanations.py
"""

from repro import BraidSystem
from repro.caql import QuantifiedQuery, parse_query
from repro.workloads import suppliers

workload = suppliers(n_suppliers=12, n_parts=15, n_shipments=60, seed=8)
system = BraidSystem.from_workload(workload)
cms = system.bridge

# ---------------------------------------------------------------------------
# 1. An audit question, answered and then justified.
# ---------------------------------------------------------------------------
print("== Which suppliers are preferred sources, and why?")
answers = system.ask_all("preferred_source(S, P)")
print(f"   {len(answers)} preferred (supplier, part) pairs\n")

sample = answers[0]
proof = system.explain("preferred_source(S, P)", sample)
print(f"   Why is ({sample['S']}, {sample['P']}) preferred?")
print("   " + proof.render().replace("\n", "\n   "))
print(f"\n   rules used: {proof.rules_used()}")
print(f"   facts used: {[str(f) for f in proof.facts_used()]}")

# ---------------------------------------------------------------------------
# 2. A failed audit: no proof exists.
# ---------------------------------------------------------------------------
print("\n== Can s0 be justified as preferred for every part it ships?")
unjustified = [
    s for s in system.ask_all("supplies_part(s0, P)")
    if system.explain("preferred_source(s0, P)", {"P": s["P"]}) is None
]
print(f"   {len(unjustified)} of s0's parts have no preferred-source proof")

# ---------------------------------------------------------------------------
# 3. Quantified audit checks (CAQL EXISTS / THE / ALL in the CMS).
# ---------------------------------------------------------------------------
print("\n== Quantified checks")
exists_heavy = QuantifiedQuery(
    "exists", parse_query("q(P) :- part(P, N, Col, W), W > 70")
)
print(f"   EXISTS a part heavier than 70?  {bool(cms.query(exists_heavy).fetch_all())}")

all_bulk_positive = QuantifiedQuery(
    "all",
    parse_query("bulk(S, P) :- shipment(S, P, Q, C), Q >= 500"),
    parse_query("pos(S, P) :- shipment(S, P, Q, C), Q > 0"),
)
holds = bool(cms.query(all_bulk_positive).fetch_all())
print(f"   ALL bulk sources have positive stock?  {holds}")

try:
    the_best = QuantifiedQuery(
        "the", parse_query("q(S) :- supplier(S, N, City, R), R >= 10")
    )
    result = cms.query(the_best).fetch_all()
    print(f"   THE top-rated supplier: {result[0][0]}")
except Exception as exc:  # zero or several: THE refuses to guess
    print(f"   THE top-rated supplier: ambiguous ({type(exc).__name__})")

print("\n== Session cost")
print(system.report())
