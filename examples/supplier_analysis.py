#!/usr/bin/env python3
"""Sourcing analysis over a parts/suppliers database.

Shows the CMS features beyond plain caching:

* **subsumption**: a broad "can source" fetch later answers narrower
  questions (specific suppliers, price limits) locally;
* **second-order CAQL** (AGG/SETOF): aggregation the remote DBMS of the
  era could not do, executed by the CMS;
* **generalization advice**: a view queried repeatedly with different
  constants is fetched once in general form.

Run:  python examples/supplier_analysis.py
"""

from repro import BraidConfig, BraidSystem
from repro.advice import AdviceSet, Cardinality, QueryPattern, Sequence, annotate
from repro.caql import AggregateQuery, parse_query
from repro.workloads import suppliers

workload = suppliers(n_suppliers=20, n_parts=30, n_shipments=150, seed=4)
print(f"Catalog: {workload.description}")

system = BraidSystem.from_workload(workload, BraidConfig(strategy="conjunction"))
cms = system.bridge

# ---------------------------------------------------------------------------
# 1. Broad question first, narrow questions after: subsumption reuse.
# ---------------------------------------------------------------------------
print("\n== Broad fetch, then narrower questions")
sources = system.ask_all("can_source(S, P, C)")
print(f"   can_source(S, P, C): {len(sources)} rows fetched remotely")

before = system.metrics.get("remote.requests")
cheap = system.ask_all("cheap_source(S, P)")
print(f"   cheap_source(S, P) : {len(cheap)} rows — "
      f"{system.metrics.get('remote.requests') - before:.0f} new remote requests "
      f"(subsumption reused the broad fetch)")

# ---------------------------------------------------------------------------
# 2. Aggregation in the CMS (AGG is CAQL, not SQL-of-1990).
# ---------------------------------------------------------------------------
print("\n== AGG: how many parts can each supplier source?")
base = parse_query("pairs(S, P) :- shipment(S, P, Q, C), Q > 0")
counts = AggregateQuery(base, group_by=(0,), aggregations=(("count", 1, "n_parts"),))
result = cms.query(counts).as_relation().sorted_by(["n_parts"], reverse=True)
for supplier, n_parts in result.rows[:5]:
    print(f"   {supplier:<6} sources {n_parts} parts")

# ---------------------------------------------------------------------------
# 3. Generalization: per-supplier lookups with advice (fresh system, so the
#    broad fetch above cannot mask the effect).
# ---------------------------------------------------------------------------
print("\n== Per-supplier lookups with generalization advice (cold cache)")
system = BraidSystem.from_workload(workload, BraidConfig(strategy="conjunction"))
cms = system.bridge
view = annotate(
    parse_query("dsupplies(S, P) :- shipment(S, P, Q, C), Q > 0"), "?^"
)
path = Sequence((QueryPattern("dsupplies", ("S?", "P^")),), lower=0, upper=Cardinality("S"))
cms.begin_session(AdviceSet.from_views([view], path_expression=path))

requests_before = system.metrics.get("remote.requests")
for supplier_id in ("s0", "s1", "s2", "s3", "s4", "s5"):
    query = parse_query(f"dsupplies({supplier_id}, P) :- shipment({supplier_id}, P, Q, C), Q > 0")
    parts = cms.query(query).fetch_all()
    print(f"   {supplier_id}: {len(parts)} parts")
generalizations = system.metrics.get("cache.generalizations")
new_requests = system.metrics.get("remote.requests") - requests_before
print(f"   -> {new_requests:.0f} remote data requests for 6 lookups "
      f"({generalizations:.0f} generalized fetch; the rest answered from cache)")

print("\n== Cost report")
print(system.report())
