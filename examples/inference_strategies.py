#!/usr/bin/env python3
"""The interpreted–compiled (I-C) range, measured.

Section 2 of the paper argues that "it is simply not the case that more
fully compiled systems are always preferable": the best point on the range
depends on whether you need one solution or all of them, and on how
selective the query is.  This example runs the same AI queries under all
three strategies and prints the trade-off.

Run:  python examples/inference_strategies.py
"""

from repro import BraidConfig, BraidSystem
from repro.workloads import genealogy

workload = genealogy(generations=5, branching=3, roots=1, seed=21)
print(f"Workload: {workload.description}\n")

HEADER = f"{'strategy':<14} {'mode':<16} {'CAQL queries':>12} {'remote reqs':>12} {'tuples shipped':>15} {'sim time (s)':>13}"


def run(strategy: str, query: str, all_solutions: bool):
    system = BraidSystem.from_workload(workload, BraidConfig(strategy=strategy))
    if all_solutions:
        system.ask_all(query)
        mode = "all solutions"
    else:
        system.ask_first(query)
        mode = "first solution"
    return (
        strategy,
        mode,
        system.metrics.get("ie.caql_queries"),
        system.metrics.get("remote.requests"),
        system.metrics.get("remote.tuples_shipped"),
        system.clock.now,
    )


def show(query: str, all_solutions: bool, caption: str):
    print(caption)
    print(f"   query: {query}")
    print("   " + HEADER)
    for strategy in ("interpreted", "conjunction", "compiled"):
        row = run(strategy, query, all_solutions)
        print(
            f"   {row[0]:<14} {row[1]:<16} {row[2]:>12.0f} {row[3]:>12.0f} "
            f"{row[4]:>15.0f} {row[5]:>13.4f}"
        )


# parent_of_minor joins parent ⋈ age with a comparison: conjunction
# compilation sends one join per rule where interpreted goes literal by
# literal; compiled ships whole relations once.
show("parent_of_minor(X)", True, "== All solutions wanted (set-at-a-time shines)")
print()
# ancestor is recursive: tuple-at-a-time can stop after the first branch.
show(
    "ancestor(p0, W)",
    False,
    "== Only the first solution wanted (tuple-at-a-time shines)",
)

print(
    """
Reading the table: the compiled strategy does the same work either way
(it always computes every solution), while the interpretive strategies
stop early — the paper's point that no single point on the I-C range
wins everywhere."""
)
