#!/usr/bin/env python3
"""Quickstart: build a BrAID system and ask AI queries.

Demonstrates the core loop of the paper's architecture: an inference
engine solving logic queries against rules, with all database access going
through the Cache Management System to an unmodified remote DBMS — and the
cost accounting that makes the caching benefit visible.

Run:  python examples/quickstart.py
"""

from repro import BraidConfig, BraidSystem, KnowledgeBase
from repro.relational import relation_from_columns

# ---------------------------------------------------------------------------
# 1. The "remote database": two ordinary relational tables.
# ---------------------------------------------------------------------------
TABLES = [
    relation_from_columns(
        "parent",
        par=["tom", "tom", "bob", "bob", "liz", "ann"],
        child=["bob", "liz", "ann", "pat", "sue", "joe"],
    ),
    relation_from_columns(
        "age",
        person=["tom", "bob", "liz", "ann", "pat", "sue", "joe"],
        years=[67, 41, 38, 19, 16, 11, 1],
    ),
]

# ---------------------------------------------------------------------------
# 2. The AI system's knowledge base: rules over those relations.
# ---------------------------------------------------------------------------
kb = KnowledgeBase()
kb.declare_database("parent", 2)
kb.declare_database("age", 2)
kb.add_rules(
    """
    ancestor(X, Y) :- parent(X, Y).
    ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
    minor(X) :- age(X, A), A < 18.
    guardian_of_minor(G, M) :- parent(G, M), minor(M).
    """
)

# ---------------------------------------------------------------------------
# 3. Assemble BrAID: IE + CMS + remote DBMS on a simulated network.
# ---------------------------------------------------------------------------
system = BraidSystem(TABLES, kb, BraidConfig(strategy="conjunction"))

print("== Who are tom's descendants?")
for solution in system.ask("ancestor(tom, W)"):
    print("  ", solution)

print("\n== Which guardians look after minors?")
for solution in system.ask("guardian_of_minor(G, M)"):
    print("  ", solution)

print("\n== Single solution on demand (lazy):")
first = system.ask_first("ancestor(tom, W)")
print("   first descendant found:", first)

# ---------------------------------------------------------------------------
# 4. The caching benefit: ask the same question again.
# ---------------------------------------------------------------------------
before = system.metrics.get("remote.requests")
system.ask_all("ancestor(tom, W)")
after = system.metrics.get("remote.requests")
print(f"\n== Repeat question: {after - before} new remote requests (cache did the rest)")

print("\n== Full cost report")
print(system.report())
