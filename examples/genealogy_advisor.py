#!/usr/bin/env python3
"""A genealogy expert system over a remote family database.

The motivating scenario of 1980s AI/DB integration: an expert system whose
rules (kinship definitions) live in the AI system while the facts (the
family register) live in a conventional DBMS.  This example shows:

* recursive queries (ancestors) answered through the bridge;
* the advice the IE generates — view specifications with binding
  annotations and a path expression — printed for inspection;
* how subsumption lets later kinship questions reuse earlier fetches.

Run:  python examples/genealogy_advisor.py
"""

from repro import BraidConfig, BraidSystem
from repro.workloads import genealogy

workload = genealogy(generations=4, branching=3, roots=2, seed=42)
print(f"Family register: {workload.description}")
print(f"Base tables: {', '.join(t.schema.name for t in workload.tables)}")

system = BraidSystem.from_workload(workload, BraidConfig(strategy="conjunction"))

# ---------------------------------------------------------------------------
# Ask a recursive kinship question.
# ---------------------------------------------------------------------------
print("\n== All descendants of the founder p0")
descendants = system.ask_all("ancestor(p0, W)")
print(f"   {len(descendants)} descendants")

# The advice the IE generated for this AI query:
print("\n== Advice the IE sent the CMS for that query")
print(system.ie.last_advice)

# ---------------------------------------------------------------------------
# Related questions: the cache answers them without new fetches.
# ---------------------------------------------------------------------------
requests_before = system.metrics.get("remote.requests")
print("\n== Follow-up questions (watch the remote request counter)")
for question in ("grandparent(p0, W)", "sibling(p1, S)", "uncle(U, N)"):
    answers = system.ask_all(question)
    total = system.metrics.get("remote.requests")
    print(
        f"   {question:<24} {len(answers):>4} answers   "
        f"remote requests so far: {total:.0f}"
    )
print(
    f"   (baseline fetch for the first question used "
    f"{requests_before:.0f} requests)"
)

# ---------------------------------------------------------------------------
# Compare against loose coupling on the identical question sequence.
# ---------------------------------------------------------------------------
print("\n== Same session against the loose-coupling baseline")
loose = BraidSystem.from_workload(workload, BraidConfig(bridge="loose"))
loose.ask_all("ancestor(p0, W)")
for question in ("grandparent(p0, W)", "sibling(p1, S)", "uncle(U, N)"):
    loose.ask_all(question)

print(f"   BrAID CMS : {system.metrics.get('remote.requests'):>6.0f} remote requests, "
      f"{system.metrics.get('remote.tuples_shipped'):>6.0f} tuples shipped, "
      f"{system.clock.now:.3f}s simulated")
print(f"   loose     : {loose.metrics.get('remote.requests'):>6.0f} remote requests, "
      f"{loose.metrics.get('remote.tuples_shipped'):>6.0f} tuples shipped, "
      f"{loose.clock.now:.3f}s simulated")

print("\n== Cache contents (the cache model relation)")
print(system.bridge.cache_model().pretty(limit=10))
