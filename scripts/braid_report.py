#!/usr/bin/env python3
"""Render a BrAID span trace (JSONL) as a human-readable tree.

The input is what :meth:`repro.obs.Tracer.to_jsonl` exports — one span
per line in opening order, then orphan events — e.g. the
``benchmarks/results/<experiment>.trace.jsonl`` artifacts the experiment
suite writes.  Reading and rendering are stdlib-only, so the script works
on an artifact without the ``repro`` package installed.

Usage::

    python scripts/braid_report.py benchmarks/results/E16.trace.jsonl
    python scripts/braid_report.py --events trace.jsonl   # span events too
    python scripts/braid_report.py --metrics results/E20.telemetry.jsonl
    PYTHONPATH=src python scripts/braid_report.py --demo  # self-contained demo

``--demo`` builds a tiny traced session in process (this *does* import
``repro``) and renders it — a smoke test that the whole pipeline, from
tracer hooks to this renderer, holds together.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict


def load_trace(text: str) -> tuple[list[dict], list[dict]]:
    """Split a JSONL trace into span records and orphan-event records."""
    spans: list[dict] = []
    orphans: list[dict] = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SystemExit(f"line {number}: not valid JSON ({error})")
        if "span" in record:
            spans.append(record)
        elif "event" in record:
            orphans.append(record)
        else:
            raise SystemExit(f"line {number}: neither a span nor an event record")
    return spans, orphans


def _format_attributes(attributes: dict) -> str:
    parts = []
    for key in sorted(attributes):
        value = attributes[key]
        if isinstance(value, list):
            value = ",".join(str(v) for v in value)
        parts.append(f"{key}={value}")
    return " ".join(parts)


def _format_span(span: dict) -> str:
    start = span.get("start", 0.0)
    end = span.get("end")
    duration = f"{end - start:.6f}s" if end is not None else "unfinished"
    attributes = _format_attributes(span.get("attributes", {}))
    suffix = f"  {attributes}" if attributes else ""
    return f"[{start:.6f} +{duration}] {span['name']}{suffix}"


def _format_event(event: dict) -> str:
    attributes = _format_attributes(event.get("attributes", {}))
    suffix = f"  {attributes}" if attributes else ""
    name = event.get("name") or event.get("event")
    return f"* {event['t']:.6f} {name}{suffix}"


def render_tree(
    spans: list[dict], orphans: list[dict], show_events: bool = False
) -> list[str]:
    """The span forest as indented lines (opening order, children nested).

    A span is a root when its parent is null *or* absent from the trace —
    a truncated or filtered trace must still render every span it holds
    rather than silently dropping orphaned subtrees.
    """
    children: dict[object, list[dict]] = defaultdict(list)
    span_ids = {span["span"] for span in spans}
    roots: list[dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent is None or parent not in span_ids:
            roots.append(span)
        else:
            children[parent].append(span)

    lines: list[str] = []

    def emit(span: dict, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{indent}{_format_span(span)}")
        if show_events:
            for event in span.get("events", []):
                lines.append(f"{indent}  {_format_event(event)}")
        for child in children.get(span["span"], []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    if orphans and show_events:
        lines.append("orphan events:")
        for event in orphans:
            lines.append(f"  {_format_event(event)}")
    return lines


def summarize(spans: list[dict], orphans: list[dict]) -> list[str]:
    """Per-span-name counts and total simulated duration, widest first."""
    totals: dict[str, float] = defaultdict(float)
    counts: dict[str, int] = defaultdict(int)
    event_counts: dict[str, int] = defaultdict(int)
    for span in spans:
        counts[span["name"]] += 1
        end = span.get("end")
        if end is not None:
            totals[span["name"]] += end - span.get("start", 0.0)
        for event in span.get("events", []):
            event_counts[event["name"]] += 1
    for event in orphans:
        event_counts[event["event"]] += 1

    lines = ["summary (by span name):"]
    width = max((len(name) for name in counts), default=4)
    for name in sorted(counts, key=lambda n: (-totals[n], n)):
        lines.append(
            f"  {name.ljust(width)}  count={counts[name]:<5d} "
            f"total_sim={totals[name]:.6f}s"
        )
    if event_counts:
        lines.append("events (by name):")
        width = max(len(name) for name in event_counts)
        for name in sorted(event_counts, key=lambda n: (-event_counts[n], n)):
            lines.append(f"  {name.ljust(width)}  count={event_counts[name]}")
    return lines


def report(text: str, show_events: bool = False) -> str:
    """The full rendering of one JSONL trace."""
    spans, orphans = load_trace(text)
    if not spans and not orphans:
        return "(empty trace)"
    finished = [s for s in spans if s.get("end") is not None]
    horizon = max((s["end"] for s in finished), default=0.0)
    lines = [
        f"spans={len(spans)} orphan_events={len(orphans)} "
        f"horizon={horizon:.6f}s (simulated)",
        "",
    ]
    lines.extend(render_tree(spans, orphans, show_events=show_events))
    lines.append("")
    lines.extend(summarize(spans, orphans))
    return "\n".join(lines)


def render_metrics(text: str) -> str:
    """Render a telemetry series (``*.telemetry.jsonl``) as readable text.

    The input is what :meth:`repro.obs.MetricsSampler.to_jsonl` exports —
    a header line followed by one sample record per line.  Parsing is
    stdlib-only, like the trace renderer.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return "(empty telemetry series)"
    try:
        header = json.loads(lines[0])
        samples = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as error:
        raise SystemExit(f"not a telemetry series: {error}")
    if header.get("series") != "telemetry":
        raise SystemExit("not a telemetry series: missing header line")

    out = [
        f"telemetry: interval={header.get('interval')}s "
        f"scope={header.get('scope') or '<root>'} "
        f"version={header.get('version')} samples={len(samples)}"
    ]
    for sample in samples:
        label = f" [{sample['label']}]" if sample.get("label") else ""
        out.append(
            f"\nsample {sample.get('sample')} "
            f"@t={sample.get('t', 0.0):.6f}{label}"
        )
        deltas = sample.get("deltas", {})
        for name in sorted(deltas):
            out.append(f"  +{deltas[name]:<10g} {name}")
        gauges = sample.get("gauges", {})
        for name in sorted(gauges):
            out.append(f"  ={gauges[name]:<10g} {name}")
        scopes = sample.get("scopes", {})
        for scope in sorted(scopes):
            block = scopes[scope]
            parts = [
                f"{name}+{value:g}"
                for name, value in sorted(block.get("deltas", {}).items())
            ]
            parts.extend(
                f"{name}={value:g}"
                for name, value in sorted(block.get("gauges", {}).items())
            )
            if parts:
                out.append(f"  scope {scope}: " + " ".join(parts))
    if samples:
        histograms = samples[-1].get("histograms", {})
        if histograms:
            out.append("\nhistograms (cumulative at last sample):")
            width = max(len(name) for name in histograms)
            for name in sorted(histograms):
                summary = histograms[name]
                out.append(
                    f"  {name.ljust(width)}  count={summary.get('count', 0):<6g}"
                    f" p50={summary.get('p50', 0.0):.6f}"
                    f" p99={summary.get('p99', 0.0):.6f}"
                    f" max={summary.get('max', 0.0):.6f}"
                )
    return "\n".join(out)


def render_lineage(text: str) -> str:
    """Render a cache report (``Cache.report()`` as JSON) as a derivation
    forest: each element under its first live parent, annotated with kind,
    operator, rows, hits, and value inputs.

    Accepts either the report dict itself or any JSON object with a
    ``cache_report`` key (benchmark result files embed it that way).
    Parsing is stdlib-only, like the other renderers.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise SystemExit(f"not a cache report: {error}")
    # Benchmark result files embed the report under "cache_report",
    # possibly inside a "results"/"data" wrapper — unwrap what we find.
    if isinstance(payload, dict):
        for wrapper in ("results", "data"):
            inner = payload.get(wrapper)
            if isinstance(inner, dict) and "cache_report" in inner:
                payload = inner
                break
        if "cache_report" in payload:
            payload = payload["cache_report"]
    if not isinstance(payload, dict) or "elements" not in payload:
        raise SystemExit("not a cache report: no 'elements' key")

    entries = payload["elements"]
    by_id = {entry["element"]: entry for entry in entries}
    children: dict[str, list[str]] = defaultdict(list)
    roots: list[str] = []
    for entry in entries:
        live_parents = [p for p in entry.get("parents", []) if p in by_id]
        if live_parents:
            # Render under the first live parent; extra parents are noted
            # inline so the DAG (not a tree) stays visible.
            children[live_parents[0]].append(entry["element"])
        else:
            roots.append(entry["element"])

    totals = payload.get("totals", {})
    lines = [
        f"cache lineage: elements={totals.get('elements', len(entries))} "
        f"intermediates={totals.get('intermediates', 0)} "
        f"max_depth={totals.get('max_depth', 0)} "
        f"evictions={totals.get('evictions', 0)}"
    ]

    def describe(entry: dict) -> str:
        label = f"{entry['element']} ({entry.get('view', '?')})"
        kind = entry.get("kind", "view")
        if kind == "intermediate":
            label += f" [{entry.get('operator') or 'intermediate'}]"
        label += (
            f" rows={entry.get('rows', 0)} hits={entry.get('hits', 0)}"
            f" derivation={entry.get('derivation_seconds', 0.0):.4f}s"
            f" freq={entry.get('reuse_frequency', 0.0):.2f}"
        )
        extra = [p for p in entry.get("parents", []) if p in by_id][1:]
        if extra:
            label += f" also-from={','.join(extra)}"
        stale = [p for p in entry.get("parents", []) if p not in by_id]
        if stale:
            label += f" evicted-parents={','.join(stale)}"
        return label

    def emit(element_id: str, depth: int) -> None:
        lines.append("  " * depth + "  " + describe(by_id[element_id]))
        for child in children.get(element_id, []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def demo_trace() -> str:
    """Build a small traced session in process; returns its JSONL trace.

    Needs ``repro`` importable (run with ``PYTHONPATH=src``).  Two queries
    — the second a repeat, answered from the cache — so the rendered tree
    shows both a remote fetch and a cache hit.
    """
    from repro.braid import BraidConfig, BraidSystem
    from repro.workloads.genealogy import genealogy

    system = BraidSystem.from_workload(
        genealogy(seed=23), BraidConfig(tracing=True)
    )
    system.ask_all("grandparent(G, p8)")
    system.ask_all("grandparent(G, p8)")
    return system.trace_jsonl()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a BrAID JSONL span trace as a tree."
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="path to a .trace.jsonl file (omit with --demo)",
    )
    parser.add_argument(
        "--events",
        action="store_true",
        help="also print span events (and orphan events)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="build and render an in-process demo trace (imports repro)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="render a telemetry series (*.telemetry.jsonl) instead of a trace",
    )
    parser.add_argument(
        "--lineage",
        metavar="PATH",
        help="render a cache report JSON as a derivation-lineage forest",
    )
    options = parser.parse_args(argv)

    if options.lineage:
        try:
            with open(options.lineage, encoding="utf-8") as handle:
                payload = handle.read()
        except OSError as error:
            print(f"cannot read {options.lineage}: {error}", file=sys.stderr)
            return 2
        print(f"lineage: {options.lineage}")
        try:
            print(render_lineage(payload))
        except BrokenPipeError:
            sys.stderr.close()
        return 0

    if options.metrics:
        try:
            with open(options.metrics, encoding="utf-8") as handle:
                series = handle.read()
        except OSError as error:
            print(f"cannot read {options.metrics}: {error}", file=sys.stderr)
            return 2
        print(f"telemetry: {options.metrics}")
        try:
            print(render_metrics(series))
        except BrokenPipeError:
            sys.stderr.close()
        return 0

    if options.demo:
        text = demo_trace()
        print("demo trace (two grandparent queries; second is a cache hit)")
    elif options.trace:
        try:
            with open(options.trace, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"cannot read {options.trace}: {error}", file=sys.stderr)
            return 2
        print(f"trace: {options.trace}")
    else:
        parser.error("a trace path (or --demo) is required")
        return 2  # unreachable; parser.error exits

    try:
        print(report(text, show_events=options.events))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
