#!/usr/bin/env python3
"""Profile a BrAID span trace: where did each query's simulated time go?

Feeds a ``*.trace.jsonl`` artifact (what :meth:`repro.obs.Tracer.to_jsonl`
exports) through the trace-driven critical-path profiler
(:mod:`repro.obs.profile`), which attributes every span's self-time to a
phase — plan, cache, remote, retry, gather, compute — and reports phase
totals, per-query breakdowns, and the hottest remote views, base tables,
and cache elements.  Phase self-times telescope, so a query's phases sum
exactly to its span duration.

Usage::

    PYTHONPATH=src python scripts/braid_profile.py benchmarks/results/E19.trace.jsonl
    PYTHONPATH=src python scripts/braid_profile.py --json trace.jsonl
    PYTHONPATH=src python scripts/braid_profile.py --top 5 trace.jsonl
    PYTHONPATH=src python scripts/braid_profile.py --demo

``--demo`` builds a tiny traced session in process and profiles it — a
smoke test from tracer hooks through attribution to rendering.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.profile import profile_trace  # noqa: E402


def demo_trace() -> str:
    """A small traced session (one remote miss, one cache hit)."""
    from repro.braid import BraidConfig, BraidSystem
    from repro.workloads.genealogy import genealogy

    system = BraidSystem.from_workload(
        genealogy(seed=23), BraidConfig(tracing=True)
    )
    system.ask_all("grandparent(G, p8)")
    system.ask_all("grandparent(G, p8)")
    return system.trace_jsonl()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Attribute a BrAID trace's simulated time to phases."
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="path to a .trace.jsonl file (omit with --demo)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the profile as canonical JSON instead of text",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many hot views/tables/elements to list (default 10)",
    )
    parser.add_argument(
        "--no-queries",
        action="store_true",
        help="omit the per-query phase breakdowns",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="profile an in-process demo trace",
    )
    options = parser.parse_args(argv)

    if options.demo:
        text = demo_trace()
    elif options.trace:
        try:
            with open(options.trace, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"cannot read {options.trace}: {error}", file=sys.stderr)
            return 2
    else:
        parser.error("a trace path (or --demo) is required")
        return 2  # unreachable; parser.error exits

    try:
        profile = profile_trace(text)
    except ValueError as error:
        print(f"cannot profile {options.trace or '--demo'}: {error}", file=sys.stderr)
        return 2
    try:
        if options.json:
            print(profile.to_json())
        else:
            print(
                profile.render(
                    top=options.top, per_query=not options.no_queries
                )
            )
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
