#!/usr/bin/env python3
"""Drive the repro.qa differential fuzzer from the command line.

Generates N seeded cases, runs each through the full oracle hierarchy
(full CMS / features-off CMS / direct evaluation / the three baselines),
audits invariants after every query, shrinks any failure to a minimal
replayable repro file, and prints a one-line verdict plus fingerprints.

Usage::

    PYTHONPATH=src python scripts/braid_fuzz.py --seed 0 --cases 500
    PYTHONPATH=src python scripts/braid_fuzz.py --profile faulty --cases 200
    PYTHONPATH=src python scripts/braid_fuzz.py --check-determinism --cases 100
    PYTHONPATH=src python scripts/braid_fuzz.py --replay repro-c17.json

Exit status is 0 only when every case is clean (no divergences, no
invariant violations) — and, with ``--check-determinism``, when a second
run of the same corpus produces a byte-identical report fingerprint.
Failing cases are shrunk and written to ``--save-failures DIR`` (default
``.qa-repros``) as ``repro-c<index>.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.qa import (
    FEDERATED_VARIANT,
    CaseConfig,
    CaseGenerator,
    case_failure,
    replay,
    run_corpus,
    shrink,
    variants_for,
    write_repro,
)

PROFILES = {
    "healthy": CaseConfig,
    "faulty": CaseConfig.faulty,
    "federated": CaseConfig.federated,
    "churny": CaseConfig.churny,
    "variants": CaseConfig.variants,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0, help="corpus seed (default 0)")
    parser.add_argument(
        "--cases", type=int, default=500, help="number of cases (default 500)"
    )
    parser.add_argument(
        "--start", type=int, default=0, help="first case index (default 0)"
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="healthy",
        help="case profile: healthy link, PR-1 fault schedules, "
        "multi-backend federation (tables spread over 2-3 backends), "
        "eviction churn (small caches, many queries, intermediates), or "
        "equivalent-query variants (mutated spellings that must hit the "
        "canonical cache tier with identical answers)",
    )
    parser.add_argument(
        "--engine",
        choices=("tuple", "columnar", "both"),
        default="both",
        help="local-engine axis: tuple-at-a-time only, columnar vs full "
        "head-to-head, or both engines beside every baseline (default)",
    )
    parser.add_argument(
        "--check-determinism",
        action="store_true",
        help="run the corpus twice and require identical report fingerprints",
    )
    parser.add_argument(
        "--save-failures",
        default=".qa-repros",
        metavar="DIR",
        help="directory for shrunk repro files (default .qa-repros)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="save failing cases unshrunk (faster triage of large corpora)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="also write the full report as canonical JSON",
    )
    parser.add_argument(
        "--replay",
        metavar="REPRO",
        help="re-run one repro file instead of generating a corpus",
    )
    return parser


def replay_one(path: str) -> int:
    report = replay(path)
    print(f"replay {path}: case fingerprint {report.case_fingerprint[:16]}")
    for divergence in report.divergences:
        print(
            f"  divergence q{divergence.query_index}/{divergence.variant}: "
            f"{divergence.kind} {divergence.detail}"
        )
    for violation in report.violations:
        print(f"  invariant: {violation}")
    if report.failed:
        print("replay: still failing")
        return 1
    print("replay: clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.replay:
        return replay_one(args.replay)

    config = PROFILES[args.profile]()
    variants = variants_for(args.engine)
    if args.profile == "federated":
        # The federation axis: the full CMS again, over the case's tables
        # scattered across 2-3 backends, cross-checked like the rest.
        variants = variants + (FEDERATED_VARIANT,)
    generator = CaseGenerator(args.seed, config)
    started = time.time()
    cases = generator.corpus(args.cases, start=args.start)
    report = run_corpus(cases, seed=args.seed, variants=variants, keep_reports=False)
    elapsed = time.time() - started

    print(
        f"fuzz[{args.profile}/{args.engine}] seed={args.seed} cases={report.cases} "
        f"divergences={report.divergences} violations={report.violations} "
        f"degraded={report.degraded_answers} ({elapsed:.1f}s)"
    )
    print(f"corpus fingerprint: {report.corpus_fingerprint}")
    print(f"report fingerprint: {report.fingerprint()}")

    status = 0
    if args.check_determinism:
        second = run_corpus(
            generator.corpus(args.cases, start=args.start),
            seed=args.seed,
            variants=variants,
            keep_reports=False,
        )
        if second.fingerprint() != report.fingerprint():
            print("DETERMINISM FAILURE: same seed produced a different report")
            status = 1
        else:
            print("determinism: second run byte-identical")

    if report.failed_cases:
        status = 1
        os.makedirs(args.save_failures, exist_ok=True)
        failing = {case.index: case for case in cases}
        is_failing = lambda c: case_failure(c, variants)
        for index in report.failed_cases:
            case = failing[index]
            reason = is_failing(case) or "failed in corpus run"
            if not args.no_shrink:
                result = shrink(case, is_failing)
                case, reason = result.case, result.reason
                print(
                    f"  case {index}: {reason} "
                    f"(shrunk {result.original_queries} -> {result.queries} queries)"
                )
            else:
                print(f"  case {index}: {reason}")
            path = os.path.join(args.save_failures, f"repro-c{index}.json")
            write_repro(path, case, reason)
            print(f"    repro written: {path}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"report written: {args.out}")

    return status


if __name__ == "__main__":
    sys.exit(main())
