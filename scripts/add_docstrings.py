#!/usr/bin/env python3
"""One-shot maintenance script: insert docstrings for public items.

Used during development to keep the every-public-item-documented rule; kept
in the repo because it doubles as the enforcement checker (run with
``--check``).
"""

from __future__ import annotations

import ast
import pathlib
import sys

DOCS = {
    ("braid.py", "BraidSystem.from_workload"): "Build a system from a prepared workload bundle.",
    ("braid.py", "BraidSystem.ask_all"): "All solutions of an AI query, as dicts.",
    ("braid.py", "BraidSystem.ask_first"): "The first solution only (lazy under interpretive strategies).",
    ("workloads/workload.py", "Workload.build_kb"): "A fresh knowledge base with this workload's rules and SOAs.",
    ("workloads/workload.py", "Workload.table"): "The base table named ``name``; raises KeyError when absent.",
    ("workloads/workload.py", "Workload.total_rows"): "Total rows across all base tables.",
    ("ie/engine.py", "Solutions.all"): "Every solution, fully enumerated.",
    ("ie/engine.py", "Solutions.exists"): "True when at least one solution exists (computes at most one).",
    ("ie/engine.py", "InferenceEngine.ask_all"): "All solutions of an AI query, as dicts.",
    ("ie/engine.py", "InferenceEngine.ask_first"): "The first solution, or None.",
    ("ie/strategies.py", "specifier_config_for"): "The SpecifierConfig realizing an interpretive strategy.",
    ("ie/strategies.py", "CompiledStrategy.solve"): "All solutions of the AI query, set-at-a-time.",
    ("ie/view_specifier.py", "SpecifierResult.next_name"): "The next unused view name (d1, d2, ...).",
    ("ie/problem_graph.py", "OrNode.is_leaf"): "True for database/built-in/recursive-ref/unknown nodes.",
    ("baselines/relation_cache.py", "SingleRelationBuffer.used_bytes"): "Estimated bytes held by the buffered relations.",
    ("baselines/relation_cache.py", "SingleRelationBuffer.buffered_relations"): "Names of the currently buffered base relations.",
    ("baselines/base.py", "BaselineInterface.schema_of"): "Remote schema lookup (cached by the RDI).",
    ("baselines/base.py", "BaselineInterface.statistics_of"): "Remote statistics lookup (cached by the RDI).",
    ("baselines/base.py", "BaselineInterface.query"): "Execute a CAQL query; returns a result stream.",
    ("baselines/exact_cache.py", "ExactMatchCache.used_bytes"): "Estimated bytes held by cached results.",
    ("baselines/exact_cache.py", "ExactMatchCache.cached_result_count"): "How many query results are currently cached.",
    ("advice/view_spec.py", "ViewSpecification.name"): "The view's name (its definition's head symbol).",
    ("advice/view_spec.py", "ViewSpecification.arity"): "Number of answer positions.",
    ("advice/view_spec.py", "ViewSpecification.producer_positions"): "Answer positions the CAQL query will produce bindings for.",
    ("advice/language.py", "AdviceSet.from_views"): "Bundle view specifications (checking for duplicates) into advice.",
    ("advice/language.py", "AdviceSet.view"): "The view specification named ``name``, or None.",
    ("advice/language.py", "AdviceSet.is_empty"): "True when the advice carries no information at all.",
    ("advice/path_expression.py", "QueryPattern.consumer_arg_positions"): "Argument positions sketched as bound (trailing ``?``).",
    ("advice/path_expression.py", "Alternation.mutually_exclusive"): "True when the selection term is 1.",
    ("advice/tracker.py", "PathTracker.expects"): "True when ``view`` may be the very next query.",
    ("relational/statistics.py", "AttributeStats.eq_selectivity"): "Estimated fraction of rows matching an equality on this attribute.",
    ("relational/statistics.py", "RelationStatistics.attribute"): "Per-attribute summary (empty defaults when unknown).",
    ("relational/schema.py", "Schema.arity"): "Number of attributes.",
    ("relational/schema.py", "Schema.has"): "True when ``attribute`` is part of this schema.",
    ("relational/index.py", "IndexSet.get"): "The existing index on ``attributes``, or None.",
    ("relational/index.py", "IndexSet.attribute_sets"): "Key attribute tuples of every maintained index.",
    ("relational/expressions.py", "Comparison.negated"): "The logically complementary condition.",
    ("relational/expressions.py", "Comparison.columns"): "The column names this condition references.",
    ("relational/expressions.py", "Comparison.is_col_col"): "True for a condition between two columns.",
    ("relational/relation.py", "Relation.distinct_values"): "The set of distinct values of one attribute.",
    ("relational/relation.py", "Relation.copy"): "An independent copy (mutations do not propagate).",
    ("remote/sqlite_backend.py", "SqliteEngine.create_table"): "(Re)create a base table in sqlite and bulk-load its rows.",
    ("remote/sqlite_backend.py", "SqliteEngine.table_schema"): "The schema a table was loaded with.",
    ("remote/sqlite_backend.py", "SqliteEngine.tables"): "Names of all loaded tables, sorted.",
    ("remote/sqlite_backend.py", "SqliteEngine.execute"): "Execute a DML request via rendered SQL.",
    ("remote/sqlite_backend.py", "SqliteEngine.close"): "Close the sqlite connection.",
    ("remote/sql.py", "SelectQuery.referenced_tables"): "The set of table names in the FROM clause.",
    ("remote/engine.py", "PurePythonEngine.create_table"): "Install (or replace) a base table.",
    ("remote/engine.py", "PurePythonEngine.table"): "The stored extension of ``name``; raises when unknown.",
    ("remote/engine.py", "PurePythonEngine.tables"): "Names of all stored tables, sorted.",
    ("remote/engine.py", "PurePythonEngine.execute"): "Execute a DML request against the stored tables.",
    ("remote/catalog.py", "Catalog.schema"): "The schema of ``table``; raises when unknown.",
    ("remote/catalog.py", "Catalog.statistics"): "The statistics of ``table``; raises when unknown.",
    ("remote/catalog.py", "Catalog.has"): "True when ``table`` is registered.",
    ("remote/catalog.py", "Catalog.tables"): "All registered table names, sorted.",
    ("remote/catalog.py", "Catalog.cardinality"): "Row count of ``table`` per its statistics.",
    ("remote/server.py", "Engine.create_table"): "Install a base table.",
    ("remote/server.py", "Engine.execute"): "Execute one DML request.",
    ("remote/server.py", "RemoteResultStream.exhausted"): "True once every row has been pulled.",
    ("remote/server.py", "RemoteResultStream.total_rows"): "Size of the full result (known server-side).",
    ("remote/server.py", "RemoteDBMS.has_table"): "True when the catalog knows ``table`` (not charged).",
    ("caql/ast.py", "ConjunctiveQuery.body_variables"): "All variables occurring in the body.",
    ("caql/ast.py", "ConjunctiveQuery.answer_variables"): "The answer terms that are variables, in head order.",
    ("caql/ast.py", "ConjunctiveQuery.comparison_literals"): "Body literals that are comparison predicates.",
    ("caql/ast.py", "ConjunctiveQuery.arity"): "Number of answer positions.",
    ("caql/implication.py", "ConditionSet.same_class"): "True when equalities force the two columns equal.",
    ("caql/implication.py", "ConditionSet.pinned_value"): "(True, v) when the column is forced to the single value v.",
    ("caql/implication.py", "ConditionSet.implies_all"): "True when every condition is implied.",
    ("caql/psj.py", "Occurrence.columns"): "The qualified column names of this occurrence, in position order.",
    ("caql/psj.py", "PSJQuery.arity"): "Number of projection entries.",
    ("caql/psj.py", "PSJQuery.occurrence"): "The occurrence tagged ``tag``; raises when absent.",
    ("caql/psj.py", "PSJQuery.predicates"): "Base-relation names, one per occurrence, in order.",
    ("caql/psj.py", "PSJQuery.all_columns"): "Every qualified column of every occurrence.",
    ("caql/psj.py", "PSJQuery.columns_of_var"): "All columns bound to the named variable (first is representative).",
    ("caql/translate.py", "SQLTranslation.rebuild_row"): "One result row reassembled from a shipped row.",
    ("logic/soa.py", "SOARegistry.add"): "Register an assertion, dispatching on its type.",
    ("logic/soa.py", "SOARegistry.fds_for"): "Functional dependencies declared for ``pred/arity``.",
    ("logic/soa.py", "SOARegistry.recursive_for"): "The recursive-structure SOA whose closure is ``pred``, or None.",
    ("logic/soa.py", "SOARegistry.exclusions_mentioning"): "Mutual exclusions with an alternative on ``pred``.",
    ("logic/parser.py", "Token"): "One lexical token: kind, text, and source offset.",
    ("logic/parser.py", "Clause.is_fact"): "True when the clause has no body.",
    ("logic/terms.py", "Atom.arity"): "Number of arguments.",
    ("logic/kb.py", "KnowledgeBase.is_database"): "True when the atom names a remote base relation.",
    ("logic/kb.py", "KnowledgeBase.is_builtin"): "True when an evaluable built-in matches the atom.",
    ("logic/kb.py", "KnowledgeBase.is_user_defined"): "True when rules or local facts define the atom.",
    ("logic/kb.py", "KnowledgeBase.database_signatures"): "All declared database (pred, arity) pairs.",
    ("logic/kb.py", "KnowledgeBase.user_signatures"): "All rule-defined (pred, arity) pairs.",
    ("logic/kb.py", "KnowledgeBase.all_clauses"): "Every clause, grouped by predicate, in insertion order.",
    ("core/rdi.py", "RemoteInterface.schema_of"): "Remote schema, from the local copy after the first round trip.",
    ("core/rdi.py", "RemoteInterface.statistics_of"): "Remote statistics, cached after the first round trip.",
    ("core/rdi.py", "RemoteInterface.has_table"): "True when the remote database has ``table``.",
    ("core/subsumption.py", "SubsumptionMatch.available"): "query column -> element attribute, as a dict.",
    ("core/executor.py", "ResultStream.lazy"): "True when backed by a generator (tuples computed on demand).",
    ("core/executor.py", "ResultStream.schema"): "The result's schema (positional attributes).",
    ("core/executor.py", "ResultStream.as_relation"): "The full result as an extension (drains a generator).",
    ("core/executor.py", "ExecutionMonitor.execute"): "Run a query plan; returns the result relation or generator.",
    ("core/cms.py", "CacheManagementSystem.schema_of"): "Remote schema lookup for the IE (cached).",
    ("core/cms.py", "CacheManagementSystem.statistics_of"): "Remote statistics lookup for the IE (cached).",
    ("core/cms.py", "CacheManagementSystem.cache_statistics"): "Aggregate cache statistics (size, fill, evictions).",
    ("core/plan.py", "CachePart.tags"): "Query occurrence tags this part covers.",
    ("core/plan.py", "QueryPlan.touches_remote"): "True when any part needs the remote DBMS.",
    ("core/plan.py", "QueryPlan.describe"): "A readable multi-line rendering of the plan.",
    ("core/advice_manager.py", "AdviceManager.begin_session"): "Install a session's advice and start path tracking.",
    ("core/advice_manager.py", "AdviceManager.has_advice"): "True when the session carries any advice.",
    ("core/advice_manager.py", "AdviceManager.view"): "The advised view specification named ``name``, or None.",
    ("core/advice_manager.py", "AdviceManager.observe_query"): "Advance the path tracker on one incoming query.",
    ("core/cache.py", "CacheElement.is_generator"): "True when stored in generator (lazy) form.",
    ("core/cache.py", "CacheElement.rows_materialized"): "Rows computed so far (all of them for an extension).",
    ("core/cache.py", "CacheElement.estimated_bytes"): "Size estimate for capacity accounting.",
    ("core/cache.py", "CacheElement.has_index_on"): "True when an index on exactly these attributes exists.",
    ("core/cache.py", "Cache.discard"): "Remove an element and its index entries (no-op if absent).",
    ("core/cache.py", "Cache.touch"): "Record a use: bumps the LRU clock and the use count.",
    ("core/cache.py", "Cache.get"): "The element with this id, or None.",
    ("core/cache.py", "Cache.elements"): "All elements (unordered snapshot).",
    ("core/cache.py", "Cache.used_bytes"): "Summed size estimates of all stored elements.",
    ("core/cache.py", "Cache.clear"): "Drop every element and index entry.",
    ("core/planner.py", "QueryPlanner.plan"): "Produce a plan for one PSJ query (the QPO's three steps).",
}

BASE = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


def find_targets(path: pathlib.Path):
    tree = ast.parse(path.read_text())
    out = {}

    def visit(node, prefix):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                qualname = f"{prefix}{child.name}"
                out[qualname] = child
                if isinstance(child, ast.ClassDef):
                    visit(child, qualname + ".")

    visit(tree, "")
    return out


def main(check_only: bool) -> int:
    missing = []
    for (relative, qualname), doc in sorted(DOCS.items()):
        path = BASE / relative
        targets = find_targets(path)
        node = targets.get(qualname)
        if node is None:
            print(f"!! {relative}::{qualname} not found")
            continue
        if ast.get_docstring(node):
            continue
        missing.append((path, node, doc))
    if check_only:
        for path, node, _doc in missing:
            print(f"missing: {path}::{node.name}")
        return 1 if missing else 0
    # Insert bottom-up per file so line numbers stay valid.
    by_file: dict[pathlib.Path, list] = {}
    for path, node, doc in missing:
        by_file.setdefault(path, []).append((node, doc))
    for path, items in by_file.items():
        lines = path.read_text().splitlines(keepends=True)
        for node, doc in sorted(items, key=lambda pair: -pair[0].body[0].lineno):
            first = node.body[0]
            indent = " " * first.col_offset
            lines.insert(first.lineno - 1, f'{indent}"""{doc}"""\n')
        path.write_text("".join(lines))
        print(f"updated {path} ({len(items)} docstrings)")
    return 0


if __name__ == "__main__":
    sys.exit(main("--check" in sys.argv))
