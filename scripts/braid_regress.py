#!/usr/bin/env python3
"""The benchmark regression gate CLI.

Diffs a fresh ``benchmarks/results/BENCH_summary.json`` against the
committed baseline ``benchmarks/results/BASELINE.json`` using
:mod:`repro.obs.regress`.  Simulated metrics are deterministic, so they
are compared exactly; wall-clock metrics (E18, "wall" columns) are
ignored.  Exit codes: 0 = pass, 1 = regression (or a baseline metric went
missing), 2 = IO/usage error.

Usage::

    PYTHONPATH=src python scripts/braid_regress.py
    PYTHONPATH=src python scripts/braid_regress.py --summary S.json --baseline B.json
    PYTHONPATH=src python scripts/braid_regress.py --json
    PYTHONPATH=src python scripts/braid_regress.py --write-baseline

``--write-baseline`` freezes the current summary into the baseline file
(run the benchmark suite first); commit the result to move the gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.regress import (  # noqa: E402
    compare,
    dump_baseline,
    make_baseline,
)

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_SUMMARY = REPO / "benchmarks" / "results" / "BENCH_summary.json"
DEFAULT_BASELINE = REPO / "benchmarks" / "results" / "BASELINE.json"


def _load(path: pathlib.Path, what: str) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        print(f"cannot read {what} {path}: {error}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as error:
        print(f"{what} {path} is not valid JSON: {error}", file=sys.stderr)
        raise SystemExit(2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff a fresh benchmark summary against the committed baseline."
    )
    parser.add_argument(
        "--summary",
        type=pathlib.Path,
        default=DEFAULT_SUMMARY,
        help=f"fresh BENCH_summary.json (default {DEFAULT_SUMMARY})",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--default-tolerance",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="relative tolerance applied to metrics without an override "
        "(default 0: simulated numbers must match exactly)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the verdict as JSON instead of text",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze the current summary into the baseline file and exit",
    )
    options = parser.parse_args(argv)

    summary = _load(options.summary, "summary")

    if options.write_baseline:
        baseline = make_baseline(
            summary, default_tolerance=options.default_tolerance
        )
        options.baseline.parent.mkdir(parents=True, exist_ok=True)
        options.baseline.write_text(dump_baseline(baseline), encoding="utf-8")
        print(
            f"baseline written: {options.baseline} "
            f"({len(baseline['experiments'])} experiments)"
        )
        return 0

    baseline = _load(options.baseline, "baseline")
    report = compare(
        baseline, summary, default_tolerance=options.default_tolerance
    )
    if options.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
