"""E20 — continuous telemetry, the profiler, SLO windows, and the gate.

PR 8's observability layer extends E16's contract from tracing to the
whole telemetry stack:

* **zero simulated impact** — the :class:`~repro.obs.MetricsSampler` is
  read-only over the metrics ledger and the SLO monitor never advances
  the clock, so a sampled run and an unsampled run of the same seeded
  workload produce identical simulated totals, schedule fingerprints,
  and trace fingerprints;
* **determinism** — two same-seed sampled runs export byte-identical
  telemetry JSONL with matching SHA-256 fingerprints;
* **conservation** — the trace-driven profiler partitions each query's
  simulated time into phases by self-time, so a query's phases sum to
  its span duration exactly, and the profile total matches the
  ``cms.query_sim_seconds`` histogram the executor keeps independently;
* **the regression gate** — the committed baseline
  (``benchmarks/results/BASELINE.json``) must accept the summary it was
  frozen from and reject a perturbed copy.

The workload is the E15/E16 idiom: a seeded multi-session server stream
against the synthetic selection universe.
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.caql.parser import parse_query
from repro.common.metrics import H_QUERY_SIM_SECONDS, SLO_BREACHES
from repro.obs import load_series, profile_trace
from repro.obs.regress import compare
from repro.obs.slo import SLOPolicy
from repro.server import BraidServer, ServerConfig
from repro.workloads.synthetic import selection_universe

from benchmarks.harness import format_table, record, record_trace

TABLES = selection_universe(rows=80, domain=120, seed=11).tables
SESSIONS = ("alice", "bob")
QUERIES_PER_SESSION = 6
TELEMETRY_INTERVAL = 0.05
#: Deliberately unreachable p99 target, to provoke breaches.
TIGHT_SLO = SLOPolicy(p99_seconds=1e-4, window_seconds=100.0, min_samples=2)

BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "results" / "BASELINE.json"
SUMMARY_PATH = pathlib.Path(__file__).resolve().parent / "results" / "BENCH_summary.json"


def queries(tag: str):
    return [
        parse_query(f"{tag}{i}(I, V) :- item(I, cat{i % 3}, V), V >= {10 * i}")
        for i in range(QUERIES_PER_SESSION)
    ]


def run_server(
    telemetry: float | None = None,
    slo: SLOPolicy | None = None,
    tracing: bool = False,
) -> dict:
    server = BraidServer(
        tables=TABLES,
        config=ServerConfig(
            scheduler_seed=3,
            tracing=tracing,
            telemetry_interval=telemetry,
            slo=slo,
        ),
    )
    for name in SESSIONS:
        server.open_session(name)
    for name in SESSIONS:
        for query in queries(f"q_{name}_"):
            server.submit(name, query)
    server.run_until_idle()
    histogram = server.metrics.histograms.get(H_QUERY_SIM_SECONDS)
    return {
        "server": server,
        "simulated_seconds": server.clock.now,
        "snapshot": server.metrics.snapshot(),
        "schedule_fingerprint": server.schedule_fingerprint(),
        "trace_jsonl": server.trace_jsonl(),
        "trace_fingerprint": server.trace_fingerprint(),
        "telemetry_jsonl": server.telemetry_jsonl(),
        "telemetry_fingerprint": server.telemetry_fingerprint(),
        "samples": len(server.telemetry.samples) if server.telemetry else 0,
        "query_seconds_total": (
            sum(histogram.values) if histogram is not None else 0.0
        ),
        "slo_report": server.slo_report(),
    }


@pytest.fixture(scope="module")
def plain():
    return run_server()


@pytest.fixture(scope="module")
def sampled():
    return run_server(telemetry=TELEMETRY_INTERVAL)


@pytest.fixture(scope="module")
def traced_sampled():
    return run_server(telemetry=TELEMETRY_INTERVAL, tracing=True)


@pytest.fixture(scope="module")
def slo_run():
    return run_server(telemetry=TELEMETRY_INTERVAL, slo=TIGHT_SLO, tracing=True)


def test_report(plain, sampled, traced_sampled, slo_run):
    profile = profile_trace(traced_sampled["trace_jsonl"])
    rows = [
        ["plain", 0, plain["simulated_seconds"], 0],
        ["sampled", sampled["samples"], sampled["simulated_seconds"], 0],
        [
            "sampled+slo",
            slo_run["samples"],
            slo_run["simulated_seconds"],
            int(slo_run["snapshot"].get(SLO_BREACHES, 0)),
        ],
    ]
    headers = ["mode", "samples", "sim time (s)", "slo breaches"]
    record(
        "E20",
        f"continuous telemetry, {len(SESSIONS)}x{QUERIES_PER_SESSION}-query "
        "server stream",
        format_table(headers, rows),
        data={
            "headers": headers,
            "rows": rows,
            "phase_totals": {
                phase: round(seconds, 9)
                for phase, seconds in sorted(profile.totals.items())
            },
            "profiled_queries": len(profile.queries),
        },
        notes=(
            "Claim: the sampler reads the ledger on fixed simulated-time "
            "cadence but never advances the clock, so simulated totals, "
            "schedule fingerprints, and trace fingerprints are identical "
            "with telemetry on or off; same-seed telemetry series are "
            "byte-identical; the profiler's per-query phase self-times "
            "sum exactly to each query's span duration."
        ),
        telemetry=sampled["telemetry_jsonl"],
    )
    record_trace("E20", traced_sampled["trace_jsonl"])


# -- zero simulated impact ----------------------------------------------------------
def test_telemetry_off_means_zero_overhead(plain, sampled):
    assert sampled["simulated_seconds"] == plain["simulated_seconds"]
    assert sampled["snapshot"] == plain["snapshot"]
    assert sampled["schedule_fingerprint"] == plain["schedule_fingerprint"]


def test_telemetry_does_not_perturb_the_trace(traced_sampled):
    traced_plain = run_server(tracing=True)
    assert (
        traced_sampled["trace_fingerprint"] == traced_plain["trace_fingerprint"]
    )
    assert traced_sampled["trace_jsonl"] == traced_plain["trace_jsonl"]


# -- determinism --------------------------------------------------------------------
def test_same_seed_telemetry_is_byte_identical(sampled):
    again = run_server(telemetry=TELEMETRY_INTERVAL)
    assert again["telemetry_jsonl"] == sampled["telemetry_jsonl"]
    assert again["telemetry_fingerprint"] == sampled["telemetry_fingerprint"]
    assert sampled["telemetry_jsonl"]  # non-empty: sampling actually ran


def test_telemetry_series_round_trips(sampled):
    header, samples = load_series(sampled["telemetry_jsonl"])
    assert header["interval"] == TELEMETRY_INTERVAL
    assert len(samples) == sampled["samples"] > 0
    # Sample deltas telescope back to the final counters for every
    # counter the series saw (gauges are level-sampled, not deltas).
    totals: dict[str, float] = {}
    for sample in samples:
        for name, delta in sample.deltas.items():
            totals[name] = totals.get(name, 0.0) + delta
    final = sampled["snapshot"]
    for name, total in totals.items():
        assert total <= final[name] + 1e-9


# -- the profiler -------------------------------------------------------------------
def test_profiler_phases_sum_to_query_durations(traced_sampled):
    profile = profile_trace(traced_sampled["trace_jsonl"])
    assert len(profile.queries) == len(SESSIONS) * QUERIES_PER_SESSION
    for query in profile.queries:
        assert sum(query.phases.values()) == pytest.approx(
            query.duration, abs=1e-9
        )


def test_profiler_total_matches_the_ledger(traced_sampled):
    profile = profile_trace(traced_sampled["trace_jsonl"])
    assert profile.total_seconds == pytest.approx(
        traced_sampled["query_seconds_total"], abs=1e-9
    )


# -- SLO windows --------------------------------------------------------------------
def test_tight_slo_breaches_and_traces(slo_run):
    assert slo_run["snapshot"].get(SLO_BREACHES, 0) >= len(SESSIONS)
    assert '"slo.breach"' in slo_run["trace_jsonl"]
    for name in SESSIONS:
        assert slo_run["slo_report"][name]["breach_p99"] is True


def test_slo_only_adds_its_own_counters(plain, slo_run):
    stripped = {
        name: value
        for name, value in slo_run["snapshot"].items()
        if name != SLO_BREACHES
    }
    assert stripped == plain["snapshot"]
    assert slo_run["simulated_seconds"] == plain["simulated_seconds"]


# -- the regression gate ------------------------------------------------------------
def _load(path: pathlib.Path) -> dict:
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.skipif(
    not BASELINE_PATH.exists(), reason="no committed baseline yet"
)
def test_gate_accepts_the_committed_baseline():
    report = compare(_load(BASELINE_PATH), _load(SUMMARY_PATH))
    assert report.ok, report.render()


@pytest.mark.skipif(
    not BASELINE_PATH.exists(), reason="no committed baseline yet"
)
def test_gate_rejects_a_perturbed_summary():
    summary = copy.deepcopy(_load(SUMMARY_PATH))
    perturbed = False
    for name, experiment in sorted(summary["experiments"].items()):
        if name.startswith("E18"):
            continue  # wall-clock experiment: the gate ignores it
        results = experiment.get("results")
        if not isinstance(results, dict):
            continue
        headers = results.get("headers", [])
        rows = results.get("rows")
        if not isinstance(rows, list):
            continue
        for row in rows:
            for index, cell in enumerate(row):
                header = headers[index] if index < len(headers) else ""
                if "wall" in header:
                    continue  # also ignored by the gate
                if isinstance(cell, (int, float)) and not isinstance(cell, bool):
                    row[index] = cell + 1.0
                    perturbed = True
                    break
            if perturbed:
                break
        if perturbed:
            break
    assert perturbed
    report = compare(_load(BASELINE_PATH), summary)
    assert not report.ok
    assert report.regressions
