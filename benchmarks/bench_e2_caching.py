"""E2 — result caching vs loose coupling (Sections 1, 2, 5.3).

Backtracking and recursion make the IE repeat queries; caching eliminates
the repeated remote requests that loose coupling pays for.  Sweep the
repetition rate of a selection-query stream and compare bridges.

Expected shape: at repetition 0 the CMS ties loose coupling (plus nothing);
as repetition grows, CMS/exact-cache requests fall toward the number of
distinct queries while loose coupling stays at stream length.
"""

from __future__ import annotations

import pytest

from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.loose import LooseCoupling
from repro.core.cms import CacheManagementSystem
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy
from repro.workloads.queries import StreamSpec, repeated_selection_stream

from benchmarks.harness import format_table, record, run_queries

RATES = [0.0, 0.3, 0.6, 0.9]
LENGTH = 60


def make_bridge(kind: str):
    server = RemoteDBMS()
    for table in genealogy(seed=23).tables:
        server.load_table(table)
    if kind == "cms":
        return CacheManagementSystem(server)
    if kind == "loose":
        return LooseCoupling(server)
    return ExactMatchCache(server)


def stream(rate: float):
    people = [f"p{i}" for i in range(22)]
    return repeated_selection_stream(
        "q(Y) :- parent($C, Y)", people, StreamSpec(LENGTH, rate, seed=int(rate * 10) + 1)
    )


@pytest.fixture(scope="module")
def results():
    out = {}
    for rate in RATES:
        queries = stream(rate)
        for kind in ("cms", "exact", "loose"):
            out[(kind, rate)] = run_queries(make_bridge(kind), queries)
    return out


def test_report(results):
    rows = []
    for rate in RATES:
        for kind in ("cms", "exact", "loose"):
            r = results[(kind, rate)]
            rows.append(
                [rate, kind, r["remote_requests"], r["tuples_shipped"], r["simulated_seconds"]]
            )
    headers = ["repetition", "bridge", "remote requests", "tuples shipped", "sim time (s)"]
    record(
        "E2",
        f"caching vs loose coupling, {LENGTH}-query selection stream",
        format_table(headers, rows),
        notes="Claim: caching removes repeated remote requests; loose coupling pays full price.",
        data={"headers": headers, "rows": rows},
    )


@pytest.mark.parametrize("rate", RATES[1:])
def test_cms_beats_loose_under_repetition(results, rate):
    assert (
        results[("cms", rate)]["remote_requests"]
        < results[("loose", rate)]["remote_requests"]
    )
    assert (
        results[("cms", rate)]["simulated_seconds"]
        < results[("loose", rate)]["simulated_seconds"]
    )


def test_loose_always_pays_stream_length(results):
    for rate in RATES:
        # one data request per query (plus metadata round trips).
        assert results[("loose", rate)]["misses"] == LENGTH


def test_benefit_grows_with_repetition(results):
    savings = [
        results[("loose", rate)]["remote_requests"]
        - results[("cms", rate)]["remote_requests"]
        for rate in RATES
    ]
    assert savings == sorted(savings)


def test_cms_matches_exact_cache_on_pure_repetition(results):
    # With no overlap beyond exact repeats, subsumption adds nothing: both
    # caching bridges should issue a similar number of data requests.
    cms = results[("cms", 0.9)]["remote_requests"]
    exact = results[("exact", 0.9)]["remote_requests"]
    assert abs(cms - exact) <= 3


def test_benchmark_cms_session(benchmark):
    queries = stream(0.6)

    def run():
        return run_queries(make_bridge("cms"), queries)

    benchmark.pedantic(run, rounds=3, iterations=1)
