"""E22 — canonicalization-first semantic caching on a variation-heavy stream.

The same asks keep coming back in different spellings: conjuncts
shuffled, variables renamed, redundant bounds added, constants respelled
(``300`` vs ``300.0``).  Structural exact-match sees none of them;
subsumption *can* recover each one, but only by re-deriving rows through
the residual machinery.  The canonical tier recognizes the spellings as
the same query up front and serves the cached rows directly.

Workload: 4 base selection/join queries over the retail universe, then
three rounds of seeded equivalent mutations of each
(:func:`repro.qa.generator.mutate_equivalent` — the same mutator the
``variants`` fuzz profile uses).  Two configurations, one stream:

* **canonical** (``CMSFeatures()``): variant spellings land as
  canonical-tier hits (``cache.canonical_hits``).
* **subsumption-only** (``CMSFeatures(canonical=False)``): the planner
  discards canonical-keyed hits for variant spellings, so every variant
  must go through subsumption derivation.

The claims under test: the canonical tier's hit rate is strictly above
the subsumption-only baseline's (which is zero), total reuse coverage
does not shrink, answers are identical across both configurations and
the no-cache oracle, and the canonical run does strictly less local
work (tuples processed, simulated seconds).  Everything is seeded.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from benchmarks.harness import format_table, record

from repro.caql.parser import parse_query
from repro.common.metrics import (
    CACHE_HITS_CANONICAL,
    CACHE_HITS_EXACT,
    CACHE_HITS_SUBSUMED,
    CACHE_MISSES,
    CACHE_TUPLES_PROCESSED,
    REMOTE_REQUESTS,
    REMOTE_TUPLES,
)
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.qa.generator import mutate_equivalent
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import retail_universe

SEED = 22
ROUNDS = 3  # variant respellings of every base query

TABLES = retail_universe(rows=300, orders=600, domain=1000, seed=5).tables

BASES = [
    "q0(X, C, V) :- item(X, C, V), V > 200, V < 700",
    "q1(X, Q) :- item(X, C, V), ord(X, Q), V >= 300, V =< 800, Q > 1",
    "q2(X, V) :- item(X, C, V), C = cat3, V \\= 500",
    "q3(X, Q, V) :- item(X, C, V), ord(X, Q), Q >= 2, V < 600",
]


def variant_stream() -> list[str]:
    """The bases once, then ROUNDS seeded equivalent respellings of each."""
    rng = random.Random(SEED)
    stream = list(BASES)
    for _ in range(ROUNDS):
        for base in BASES:
            stream.append(mutate_equivalent(base, rng))
    return stream


STREAM = variant_stream()


def run_stream(features: CMSFeatures) -> dict:
    server = RemoteDBMS()
    for table in TABLES:
        server.load_table(table)
    cms = CacheManagementSystem(server, features=features)
    before = cms.metrics.snapshot()
    cms.begin_session(None)
    answers = [
        sorted(map(repr, cms.query(parse_query(text)).fetch_all()))
        for text in STREAM
    ]
    delta = cms.metrics.diff(before)
    return {
        "canonical_hits": delta.get(CACHE_HITS_CANONICAL, 0),
        "exact_hits": delta.get(CACHE_HITS_EXACT, 0),
        "subsumed_hits": delta.get(CACHE_HITS_SUBSUMED, 0),
        "misses": delta.get(CACHE_MISSES, 0),
        "tuples_processed": delta.get(CACHE_TUPLES_PROCESSED, 0),
        "remote_requests": delta.get(REMOTE_REQUESTS, 0),
        "tuples_shipped": delta.get(REMOTE_TUPLES, 0),
        "sim_seconds": round(cms.clock.now, 9),
        "answers": answers,
        "fingerprint": hashlib.sha256(
            json.dumps(answers, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest(),
    }


@pytest.fixture(scope="module")
def canonical():
    return run_stream(CMSFeatures())


@pytest.fixture(scope="module")
def subsumption_only():
    return run_stream(CMSFeatures(canonical=False))


@pytest.fixture(scope="module")
def no_cache_oracle():
    return run_stream(CMSFeatures.none())


class TestE22Canonical:
    def test_answers_identical_across_configurations(
        self, canonical, subsumption_only, no_cache_oracle
    ):
        assert canonical["answers"] == no_cache_oracle["answers"]
        assert subsumption_only["answers"] == no_cache_oracle["answers"]

    def test_canonical_tier_hit_rate_strictly_above_baseline(
        self, canonical, subsumption_only
    ):
        """The tentpole claim: the canonical tier fires on variant
        spellings; the subsumption-only baseline never can."""
        variants = len(STREAM) - len(BASES)
        assert subsumption_only["canonical_hits"] == 0
        assert canonical["canonical_hits"] > 0
        assert (
            canonical["canonical_hits"] / variants
            > subsumption_only["canonical_hits"] / variants
        )
        # Most variants land on the canonical tier, not just a few.
        assert canonical["canonical_hits"] >= variants - ROUNDS

    def test_reuse_coverage_does_not_shrink(self, canonical, subsumption_only):
        """Every reuse the baseline finds via subsumption, the canonical
        run finds too (as a cheaper exact/canonical hit)."""
        covered = canonical["exact_hits"] + canonical["subsumed_hits"]
        baseline = subsumption_only["exact_hits"] + subsumption_only["subsumed_hits"]
        assert covered >= baseline
        assert canonical["misses"] <= subsumption_only["misses"]

    def test_canonical_run_does_strictly_less_local_work(
        self, canonical, subsumption_only
    ):
        """Serving cached rows directly beats re-deriving them through
        the subsumption residual machinery."""
        assert canonical["tuples_processed"] < subsumption_only["tuples_processed"]
        assert canonical["sim_seconds"] < subsumption_only["sim_seconds"]

    def test_remote_cost_never_regresses(self, canonical, subsumption_only):
        assert canonical["remote_requests"] <= subsumption_only["remote_requests"]
        assert canonical["tuples_shipped"] <= subsumption_only["tuples_shipped"]

    def test_deterministic_rerun(self, canonical):
        again = run_stream(CMSFeatures())
        assert again["fingerprint"] == canonical["fingerprint"]
        assert again["canonical_hits"] == canonical["canonical_hits"]

    def test_record(self, canonical, subsumption_only, no_cache_oracle):
        labels = [
            ("canonical", canonical),
            ("subsumption-only", subsumption_only),
            ("no-cache", no_cache_oracle),
        ]
        rows = [
            [
                label,
                run["canonical_hits"],
                run["exact_hits"],
                run["subsumed_hits"],
                run["misses"],
                run["tuples_processed"],
                run["remote_requests"],
                f"{run['sim_seconds']:.4f}",
            ]
            for label, run in labels
        ]
        table = format_table(
            ["configuration", "canonical", "exact", "subsumed", "misses",
             "tuples_proc", "remote reqs", "sim_s"],
            rows,
        )
        variants = len(STREAM) - len(BASES)
        record(
            "E22",
            title="Canonicalization-first semantic caching under variant spellings",
            table=table,
            notes=(
                f"{len(BASES)} base queries re-asked as {variants} seeded "
                f"equivalent spellings: the canonical tier serves "
                f"{canonical['canonical_hits']}/{variants} directly "
                f"(baseline rate 0), saving "
                f"{subsumption_only['tuples_processed'] - canonical['tuples_processed']} "
                f"locally processed tuples and "
                f"{subsumption_only['sim_seconds'] - canonical['sim_seconds']:.4f}s "
                f"simulated vs subsumption-only. Answers identical across "
                f"all configurations including the no-cache oracle."
            ),
            data={
                "seed": SEED,
                "rounds": ROUNDS,
                "bases": BASES,
                "stream_length": len(STREAM),
                "configurations": {
                    label: {k: v for k, v in run.items() if k != "answers"}
                    for label, run in labels
                },
            },
        )

    def test_benchmark_canonical_stream(self, benchmark):
        benchmark.pedantic(
            lambda: run_stream(CMSFeatures()), rounds=1, iterations=1
        )
