"""E17 — semijoin-reduced, batched remote fetches (ship bindings, not base relations).

The paper's cost model is dominated by workstation–server communication,
and PR-3's planner had only two remote shapes: ship the whole query, or
pull each uncovered relation unreduced.  This experiment measures the two
new reductions end to end:

* **semijoin** — when a hybrid plan joins a cached part to a remote one,
  ship the cache part's distinct join-column values as an IN-list and
  fetch only the matching remote tuples.  Shipped bindings are charged as
  uplink (``remote.bindings_shipped``), so the reduction is honest: it is
  adopted only where bindings cost less than the transfer they save.
* **batching** — independently-needed remote requests (here:
  path-expression prefetch companions) ride one round trip, paying
  ``remote_latency`` once.

Expected shape, on two workloads (suppliers and bill-of-materials):
identical answers tuple-for-tuple, with the optimized configuration
strictly lower on simulated seconds, remote requests, and tuples shipped
than the PR-3 baseline (``semijoin=False, batching=False``).  A cache
part whose binding set turns out empty proves the join empty locally and
issues **zero** round trips.  Same-seed runs are byte-identical: metrics
snapshots match and trace fingerprints agree.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.obs import Tracer
from repro.remote.server import RemoteDBMS
from repro.workloads.bom import bom
from repro.workloads.suppliers import suppliers

from benchmarks.harness import format_table, record, record_trace

WORKLOADS = ("suppliers", "bom")

COUNTERS = {
    "requests": "remote.requests",
    "shipped": "remote.tuples_shipped",
    "bindings": "remote.bindings_shipped",
    "semijoin_requests": "remote.semijoin_requests",
    "batched_requests": "remote.batched_requests",
}


def features(optimized: bool) -> CMSFeatures:
    """Defaults (semijoin + batching on) vs the PR-3 baseline."""
    return CMSFeatures() if optimized else CMSFeatures(semijoin=False, batching=False)


def _session(server: RemoteDBMS, optimized: bool, advice=None) -> CacheManagementSystem:
    server.tracer = Tracer(server.clock)
    cms = CacheManagementSystem(server, features=features(optimized))
    cms.begin_session(advice)
    return cms


def _measure(cms: CacheManagementSystem, warm: str, query: str, empty: str | None) -> dict:
    """Run warm + join query (+ an empty-binding query), collect the ledger."""
    cms.query(parse_query(warm)).fetch_all()
    answers = cms.query(parse_query(query)).fetch_all()
    out = {"answers": sorted(answers)}
    if empty is not None:
        before = cms.metrics.snapshot()
        out["empty_answers"] = len(cms.query(parse_query(empty)).fetch_all())
        out["empty_requests"] = cms.metrics.diff(before).get("remote.requests", 0)
    for key, counter in COUNTERS.items():
        out[key] = cms.metrics.get(counter)
    out["simulated_seconds"] = cms.clock.now
    out["snapshot"] = cms.metrics.snapshot()
    out["fingerprint"] = cms.tracer.fingerprint()
    out["trace_jsonl"] = cms.tracer.to_jsonl()
    return out


# -- suppliers: selective supplier view bound into a shipment fetch -------------------

SUP_WARM = "decent(S, City) :- supplier(S, N, City, R), R >= 6"
SUP_QUERY = "q(S, P) :- supplier(S, N, City, R), R >= 6, shipment(S, P, Q, C), Q > 0"
#: The City pin keeps no supplier at all: the binding set is empty, the
#: join is provably empty locally, and no round trip should be issued.
SUP_EMPTY = "qe(S, P) :- supplier(S, N, City, R), R >= 6, City = nocity, shipment(S, P, Q, C)"


def suppliers_advice() -> AdviceSet:
    """Three grouped views: querying the first prefetches the other two."""
    decent = annotate(parse_query(SUP_WARM), "^^")
    heavy = annotate(parse_query("dheavy(P) :- part(P, N, Col, W), W > 40"), "^")
    bulk = annotate(parse_query("dbulk(S, P) :- shipment(S, P, Q, C), Q >= 500"), "^^")
    path = Sequence(
        (
            QueryPattern("decent", ("S^", "City^")),
            QueryPattern("dheavy", ("P^",)),
            QueryPattern("dbulk", ("S^", "P^")),
        ),
        lower=1,
        upper=1,
    )
    return AdviceSet.from_views([decent, heavy, bulk], path_expression=path)


def run_suppliers(optimized: bool) -> dict:
    server = RemoteDBMS()
    for table in suppliers(n_suppliers=30, n_parts=40, n_shipments=400, seed=11).tables:
        server.load_table(table)
    cms = _session(server, optimized, suppliers_advice())
    return _measure(cms, SUP_WARM, SUP_QUERY, SUP_EMPTY)


# -- bill of materials: costly parts bound into the assembly fetch --------------------

BOM_WARM = "costly(P) :- basic_part(P, C, W), C > 80"
BOM_QUERY = "qb(A, P) :- assembly(A, P, N), basic_part(P, C, W), C > 80"


def bom_advice() -> AdviceSet:
    costly = annotate(parse_query(BOM_WARM), "^")
    heavy = annotate(parse_query("dheavyp(P) :- basic_part(P, C, W), W > 20"), "^")
    cheap = annotate(parse_query("dcheap(P) :- basic_part(P, C, W), C < 20"), "^")
    path = Sequence(
        (
            QueryPattern("costly", ("P^",)),
            QueryPattern("dheavyp", ("P^",)),
            QueryPattern("dcheap", ("P^",)),
        ),
        lower=1,
        upper=1,
    )
    return AdviceSet.from_views([costly, heavy, cheap], path_expression=path)


def run_bom(optimized: bool) -> dict:
    server = RemoteDBMS()
    for table in bom(depth=4, fanout=4, basic_parts=120, seed=19).tables:
        server.load_table(table)
    cms = _session(server, optimized, bom_advice())
    return _measure(cms, BOM_WARM, BOM_QUERY, None)


RUNNERS = {"suppliers": run_suppliers, "bom": run_bom}


@pytest.fixture(scope="module")
def results():
    return {
        (name, optimized): RUNNERS[name](optimized)
        for name in WORKLOADS
        for optimized in (True, False)
    }


def test_report(results):
    rows = []
    for name in WORKLOADS:
        for optimized in (True, False):
            r = results[(name, optimized)]
            rows.append(
                [
                    name,
                    "semijoin+batch" if optimized else "baseline",
                    r["requests"],
                    r["shipped"],
                    r["bindings"],
                    r["batched_requests"],
                    r["simulated_seconds"],
                ]
            )
    headers = [
        "workload",
        "configuration",
        "remote reqs",
        "tuples shipped",
        "bindings shipped",
        "batched reqs",
        "sim time (s)",
    ]
    record(
        "E17",
        "semijoin-reduced, batched remote fetches vs the unreduced baseline",
        format_table(headers, rows),
        notes=(
            "Claim: shipping the cache part's bindings as an IN-list and "
            "batching prefetch companions strictly cuts simulated time, "
            "round trips, and tuples shipped — with identical answers; an "
            "empty binding set answers the join locally with zero round trips."
        ),
        data={"headers": headers, "rows": rows},
    )
    record_trace("E17", results[("suppliers", True)]["trace_jsonl"])


@pytest.mark.parametrize("name", WORKLOADS)
def test_answers_identical_tuple_for_tuple(results, name):
    assert results[(name, True)]["answers"] == results[(name, False)]["answers"]
    assert len(results[(name, True)]["answers"]) > 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_strictly_fewer_tuples_shipped(results, name):
    assert results[(name, True)]["shipped"] < results[(name, False)]["shipped"]


@pytest.mark.parametrize("name", WORKLOADS)
def test_strictly_fewer_remote_requests(results, name):
    assert results[(name, True)]["requests"] < results[(name, False)]["requests"]


@pytest.mark.parametrize("name", WORKLOADS)
def test_strictly_lower_simulated_time(results, name):
    assert (
        results[(name, True)]["simulated_seconds"]
        < results[(name, False)]["simulated_seconds"]
    )


@pytest.mark.parametrize("name", WORKLOADS)
def test_semijoin_and_batching_fired_only_when_enabled(results, name):
    on, off = results[(name, True)], results[(name, False)]
    assert on["semijoin_requests"] > 0
    assert on["bindings"] > 0  # uplink was charged for the shipped IN-list
    assert on["batched_requests"] > 0
    assert off["semijoin_requests"] == 0
    assert off["bindings"] == 0
    assert off["batched_requests"] == 0


def test_empty_binding_set_issues_zero_round_trips(results):
    optimized = results[("suppliers", True)]
    assert optimized["empty_answers"] == 0
    assert optimized["empty_requests"] == 0
    # The baseline has no binding set to prove the join empty with.
    assert results[("suppliers", False)]["empty_requests"] > 0


@pytest.mark.parametrize("name", WORKLOADS)
def test_same_seed_runs_are_byte_identical(results, name):
    rerun = RUNNERS[name](True)
    first = results[(name, True)]
    assert rerun["snapshot"] == first["snapshot"]
    assert rerun["fingerprint"] == first["fingerprint"]
    assert rerun["trace_jsonl"] == first["trace_jsonl"]


def test_benchmark_semijoin_session(benchmark):
    benchmark.pedantic(run_suppliers, args=(True,), rounds=3, iterations=1)
