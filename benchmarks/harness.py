"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` module reproduces one experiment from DESIGN.md's
per-experiment index.  Experiments report two kinds of numbers:

* **simulated metrics** (remote requests, tuples shipped, simulated
  response time) — the deterministic quantities the paper's cost model is
  about; these are asserted on ("who wins") and written to
  ``benchmarks/results/<experiment>.txt``;
* **wall-clock timings** via pytest-benchmark — the usual
  micro-benchmarking of the implementation itself.
"""

from __future__ import annotations

import json
import pathlib

from repro.caql.ast import CAQLQuery

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
SUMMARY_PATH = RESULTS_DIR / "BENCH_summary.json"

#: ``BENCH_summary.json`` schema: 1 = bare ``{"experiments": ...}``,
#: 2 adds this version field (and E20's telemetry artifacts exist).
SCHEMA_VERSION = 2


def run_queries(bridge, queries: list[CAQLQuery], advice=None) -> dict[str, float]:
    """Run a query session against a bridge; returns the cost summary."""
    clock_before = bridge.clock.now
    metrics_before = bridge.metrics.snapshot()
    bridge.begin_session(advice)
    for query in queries:
        bridge.query(query).fetch_all()
    delta = bridge.metrics.diff(metrics_before)
    return {
        "simulated_seconds": bridge.clock.now - clock_before,
        "remote_requests": delta.get("remote.requests", 0),
        "tuples_shipped": delta.get("remote.tuples_shipped", 0),
        "exact_hits": delta.get("cache.hits.exact", 0),
        "subsumed_hits": delta.get("cache.hits.subsumed", 0),
        "misses": delta.get("cache.misses", 0),
        "prefetches": delta.get("cache.prefetches", 0),
        "generalizations": delta.get("cache.generalizations", 0),
    }


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width table rendering for experiment reports."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def record(
    experiment: str,
    title: str,
    table: str,
    notes: str = "",
    data: dict | None = None,
    telemetry=None,
) -> None:
    """Persist an experiment's table and print it (visible with -s).

    ``data`` is the machine-readable form of the same results: it is
    written canonically (sorted keys, fixed separators — byte-identical
    across same-seed runs) to ``results/<experiment>.json`` and rolled up
    into ``results/BENCH_summary.json`` so CI and scripts can consume
    every experiment without parsing the fixed-width tables.

    ``telemetry`` is an attached :class:`repro.obs.MetricsSampler` (or its
    JSONL text); when given, the series lands canonically at
    ``results/<experiment>.telemetry.jsonl`` — byte-identical across
    same-seed runs, like the trace artifacts.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    body = f"{experiment}: {title}\n\n{table}\n"
    if notes:
        body += f"\n{notes}\n"
    (RESULTS_DIR / f"{experiment}.txt").write_text(body)
    if data is not None:
        document = {"experiment": experiment, "title": title, "results": data}
        (RESULTS_DIR / f"{experiment}.json").write_text(_canonical(document) + "\n")
        _update_summary()
    if telemetry is not None:
        series = telemetry if isinstance(telemetry, str) else telemetry.to_jsonl()
        (RESULTS_DIR / f"{experiment}.telemetry.jsonl").write_text(series)
    print(f"\n{body}")


def _canonical(document) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _update_summary() -> None:
    """Rebuild ``BENCH_summary.json`` from every per-experiment JSON file."""
    experiments = {}
    for path in sorted(RESULTS_DIR.glob("E*.json")):
        try:
            experiments[path.stem] = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue  # a half-written or foreign file must not sink the rollup
    SUMMARY_PATH.write_text(
        _canonical({"experiments": experiments, "schema_version": SCHEMA_VERSION})
        + "\n"
    )


def record_trace(experiment: str, trace_jsonl: str) -> pathlib.Path:
    """Persist an experiment's span trace as ``results/<experiment>.trace.jsonl``.

    The JSONL comes from :meth:`repro.obs.Tracer.to_jsonl` and is canonical
    (sorted keys, fixed separators), so the artifact is byte-identical
    across same-seed runs — diffing two of them is a regression test, and
    ``scripts/braid_report.py`` renders them as a span tree.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.trace.jsonl"
    path.write_text(trace_jsonl)
    return path
