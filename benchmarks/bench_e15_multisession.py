"""E15 — multi-session serving over a shared concurrent cache.

BrAID's cache is an argument about *workload locality*; this experiment
asks whether that locality survives multi-tenancy.  N clients each issue
a seeded query stream where roughly half the requests come from a shared
hot pool (structurally identical across clients) and the rest are
private.  Two deployments of the identical workload:

* **shared** — one :class:`BraidServer`, one cache, N sessions
  cooperatively scheduled; one client's miss becomes every client's hit;
* **isolated** — N single-session servers with private caches (the
  pre-server architecture, replicated): no cross-client reuse possible.

Measured: cache hit rate (exact + subsumed over all lookups), simulated
time, and the weighted-fair scheduler's max/min per-session mean-latency
ratio.  Determinism is asserted: same seed → byte-identical schedule
trace and per-session results.
"""

from __future__ import annotations

import pytest

from repro.common.metrics import (
    CACHE_HITS_EXACT,
    CACHE_HITS_SUBSUMED,
    CACHE_MISSES,
)
from repro.server import BraidServer, ServerConfig
from repro.workloads.multisession import (
    MultiSessionSpec,
    client_streams,
    submit_interleaved,
)
from repro.workloads.synthetic import selection_universe

from benchmarks.harness import format_table, record, record_trace

CLIENT_SWEEP = [1, 2, 4, 8, 16, 32, 64]
REQUESTS_PER_CLIENT = 6
SEED = 17

TABLES = selection_universe(rows=300, domain=1000, seed=5).tables


def spec_for(clients: int) -> MultiSessionSpec:
    return MultiSessionSpec(
        clients=clients,
        requests_per_client=REQUESTS_PER_CLIENT,
        shared_fraction=0.5,
        hot_pool_size=8,
        private_pool_size=12,
        seed=SEED,
    )


def make_server(
    clients: int, policy: str = "round-robin", tracing: bool = False
) -> BraidServer:
    return BraidServer(
        tables=TABLES,
        config=ServerConfig(
            scheduler_policy=policy,
            scheduler_seed=SEED,
            max_queue_depth=clients * REQUESTS_PER_CLIENT + 16,
            tracing=tracing,
        ),
    )


def hit_rate(metrics) -> float:
    hits = metrics.get(CACHE_HITS_EXACT) + metrics.get(CACHE_HITS_SUBSUMED)
    lookups = hits + metrics.get(CACHE_MISSES)
    return hits / lookups if lookups else 0.0


def run_shared(
    clients: int, policy: str = "round-robin", tracing: bool = False
) -> dict:
    """The whole workload through one server with a shared cache."""
    server = make_server(clients, policy=policy, tracing=tracing)
    streams = client_streams(spec_for(clients))
    for name in streams:
        server.open_session(name)
    submitted = submit_interleaved(server, streams)
    steps = server.run_until_idle()
    completed = sum(len(s.completed) for s in server.sessions.sessions())
    errors = sum(
        1
        for s in server.sessions.sessions()
        for request in s.completed
        if request.error is not None
    )
    fairness = server.fairness_report()
    return {
        "hit_rate": hit_rate(server.metrics),
        "submitted": submitted,
        "completed": completed,
        "errors": errors,
        "steps": steps,
        "simulated_seconds": server.clock.now,
        "fairness_ratio": fairness["max_min_latency_ratio"],
        "schedule_lines": server.schedule_lines(),
        "fingerprint": server.schedule_fingerprint(),
        "results": server.session_results_snapshot(),
        "trace_jsonl": server.trace_jsonl(),
        "trace_fingerprint": server.trace_fingerprint(),
    }


def run_isolated(clients: int) -> dict:
    """The identical workload as N single-session servers (no sharing)."""
    streams = client_streams(spec_for(clients))
    hits = misses = 0.0
    simulated = 0.0
    results = {}
    for name, stream in streams.items():
        server = make_server(clients=1)
        session = server.open_session(name)
        for query in stream:
            server.submit(name, query)
        server.run_until_idle()
        hits += server.metrics.get(CACHE_HITS_EXACT)
        hits += server.metrics.get(CACHE_HITS_SUBSUMED)
        misses += server.metrics.get(CACHE_MISSES)
        simulated += server.clock.now
        results[name] = server.session_results_snapshot()[session.name]
    lookups = hits + misses
    return {
        "hit_rate": hits / lookups if lookups else 0.0,
        "simulated_seconds": simulated,
        "results": results,
    }


@pytest.fixture(scope="module")
def sweep():
    return {
        clients: {
            "shared": run_shared(clients),
            "isolated": run_isolated(clients),
        }
        for clients in CLIENT_SWEEP
    }


@pytest.fixture(scope="module")
def weighted():
    return run_shared(8, policy="weighted-fair")


def test_report(sweep, weighted):
    rows = [
        [
            clients,
            r["shared"]["hit_rate"],
            r["isolated"]["hit_rate"],
            r["shared"]["hit_rate"] - r["isolated"]["hit_rate"],
            r["shared"]["fairness_ratio"],
            r["shared"]["simulated_seconds"],
            r["isolated"]["simulated_seconds"],
        ]
        for clients, r in sweep.items()
    ]
    headers = [
        "clients",
        "shared hit rate",
        "isolated hit rate",
        "lift",
        "fairness max/min",
        "shared sim (s)",
        "isolated sim (s)",
    ]
    record(
        "E15",
        f"multi-session serving, {REQUESTS_PER_CLIENT} requests/client, "
        "50% shared hot pool",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: one shared semantic cache turns cross-client repetition "
            "into hits that isolated per-client caches cannot see — the lift "
            "grows with the client count while round-robin keeps per-session "
            f"mean latencies within a small ratio (weighted-fair at 8 clients: "
            f"{weighted['fairness_ratio']:.3f})."
        ),
    )


def test_shared_cache_beats_isolated_caches(sweep):
    for clients, r in sweep.items():
        if clients == 1:
            # One client sees the same cache either way.
            assert r["shared"]["hit_rate"] == pytest.approx(
                r["isolated"]["hit_rate"]
            )
        else:
            assert r["shared"]["hit_rate"] > r["isolated"]["hit_rate"]


def test_all_requests_complete_without_errors(sweep):
    for r in sweep.values():
        shared = r["shared"]
        assert shared["completed"] == shared["submitted"]
        assert shared["errors"] == 0
        # Every request takes exactly one execute and one drain step.
        assert shared["steps"] == 2 * shared["submitted"]


def test_shared_and_isolated_agree_on_answers(sweep):
    # Scheduling and cache sharing must not change any answer: compare
    # (request_id, query, rows) — latencies legitimately differ.
    def strip(rs):
        return [(i, q, rows) for i, q, _, _, _, rows in rs]

    for r in sweep.values():
        shared = r["shared"]["results"]
        isolated = r["isolated"]["results"]
        assert shared.keys() == isolated.keys()
        for name in shared:
            assert sorted(strip(shared[name])) == sorted(strip(isolated[name]))


def test_fairness_ratio_is_bounded(sweep, weighted):
    for r in sweep.values():
        assert r["shared"]["fairness_ratio"] <= 3.0
    assert weighted["fairness_ratio"] <= 3.0


def test_same_seed_is_byte_identical(sweep, weighted):
    again = run_shared(8)
    assert again["schedule_lines"] == sweep[8]["shared"]["schedule_lines"]
    assert again["fingerprint"] == sweep[8]["shared"]["fingerprint"]
    assert again["results"] == sweep[8]["shared"]["results"]
    weighted_again = run_shared(8, policy="weighted-fair")
    assert weighted_again["fingerprint"] == weighted["fingerprint"]
    assert weighted_again["results"] == weighted["results"]


@pytest.fixture(scope="module")
def traced():
    return run_shared(8, tracing=True)


def test_traced_runs_are_byte_identical(traced):
    """Same-seed traced server runs export byte-identical span traces."""
    again = run_shared(8, tracing=True)
    assert again["trace_jsonl"] == traced["trace_jsonl"]
    assert again["trace_fingerprint"] == traced["trace_fingerprint"]
    record_trace("E15", traced["trace_jsonl"])


def test_trace_scopes_spans_per_session(traced):
    jsonl = traced["trace_jsonl"]
    assert '"server.step"' in jsonl
    for name in ("c00", "c07"):
        assert f'"session":"{name}"' in jsonl


def test_tracing_does_not_change_the_schedule(sweep, traced):
    """The span trace observes the run; it must not perturb it."""
    baseline = sweep[8]["shared"]
    assert traced["schedule_lines"] == baseline["schedule_lines"]
    assert traced["fingerprint"] == baseline["fingerprint"]
    assert traced["results"] == baseline["results"]
    assert traced["simulated_seconds"] == baseline["simulated_seconds"]


def test_benchmark_shared_16_clients(benchmark):
    benchmark.pedantic(lambda: run_shared(16), rounds=3, iterations=1)
