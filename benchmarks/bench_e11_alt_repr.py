"""E11 — co-existing alternative representations (Section 5.2).

"The CMS frequently maintains co-existing, alternative representations of
the same relation ... one where it serves as a producer of values in
sequence (and can thus best be represented as a generator) and another
where it needs repeatedly to be searched for particular values (and can
thus best be represented as an appropriately indexed extension). ...  In
many cases, the CMS is able to use a single instance of the relation in
the cache ... to represent more than one of these uses."

Workload: one relation used both ways in a session — streamed as a
producer, then probed by key many times.

Expected shape: one stored cache element serves both uses (no duplicate
storage); the probes hit the index; the stream sees the same data.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import chain

from benchmarks.harness import format_table, record

PROBES = 30
ROWS = 1500


def make_session() -> CacheManagementSystem:
    server = RemoteDBMS()
    for table in chain(length=1, rows_per_relation=ROWS, domain=ROWS // 3, seed=61).tables:
        server.load_table(table)
    cms = CacheManagementSystem(server)
    stream_use = annotate(parse_query("dstream(A, B) :- r0(A, B)"), "^^")
    lookup_use = annotate(parse_query("dlookup(A, B) :- r0(A, B)"), "?^")
    path = Sequence(
        (
            QueryPattern("dstream", ("A^", "B^")),
            Sequence(
                (QueryPattern("dlookup", ("A?", "B^")),),
                lower=0,
                upper=Cardinality("A"),
            ),
        ),
        lower=1,
        upper=1,
    )
    cms.begin_session(AdviceSet.from_views([stream_use, lookup_use], path_expression=path))
    return cms


def run_session() -> dict:
    cms = make_session()
    # Use 1: stream the relation as a producer (lazy consumption).
    stream = cms.query(parse_query("dstream(A, B) :- r0(A, B)"))
    first_rows = [stream.next() for _ in range(5)]
    # Use 2: keyed probes.
    for index in range(PROBES):
        key = index % (ROWS // 3)
        cms.query(parse_query(f"dlookup({key}, B) :- r0({key}, B)")).fetch_all()
    stats = cms.cache_statistics()
    return {
        "first_rows": first_rows,
        "elements_for_r0_scan": len(
            [
                e
                for e in cms.cache.elements()
                if e.definition.predicates() == ["r0"]
                and not e.definition.conditions
            ]
        ),
        "total_elements": stats["elements"],
        "index_builds": cms.metrics.get("cache.index_builds"),
        "requests": cms.metrics.get("remote.requests"),
        "time": cms.clock.now,
        "local_tuples": cms.metrics.get("cache.tuples_processed"),
    }


@pytest.fixture(scope="module")
def results():
    return run_session()


def test_report(results):
    rows = [
        ["full-scan elements stored", results["elements_for_r0_scan"]],
        ["total cache elements", results["total_elements"]],
        ["index builds", results["index_builds"]],
        ["remote requests", results["requests"]],
        ["local tuples touched", results["local_tuples"]],
        ["sim time (s)", results["time"]],
    ]
    headers = ["measure", "value"]
    record(
        "E11",
        f"one relation, two uses (stream + {PROBES} keyed probes)",
        format_table(headers, rows),
        notes="Claim: a single stored instance serves both uses; probes use the index.",
        data={"headers": headers, "rows": rows},
    )


def test_single_shared_instance(results):
    """Both uses are backed by one full-scan element, not two copies."""
    assert results["elements_for_r0_scan"] == 1


def test_stream_produced_rows(results):
    assert all(row is not None for row in results["first_rows"])


def test_probes_did_not_refetch(results):
    # One data fetch for the relation; probes are local.
    assert results["requests"] <= 4


def test_index_supported_probes(results):
    assert results["index_builds"] >= 1
    # Far fewer local tuples than PROBES * ROWS scans would need.
    assert results["local_tuples"] < PROBES * ROWS / 5


def test_benchmark_session(benchmark):
    benchmark.pedantic(run_session, rounds=3, iterations=1)
