"""E4 — lazy vs eager evaluation (Sections 2, 5.1).

"Only those tuples that are required by the AI system will be produced
rather than eagerly computing the entire result relation" — the lazy side
of the single-solution vs all-solutions mismatch.

Workload: a large join view is cached; a pure-producer query over it is
then consumed partially.  Sweep the number of solutions the consumer
actually pulls and compare tuples produced under lazy vs eager plans.

Expected shape: eager always produces the full result; lazy production
scales with consumption and wins increasingly as fewer solutions are used.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import chain

from benchmarks.harness import format_table, record

CONSUMED = [1, 5, 25, 100, None]  # None = drain everything


def make_cms(lazy: bool) -> CacheManagementSystem:
    server = RemoteDBMS()
    for table in chain(length=2, rows_per_relation=300, domain=60, seed=41).tables:
        server.load_table(table)
    return CacheManagementSystem(server, features=CMSFeatures(lazy=lazy))


def run_consumption(lazy: bool, consume: int | None) -> dict:
    cms = make_cms(lazy)
    # Warm the cache with the join, then query it as a pure producer.
    warm = parse_query("warm(X, Y, Z) :- r0(X, Y), r1(Y, Z)")
    cms.query(warm).fetch_all()
    view = annotate(parse_query("dpairs(X, Z) :- r0(X, Y), r1(Y, Z)"), "^^")
    cms.begin_session(AdviceSet.from_views([view]))
    produced_before = cms.metrics.get("lazy.tuples_produced") + cms.metrics.get(
        "eager.tuples_produced"
    )
    stream = cms.query(parse_query("dpairs(X, Z) :- r0(X, Y), r1(Y, Z)"))
    pulled = 0
    while consume is None or pulled < consume:
        if stream.next() is None:
            break
        pulled += 1
    produced = (
        cms.metrics.get("lazy.tuples_produced")
        + cms.metrics.get("eager.tuples_produced")
        - produced_before
    )
    return {"lazy_stream": stream.lazy, "pulled": pulled, "produced": produced}


@pytest.fixture(scope="module")
def results():
    out = {}
    for consume in CONSUMED:
        out[("lazy", consume)] = run_consumption(True, consume)
        out[("eager", consume)] = run_consumption(False, consume)
    return out


def test_report(results):
    rows = []
    for consume in CONSUMED:
        label = "all" if consume is None else consume
        for mode in ("lazy", "eager"):
            r = results[(mode, consume)]
            rows.append([label, mode, r["pulled"], r["produced"]])
    headers = ["solutions wanted", "mode", "pulled", "tuples produced"]
    record(
        "E4",
        "lazy vs eager production of a cached join view",
        format_table(headers, rows),
        notes="Claim: lazy evaluation produces only what the IE consumes.",
        data={"headers": headers, "rows": rows},
    )


def test_lazy_stream_is_lazy(results):
    assert results[("lazy", 1)]["lazy_stream"]
    assert not results[("eager", 1)]["lazy_stream"]


@pytest.mark.parametrize("consume", [c for c in CONSUMED if c is not None])
def test_lazy_production_tracks_consumption(results, consume):
    r = results[("lazy", consume)]
    assert r["produced"] <= r["pulled"] + 1


@pytest.mark.parametrize("consume", [1, 5, 25])
def test_eager_overproduces_for_partial_consumption(results, consume):
    eager = results[("eager", consume)]
    lazy = results[("lazy", consume)]
    assert eager["produced"] > lazy["produced"]


def test_full_drain_costs_match(results):
    lazy = results[("lazy", None)]
    eager = results[("eager", None)]
    assert lazy["pulled"] == eager["pulled"]


def test_benchmark_lazy_first_solution(benchmark):
    def run():
        return run_consumption(True, 1)

    benchmark.pedantic(run, rounds=3, iterations=1)
