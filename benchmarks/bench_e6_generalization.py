"""E6 — query generalization (Sections 4.2, 5.3.1).

"With generalization, the CMS retrieves more data from the DBMS (and
caches it) than is required for a given CAQL query.  The assumption is
that later queries can be solved using the additional data and thus reduce
the number of separate DBMS requests."

Workload: per-constant lookups (one view, many different constants) under
advice predicting the repetition.  Sweep the number of distinct constants
queried and compare generalization on/off.

Expected shape: without generalization every new constant is a remote
request; with it, one generalized fetch serves every later lookup.  The
crossover: for a single lookup, generalization ships more tuples.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy

from benchmarks.harness import format_table, record

LOOKUPS = [1, 3, 6, 12]


def make_cms(generalization: bool) -> CacheManagementSystem:
    server = RemoteDBMS()
    for table in genealogy(generations=4, branching=3, roots=2, seed=37).tables:
        server.load_table(table)
    return CacheManagementSystem(
        server, features=CMSFeatures(generalization=generalization)
    )


def make_advice() -> AdviceSet:
    view = annotate(parse_query("dkids(P, C) :- parent(P, C)"), "?^")
    path = Sequence(
        (QueryPattern("dkids", ("P?", "C^")),), lower=0, upper=Cardinality("P")
    )
    return AdviceSet.from_views([view], path_expression=path)


def run_lookups(generalization: bool, count: int) -> dict:
    cms = make_cms(generalization)
    cms.begin_session(make_advice())
    for index in range(count):
        person = f"p{index}"
        cms.query(
            parse_query(f"dkids({person}, C) :- parent({person}, C)")
        ).fetch_all()
    return {
        "requests": cms.metrics.get("remote.requests"),
        "shipped": cms.metrics.get("remote.tuples_shipped"),
        "generalizations": cms.metrics.get("cache.generalizations"),
        "time": cms.clock.now,
    }


@pytest.fixture(scope="module")
def results():
    out = {}
    for count in LOOKUPS:
        out[(True, count)] = run_lookups(True, count)
        out[(False, count)] = run_lookups(False, count)
    return out


def test_report(results):
    rows = []
    for count in LOOKUPS:
        for generalization in (True, False):
            r = results[(generalization, count)]
            rows.append(
                [
                    count,
                    "generalize" if generalization else "as-asked",
                    r["requests"],
                    r["shipped"],
                    r["time"],
                ]
            )
    headers = ["distinct lookups", "mode", "remote reqs", "tuples shipped", "sim time (s)"]
    record(
        "E6",
        "per-constant lookups under repetition advice",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: one generalized fetch amortizes over repeated lookups; "
            "for a single lookup it over-fetches (the paper's noted trade-off)."
        ),
    )


def test_generalization_fires_once(results):
    for count in LOOKUPS:
        assert results[(True, count)]["generalizations"] == 1


def test_requests_flat_with_generalization(results):
    requests = [results[(True, count)]["requests"] for count in LOOKUPS]
    assert requests[0] == requests[-1]  # independent of lookup count


def test_requests_grow_without_generalization(results):
    requests = [results[(False, count)]["requests"] for count in LOOKUPS]
    assert requests == sorted(requests)
    assert requests[-1] > requests[0]


def test_crossover(results):
    # Single lookup: generalization ships more tuples (over-fetch).
    assert results[(True, 1)]["shipped"] > results[(False, 1)]["shipped"]
    # Many lookups: generalization needs fewer requests and wins on time.
    assert results[(True, 12)]["requests"] < results[(False, 12)]["requests"]
    assert results[(True, 12)]["time"] < results[(False, 12)]["time"]


def test_benchmark_generalized_lookups(benchmark):
    benchmark.pedantic(run_lookups, args=(True, 12), rounds=3, iterations=1)
