"""E18 — columnar batch kernels vs the tuple engine (wall clock).

Unlike E1–E17, whose headline numbers are *simulated* communication
costs, E18 measures the implementation itself: raw tuples/second of the
columnar kernels (compiled predicates, index-gather selection, hash
join) against the tuple-at-a-time operators they replace, on identical
inputs with identical answers.

Workload (fixed seed-free generators — identical relations every run,
so the answers and row counts in ``results/E18.json`` never move; only
the timings do):

* **scan** — a pass-all predicate over 10^5 rows: the per-row
  interpreter dispatch vs one compiled comprehension.
* **filter** — a ~1% selective predicate over the same rows.
* **join** — two-way hash join, 10^5 probe rows x 10^4 build rows
  (foreign-key shape, ~10^5 output rows).
* **scan-1M** — the 10^6-row scan, *report-only*: it tracks how the
  gap scales but is too slow-moving to gate CI on.

The acceptance bar (asserted): columnar >= MIN_SPEEDUP x tuples/sec on
scan and join.  The default bar is 5.0; ``BRAID_E18_MIN_SPEEDUP``
overrides it for noisy shared runners.  Timings are best-of-3
``perf_counter``.  Each engine is timed producing its *native*
representation — the tuple operators build a ``Relation`` (hashed row
set and all, as they always do mid-plan), the kernels build a
``ColumnarBatch`` (distinctness is preserved structurally, the whole
point of the design; the next kernel or the ResultStream consumes the
batch as-is).  Answer equality is asserted tuple-for-tuple *outside*
the timed region.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.caql.eval import result_schema
from repro.relational.columnar import (
    ColumnarBatch,
    hash_join_batch,
    reset_predicate_cache,
    select_batch,
)
from repro.relational.expressions import Col, Comparison, Lit
from repro.relational.operators import join, select
from repro.relational.relation import Relation

from benchmarks.harness import format_table, record

MIN_SPEEDUP = float(os.environ.get("BRAID_E18_MIN_SPEEDUP", "5.0"))
REPS = 3

SCAN_ROWS = 100_000
BUILD_ROWS = 10_000
BIG_SCAN_ROWS = 1_000_000

SCAN_PRED = [Comparison(Col("a0"), ">=", Lit(0))]
FILTER_PRED = [Comparison(Col("a2"), ">", Lit(95.0))]
JOIN_PAIRS = [("a1", "a0")]


def fact_relation(rows: int) -> Relation:
    schema = result_schema("r", 3)
    return Relation(schema, [(i, i % BUILD_ROWS, float(i % 97)) for i in range(rows)])


def dim_relation() -> Relation:
    schema = result_schema("s", 2)
    return Relation(schema, [(k, k * 2) for k in range(BUILD_ROWS)])


def best_of(thunk, reps: int = REPS) -> tuple[float, object]:
    """Smallest wall-clock time over ``reps`` runs, plus the last answer."""
    elapsed = []
    answer = None
    for _ in range(reps):
        start = time.perf_counter()
        answer = thunk()
        elapsed.append(time.perf_counter() - start)
    return min(elapsed), answer


def measure(name: str, rows_in: int, tuple_thunk, columnar_thunk) -> dict:
    """One workload: both engines, identical-answer check, tuples/sec."""
    reset_predicate_cache()
    tuple_seconds, tuple_answer = best_of(tuple_thunk)
    columnar_seconds, columnar_answer = best_of(columnar_thunk)
    assert columnar_answer == tuple_answer, f"{name}: answers diverge"
    return {
        "workload": name,
        "rows_in": rows_in,
        "rows_out": len(tuple_answer),
        "tuple_seconds": round(tuple_seconds, 6),
        "columnar_seconds": round(columnar_seconds, 6),
        "tuple_tps": round(rows_in / tuple_seconds),
        "columnar_tps": round(rows_in / columnar_seconds),
        "speedup": round(tuple_seconds / columnar_seconds, 2),
    }


@pytest.fixture(scope="module")
def results():
    fact = fact_relation(SCAN_ROWS)
    fact_batch = ColumnarBatch.from_relation(fact)
    dim = dim_relation()
    dim_batch = ColumnarBatch.from_relation(dim)
    big = fact_relation(BIG_SCAN_ROWS)
    big_batch = ColumnarBatch.from_relation(big)
    return {
        "scan": measure(
            "scan",
            SCAN_ROWS,
            lambda: select(fact, SCAN_PRED),
            lambda: select_batch(fact_batch, SCAN_PRED),
        ),
        "filter": measure(
            "filter",
            SCAN_ROWS,
            lambda: select(fact, FILTER_PRED),
            lambda: select_batch(fact_batch, FILTER_PRED),
        ),
        "join": measure(
            "join",
            SCAN_ROWS,
            lambda: join(fact, dim, JOIN_PAIRS, name="j"),
            lambda: hash_join_batch(
                fact_batch, dim_batch, JOIN_PAIRS, name="j"
            ),
        ),
        "scan-1M": measure(
            "scan-1M",
            BIG_SCAN_ROWS,
            lambda: select(big, SCAN_PRED),
            lambda: select_batch(big_batch, SCAN_PRED),
        ),
    }


def test_report(results):
    headers = [
        "workload",
        "rows in",
        "rows out",
        "tuple (s)",
        "columnar (s)",
        "tuple tps",
        "columnar tps",
        "speedup",
    ]
    rows = [
        [
            r["workload"],
            r["rows_in"],
            r["rows_out"],
            r["tuple_seconds"],
            r["columnar_seconds"],
            r["tuple_tps"],
            r["columnar_tps"],
            f"{r['speedup']}x",
        ]
        for r in results.values()
    ]
    record(
        "E18",
        "columnar batch kernels vs tuple-at-a-time operators (wall clock)",
        format_table(headers, rows),
        notes=(
            "Claim: compiled predicates and index-gather kernels beat the "
            f"per-row interpreter by >= {MIN_SPEEDUP}x tuples/sec on the "
            "scan and join workloads, with identical answers (asserted "
            "tuple-for-tuple before any timing is reported).  scan-1M is "
            "report-only.  Wall clock, best of "
            f"{REPS}; unlike E1-E17 these are NOT simulated seconds."
        ),
        data={"min_speedup": MIN_SPEEDUP, "workloads": list(results.values())},
    )


@pytest.mark.parametrize("workload", ["scan", "join"])
def test_meets_the_speedup_bar(results, workload):
    r = results[workload]
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"{workload}: columnar only {r['speedup']}x the tuple engine "
        f"(bar: {MIN_SPEEDUP}x; override with BRAID_E18_MIN_SPEEDUP)"
    )


def test_filter_is_not_slower(results):
    # The selective filter moves little data; columnar must still win,
    # just without a gated multiple (the gather is a tiny fraction of it).
    assert results["filter"]["speedup"] > 1.0


def test_big_scan_reported(results):
    assert results["scan-1M"]["rows_out"] == BIG_SCAN_ROWS
