"""E14 — fault tolerance of the workstation–server link.

The paper assumes the remote DBMS is "an independent system component"
reached over a real network; this experiment measures what the bridge does
when that link misbehaves.  Two scenarios:

* **fault-rate sweep** — every remote request fails (transiently) with
  probability p; the resilient RDI retries with backoff, so availability
  should stay at 1.0 for moderate p while simulated time grows with the
  retry work;
* **outage window** — a total outage in the middle of an E2-style session;
  the circuit breaker stops hammering the dead server and the CMS serves
  stale-archive/partial answers tagged *degraded* instead of failing.

Everything is seeded: the same seeds produce byte-identical metrics
snapshots, which is asserted below.
"""

from __future__ import annotations

import pytest

from repro.common.errors import RemoteDBMSError
from repro.core.cms import CacheManagementSystem
from repro.obs import Tracer
from repro.remote.faults import FaultPolicy
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy
from repro.workloads.queries import StreamSpec, repeated_selection_stream

from benchmarks.harness import format_table, record, record_trace

FAULT_RATES = [0.0, 0.1, 0.2, 0.4]
LENGTH = 60
SEED = 11


def make_session(fault_rate: float, capacity_bytes: int = 600, traced: bool = False):
    server = RemoteDBMS(
        faults=FaultPolicy(seed=SEED, transient_rate=fault_rate)
        if fault_rate
        else None
    )
    if traced:
        server.tracer = Tracer(server.clock)
    for table in genealogy(seed=23).tables:
        server.load_table(table)
    cms = CacheManagementSystem(server, capacity_bytes=capacity_bytes)
    cms.begin_session()
    return cms, server


def stream():
    people = [f"p{i}" for i in range(22)]
    return list(
        repeated_selection_stream(
            "q(Y) :- parent($C, Y)", people, StreamSpec(LENGTH, 0.6, seed=7)
        )
    )


def run_session(
    fault_rate: float,
    outage: tuple[int, int] | None = None,
    traced: bool = False,
):
    """One seeded session; returns availability and resilience counters."""
    cms, server = make_session(fault_rate, traced=traced)
    answered = degraded = failed = 0
    for index, query in enumerate(stream()):
        if outage and index == outage[0]:
            server.set_fault_policy(FaultPolicy(seed=SEED + 1, transient_rate=1.0))
        if outage and index == outage[1]:
            server.set_fault_policy(
                FaultPolicy(seed=SEED + 2, transient_rate=fault_rate)
                if fault_rate
                else None
            )
        try:
            result = cms.query(query)
            result.fetch_all()
            answered += 1
            degraded += result.degraded
        except RemoteDBMSError:
            failed += 1
    metrics = server.metrics
    return {
        "availability": answered / (answered + failed),
        "answered": answered,
        "degraded": degraded,
        "failed": failed,
        "retries": metrics.get("remote.retries"),
        "timeouts": metrics.get("remote.timeouts"),
        "faults": metrics.get("remote.faults_injected"),
        "breaker_changes": metrics.get("remote.breaker_state_changes"),
        "simulated_seconds": server.clock.now,
        "snapshot": metrics.snapshot(),
        "trace_jsonl": server.tracer.to_jsonl(),
        "trace_fingerprint": server.tracer.fingerprint(),
    }


@pytest.fixture(scope="module")
def sweep():
    return {rate: run_session(rate) for rate in FAULT_RATES}


@pytest.fixture(scope="module")
def outage():
    return run_session(0.2, outage=(30, 35))


def test_report(sweep, outage):
    rows = [
        [
            rate,
            r["availability"],
            r["degraded"],
            r["retries"],
            r["faults"],
            r["simulated_seconds"],
        ]
        for rate, r in sweep.items()
    ]
    rows.append(
        [
            "0.2+outage",
            outage["availability"],
            outage["degraded"],
            outage["retries"],
            outage["faults"],
            outage["simulated_seconds"],
        ]
    )
    headers = [
        "fault rate",
        "availability",
        "degraded",
        "retries",
        "faults injected",
        "sim time (s)",
    ]
    record(
        "E14",
        f"fault-injected link, {LENGTH}-query selection stream",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: bounded retries absorb transient faults (availability 1.0 "
            "at moderate rates); during a total outage the breaker sheds load "
            "and stale cache answers keep availability above 0.95."
        ),
    )


def test_availability_at_moderate_fault_rates(sweep):
    for rate in FAULT_RATES:
        assert sweep[rate]["availability"] >= 0.95
    # Retries absorbed the faults entirely up to 20%.
    assert sweep[0.2]["availability"] == 1.0


def test_retry_work_grows_with_fault_rate(sweep):
    retries = [sweep[rate]["retries"] for rate in FAULT_RATES]
    assert retries[0] == 0
    assert retries == sorted(retries)
    assert retries[-1] > 0


def test_faults_cost_simulated_time(sweep):
    assert sweep[0.4]["simulated_seconds"] > sweep[0.0]["simulated_seconds"]


def test_outage_degrades_instead_of_failing(outage):
    assert outage["availability"] >= 0.95
    assert outage["degraded"] > 0
    assert outage["retries"] > 0
    assert outage["snapshot"]["remote.degraded_answers"] == outage["degraded"]


def test_same_seed_is_byte_identical(outage):
    again = run_session(0.2, outage=(30, 35))
    assert again["snapshot"] == outage["snapshot"]
    assert again["simulated_seconds"] == outage["simulated_seconds"]


def test_zero_overhead_when_faults_disabled():
    # FaultPolicy.none() and no policy at all must be indistinguishable.
    def run(policy):
        server = RemoteDBMS(faults=policy)
        for table in genealogy(seed=23).tables:
            server.load_table(table)
        cms = CacheManagementSystem(server)
        cms.begin_session()
        for query in stream():
            cms.query(query).fetch_all()
        return server.metrics.snapshot(), server.clock.now

    assert run(FaultPolicy.none()) == run(None)


@pytest.fixture(scope="module")
def traced_faulted():
    return run_session(0.2, traced=True)


def test_traced_faults_are_byte_identical(traced_faulted):
    """Same-seed faulted runs export byte-identical traces."""
    again = run_session(0.2, traced=True)
    assert again["trace_jsonl"] == traced_faulted["trace_jsonl"]
    assert again["trace_fingerprint"] == traced_faulted["trace_fingerprint"]
    record_trace("E14", traced_faulted["trace_jsonl"])


def test_trace_records_fault_events(traced_faulted):
    jsonl = traced_faulted["trace_jsonl"]
    assert '"fault.injected"' in jsonl
    assert '"rdi.retry"' in jsonl


def test_tracing_does_not_change_faulted_outcomes(sweep, traced_faulted):
    """Tracing a faulted session must not perturb the fault schedule."""
    baseline = sweep[0.2]
    assert traced_faulted["snapshot"] == baseline["snapshot"]
    assert traced_faulted["simulated_seconds"] == baseline["simulated_seconds"]
    assert traced_faulted["availability"] == baseline["availability"]


def test_benchmark_faulted_session(benchmark):
    benchmark.pedantic(lambda: run_session(0.2), rounds=3, iterations=1)
