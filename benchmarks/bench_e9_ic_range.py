"""E9 — the interpreted–compiled range (Section 2, [OHAR89b]).

"Despite implicit assumptions and explicit claims to the contrary in the
literature, it is simply not the case that more fully compiled systems are
always preferable."

Run the same AI queries under the three strategies, in two consumption
modes (all solutions vs first solution).

Expected shape: for *all solutions* of a join-heavy query, conjunction
compilation issues far fewer CAQL queries than pure interpretation and the
compiled strategy is competitive; for a *single solution* of a recursive
query, the interpretive strategies win on tuples shipped because they stop
early — the crossover the paper argues for.
"""

from __future__ import annotations

import pytest

from repro.braid import BraidConfig, BraidSystem
from repro.workloads.genealogy import genealogy

from benchmarks.harness import format_table, record

STRATEGIES = ("interpreted", "conjunction", "compiled")


def run(strategy: str, query: str, all_solutions: bool) -> dict:
    system = BraidSystem.from_workload(
        genealogy(generations=5, branching=3, roots=1, seed=53),
        BraidConfig(strategy=strategy),
    )
    if all_solutions:
        system.ask_all(query)
    else:
        system.ask_first(query)
    return {
        "caql": system.metrics.get("ie.caql_queries"),
        "requests": system.metrics.get("remote.requests"),
        "shipped": system.metrics.get("remote.tuples_shipped"),
        "time": system.clock.now,
    }


@pytest.fixture(scope="module")
def results():
    out = {}
    for strategy in STRATEGIES:
        out[(strategy, "all")] = run(strategy, "parent_of_minor(X)", True)
        out[(strategy, "first")] = run(strategy, "ancestor(p0, W)", False)
    return out


def test_report(results):
    rows = []
    for mode, query in (("all", "parent_of_minor(X)"), ("first", "ancestor(p0, W)")):
        for strategy in STRATEGIES:
            r = results[(strategy, mode)]
            rows.append(
                [mode, strategy, r["caql"], r["requests"], r["shipped"], r["time"]]
            )
    headers = ["mode", "strategy", "CAQL queries", "remote reqs", "tuples shipped", "sim time (s)"]
    record(
        "E9",
        "three strategies along the I-C range, two consumption modes",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: no point on the range always wins — compiled/conjunction win "
            "all-solutions joins; interpretive wins first-solution recursion."
        ),
    )


def test_interpreted_floods_caql_queries(results):
    assert results[("interpreted", "all")]["caql"] > 3 * results[("conjunction", "all")]["caql"]


def test_conjunction_compiles_joins(results):
    assert results[("conjunction", "all")]["caql"] <= 2


def test_compiled_wins_nothing_for_first_solution(results):
    # Compiled computes everything regardless; interpretive stops early.
    assert (
        results[("interpreted", "first")]["shipped"]
        < results[("compiled", "first")]["shipped"]
    )


def test_interpretive_first_solution_is_fast(results):
    assert (
        results[("conjunction", "first")]["time"]
        <= results[("compiled", "first")]["time"]
    )


def test_no_strategy_dominates_everywhere(results):
    """The paper's core claim: compare each pair across both modes."""
    def wins(a, b, mode, measure):
        return results[(a, mode)][measure] < results[(b, mode)][measure]

    # Conjunction beats interpreted on all-solutions time...
    assert wins("conjunction", "interpreted", "all", "time")
    # ...but compiled loses to an interpretive strategy somewhere:
    assert wins("conjunction", "compiled", "first", "shipped") or wins(
        "interpreted", "compiled", "first", "shipped"
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_benchmark_strategy(benchmark, strategy):
    benchmark.pedantic(
        run, args=(strategy, "parent_of_minor(X)", True), rounds=3, iterations=1
    )
