"""E5 — path-expression-driven prefetching (Sections 4.2.2, 5.3.1).

"The sequence grouping in a path expression indicates that all items in
that group are likely to be evaluated when the first item is evaluated" —
so when the session's first view is queried, its sequence companions are
fetched ahead (in general form), turning later queries into cache hits.

Expected shape: with prefetching, later queries in the predicted sequence
need no new remote data requests; prefetching costs the same number of
fetches up front, so total requests do not increase.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy

from benchmarks.harness import format_table, record


def make_cms(prefetch: bool) -> CacheManagementSystem:
    server = RemoteDBMS()
    for table in genealogy(generations=4, branching=3, roots=2, seed=29).tables:
        server.load_table(table)
    return CacheManagementSystem(server, features=CMSFeatures(prefetch=prefetch))


def make_advice() -> AdviceSet:
    """A session that walks parents, then sexes, then ages — a sequence."""
    dparents = annotate(parse_query("dparents(P, C) :- parent(P, C)"), "^^")
    dmale = annotate(parse_query("dmale(P) :- male(P)"), "^")
    dages = annotate(parse_query("dages(P, A) :- age(P, A)"), "^^")
    path = Sequence(
        (
            QueryPattern("dparents", ("P^", "C^")),
            QueryPattern("dmale", ("P^",)),
            QueryPattern("dages", ("P^", "A^")),
        ),
        lower=1,
        upper=1,
    )
    return AdviceSet.from_views([dparents, dmale, dages], path_expression=path)


SESSION = [
    "dparents(P, C) :- parent(P, C)",
    "dmale(P) :- male(P)",
    "dages(P, A) :- age(P, A)",
]


def run_session(prefetch: bool) -> dict:
    cms = make_cms(prefetch)
    cms.begin_session(make_advice())
    first_query_requests = None
    for index, text in enumerate(SESSION):
        cms.query(parse_query(text)).fetch_all()
        if index == 0:
            first_query_requests = cms.metrics.get("remote.requests")
    return {
        "total_requests": cms.metrics.get("remote.requests"),
        "after_first": first_query_requests,
        "late_requests": cms.metrics.get("remote.requests") - first_query_requests,
        "prefetches": cms.metrics.get("cache.prefetches"),
        "time": cms.clock.now,
    }


@pytest.fixture(scope="module")
def results():
    return {"prefetch": run_session(True), "no-prefetch": run_session(False)}


def test_report(results):
    rows = [
        [name, r["total_requests"], r["late_requests"], r["prefetches"], r["time"]]
        for name, r in results.items()
    ]
    headers = ["configuration", "total remote reqs", "reqs after 1st query", "prefetches", "sim time (s)"]
    record(
        "E5",
        "prefetching sequence companions predicted by the path expression",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: with prefetching, queries after the first need no new remote "
            "data; total requests do not grow."
        ),
    )


def test_prefetch_happens(results):
    assert results["prefetch"]["prefetches"] == 2
    assert results["no-prefetch"]["prefetches"] == 0


def test_later_queries_are_free_with_prefetch(results):
    assert results["prefetch"]["late_requests"] == 0
    assert results["no-prefetch"]["late_requests"] > 0


def test_total_requests_not_increased(results):
    assert results["prefetch"]["total_requests"] <= results["no-prefetch"]["total_requests"]


def test_benchmark_prefetch_session(benchmark):
    benchmark.pedantic(run_session, args=(True,), rounds=3, iterations=1)
