"""E19 — federated cross-backend joins vs naive loose coupling vs one server.

The federation spreads the suppliers workload over three autonomous
backends with distinct cost profiles:

* ``alpha`` (sqlite engine) owns ``supplier``,
* ``beta``  (pure-Python, 1.4x cost profile) owns ``part``,
* ``gamma`` (pure-Python, 0.7x cost profile) owns ``shipment``.

Three configurations run the same query session:

* **federated** — the full CMS behind the scatter-gather
  :class:`~repro.federation.interface.FederatedInterface`: per-backend
  routing, cross-backend semijoin ship-bindings, caching, batching;
* **naive** — per-backend loose coupling: every query scatters to its
  home backends unreduced, every time (no cache, no semijoin);
* **oracle** — the same CMS against a *single* server holding every
  table: the answer authority the federated answers must match.

Expected shape: federated answers identical to the single-backend oracle,
with strictly fewer tuples shipped and strictly lower simulated time than
naive.  Turning one backend dark mid-session keeps availability >= 95%
(the survivors answer), every diverging answer is tagged ``degraded``,
and same-seed reruns are byte-identical (metrics snapshots and trace
fingerprints agree).
"""

from __future__ import annotations

import pytest

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import BraidError
from repro.obs import Tracer
from repro.remote.faults import FaultPolicy
from repro.remote.server import RemoteDBMS
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem
from repro.federation import BackendSpec, build_federation
from repro.workloads.suppliers import suppliers

from benchmarks.harness import format_table, record, record_trace

CONFIGURATIONS = ("federated", "naive", "oracle")

#: The healthy session: single-backend, two-backend, and three-backend
#: spans, with repeats so caching (federated/oracle only) can pay off.
HEALTHY = (
    "sup(S, C) :- supplier(S, N, C, R), R >= 8",
    "goods(S, P, Q) :- supplier(S, N, C, R), R >= 5, shipment(S, P, Q, Co)",
    "heavy(S, P) :- shipment(S, P, Q, C), part(P, PN, Col, W), W > 30",
    "triple(S, P) :- supplier(S, N, C, R), R >= 6, shipment(S, P, Q, Co), "
    "part(P, PN, Col, W), W > 20",
    "goods(S, P, Q) :- supplier(S, N, C, R), R >= 5, shipment(S, P, Q, Co)",
    "triple(S, P) :- supplier(S, N, C, R), R >= 6, shipment(S, P, Q, Co), "
    "part(P, PN, Col, W), W > 20",
)

#: Queries issued after ``gamma`` (shipments) goes dark.
DARK = (
    "sup2(S, C) :- supplier(S, N, C, R), R >= 3",
    "parts(P, W) :- part(P, PN, Col, W), W > 50",
    "goods2(C) :- supplier(S, N, C, R), R >= 5, shipment(S, P, Q, Co)",
    "heavy2(P) :- shipment(S, P, Q, C), part(P, PN, Col, W), W > 60",
)


def _specs() -> list[BackendSpec]:
    workload = suppliers(n_suppliers=30, n_parts=40, n_shipments=300, seed=11)
    tables = {t.schema.name: t for t in workload.tables}
    return [
        BackendSpec("alpha", tables=(tables["supplier"],), engine="sqlite"),
        BackendSpec(
            "beta", tables=(tables["part"],), profile=CostProfile().scaled(1.4)
        ),
        BackendSpec(
            "gamma", tables=(tables["shipment"],), profile=CostProfile().scaled(0.7)
        ),
    ]


def _build(configuration: str):
    """A fresh (system, federation-or-None) pair with its own clock."""
    if configuration == "oracle":
        server = RemoteDBMS()
        server.tracer = Tracer(server.clock)
        for table in suppliers(
            n_suppliers=30, n_parts=40, n_shipments=300, seed=11
        ).tables:
            server.load_table(table)
        cms = CacheManagementSystem(server)
        cms.begin_session()
        return cms, None
    clock = SimClock()
    federation = build_federation(_specs(), clock=clock, tracer=Tracer(clock))
    if configuration == "naive":
        system = federation.naive()
    else:
        system = federation.cms()
    system.begin_session()
    return system, federation


def run(configuration: str, dark_phase: bool = True) -> dict:
    system, federation = _build(configuration)
    answers = {}
    for text in HEALTHY:
        answers[text] = sorted(system.query(parse_query(text)).fetch_all())

    out = {
        "answers": answers,
        "healthy_shipped": system.metrics.get("remote.tuples_shipped"),
        "healthy_requests": system.metrics.get("remote.requests"),
        "healthy_seconds": system.clock.now,
    }
    if federation is not None:
        out["by_backend"] = {
            name: {
                "requests": scope.get("remote.requests"),
                "shipped": scope.get("remote.tuples_shipped"),
            }
            for name, scope in system.metrics.scopes().items()
        }

    if dark_phase and federation is not None:
        federation.set_backend_faults(
            "gamma", FaultPolicy(seed=23, permanent_rate=1.0)
        )
        answered = degraded = 0
        dark_answers = {}
        for text in DARK:
            try:
                stream = system.query(parse_query(text))
                rows = sorted(stream.fetch_all())
            except BraidError as error:
                dark_answers[text] = type(error).__name__
                continue
            answered += 1
            degraded += bool(getattr(stream, "degraded", False))
            dark_answers[text] = {
                "rows": rows,
                "degraded": bool(getattr(stream, "degraded", False)),
            }
        out["availability"] = answered / len(DARK)
        out["degraded_answers"] = degraded
        out["dark_answers"] = dark_answers

    out["snapshot"] = system.metrics.snapshot()
    tracer = federation.tracer if federation is not None else system.remote.tracer
    out["fingerprint"] = tracer.fingerprint()
    out["trace_jsonl"] = tracer.to_jsonl()
    return out


@pytest.fixture(scope="module")
def results():
    return {name: run(name) for name in CONFIGURATIONS}


def test_report(results):
    rows = []
    for name in CONFIGURATIONS:
        r = results[name]
        rows.append(
            [
                name,
                r["healthy_requests"],
                r["healthy_shipped"],
                round(r["healthy_seconds"], 4),
                r.get("availability", "-"),
            ]
        )
    headers = [
        "configuration",
        "remote reqs",
        "tuples shipped",
        "sim time (s)",
        "availability (gamma dark)",
    ]
    per_backend = results["federated"]["by_backend"]
    record(
        "E19",
        "federated cross-backend joins vs naive loose coupling vs one server",
        format_table(headers, rows),
        notes=(
            "Claim: scatter-gather with cross-backend semijoin ship-bindings "
            "answers identically to a single-server oracle while strictly "
            "beating naive per-backend loose coupling on tuples shipped and "
            "simulated time; one dark backend degrades gracefully (answers "
            "tagged degraded, availability >= 95%)."
        ),
        data={
            "headers": headers,
            "rows": rows,
            "per_backend": per_backend,
            "availability": results["federated"]["availability"],
            "degraded_answers": results["federated"]["degraded_answers"],
        },
    )
    record_trace("E19", results["federated"]["trace_jsonl"])


def test_federated_answers_equal_single_backend_oracle(results):
    assert results["federated"]["answers"] == results["oracle"]["answers"]
    assert any(len(rows) for rows in results["federated"]["answers"].values())


def test_naive_answers_equal_oracle_too(results):
    # The baseline is slow, not wrong.
    assert results["naive"]["answers"] == results["oracle"]["answers"]


def test_federated_strictly_beats_naive_on_tuples_shipped(results):
    assert (
        results["federated"]["healthy_shipped"]
        < results["naive"]["healthy_shipped"]
    )


def test_federated_strictly_beats_naive_on_simulated_time(results):
    assert (
        results["federated"]["healthy_seconds"]
        < results["naive"]["healthy_seconds"]
    )


def test_every_backend_served_its_share(results):
    by_backend = results["federated"]["by_backend"]
    assert set(by_backend) == {"alpha", "beta", "gamma"}
    assert all(share["requests"] > 0 for share in by_backend.values())
    total = sum(share["shipped"] for share in by_backend.values())
    assert total == results["federated"]["healthy_shipped"]


def test_dark_backend_degrades_gracefully(results):
    federated = results["federated"]
    assert federated["availability"] >= 0.95
    healthy_oracle, _ = _build("oracle")
    for text, answer in federated["dark_answers"].items():
        assert isinstance(answer, dict), f"{text} errored: {answer}"
        expected = sorted(healthy_oracle.query(parse_query(text)).fetch_all())
        if answer["rows"] != expected:
            # A diverging answer is only acceptable when tagged degraded.
            assert answer["degraded"], f"untagged divergence on {text}"
    # The dark phase actually exercised the degraded path.
    assert federated["degraded_answers"] > 0


def test_same_seed_runs_are_byte_identical(results):
    rerun = run("federated")
    first = results["federated"]
    assert rerun["snapshot"] == first["snapshot"]
    assert rerun["fingerprint"] == first["fingerprint"]
    assert rerun["trace_jsonl"] == first["trace_jsonl"]


def test_benchmark_federated_session(benchmark):
    benchmark.pedantic(run, args=("federated",), rounds=3, iterations=1)
