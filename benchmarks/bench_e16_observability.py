"""E16 — observability overhead and trace determinism.

The tracing layer's contract is twofold:

* **zero simulated impact** — spans are stamped with simulated time but
  never advance the clock or touch the metrics ledger, so a traced run
  and an untraced run of the same seeded workload produce *identical*
  simulated totals and metrics snapshots;
* **zero cost when disabled** — :meth:`Tracer.disabled` turns every hook
  into a no-op on a shared singleton, so the default (untraced) path adds
  no measurable wall-clock overhead to an E2-style session.

Both are asserted here on the E2 caching workload (a seeded
repeated-selection stream against the genealogy database).  Determinism
is asserted too: two same-seed traced runs export byte-identical JSONL
with matching SHA-256 fingerprints.  Wall-clock numbers for the traced
and untraced paths are *reported* (tracing is bookkeeping, not free) but
not asserted on — wall time is the one non-deterministic quantity in the
whole suite.
"""

from __future__ import annotations

import time

import pytest

from repro.core.cms import CacheManagementSystem
from repro.obs import Tracer
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy
from repro.workloads.queries import StreamSpec, repeated_selection_stream

from benchmarks.harness import format_table, record, record_trace

LENGTH = 60
REPETITION = 0.6


def stream():
    people = [f"p{i}" for i in range(22)]
    return list(
        repeated_selection_stream(
            "q(Y) :- parent($C, Y)", people, StreamSpec(LENGTH, REPETITION, seed=7)
        )
    )


def run_session(traced: bool) -> dict:
    """One seeded E2-style CMS session, with or without tracing."""
    server = RemoteDBMS()
    if traced:
        server.tracer = Tracer(server.clock)
    for table in genealogy(seed=23).tables:
        server.load_table(table)
    cms = CacheManagementSystem(server)
    cms.begin_session()
    started = time.perf_counter()
    for query in stream():
        cms.query(query).fetch_all()
    wall = time.perf_counter() - started
    return {
        "snapshot": server.metrics.snapshot(),
        "simulated_seconds": server.clock.now,
        "wall_seconds": wall,
        "spans": len(cms.tracer.spans),
        "trace_jsonl": cms.tracer.to_jsonl(),
        "fingerprint": cms.tracer.fingerprint(),
    }


@pytest.fixture(scope="module")
def untraced():
    return run_session(traced=False)


@pytest.fixture(scope="module")
def traced():
    return run_session(traced=True)


def test_report(untraced, traced):
    rows = [
        [
            "untraced",
            untraced["spans"],
            untraced["simulated_seconds"],
            untraced["wall_seconds"] * 1e3,
        ],
        [
            "traced",
            traced["spans"],
            traced["simulated_seconds"],
            traced["wall_seconds"] * 1e3,
        ],
    ]
    headers = ["mode", "spans", "sim time (s)", "wall time (ms)"]
    record(
        "E16",
        f"observability overhead, {LENGTH}-query E2-style stream",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: tracing reads the clock but never advances it, so "
            "simulated totals and every metrics counter are identical with "
            "tracing on or off; the disabled tracer records nothing and "
            "its hooks are no-ops on a shared singleton.  Wall times are "
            "reported for context only (same order of magnitude; the "
            "traced run pays for span bookkeeping and JSON export)."
        ),
    )
    record_trace("E16", traced["trace_jsonl"])


def test_tracing_does_not_change_simulated_totals(untraced, traced):
    assert traced["simulated_seconds"] == untraced["simulated_seconds"]
    assert traced["snapshot"] == untraced["snapshot"]


def test_disabled_tracer_records_nothing(untraced):
    assert untraced["spans"] == 0
    assert untraced["trace_jsonl"] == ""


def test_traced_run_records_the_full_lifecycle(traced):
    assert traced["spans"] > 0
    jsonl = traced["trace_jsonl"]
    for name in ("cms.query", "planner.plan", "executor.execute", "rdi.fetch"):
        assert f'"{name}"' in jsonl


def test_same_seed_traces_are_byte_identical(traced):
    again = run_session(traced=True)
    assert again["trace_jsonl"] == traced["trace_jsonl"]
    assert again["fingerprint"] == traced["fingerprint"]


def test_benchmark_untraced_session(benchmark):
    benchmark.pedantic(lambda: run_session(traced=False), rounds=3, iterations=1)


def test_benchmark_traced_session(benchmark):
    benchmark.pedantic(lambda: run_session(traced=True), rounds=3, iterations=1)
