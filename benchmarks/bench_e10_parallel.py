"""E10 — parallel cache/remote subquery execution (Sections 5, 5.3.3).

"Subqueries to the remote DBMS can be executed in parallel with the
subqueries to the Cache Manager" — in simulated time, a hybrid plan under
parallel execution costs max(local, remote) instead of local + remote.

Workload: hybrid queries whose cache-side derivation is substantial (a
large cached element to filter) while the remote side fetches the other
join operand.  Sweep the cached element's size to scale local work.

Expected shape: identical answers; the parallel configuration's simulated
time is lower, and the saving equals the overlapped (smaller) component.
"""

from __future__ import annotations

import pytest

from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import chain

from benchmarks.harness import format_table, record

SIZES = [500, 2000, 8000]


def run_hybrid(parallel: bool, rows: int) -> dict:
    server = RemoteDBMS()
    for table in chain(length=2, rows_per_relation=rows, domain=rows // 4, seed=59).tables:
        server.load_table(table)
    cms = CacheManagementSystem(server, features=CMSFeatures(parallel=parallel))
    cms.begin_session()
    # Cache r1 wholly; r0 selective part stays remote.
    cms.query(parse_query("warm(A, B) :- r1(A, B)")).fetch_all()
    clock_before = cms.clock.now
    result = cms.query(
        parse_query("q(B, C) :- r0(1, B), r1(B, C)")
    ).fetch_all()
    return {
        "answers": len(result),
        "query_time": cms.clock.now - clock_before,
    }


@pytest.fixture(scope="module")
def results():
    out = {}
    for rows in SIZES:
        out[(True, rows)] = run_hybrid(True, rows)
        out[(False, rows)] = run_hybrid(False, rows)
    return out


def test_report(results):
    table_rows = []
    for rows in SIZES:
        for parallel in (True, False):
            r = results[(parallel, rows)]
            table_rows.append(
                [rows, "parallel" if parallel else "sequential", r["answers"], r["query_time"]]
            )
    headers = ["cached rows", "execution", "answers", "query sim time (s)"]
    record(
        "E10",
        "hybrid query: cached join operand + remote selective fetch",
        format_table(headers, table_rows),
        notes="Claim: overlapping cache and remote work cuts response time to max(local, remote).",
        data={"headers": headers, "rows": table_rows},
    )


@pytest.mark.parametrize("rows", SIZES)
def test_same_answers(results, rows):
    assert results[(True, rows)]["answers"] == results[(False, rows)]["answers"]


@pytest.mark.parametrize("rows", SIZES)
def test_parallel_is_never_slower(results, rows):
    assert results[(True, rows)]["query_time"] <= results[(False, rows)]["query_time"]


def test_parallel_strictly_faster_when_local_work_matters(results):
    big = SIZES[-1]
    assert results[(True, big)]["query_time"] < results[(False, big)]["query_time"]


def test_benchmark_parallel_hybrid(benchmark):
    benchmark.pedantic(run_hybrid, args=(True, 2000), rounds=3, iterations=1)
