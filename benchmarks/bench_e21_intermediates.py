"""E21: operator-level intermediate caching and shared MQO under churn.

A multi-tenant retail workload on a deliberately small shared cache:
Zipf-overlapping clients browse hot item selections and drill down into
order joins at ever-tighter thresholds, while private scans churn the
cache between hot repeats.  A drill projects ``(I, Q)`` but filters on
``V`` — so its *whole view* can never answer the next-tighter drill
(``V`` is projected away), while an operator-level intermediate that
kept ``V`` can.  Two regimes, one workload:

* **steady** (the cache holds the hot working set): intermediate
  caching vs whole-view caching.  The claim under test: intermediates
  strictly reduce both tuples shipped and simulated seconds.
* **churn** (the cache thrashes): the shared-subplan registry (MQO)
  on vs off.  The claim under test: concurrent sessions compute each
  shared remote part once (``server.shared_subplans > 0``) and ship
  strictly fewer tuples in strictly less simulated time — with answers
  identical to serial (one-client-at-a-time) execution.

Everything is seeded; the same configuration fingerprints identically
run to run.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.harness import format_table, record

from repro.common.metrics import (
    CACHE_INTERMEDIATE_HITS,
    CACHE_INTERMEDIATE_STORES,
    REMOTE_REQUESTS,
    REMOTE_TUPLES,
    SERVER_SHARED_SUBPLANS,
)
from repro.core.cms import CMSFeatures
from repro.server import BraidServer, ServerConfig
from repro.workloads.multisession import (
    MultiSessionSpec,
    client_streams,
    submit_interleaved,
)
from repro.workloads.synthetic import retail_universe

SEED = 21
#: Holds the hot working set: the intermediates-vs-whole-view regime.
STEADY_BYTES = 12_000
#: Thrashes on every burst: the MQO ablation regime.
CHURN_BYTES = 3_000

SPEC = MultiSessionSpec(
    clients=6,
    requests_per_client=16,
    shared_fraction=0.7,
    hot_pool_size=9,
    private_pool_size=10,
    seed=SEED,
    join_fraction=0.667,  # 3 hot selections + 6 drill-down joins
    zipf_skew=1.0,
)

TABLES = retail_universe(rows=300, orders=600, domain=1000, seed=5).tables


def build_server(cache_bytes: int, intermediates: bool, mqo: bool) -> BraidServer:
    return BraidServer(
        tables=TABLES,
        config=ServerConfig(
            cache_capacity_bytes=cache_bytes,
            features=CMSFeatures(intermediates=intermediates, mqo=mqo),
            mqo=mqo,
            max_queue_depth=SPEC.clients * SPEC.requests_per_client + 16,
            scheduler_seed=SEED,
        ),
    )


def run_workload(cache_bytes: int, intermediates: bool, mqo: bool, serial: bool = False):
    """One full workload execution; returns a metrics + answers dict."""
    server = build_server(cache_bytes, intermediates, mqo)
    streams = client_streams(SPEC)
    for name in streams:
        server.open_session(name)
    if serial:
        # One client at a time: the no-concurrency ground truth.
        for name, stream in streams.items():
            for query in stream:
                server.submit(name, query)
            server.run_until_idle()
    else:
        submit_interleaved(server, streams)
        server.run_until_idle()

    snapshot = server.session_results_snapshot()
    answers = {
        name: sorted(
            (request_id, query_name, rows)
            for request_id, query_name, _latency, _degraded, _error, rows in results
        )
        for name, results in snapshot.items()
    }
    errors = sum(
        1
        for results in snapshot.values()
        for _rid, _q, _lat, _deg, error, _rows in results
        if error
    )
    metrics = server.metrics
    return {
        "tuples_shipped": metrics.get(REMOTE_TUPLES),
        "remote_requests": metrics.get(REMOTE_REQUESTS),
        "sim_seconds": round(server.clock.now, 9),
        "shared_subplans": metrics.get(SERVER_SHARED_SUBPLANS),
        "intermediate_hits": metrics.get(CACHE_INTERMEDIATE_HITS),
        "intermediate_stores": metrics.get(CACHE_INTERMEDIATE_STORES),
        "errors": errors,
        "answers": answers,
        "cache_report": server.cache.report(),
        "fingerprint": fingerprint(answers, metrics.get(REMOTE_TUPLES)),
    }


def fingerprint(answers: dict, tuples: int) -> str:
    import hashlib

    payload = json.dumps(
        {"answers": {k: [list(map(repr, row)) for row in v] for k, v in answers.items()},
         "tuples": tuples},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


# -- module-scope runs (each configuration executes once) --------------------------


@pytest.fixture(scope="module")
def steady_whole_view():
    return run_workload(STEADY_BYTES, intermediates=False, mqo=False)


@pytest.fixture(scope="module")
def steady_intermediates():
    return run_workload(STEADY_BYTES, intermediates=True, mqo=False)


@pytest.fixture(scope="module")
def churn_no_mqo():
    return run_workload(CHURN_BYTES, intermediates=True, mqo=False)


@pytest.fixture(scope="module")
def churn_mqo():
    return run_workload(CHURN_BYTES, intermediates=True, mqo=True)


@pytest.fixture(scope="module")
def churn_serial():
    return run_workload(CHURN_BYTES, intermediates=True, mqo=True, serial=True)


class TestE21Intermediates:
    def test_no_errors(self, steady_whole_view, steady_intermediates, churn_no_mqo,
                       churn_mqo, churn_serial):
        for run in (steady_whole_view, steady_intermediates, churn_no_mqo,
                    churn_mqo, churn_serial):
            assert run["errors"] == 0

    def test_intermediates_strictly_beat_whole_view(
        self, steady_whole_view, steady_intermediates
    ):
        """The tentpole claim: on the same workload and cache budget,
        operator-level intermediates ship strictly fewer tuples in
        strictly less simulated time than whole-view-only caching."""
        assert (
            steady_intermediates["tuples_shipped"]
            < steady_whole_view["tuples_shipped"]
        )
        assert steady_intermediates["sim_seconds"] < steady_whole_view["sim_seconds"]

    def test_intermediates_are_exercised(self, steady_intermediates, steady_whole_view):
        assert steady_intermediates["intermediate_stores"] > 0
        assert steady_intermediates["intermediate_hits"] > 0
        assert steady_whole_view["intermediate_stores"] == 0
        assert steady_whole_view["intermediate_hits"] == 0

    def test_lineage_recorded(self, steady_intermediates):
        """At least one surviving intermediate derives from a parent —
        the derivation DAG is populated, not just flat entries."""
        elements = steady_intermediates["cache_report"]["elements"]
        kinds = {e["kind"] for e in elements}
        assert "intermediate" in kinds
        assert any(e["parents"] for e in elements)
        totals = steady_intermediates["cache_report"]["totals"]
        assert totals["intermediates"] > 0
        assert totals["max_depth"] >= 1

    def test_mqo_shares_subplans_under_churn(self, churn_no_mqo, churn_mqo):
        """The MQO ablation: with the registry on, concurrent sessions
        reuse in-flight parts (shared_subplans > 0) and both tuples and
        simulated time strictly drop."""
        assert churn_no_mqo["shared_subplans"] == 0
        assert churn_mqo["shared_subplans"] > 0
        assert churn_mqo["tuples_shipped"] < churn_no_mqo["tuples_shipped"]
        assert churn_mqo["sim_seconds"] < churn_no_mqo["sim_seconds"]

    def test_answers_identical_across_configurations(
        self, steady_whole_view, steady_intermediates, churn_no_mqo, churn_mqo
    ):
        base = steady_whole_view["answers"]
        for run in (steady_intermediates, churn_no_mqo, churn_mqo):
            assert run["answers"] == base

    def test_mqo_answers_identical_to_serial(self, churn_mqo, churn_serial):
        """Sharing in-flight subplans never changes any session's rows."""
        assert churn_mqo["answers"] == churn_serial["answers"]

    def test_deterministic_rerun(self, steady_intermediates, churn_mqo):
        assert (
            run_workload(STEADY_BYTES, intermediates=True, mqo=False)["fingerprint"]
            == steady_intermediates["fingerprint"]
        )
        assert (
            run_workload(CHURN_BYTES, intermediates=True, mqo=True)["fingerprint"]
            == churn_mqo["fingerprint"]
        )

    def test_record(
        self,
        steady_whole_view,
        steady_intermediates,
        churn_no_mqo,
        churn_mqo,
        churn_serial,
    ):
        labels = [
            ("steady/whole-view", steady_whole_view),
            ("steady/intermediates", steady_intermediates),
            ("churn/intermediates", churn_no_mqo),
            ("churn/intermediates+mqo", churn_mqo),
            ("churn/serial+mqo", churn_serial),
        ]
        rows = [
            [
                label,
                run["tuples_shipped"],
                run["remote_requests"],
                f"{run['sim_seconds']:.3f}",
                run["shared_subplans"],
                run["intermediate_hits"],
                run["intermediate_stores"],
            ]
            for label, run in labels
        ]
        table = format_table(
            ["configuration", "tuples", "requests", "sim_s", "shared", "int_hits",
             "int_stores"],
            rows,
        )
        saved_tuples = (
            steady_whole_view["tuples_shipped"]
            - steady_intermediates["tuples_shipped"]
        )
        mqo_saved = churn_no_mqo["tuples_shipped"] - churn_mqo["tuples_shipped"]
        record(
            "E21",
            title="Operator-level intermediate caching and shared MQO",
            table=table,
            notes=(
                f"steady cache ({STEADY_BYTES}B): intermediates save "
                f"{saved_tuples} tuples and "
                f"{steady_whole_view['sim_seconds'] - steady_intermediates['sim_seconds']:.3f}s; "
                f"churn cache ({CHURN_BYTES}B): MQO shares "
                f"{churn_mqo['shared_subplans']} in-flight subplans saving "
                f"{mqo_saved} tuples. Answers identical across all "
                f"configurations and vs serial execution."
            ),
            data={
                "spec": {
                    "clients": SPEC.clients,
                    "requests_per_client": SPEC.requests_per_client,
                    "shared_fraction": SPEC.shared_fraction,
                    "hot_pool_size": SPEC.hot_pool_size,
                    "join_fraction": SPEC.join_fraction,
                    "zipf_skew": SPEC.zipf_skew,
                    "seed": SPEC.seed,
                },
                "steady_bytes": STEADY_BYTES,
                "churn_bytes": CHURN_BYTES,
                "configurations": {
                    label: {
                        k: v
                        for k, v in run.items()
                        if k not in ("answers", "cache_report")
                    }
                    for label, run in labels
                },
                "cache_report": steady_intermediates["cache_report"],
            },
        )

    def test_benchmark_steady_intermediates(self, benchmark):
        benchmark.pedantic(
            lambda: run_workload(STEADY_BYTES, intermediates=True, mqo=False),
            rounds=1,
            iterations=1,
        )
