"""E8 — advice-modified replacement (Sections 4.2.2, 5.4).

The cache uses "an LRU scheme which may be modified due to advi[c]e".  The
paper's tracking example: if the path expression says d1 "will be required
for one of the next two queries ... it is clear that d1 is not the best
candidate" for replacement, even if it is the least recently used element.

Workload: the paper's ideal-knowledge case — the path expression lists the
session's query sequence exactly: a *hot* view (a full r0 scan) recurs
every round, interleaved with one-shot filler views over r1 (disjoint
slices, so nothing is derivable across them).  The cache is too small for
everything.  Plain LRU evicts the hot element whenever filler results pile
up; the advised scorer sees that passed fillers are dead (distance None)
and the hot view is still ahead, and evicts fillers instead.

Expected shape: advised replacement re-fetches the hot view less often —
fewer remote requests and lower simulated time.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import chain

from benchmarks.harness import format_table, record

ROUNDS = 6
FILLERS_PER_ROUND = 5
SLICE = 40


def make_cms(advised: bool) -> CacheManagementSystem:
    server = RemoteDBMS()
    for table in chain(length=2, rows_per_relation=400, domain=400, seed=47).tables:
        server.load_table(table)
    return CacheManagementSystem(
        server,
        capacity_bytes=9_000,  # hot scan (~6.5 kB) + a couple of fillers
        features=CMSFeatures(
            advice_replacement=advised,
            # Pin the base scorer to plain LRU in both configurations so
            # the measured delta isolates the paper's claim (advice over
            # LRU); the cost-based scorer is E21's subject, not E8's.
            cost_replacement=False,
            prefetch=False,
            generalization=False,
        ),
    )


def session_plan() -> list[tuple[str, str]]:
    """(view name, query text) in emission order."""
    plan: list[tuple[str, str]] = []
    filler_index = 0
    for _round in range(ROUNDS):
        plan.append(("dhot", "dhot(A, B) :- r0(A, B)"))
        for _ in range(FILLERS_PER_ROUND):
            low = (filler_index * SLICE) % 360
            name = f"df{filler_index}"
            plan.append(
                (name, f"{name}(A, B) :- r1(A, B), A >= {low}, A < {low + SLICE}")
            )
            filler_index += 1
    return plan


def make_advice(plan: list[tuple[str, str]]) -> AdviceSet:
    views = {}
    patterns = []
    for name, text in plan:
        if name not in views:
            views[name] = annotate(parse_query(text), "^^")
        patterns.append(QueryPattern(name))
    path = Sequence(tuple(patterns), lower=1, upper=1)
    return AdviceSet.from_views(list(views.values()), path_expression=path)


def run_session(advised: bool) -> dict:
    plan = session_plan()
    cms = make_cms(advised)
    cms.begin_session(make_advice(plan))
    for _name, text in plan:
        cms.query(parse_query(text)).fetch_all()
    return {
        "requests": cms.metrics.get("remote.requests"),
        "shipped": cms.metrics.get("remote.tuples_shipped"),
        "evictions": cms.cache.eviction_count,
        "exact_hits": cms.metrics.get("cache.hits.exact"),
        "time": cms.clock.now,
    }


@pytest.fixture(scope="module")
def results():
    return {"advised": run_session(True), "plain-lru": run_session(False)}


def test_report(results):
    rows = [
        [name, r["requests"], r["shipped"], r["exact_hits"], r["evictions"], r["time"]]
        for name, r in results.items()
    ]
    headers = ["policy", "remote reqs", "tuples shipped", "exact hits", "evictions", "sim time (s)"]
    record(
        "E8",
        f"hot view + one-shot filler churn under cache pressure ({ROUNDS} rounds)",
        format_table(headers, rows),
        notes="Claim: path-expression distance keeps the predicted-to-recur element resident.",
        data={"headers": headers, "rows": rows},
    )


def test_advised_saves_remote_requests(results):
    assert results["advised"]["requests"] < results["plain-lru"]["requests"]


def test_advised_keeps_hot_view_hitting(results):
    assert results["advised"]["exact_hits"] > results["plain-lru"]["exact_hits"]


def test_advised_saves_time(results):
    assert results["advised"]["time"] < results["plain-lru"]["time"]


def test_pressure_actually_exists(results):
    for r in results.values():
        assert r["evictions"] > 0


def test_benchmark_advised_session(benchmark):
    benchmark.pedantic(run_session, args=(True,), rounds=3, iterations=1)
