"""E13 — cost-model sensitivity (DESIGN.md's key substitution).

The paper's whole design is premised on remote access being expensive
relative to workstation work ("the cost of communicating with [the]
remote DBMS is significant", Section 5.3.3).  This ablation sweeps the
simulated link latency from near-zero (co-located DBMS) to WAN-like and
measures the CMS's advantage over loose coupling on the same session.

Expected shape: the CMS's *relative* advantage grows with latency; even
with a free link it never loses (it still avoids redundant server work
and transfer), so the architecture degrades gracefully — supporting the
claim that the bridge suits "organizations that have substantial
investments in [remote] databases".
"""

from __future__ import annotations

import pytest

from repro.common.clock import CostProfile
from repro.baselines.loose import LooseCoupling
from repro.core.cms import CacheManagementSystem
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy
from repro.workloads.queries import StreamSpec, repeated_selection_stream

from benchmarks.harness import format_table, record, run_queries

#: Round-trip latencies in seconds: co-located, LAN, default, WAN.
LATENCIES = [0.0, 0.005, 0.05, 0.3]
LENGTH = 40


def make_bridge(kind: str, latency: float):
    profile = CostProfile(remote_latency=latency)
    server = RemoteDBMS(profile=profile)
    for table in genealogy(seed=67).tables:
        server.load_table(table)
    if kind == "cms":
        return CacheManagementSystem(server)
    return LooseCoupling(server)


def stream():
    people = [f"p{i}" for i in range(22)]
    return repeated_selection_stream(
        "q(Y) :- parent($C, Y)", people, StreamSpec(LENGTH, 0.5, seed=5)
    )


@pytest.fixture(scope="module")
def results():
    queries = stream()
    out = {}
    for latency in LATENCIES:
        for kind in ("cms", "loose"):
            out[(kind, latency)] = run_queries(make_bridge(kind, latency), queries)
    return out


def test_report(results):
    rows = []
    for latency in LATENCIES:
        cms = results[("cms", latency)]
        loose = results[("loose", latency)]
        speedup = (
            loose["simulated_seconds"] / cms["simulated_seconds"]
            if cms["simulated_seconds"]
            else float("inf")
        )
        rows.append(
            [
                latency,
                cms["simulated_seconds"],
                loose["simulated_seconds"],
                f"{speedup:.2f}x",
            ]
        )
    headers = ["latency (s)", "CMS time (s)", "loose time (s)", "CMS speedup"]
    record(
        "E13",
        f"link-latency sweep over a {LENGTH}-query session (repetition 0.5)",
        format_table(headers, rows),
        notes="Claim: the bridge's advantage scales with communication cost and never reverses.",
        data={"headers": headers, "rows": rows},
    )


@pytest.mark.parametrize("latency", LATENCIES)
def test_cms_never_loses(results, latency):
    assert (
        results[("cms", latency)]["simulated_seconds"]
        <= results[("loose", latency)]["simulated_seconds"]
    )


def test_advantage_grows_with_latency(results):
    gaps = [
        results[("loose", latency)]["simulated_seconds"]
        - results[("cms", latency)]["simulated_seconds"]
        for latency in LATENCIES
    ]
    assert gaps == sorted(gaps)


def test_request_counts_latency_independent(results):
    baseline = results[("cms", LATENCIES[0])]["remote_requests"]
    for latency in LATENCIES[1:]:
        assert results[("cms", latency)]["remote_requests"] == baseline


def test_benchmark_wan_session(benchmark):
    queries = stream()

    def run():
        return run_queries(make_bridge("cms", 0.3), queries)

    benchmark.pedantic(run, rounds=3, iterations=1)
