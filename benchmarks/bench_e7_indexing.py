"""E7 — advice-driven attribute indexing (Sections 4.2.1, 5.3.3).

"The consumer annotation ('?') constitutes advice to the CMS that the
given attribute in the given relation occurrence is a prime candidate for
indexing" — repeated bound-argument lookups against a cached view then
become index probes instead of scans.

Workload: a generalized element answering many per-constant lookups;
compare indexing on/off on simulated time and on wall-clock time.

Expected shape: identical answers and remote costs; the indexed
configuration does less local work per lookup, and the advantage grows
with the cached relation's size.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.synthetic import chain

from benchmarks.harness import format_table, record

SIZES = [200, 1000, 4000]
LOOKUPS = 50


def make_cms(indexing: bool, rows: int) -> CacheManagementSystem:
    server = RemoteDBMS()
    workload = chain(length=1, rows_per_relation=rows, domain=rows // 2, seed=43)
    for table in workload.tables:
        server.load_table(table)
    return CacheManagementSystem(server, features=CMSFeatures(indexing=indexing))


def make_advice() -> AdviceSet:
    view = annotate(parse_query("dlookup(A, B) :- r0(A, B)"), "?^")
    path = Sequence(
        (QueryPattern("dlookup", ("A?", "B^")),), lower=0, upper=Cardinality("A")
    )
    return AdviceSet.from_views([view], path_expression=path)


def run_lookups(indexing: bool, rows: int) -> dict:
    cms = make_cms(indexing, rows)
    cms.begin_session(make_advice())
    for index in range(LOOKUPS):
        key = index % (rows // 2)
        cms.query(parse_query(f"dlookup({key}, B) :- r0({key}, B)")).fetch_all()
    return {
        "time": cms.clock.now,
        "local_tuples": cms.metrics.get("cache.tuples_processed"),
        "index_builds": cms.metrics.get("cache.index_builds"),
        "requests": cms.metrics.get("remote.requests"),
    }


@pytest.fixture(scope="module")
def results():
    out = {}
    for rows in SIZES:
        out[(True, rows)] = run_lookups(True, rows)
        out[(False, rows)] = run_lookups(False, rows)
    return out


def test_report(results):
    table_rows = []
    for rows in SIZES:
        for indexing in (True, False):
            r = results[(indexing, rows)]
            table_rows.append(
                [
                    rows,
                    "indexed" if indexing else "scan",
                    r["local_tuples"],
                    r["time"],
                    r["index_builds"],
                ]
            )
    headers = ["cached rows", "mode", "local tuples touched", "sim time (s)", "index builds"]
    record(
        "E7",
        f"{LOOKUPS} bound-argument lookups against a cached element",
        format_table(headers, table_rows),
        notes="Claim: consumer-annotation indexing turns scans into probes; gain grows with size.",
        data={"headers": headers, "rows": table_rows},
    )


def test_index_built_from_annotation(results):
    assert results[(True, SIZES[0])]["index_builds"] >= 1
    assert results[(False, SIZES[0])]["index_builds"] == 0


@pytest.mark.parametrize("rows", SIZES)
def test_indexed_touches_fewer_tuples(results, rows):
    assert (
        results[(True, rows)]["local_tuples"]
        < results[(False, rows)]["local_tuples"]
    )


def test_advantage_grows_with_size(results):
    gains = [
        results[(False, rows)]["time"] - results[(True, rows)]["time"]
        for rows in SIZES
    ]
    assert gains == sorted(gains)


def test_same_remote_cost(results):
    for rows in SIZES:
        assert results[(True, rows)]["requests"] == results[(False, rows)]["requests"]


@pytest.mark.parametrize("indexing", [True, False], ids=["indexed", "scan"])
def test_benchmark_lookup_wallclock(benchmark, indexing):
    benchmark.pedantic(
        run_lookups, args=(indexing, 4000), rounds=3, iterations=1
    )
