"""E12 — streams, buffering, and pipelining (Section 5.5).

"Stream processing buffers the results produced by the DBMS and passes
results, one at a time, as they are requested ... The interface also
allows pipelining if the DBMS supports it."  With pipelining, transfer is
paid per shipped buffer; without it, the whole result crosses the wire
up front.

Workload: a large remote result consumed only partially through the
server's buffered stream interface.  Sweep the consumed fraction and
compare pipelining on/off.

Expected shape: without pipelining, shipped tuples equal the result size
regardless of consumption; with pipelining they track consumption (rounded
up to buffer size).
"""

from __future__ import annotations

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.server import RemoteDBMS
from repro.remote.sql import FetchTableQuery

from benchmarks.harness import format_table, record

RESULT_SIZE = 2000
BUFFER = 32
CONSUMED = [32, 256, 1024, 2000]


def make_server(pipelining: bool) -> RemoteDBMS:
    server = RemoteDBMS(supports_pipelining=pipelining)
    rows = [(i, i % 97) for i in range(RESULT_SIZE)]
    server.load_table(Relation(Schema("big", ("a", "b")), rows))
    return server


def run_consumption(pipelining: bool, consume: int) -> dict:
    server = make_server(pipelining)
    stream = server.execute_stream(FetchTableQuery("big"), buffer_size=BUFFER)
    pulled = 0
    while pulled < consume:
        buffer = stream.next_buffer()
        if not buffer:
            break
        pulled += len(buffer)
    return {
        "pulled": pulled,
        "shipped": server.metrics.get("remote.tuples_shipped"),
        "time": server.clock.now,
    }


@pytest.fixture(scope="module")
def results():
    out = {}
    for consume in CONSUMED:
        out[(True, consume)] = run_consumption(True, consume)
        out[(False, consume)] = run_consumption(False, consume)
    return out


def test_report(results):
    rows = []
    for consume in CONSUMED:
        for pipelining in (True, False):
            r = results[(pipelining, consume)]
            rows.append(
                [
                    consume,
                    "pipelined" if pipelining else "whole-result",
                    r["pulled"],
                    r["shipped"],
                    r["time"],
                ]
            )
    headers = ["consumed", "transfer", "pulled", "tuples shipped", "sim time (s)"]
    record(
        "E12",
        f"partial consumption of a {RESULT_SIZE}-tuple remote result (buffer {BUFFER})",
        format_table(headers, rows),
        notes="Claim: pipelined transfer pays only for shipped buffers.",
        data={"headers": headers, "rows": rows},
    )


@pytest.mark.parametrize("consume", CONSUMED[:-1])
def test_pipelining_ships_less_when_consumption_partial(results, consume):
    assert (
        results[(True, consume)]["shipped"] < results[(False, consume)]["shipped"]
    )


def test_pipelined_shipping_tracks_consumption(results):
    for consume in CONSUMED:
        shipped = results[(True, consume)]["shipped"]
        assert consume <= shipped <= consume + BUFFER


def test_whole_result_always_full_price(results):
    for consume in CONSUMED:
        assert results[(False, consume)]["shipped"] == RESULT_SIZE


def test_full_consumption_costs_match(results):
    full = CONSUMED[-1]
    assert results[(True, full)]["shipped"] == results[(False, full)]["shipped"]


def test_benchmark_pipelined_partial_read(benchmark):
    benchmark.pedantic(run_consumption, args=(True, 256), rounds=5, iterations=1)
