"""E3 — subsumption vs exact-match reuse (Sections 2, 5.3.2).

"By allowing additional processing with the cached data and using a more
general subsumption algorithm than those used previously in AI/DB
integration efforts, BrAID increases the reusability of cached data."

Workload: overlapping range queries over one relation.  A later window
contained in an earlier one is *derivable* but not an exact repeat —
exactly the case [SELL87]/[IOAN88]-style exact matching cannot exploit.

Expected shape: CMS-with-subsumption issues the fewest remote requests;
CMS-without-subsumption ≈ exact-match cache; the single-relation buffer
ships the whole relation once but wins no further transfer savings.
"""

from __future__ import annotations

import pytest

from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.relation_cache import SingleRelationBuffer
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.queries import StreamSpec, range_query_stream
from repro.workloads.synthetic import selection_universe

from benchmarks.harness import format_table, record, run_queries

CONTAINMENT_RATES = [0.0, 0.4, 0.8]
LENGTH = 40


def make_bridge(kind: str):
    server = RemoteDBMS()
    for table in selection_universe(rows=400, domain=1000, seed=31).tables:
        server.load_table(table)
    if kind == "cms":
        return CacheManagementSystem(server)
    if kind == "cms-no-subsumption":
        return CacheManagementSystem(server, features=CMSFeatures(subsumption=False))
    if kind == "exact":
        return ExactMatchCache(server)
    return SingleRelationBuffer(server)


def stream(containment: float):
    return range_query_stream(
        "item",
        attribute_position=2,
        arity=3,
        domain=1000,
        spec=StreamSpec(LENGTH, repetition_rate=containment, seed=int(containment * 10) + 2),
    )


BRIDGES = ("cms", "cms-no-subsumption", "exact", "relation-buffer")


@pytest.fixture(scope="module")
def results():
    out = {}
    for containment in CONTAINMENT_RATES:
        queries = stream(containment)
        for kind in BRIDGES:
            out[(kind, containment)] = run_queries(make_bridge(kind), queries)
    return out


def test_report(results):
    rows = []
    for containment in CONTAINMENT_RATES:
        for kind in BRIDGES:
            r = results[(kind, containment)]
            rows.append(
                [
                    containment,
                    kind,
                    r["remote_requests"],
                    r["tuples_shipped"],
                    r["subsumed_hits"],
                    r["exact_hits"],
                ]
            )
    headers = ["containment", "bridge", "remote reqs", "tuples shipped", "subsumed hits", "exact hits"]
    record(
        "E3",
        f"subsumption reuse over {LENGTH} overlapping range queries",
        format_table(headers, rows),
        data={"headers": headers, "rows": rows},
        notes=(
            "Claim: subsumption reuses cached windows that exact matching cannot; "
            "the gap widens with containment."
        ),
    )


@pytest.mark.parametrize("containment", CONTAINMENT_RATES[1:])
def test_subsumption_beats_exact_match(results, containment):
    assert (
        results[("cms", containment)]["remote_requests"]
        < results[("exact", containment)]["remote_requests"]
    )


@pytest.mark.parametrize("containment", CONTAINMENT_RATES[1:])
def test_subsumption_feature_is_the_cause(results, containment):
    assert (
        results[("cms", containment)]["remote_requests"]
        < results[("cms-no-subsumption", containment)]["remote_requests"]
    )


def test_subsumed_hits_grow_with_containment(results):
    hits = [results[("cms", c)]["subsumed_hits"] for c in CONTAINMENT_RATES]
    assert hits[-1] > hits[0]


def test_relation_buffer_ships_whole_relation_once(results):
    r = results[("relation-buffer", 0.0)]
    assert r["tuples_shipped"] == 400  # the whole item relation, once


def test_benchmark_subsumption_session(benchmark):
    queries = stream(0.8)

    def run():
        return run_queries(make_bridge("cms"), queries)

    benchmark.pedantic(run, rounds=3, iterations=1)
