"""E1 — technique ablation (Figure 2 / Section 2).

Each CMS technique is claimed to alleviate part of the impedance mismatch.
This experiment drives one composite session that exercises *every*
technique — per-constant lookups under repetition advice (generalization +
indexing), contained range queries (subsumption), exact repeats (result
caching), a predicted view sequence (prefetching), a partially consumed
pure-producer query (lazy evaluation), and a hybrid cache/remote join
(parallel execution) — then re-runs it with each technique disabled.

Expected shape: the all-on configuration is at least as good as every
single-off configuration on remote requests, and no worse on simulated
time; caching is the single biggest lever.
"""

from __future__ import annotations

import pytest

from repro.advice.language import AdviceSet
from repro.advice.path_expression import Cardinality, QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.caql.parser import parse_query
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.workloads.genealogy import genealogy

from benchmarks.harness import format_table, record

ABLATIONS = [
    ("all-on", {}),
    ("no-caching", {"caching": False}),
    ("no-subsumption", {"subsumption": False}),
    ("no-lazy", {"lazy": False}),
    ("no-prefetch", {"prefetch": False}),
    ("no-generalization", {"generalization": False}),
    ("no-indexing", {"indexing": False}),
    ("no-parallel", {"parallel": False}),
    ("all-off", "none"),
]


def make_advice() -> AdviceSet:
    dkids = annotate(parse_query("dkids(P, C) :- parent(P, C)"), "?^")
    dages = annotate(parse_query("dages(X, A) :- age(X, A)"), "^^")
    dmale = annotate(parse_query("dmale(P) :- male(P)"), "^")
    path = Sequence(
        (
            Sequence(
                (QueryPattern("dkids", ("P?", "C^")),),
                lower=0,
                upper=Cardinality("P"),
            ),
            QueryPattern("dages", ("X^", "A^")),
            QueryPattern("dmale", ("P^",)),
        ),
        lower=1,
        upper=1,
    )
    return AdviceSet.from_views([dkids, dages, dmale], path_expression=path)


def run_configuration(overrides) -> dict:
    features = CMSFeatures.none() if overrides == "none" else CMSFeatures(**overrides)
    server = RemoteDBMS()
    for table in genealogy(generations=4, branching=3, roots=2, seed=17).tables:
        server.load_table(table)
    cms = CacheManagementSystem(server, features=features)
    cms.begin_session(make_advice())

    # 1. Per-constant lookups: generalization fetches once, indexing probes.
    for person in ("p0", "p1", "p2", "p3", "p4", "p5"):
        cms.query(
            parse_query(f"dkids({person}, C) :- parent({person}, C)")
        ).fetch_all()
    # 2. Contained range queries: subsumption derives the narrower ones.
    for low in (5, 20, 40, 60):
        cms.query(
            parse_query(f"ranged{low}(X, A) :- age(X, A), A >= {low}")
        ).fetch_all()
    # 3. Exact repeat: result caching.
    cms.query(parse_query("ranged5(X, A) :- age(X, A), A >= 5")).fetch_all()
    # 4. The predicted sequence: dages then dmale (dmale prefetchable).
    cms.query(parse_query("dages(X, A) :- age(X, A)")).fetch_all()
    # 5. Lazy: a pure-producer view over cached data (a cache-full
    #    derivation, not an exact hit), one solution pulled.
    stream = cms.query(parse_query("dmale(P) :- male(P), P \\= p0"))
    stream.next()
    # 6. Hybrid cache/remote join: age is cached, parent(p0, _) is remote.
    cms.query(parse_query("hy(C, A) :- parent(p0, C), age(C, A)")).fetch_all()

    return {
        "time": cms.clock.now,
        "requests": cms.metrics.get("remote.requests"),
        "shipped": cms.metrics.get("remote.tuples_shipped"),
        "produced": cms.metrics.get("lazy.tuples_produced")
        + cms.metrics.get("eager.tuples_produced"),
    }


@pytest.fixture(scope="module")
def results():
    return {name: run_configuration(overrides) for name, overrides in ABLATIONS}


def test_report(results):
    rows = [
        [name, r["time"], r["requests"], r["shipped"], r["produced"]]
        for name, r in results.items()
    ]
    headers = ["configuration", "sim time (s)", "remote requests", "tuples shipped", "tuples produced"]
    record(
        "E1",
        "CMS technique ablation over a composite session",
        format_table(headers, rows),
        notes="Claim (Fig. 2): every technique contributes; caching matters most.",
        data={"headers": headers, "rows": rows},
    )


def test_all_on_beats_all_off(results):
    assert results["all-on"]["time"] < results["all-off"]["time"]
    assert results["all-on"]["requests"] < results["all-off"]["requests"]


def test_no_single_off_beats_all_on(results):
    for name, r in results.items():
        if name == "all-on":
            continue
        assert r["requests"] >= results["all-on"]["requests"], name
        assert r["time"] >= results["all-on"]["time"] * 0.999, name


@pytest.mark.parametrize(
    "name", ["no-caching", "no-subsumption", "no-generalization", "no-prefetch"]
)
def test_request_reducing_techniques_bite(results, name):
    assert results[name]["requests"] > results["all-on"]["requests"], name


@pytest.mark.parametrize("name", ["no-indexing", "no-lazy"])
def test_local_techniques_cost_time(results, name):
    assert results[name]["time"] > results["all-on"]["time"], name


def test_parallel_never_hurts(results):
    # The hybrid step's local component is small in this session, so the
    # parallel saving may round away — E10 isolates it properly.
    assert results["no-parallel"]["time"] >= results["all-on"]["time"]


def test_no_lazy_overproduces(results):
    assert results["no-lazy"]["produced"] > results["all-on"]["produced"]


def test_caching_is_a_top_lever(results):
    # In this session disabling subsumption costs about as much as
    # disabling caching outright (the range/lookup reuse all flows through
    # subsumption); caching must be among the top two levers and its loss
    # must degenerate to the all-off behaviour.
    deltas = {
        name: r["requests"] - results["all-on"]["requests"]
        for name, r in results.items()
        if name not in ("all-on", "all-off")
    }
    top_two = sorted(deltas.values())[-2:]
    assert deltas["no-caching"] in top_two
    assert results["no-caching"]["requests"] == results["all-off"]["requests"]


def test_benchmark_all_on(benchmark):
    benchmark.pedantic(run_configuration, args=({},), rounds=3, iterations=1)
