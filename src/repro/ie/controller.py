"""The inference strategy controller (Section 4.1) — interpretive suites.

Implements "the well-known depth-first with chronological backtracking
strategy of Prolog" over the shaped problem graph, with one BrAID-specific
twist: database access happens through the **runs** the view specifier
recorded — each run is emitted as one CAQL query (an instance of its view
specification), so the CMS sees exactly the query stream the advice's path
expression predicted.

With ``max_conjuncts = 1`` every run is a single literal and the controller
behaves as a fully interpretive, tuple-at-a-time engine; with unlimited
runs it performs conjunction compilation — two points on the I-C range
realized by one function suite with different parameters (the FDE-style
tailoring the paper describes).

Solutions are produced one at a time (single-solution strategy): pulling
the next solution drives backtracking, and CAQL result streams are
consumed tuple-at-a-time, so lazy CMS results only materialize what the
consumer actually requests.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import EvaluationError, InferenceError
from repro.common.metrics import IE_INFERENCE_STEPS, Metrics
from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom, Const, Substitution, Var
from repro.caql.ast import ConjunctiveQuery
from repro.core.cms import CacheManagementSystem
from repro.ie.extractor import extract_problem_graph
from repro.ie.problem_graph import (
    BUILTIN,
    DATABASE,
    RECURSIVE_REF,
    UNKNOWN,
    AndNode,
    OrNode,
)
from repro.ie.shaper import shape
from repro.ie.view_specifier import SpecifierConfig, SpecifierResult, specify_views


class DepthFirstController:
    """Depth-first, chronological-backtracking inference over a graph."""

    def __init__(
        self,
        kb: KnowledgeBase,
        cms: CacheManagementSystem,
        views: SpecifierResult,
        config: SpecifierConfig,
        clock: SimClock | None = None,
        profile: CostProfile | None = None,
        metrics: Metrics | None = None,
        max_depth: int = 64,
        use_statistics: bool = False,
    ):
        self.kb = kb
        self.cms = cms
        self.views = views
        self.config = config
        self.clock = clock if clock is not None else cms.clock
        self.profile = profile if profile is not None else cms.profile
        self.metrics = metrics if metrics is not None else cms.metrics
        self.max_depth = max_depth
        self.use_statistics = use_statistics
        from repro.obs.tracer import Tracer

        self.tracer = getattr(cms, "tracer", None) or Tracer.disabled()

    # -- bookkeeping -------------------------------------------------------------
    def _step(self) -> None:
        self.metrics.incr(IE_INFERENCE_STEPS)
        self.clock.charge("local", self.profile.inference_step)
        self.tracer.event("ie.step")

    def _stats_of(self, pred: str):
        return self.cms.statistics_of(pred)

    # -- entry point ----------------------------------------------------------------
    def solve(self, root: OrNode) -> Iterator[Substitution]:
        """All solutions of the root goal, lazily, as substitutions over
        the root goal's variables."""
        root_vars = root.goal.variables()
        for solution in self._solve_or(root, Substitution(), depth=0):
            yield solution.restricted(root_vars)

    # -- OR nodes ----------------------------------------------------------------------
    def _solve_or(self, node: OrNode, subst: Substitution, depth: int) -> Iterator[Substitution]:
        if depth > self.max_depth:
            raise InferenceError(
                f"depth limit {self.max_depth} exceeded at {node.goal} — "
                "recursive data may need the compiled strategy"
            )
        self._step()
        goal = subst.apply(node.goal)

        if node.kind == BUILTIN:
            yield from self._solve_builtin(goal, subst)
            return
        if node.kind == DATABASE:
            yield from self._solve_database_leaf(goal, subst)
            return
        if node.kind == UNKNOWN:
            return  # closed world: no solutions
        if node.kind == RECURSIVE_REF:
            yield from self._solve_recursive_ref(goal, subst, depth)
            return

        # USER node.
        if goal.negated:
            yield from self._negation_as_failure(
                lambda: self._solve_user(node, subst, depth), subst
            )
            return
        yield from self._solve_user(node, subst, depth)

    def _solve_user(self, node: OrNode, subst: Substitution, depth: int) -> Iterator[Substitution]:
        for alternative in node.alternatives:
            yield from self._solve_body(alternative, 0, subst, depth)

    def _solve_builtin(self, goal: Atom, subst: Substitution) -> Iterator[Substitution]:
        if goal.negated:
            def attempts():
                return self.kb.builtins.evaluate(goal.positive(), subst)

            yield from self._negation_as_failure(attempts, subst)
            return
        try:
            yield from self.kb.builtins.evaluate(goal, subst)
        except EvaluationError as exc:
            raise InferenceError(f"built-in failed for {goal}: {exc}") from exc

    @staticmethod
    def _negation_as_failure(attempts, subst: Substitution) -> Iterator[Substitution]:
        for _solution in attempts():
            return  # a solution exists: the negation fails
        yield subst

    # -- database access ---------------------------------------------------------------
    def _solve_database_leaf(self, goal: Atom, subst: Substitution) -> Iterator[Substitution]:
        """A stray database leaf (negated literal, or a root-level goal)."""
        positive = goal.positive()
        query = self._single_literal_query(positive)
        if goal.negated:
            stream = self.cms.query(query)
            if stream.next() is None:
                yield subst
            return
        yield from self._stream_bindings(query, subst)

    def _single_literal_query(self, goal: Atom) -> ConjunctiveQuery:
        name = self.views.root_view or f"adhoc_{goal.pred}"
        answers = tuple(dict.fromkeys(a for a in goal.args if isinstance(a, Var)))
        return ConjunctiveQuery(name, answers, (goal,))

    def _stream_bindings(
        self, query: ConjunctiveQuery, subst: Substitution
    ) -> Iterator[Substitution]:
        """Run a CAQL query, binding answer variables tuple-at-a-time."""
        stream = self.cms.query(query)
        while True:
            row = stream.next()
            if row is None:
                return
            extended = subst
            consistent = True
            for term, value in zip(query.answers, row):
                if isinstance(term, Var):
                    current = extended.resolve(term)
                    if isinstance(current, Const):
                        if current.value != value:
                            consistent = False
                            break
                    else:
                        extended = extended.bind(term, Const(value))
            if consistent:
                yield extended

    # -- AND nodes with runs ---------------------------------------------------------------
    def _solve_body(
        self, node: AndNode, index: int, subst: Substitution, depth: int
    ) -> Iterator[Substitution]:
        if index >= len(node.body):
            yield subst
            return
        run = next((r for r in node.runs if r[0] == index), None)
        if run is not None:
            start, end, name, answers = run
            instantiated = self._instantiate_run(name, answers, node, start, end, subst)
            for extended in self._stream_bindings(instantiated, subst):
                yield from self._solve_body(node, end, extended, depth)
            return
        child = node.body[index]
        for extended in self._solve_or(child, subst, depth + 1):
            yield from self._solve_body(node, index + 1, extended, depth)

    def _instantiate_run(
        self,
        name: str,
        answers: tuple,
        node: AndNode,
        start: int,
        end: int,
        subst: Substitution,
    ) -> ConjunctiveQuery:
        """The IE-query: the view instantiated with current bindings.

        ``answers`` are this graph instance's minimal-argument-set terms
        (the stored view definition may belong to a different instance of
        the same rule, so its variable names cannot be used here).
        """
        literals = tuple(subst.apply(node.body[i].goal) for i in range(start, end))
        bound_answers = tuple(
            subst.apply_term(t) if isinstance(t, Var) else t for t in answers
        )
        return ConjunctiveQuery(name, bound_answers, literals)

    # -- recursion ------------------------------------------------------------------------
    def _solve_recursive_ref(
        self, goal: Atom, subst: Substitution, depth: int
    ) -> Iterator[Substitution]:
        """Re-expand a recursive reference on demand.

        The fresh subgraph shares the view registry, so re-expanded runs
        reuse the view names the advice already declared (the path
        expression marked this region unbounded).
        """
        positive = goal.positive()
        subgraph = extract_problem_graph(self.kb, positive)
        shape(
            subgraph,
            self.kb,
            stats_of=self._stats_of if self.use_statistics else None,
        )
        specify_views(subgraph, self.kb, self.config, result=self.views)
        if goal.negated:
            yield from self._negation_as_failure(
                lambda: self._solve_or(subgraph, subst, depth + 1), subst
            )
            return
        yield from self._solve_or(subgraph, subst, depth + 1)
