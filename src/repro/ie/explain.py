"""Answer justification: proof trees for solved AI queries.

Section 4.2.1: rule identifiers on view specifications "will be of use
within the system when the problems of debugging and answer justification
are addressed".  This module addresses them: given a (ground or
instantiated) goal, the :class:`Explainer` reconstructs a proof tree —
which rules fired (by their ``R``-identifiers), which database facts were
fetched (through the CMS, so the cache pays most of the cost), which
built-ins held, and which negations failed.

Justification is a separate pass over the knowledge base rather than a
side product of inference: solutions are produced first (by any strategy),
and each one can then be explained on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import InferenceError
from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom, Const, Substitution, Var, rename_apart
from repro.logic.unify import unify
from repro.caql.ast import ConjunctiveQuery

#: Proof node kinds.
RULE = "rule"
DATABASE_FACT = "database"
BUILTIN_FACT = "builtin"
NEGATION = "naf"


@dataclass(frozen=True)
class Proof:
    """One step of a justification: a goal and how it was established."""

    goal: Atom
    kind: str
    rule_id: str | None = None
    children: tuple["Proof", ...] = ()

    def render(self, indent: int = 0) -> str:
        """A human-readable proof tree."""
        pad = "  " * indent
        if self.kind == RULE:
            line = f"{pad}{self.goal}   [{self.rule_id}]"
        elif self.kind == DATABASE_FACT:
            line = f"{pad}{self.goal}   [database]"
        elif self.kind == BUILTIN_FACT:
            line = f"{pad}{self.goal}   [built-in]"
        else:
            line = f"{pad}{self.goal}   [no counterexample]"
        return "\n".join([line] + [child.render(indent + 1) for child in self.children])

    def rules_used(self) -> list[str]:
        """Every rule identifier in the proof, preorder (with repeats)."""
        out = []
        if self.kind == RULE and self.rule_id is not None:
            out.append(self.rule_id)
        for child in self.children:
            out.extend(child.rules_used())
        return out

    def facts_used(self) -> list[Atom]:
        """Every database fact the proof rests on."""
        out = []
        if self.kind == DATABASE_FACT:
            out.append(self.goal)
        for child in self.children:
            out.extend(child.facts_used())
        return out

    def __str__(self) -> str:
        return self.render()


class Explainer:
    """Builds proof trees by SLD search over the knowledge base.

    Database literals are checked through the CMS (anything recently
    queried is a cache hit); built-ins run locally; negations are
    justified by exhaustive failure.
    """

    def __init__(self, kb: KnowledgeBase, cms, max_depth: int = 64):
        self.kb = kb
        self.cms = cms
        self.max_depth = max_depth

    # -- public API -----------------------------------------------------------------
    def explain(self, goal: Atom, bindings: Substitution | None = None) -> Proof | None:
        """The first proof of ``goal`` under ``bindings``, or None."""
        subst = bindings if bindings is not None else Substitution()
        for _final, proof in self._prove(subst.apply(goal), subst, 0):
            return proof
        return None

    def explain_solution(self, goal: Atom, solution: dict[str, object]) -> Proof | None:
        """Justify one solution (as returned by :class:`Solutions`)."""
        bindings = Substitution(
            {
                var: Const(value)
                for var in goal.variables()
                if (value := solution.get(var.name)) is not None
            }
        )
        return self.explain(goal, bindings)

    # -- search ----------------------------------------------------------------------
    def _prove(
        self, goal: Atom, subst: Substitution, depth: int
    ) -> Iterator[tuple[Substitution, Proof]]:
        if depth > self.max_depth:
            raise InferenceError(f"explanation depth limit exceeded at {goal}")
        goal = subst.apply(goal)

        if goal.negated:
            positive = goal.positive()
            for _s, _p in self._prove(positive, subst, depth + 1):
                return  # a proof of the positive goal defeats the negation
            yield subst, Proof(goal, NEGATION)
            return

        kind = self.kb.classify(goal)
        if kind == "database":
            yield from self._prove_database(goal, subst)
            return
        if kind == "builtin":
            for extended in self.kb.builtins.evaluate(goal, subst):
                yield extended, Proof(extended.apply(goal), BUILTIN_FACT)
            return
        if kind == "unknown":
            return

        for clause in self.kb.clauses_for(goal):
            renamed, _ = rename_apart([clause.head, *clause.body])
            head, *body = renamed
            unifier = unify(head, goal, subst)
            if unifier is None:
                continue
            rule_id = self.kb.rule_id(clause)
            for final, child_proofs in self._prove_body(body, unifier, depth + 1):
                yield final, Proof(
                    final.apply(goal), RULE, rule_id=rule_id, children=tuple(child_proofs)
                )

    def _prove_body(
        self, body: list[Atom], subst: Substitution, depth: int
    ) -> Iterator[tuple[Substitution, list[Proof]]]:
        if not body:
            yield subst, []
            return
        head, *rest = body
        for extended, proof in self._prove(head, subst, depth):
            for final, proofs in self._prove_body(rest, extended, depth):
                yield final, [proof] + proofs

    def _prove_database(
        self, goal: Atom, subst: Substitution
    ) -> Iterator[tuple[Substitution, Proof]]:
        answers = tuple(dict.fromkeys(a for a in goal.args if isinstance(a, Var)))
        query = ConjunctiveQuery(f"explain_{goal.pred}", answers, (goal,))
        stream = self.cms.query(query)
        while True:
            row = stream.next()
            if row is None:
                return
            extended = subst
            for term, value in zip(answers, row):
                extended = extended.bind(term, Const(value))
            yield extended, Proof(extended.apply(goal), DATABASE_FACT)
