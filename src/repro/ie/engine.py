"""The Inference Engine facade (Section 4, Figure 4).

Wires the six IE modules together for each AI query:

1. the **query translator** (a thin parse step — AI queries are atomic
   formulas);
2. the **problem graph extractor**;
3. the **problem graph shaper** (constant pushing, SOA culling, ordering);
4. the **view specifier** and **path expression creator** (advice);
5. the **inference strategy controller** (or the compiled evaluator),
   which emits CAQL queries to the CMS and produces solutions.

A session per AI query: advice first, then the query stream — exactly the
IE–CMS interaction mode of Section 3.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import InferenceError
from repro.logic.kb import KnowledgeBase
from repro.logic.parser import parse_atom
from repro.logic.terms import Atom, Substitution, Var
from repro.core.cms import CacheManagementSystem
from repro.ie.advice_gen import generate_advice
from repro.ie.controller import DepthFirstController
from repro.ie.extractor import extract_problem_graph
from repro.ie.problem_graph import OrNode
from repro.ie.shaper import shape
from repro.ie.strategies import (
    STRATEGIES,
    CompiledResult,
    CompiledStrategy,
    specifier_config_for,
)


class Solutions:
    """Lazy access to an AI query's solutions (single-solution interface).

    Iterating produces one solution at a time as a ``{variable name:
    value}`` dict; with the interpretive strategies the underlying
    inference (and any lazy CMS evaluation) only runs as far as the
    solutions actually consumed.

    Solution multiplicity follows the strategy, as in the paper's Section
    2(b): the interpretive strategies enumerate one solution per
    *derivation* (Prolog semantics — a fact provable two ways appears
    twice), while the compiled strategy is set-at-a-time and reports each
    distinct answer once.
    """

    def __init__(self, query: Atom, source: Iterator[Substitution]):
        self.query = query
        self._source = source
        self._variables = sorted(query.variables(), key=lambda v: v.name)

    def __iter__(self) -> Iterator[dict[str, object]]:
        for substitution in self._source:
            yield self._as_dict(substitution)

    def _as_dict(self, substitution: Substitution) -> dict[str, object]:
        out = {}
        for variable in self._variables:
            value = substitution.resolve(variable)
            out[variable.name] = value.value if not isinstance(value, Var) else None
        return out

    def first(self) -> dict[str, object] | None:
        """The first solution only (the rest is never computed)."""
        for solution in self:
            return solution
        return None

    def all(self) -> list[dict[str, object]]:
        """Every solution, fully enumerated."""
        return list(self)

    def exists(self) -> bool:
        """True when at least one solution exists (computes at most one)."""
        return self.first() is not None


class InferenceEngine:
    """A logic-based AI system tailored for DBMS use."""

    def __init__(
        self,
        kb: KnowledgeBase,
        cms: CacheManagementSystem,
        strategy: str = "conjunction",
        generate_advice: bool = True,
        use_statistics: bool = True,
        max_depth: int = 64,
    ):
        if strategy not in STRATEGIES:
            raise InferenceError(f"unknown strategy {strategy!r}; have {STRATEGIES}")
        self.kb = kb
        self.cms = cms
        self.strategy = strategy
        self.generate_advice = generate_advice
        self.use_statistics = use_statistics
        self.max_depth = max_depth
        #: The last session's artifacts, for inspection and tests.
        self.last_graph: OrNode | None = None
        self.last_advice = None
        # ``cms`` may be a baseline bridge (loose coupling shims) without a
        # tracer; those simply stay untraced.
        from repro.obs.tracer import Tracer

        self.tracer = getattr(cms, "tracer", None) or Tracer.disabled()

    # -- the AI query interface ------------------------------------------------------
    def ask(self, query: Atom | str) -> Solutions:
        """Solve an AI query; returns lazy solutions.

        For the ``compiled`` strategy all solutions are computed
        set-at-a-time before the first is returned (that is the point of
        that end of the I-C range); the interpretive strategies are
        single-solution and compute on demand.
        """
        goal = parse_atom(query) if isinstance(query, str) else query
        if self.strategy == "compiled":
            return self._ask_compiled(goal)
        return self._ask_interpretive(goal)

    def ask_all(self, query: Atom | str) -> list[dict[str, object]]:
        """All solutions of an AI query, as dicts."""
        return self.ask(query).all()

    def ask_first(self, query: Atom | str) -> dict[str, object] | None:
        """The first solution, or None."""
        return self.ask(query).first()

    def explain(self, query: Atom | str, solution: dict[str, object] | None = None):
        """Justify an answer: a proof tree of rules, facts, and built-ins.

        With ``solution`` (a dict from :meth:`ask`), that specific answer
        is justified; without it, the first provable instance is.  Returns
        a :class:`~repro.ie.explain.Proof` or None when no proof exists.
        """
        from repro.ie.explain import Explainer

        goal = parse_atom(query) if isinstance(query, str) else query
        explainer = Explainer(self.kb, self.cms, max_depth=self.max_depth)
        if solution is None:
            return explainer.explain(goal)
        return explainer.explain_solution(goal, solution)

    # -- interpretive path ----------------------------------------------------------------
    def _ask_interpretive(self, goal: Atom) -> Solutions:
        with self.tracer.span(
            "ie.ask", goal=str(goal), strategy=self.strategy
        ):
            config = specifier_config_for(self.strategy)
            graph = extract_problem_graph(self.kb, goal)
            shape(
                graph,
                self.kb,
                stats_of=self._stats_of if self.use_statistics else None,
            )
            advice, views = generate_advice(graph, self.kb, goal, config)
            self.last_graph = graph
            self.last_advice = advice if self.generate_advice else None
            self.cms.begin_session(self.last_advice)
            controller = DepthFirstController(
                self.kb,
                self.cms,
                views,
                config,
                max_depth=self.max_depth,
                use_statistics=self.use_statistics,
            )
        # The span covers session setup; solutions are pulled lazily, so
        # the inference itself is traced by the controller's step events
        # and the CMS's query spans as the consumer drives it.
        return Solutions(goal, controller.solve(graph))

    def _stats_of(self, pred: str):
        try:
            return self.cms.statistics_of(pred)
        except Exception:
            return None

    # -- compiled path ---------------------------------------------------------------------
    def _ask_compiled(self, goal: Atom) -> Solutions:
        from repro.ie.advice_gen import simplest_advice

        with self.tracer.span(
            "ie.ask", goal=str(goal), strategy=self.strategy
        ):
            self.last_graph = None
            self.last_advice = (
                simplest_advice(self.kb, goal) if self.generate_advice else None
            )
            self.cms.begin_session(self.last_advice)
            compiled = CompiledStrategy(self.kb, self.cms).solve(goal)
        return Solutions(goal, self._compiled_substitutions(compiled))

    @staticmethod
    def _compiled_substitutions(result: CompiledResult) -> Iterator[Substitution]:
        for row in result.relation:
            bindings = {}
            for variable, value in zip(result.variables, row):
                from repro.logic.terms import Const

                bindings[variable] = Const(value)
            yield Substitution(bindings)
