"""Inference strategies along the interpreted–compiled range (Section 2).

Three FDE-style function suites are provided:

* ``interpreted`` — fully interpretive: one CAQL query per database
  literal (view specifications of size 1), tuple-at-a-time consumption,
  single-solution production;
* ``conjunction`` — conjunction compilation: maximal database runs become
  single CAQL joins, otherwise identical to ``interpreted``;
* ``compiled`` — set-at-a-time, all-solutions: the relevant knowledge-base
  portion is evaluated bottom-up (semi-naive) over whole base relations
  fetched through the CMS; recursive relations declared as transitive
  closures (RecursiveStructure SOAs) use the fixed-point operator
  directly, matching the paper's "second-order templates along with
  specialized operators (e.g., a fixed point operator)".

The first two run through :class:`~repro.ie.controller.DepthFirstController`
with different :class:`~repro.ie.view_specifier.SpecifierConfig` values —
the tailored-suite architecture the paper borrows from the FDE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import InferenceError
from repro.common.metrics import IE_INFERENCE_STEPS
from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom, Const, Var, fresh_var, rename_apart
from repro.logic.unify import unify
from repro.relational.operators import transitive_closure
from repro.relational.relation import Relation
from repro.caql.ast import ConjunctiveQuery
from repro.caql.eval import evaluate_conjunctive, result_schema
from repro.core.cms import CacheManagementSystem
from repro.ie.view_specifier import SpecifierConfig

#: Strategy name -> SpecifierConfig for the interpretive suites.
INTERPRETIVE_CONFIGS = {
    "interpreted": SpecifierConfig(max_conjuncts=1, flatten=0),
    "conjunction": SpecifierConfig(max_conjuncts=None, flatten=2),
}

STRATEGIES = ("interpreted", "conjunction", "compiled")

#: Fixpoint iteration bound for the bottom-up evaluator.
MAX_ROUNDS = 200


def specifier_config_for(strategy: str) -> SpecifierConfig:
    """The SpecifierConfig realizing an interpretive strategy."""
    try:
        return INTERPRETIVE_CONFIGS[strategy]
    except KeyError:
        raise InferenceError(
            f"{strategy!r} is not an interpretive strategy (have: {sorted(INTERPRETIVE_CONFIGS)})"
        ) from None


@dataclass
class CompiledResult:
    """All solutions of an AI query, as a relation over its variables."""

    query: Atom
    variables: tuple[Var, ...]
    relation: Relation


class CompiledStrategy:
    """Bottom-up, set-at-a-time evaluation of the relevant rules."""

    def __init__(self, kb: KnowledgeBase, cms: CacheManagementSystem):
        self.kb = kb
        self.cms = cms

    def solve(self, query: Atom) -> CompiledResult:
        """All solutions of the AI query, set-at-a-time."""
        if query.negated:
            raise InferenceError("the compiled strategy cannot answer a negated query")
        signatures = self.kb.reachable_signatures(query.signature)
        user_sigs = [s for s in signatures if s in self.kb.user_signatures()]
        self._check_supported(user_sigs)

        # Non-recursive knowledge compiles away entirely: unfold the query
        # into base-literal conjunctions and ship those as whole CAQL
        # requests — the paper's "single, large DBMS request", modulo the
        # missing UNION in the era's DML ("the capabilities of current
        # DBMSs put significant limitations on the feasible degree of
        # query compilation"), which we honour by one request per disjunct.
        if query.signature in self.kb.user_signatures() and not any(
            self.kb.is_recursive(signature) for signature in user_sigs
        ):
            return self._solve_by_unfolding(query)

        extensions: dict[tuple[str, int], Relation] = {}
        for pred, arity in sorted(signatures & self.kb.database_signatures()):
            extensions[(pred, arity)] = self._fetch_base(pred, arity)

        if query.signature in self.kb.database_signatures():
            return self._answer(query, extensions)

        self._evaluate_user_predicates(user_sigs, extensions)
        return self._answer(query, extensions)

    # -- full compilation of non-recursive queries --------------------------------
    def _solve_by_unfolding(self, query: Atom) -> CompiledResult:
        variables = tuple(dict.fromkeys(a for a in query.args if isinstance(a, Var)))
        schema = result_schema(query.pred, max(len(variables), 1))
        answers = Relation(schema)
        # One head term per *distinct* query variable (repeated variables
        # constrain through the shared body variables, not the projection).
        first_position = {}
        for position, original in enumerate(query.args):
            if isinstance(original, Var) and original not in first_position:
                first_position[original] = position
        for index, (head, body) in enumerate(self._unfold(query)):
            head_answers = tuple(
                head.args[first_position[var]] for var in variables
            )
            if not body:
                # A pure-fact derivation: the (ground) head is an answer.
                if all(isinstance(t, Const) for t in head_answers):
                    answers.insert(tuple(t.value for t in head_answers) or (True,))
                    continue
                raise InferenceError(f"non-ground fact derivation for {query}")
            branch = ConjunctiveQuery(
                f"compiled_{query.pred}_{index}", head_answers, tuple(body)
            )
            answers.insert_all(self.cms.query(branch).fetch_all())
        if not variables:
            # Boolean query: normalize to a single yes-row or empty.
            rows = [(True,)] if len(answers) else []
            answers = Relation(schema, rows)
        return CompiledResult(query, variables, answers)

    def _unfold(self, goal: Atom):
        """All (head instance, base/builtin literal list) derivations of
        ``goal`` with every user-defined literal resolved away."""
        yield from self._unfold_state(goal, (goal,), 0)

    def _unfold_state(self, head: Atom, body: tuple[Atom, ...], depth: int):
        if depth > 32:
            raise InferenceError(f"unfolding depth exceeded at {head}")
        user_index = next(
            (
                i
                for i, literal in enumerate(body)
                if not literal.negated
                and literal.signature in self.kb.user_signatures()
            ),
            None,
        )
        if user_index is None:
            yield head, list(body)
            return
        target = body[user_index]
        for clause in self.kb.clauses_for(target):
            renamed, _ = rename_apart([clause.head, *clause.body])
            clause_head, *clause_body = renamed
            unifier = unify(clause_head, target)
            if unifier is None:
                continue
            new_body = tuple(
                unifier.apply(l)
                for l in body[:user_index] + tuple(clause_body) + body[user_index + 1:]
            )
            yield from self._unfold_state(unifier.apply(head), new_body, depth + 1)

    # -- preparation -----------------------------------------------------------------
    def _check_supported(self, user_sigs) -> None:
        for signature in user_sigs:
            for clause in self.kb.clauses_for(Atom(signature[0], tuple(fresh_var() for _ in range(signature[1])))):
                for literal in clause.body:
                    if literal.negated:
                        raise InferenceError(
                            "the compiled strategy does not support negation "
                            f"(rule {clause})"
                        )

    def _fetch_base(self, pred: str, arity: int) -> Relation:
        """One set-at-a-time CAQL request for a whole base relation."""
        variables = tuple(fresh_var("c") for _ in range(arity))
        query = ConjunctiveQuery(f"base_{pred}", variables, (Atom(pred, variables),))
        return self.cms.query(query).as_relation()

    # -- bottom-up evaluation ------------------------------------------------------------
    def _evaluate_user_predicates(self, user_sigs, extensions) -> None:
        # Fixed-point fast path for declared transitive closures whose base
        # is already available.
        pending = []
        for signature in sorted(user_sigs):
            recursive_structure = self.kb.soas.recursive_for(signature[0])
            base_sig = (
                (recursive_structure.base_pred, 2) if recursive_structure else None
            )
            # The fixed-point fast path is only valid when the closure's
            # base is a *database* relation (already fully fetched); a
            # user-defined base is still empty at this point and must go
            # through the general bottom-up iteration.
            if (
                recursive_structure is not None
                and base_sig in extensions
                and base_sig in self.kb.database_signatures()
            ):
                closure = transitive_closure(extensions[base_sig], name=signature[0])
                extensions[signature] = Relation(
                    result_schema(signature[0], 2), closure.rows
                )
            else:
                extensions.setdefault(
                    signature, Relation(result_schema(signature[0], signature[1]))
                )
                pending.append(signature)

        if not pending:
            return

        def lookup(pred: str) -> Relation:
            for (name, _arity), relation in extensions.items():
                if name == pred:
                    return relation
            raise InferenceError(f"no extension for {pred} during compiled evaluation")

        for _round in range(MAX_ROUNDS):
            self.cms.metrics.incr(IE_INFERENCE_STEPS)
            changed = False
            for signature in pending:
                probe = Atom(
                    signature[0], tuple(fresh_var() for _ in range(signature[1]))
                )
                for clause in self.kb.clauses_for(probe):
                    new_rows = self._rule_rows(clause, lookup)
                    if extensions[signature].insert_all(new_rows):
                        changed = True
            if not changed:
                return
        raise InferenceError(f"no fixpoint after {MAX_ROUNDS} rounds")

    def _rule_rows(self, clause, lookup) -> list[tuple]:
        if not clause.body:
            if not clause.head.is_ground():
                raise InferenceError(f"non-ground fact in compiled evaluation: {clause}")
            return [tuple(a.value for a in clause.head.args)]
        head_query = ConjunctiveQuery(
            clause.head.pred, clause.head.args, clause.body
        )
        return evaluate_conjunctive(head_query, lookup, self.kb.builtins).rows

    # -- answering ----------------------------------------------------------------------------
    def _answer(self, query: Atom, extensions) -> CompiledResult:
        relation = extensions.get(query.signature)
        if relation is None:
            raise InferenceError(f"no extension computed for {query.pred}/{query.arity}")
        variables = tuple(dict.fromkeys(a for a in query.args if isinstance(a, Var)))
        answer_query = ConjunctiveQuery(
            f"answer_{query.pred}", variables or query.args, (query,)
        )
        result = evaluate_conjunctive(
            answer_query, lambda _pred: relation, self.kb.builtins
        )
        return CompiledResult(query, variables, result)
