"""Advice generation (Section 4.2).

Bundles the three advice forms for a session: the relevant base-relation
list (the "simplest kind of advice"), the view specifications, and the
path expression — all computed from the shaped problem graph.
"""

from __future__ import annotations

from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom
from repro.advice.language import AdviceSet
from repro.ie.path_creator import create_path_expression
from repro.ie.problem_graph import OrNode
from repro.ie.view_specifier import SpecifierConfig, SpecifierResult, specify_views


def generate_advice(
    root: OrNode,
    kb: KnowledgeBase,
    query: Atom,
    config: SpecifierConfig | None = None,
) -> tuple[AdviceSet, SpecifierResult]:
    """Views + path expression + relevant relations for one AI query.

    Returns both the advice set (for the CMS) and the specifier result
    (for the controller, which shares its view registry).
    """
    views = specify_views(root, kb, config)
    if views.root_view is not None:
        # AI query directly on a database relation: one synthetic pattern.
        from repro.advice.path_expression import QueryPattern, Sequence

        view = views.by_name[views.root_view]
        args = tuple(
            f"{term}{annotation}"
            for term, annotation in zip(view.definition.answers, view.annotations)
        )
        path = Sequence((QueryPattern(view.name, args),), lower=1, upper=1)
    else:
        path = create_path_expression(root, kb, views)
    relevant = tuple(sorted(kb.relevant_database_relations(query)))
    advice = AdviceSet.from_views(
        list(views.views),
        path_expression=path,
        relevant_relations=relevant,
    )
    return advice, views


def simplest_advice(kb: KnowledgeBase, query: Atom) -> AdviceSet:
    """Only the unordered list of relevant base relations (Section 4.2)."""
    return AdviceSet(
        relevant_relations=tuple(sorted(kb.relevant_database_relations(query)))
    )
