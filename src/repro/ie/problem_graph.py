"""Problem graphs: the AND/OR graphs the IE reasons over (Section 4.1).

"A problem graph is an and/or graph consisting of alternating levels of AND
nodes and OR nodes.  An AND node represents a rule ... Each antecedent is
represented by an OR node.  An OR node contains a single relation
occurrence (or subgoal) and its successors form a subgraph that represents
the different clauses (rules) that define that relation."

Leaves are database relations or built-in relations.  Recursive relation
occurrences appear once per occurrence ("only a single instance of the
recursive definition will appear in the subgraph for each recursive
relation occurrence"): when expansion would revisit a predicate already on
the current path, the OR node is marked ``recursive_ref`` and left
unexpanded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.logic.parser import Clause
from repro.logic.terms import Atom

#: OR-node kinds.
DATABASE = "database"
BUILTIN = "builtin"
USER = "user"
RECURSIVE_REF = "recursive-ref"
UNKNOWN = "unknown"

_node_counter = itertools.count(1)


@dataclass
class AndNode:
    """A rule application: head unified with the parent goal."""

    rule: Clause
    rule_id: str
    head: Atom
    body: list["OrNode"] = field(default_factory=list)
    #: Filled by the view specifier: (start, end, view_name) runs over body
    #: positions that will be emitted as single CAQL queries.
    runs: list[tuple[int, int, str]] = field(default_factory=list)
    node_id: int = field(default_factory=lambda: next(_node_counter))

    def __str__(self) -> str:
        return f"AND[{self.rule_id}] {self.head}"


@dataclass
class OrNode:
    """A subgoal and the alternative rules defining it."""

    goal: Atom
    kind: str
    alternatives: list[AndNode] = field(default_factory=list)
    node_id: int = field(default_factory=lambda: next(_node_counter))

    @property
    def is_leaf(self) -> bool:
        """True for database/built-in/recursive-ref/unknown nodes."""
        return self.kind in (DATABASE, BUILTIN, RECURSIVE_REF, UNKNOWN)

    def __str__(self) -> str:
        return f"OR[{self.kind}] {self.goal}"


def iter_and_nodes(root: OrNode):
    """Every AND node in the graph, preorder."""
    for alternative in root.alternatives:
        yield alternative
        for child in alternative.body:
            yield from iter_and_nodes(child)


def iter_or_nodes(root: OrNode):
    """Every OR node in the graph, preorder (including the root)."""
    yield root
    for alternative in root.alternatives:
        for child in alternative.body:
            yield from iter_or_nodes(child)


def database_leaves(root: OrNode) -> list[OrNode]:
    """All database-relation leaves, left to right."""
    return [node for node in iter_or_nodes(root) if node.kind == DATABASE]


def render(root: OrNode, indent: int = 0) -> str:
    """A readable tree dump (debugging aid)."""
    lines = [" " * indent + str(root)]
    for alternative in root.alternatives:
        lines.append(" " * (indent + 2) + str(alternative))
        for child in alternative.body:
            lines.append(render(child, indent + 4))
    return "\n".join(lines)
