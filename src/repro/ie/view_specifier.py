"""The view specifier (Sections 4.1 and 4.2.1).

"The view specifier flattens a problem graph ... and produces a set of
view specifications.  Parameters control the extent to which flattening is
applied.  Sequences of base and evaluable predicates under an AND node
constitute a candidate for a view specification.  As with flattening, a
parameter controls the maximum size of the conjunctions that can be
transformed into view specifications (with 1 being the smallest possible
value)."

The minimal argument set is the paper's formula ``A = (H ∪ B) ∩ D`` where
H is the head's variables, D the run's variables, and B the variables of
the rest of the body (after the run's literals are deleted).

Runs are recorded on each AND node (``node.runs``) so the inference
strategy controller emits exactly the CAQL queries the advice predicts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom, Const, Var
from repro.caql.ast import COMPARISON_PREDS, ConjunctiveQuery
from repro.advice.view_spec import Binding, ViewSpecification
from repro.ie.problem_graph import (
    BUILTIN,
    DATABASE,
    USER,
    AndNode,
    OrNode,
)


@dataclass
class SpecifierConfig:
    """Tuning knobs for view specification.

    ``max_conjuncts`` bounds how many *database* literals one view may
    join (1 reproduces a fully interpreted, literal-at-a-time interface;
    None allows maximal runs — conjunction compilation).  ``flatten``
    bounds how many rounds of single-rule inlining are applied before run
    extraction.
    """

    max_conjuncts: int | None = None
    flatten: int = 2


@dataclass
class SpecifierResult:
    """The view specifications of a session, shared across re-expansions.

    The controller re-expands recursive references at solve time; passing
    the same result object back into :func:`specify_views` makes
    structurally identical runs reuse their view names, so the emitted
    query stream keeps matching the advice's path expression.
    """

    views: list[ViewSpecification] = field(default_factory=list)
    #: view name -> specification (convenience index).
    by_name: dict[str, ViewSpecification] = field(default_factory=dict)
    #: structural run key -> view name (cross-instance reuse).
    run_index: dict[tuple, str] = field(default_factory=dict)
    #: The synthetic view for a root-level database query, if any.
    root_view: str | None = None
    _counter: object = field(default_factory=lambda: itertools.count(1))

    def next_name(self) -> str:
        """The next unused view name (d1, d2, ...)."""
        return f"d{next(self._counter)}"


def flatten_graph(root: OrNode, rounds: int) -> OrNode:
    """Inline single-rule user subgoals whose bodies are all leaves.

    This is the constrained DNF conversion: a user OR node with exactly
    one alternative adds no disjunction, so its body can be spliced into
    the parent conjunction, widening candidate runs.
    """
    for _ in range(max(0, rounds)):
        if not _flatten_once(root):
            break
    return root


def _flatten_once(root: OrNode) -> bool:
    changed = False
    for alternative in list(root.alternatives):
        new_body: list[OrNode] = []
        for child in alternative.body:
            if (
                child.kind == USER
                and len(child.alternatives) == 1
                # Splicing is only sound when expanding the rule bound
                # nothing in the caller's goal (head == goal after
                # unification); otherwise the head bindings would be lost.
                and child.alternatives[0].head == child.goal
                and all(
                    grandchild.kind in (DATABASE, BUILTIN)
                    for grandchild in child.alternatives[0].body
                )
            ):
                new_body.extend(child.alternatives[0].body)
                changed = True
            else:
                if child.kind == USER:
                    if _flatten_once(child):
                        changed = True
                new_body.append(child)
        alternative.body = new_body
    return changed


def specify_views(
    root: OrNode,
    kb: KnowledgeBase,
    config: SpecifierConfig | None = None,
    bound_at_root: set[Var] | None = None,
    result: SpecifierResult | None = None,
) -> SpecifierResult:
    """Produce view specifications for every database run in the graph.

    Runs are recorded in ``AndNode.runs`` as ``(start, end, view_name,
    answers)`` (end exclusive) over the node's body positions; ``answers``
    are this instance's minimal-argument-set terms, which the controller
    instantiates at query time.
    """
    config = config if config is not None else SpecifierConfig()
    flatten_graph(root, config.flatten)
    if result is None:
        result = SpecifierResult()
    if root.kind == DATABASE and not root.goal.negated:
        _make_root_view(root, result)
        return result
    _specify_or(root, kb, config, bound_at_root or set(), result)
    return result


def _make_root_view(root: OrNode, result: SpecifierResult) -> None:
    """A synthetic view for an AI query directly on a database relation."""
    if result.root_view is not None:
        return
    answers = []
    for arg in root.goal.args:
        if isinstance(arg, Var) and arg not in answers:
            answers.append(arg)
    name = result.next_name()
    definition = ConjunctiveQuery(name, tuple(answers), (root.goal,))
    annotations = tuple(Binding.PRODUCER for _ in answers)
    view = ViewSpecification(definition, annotations, rule_ids=("query",))
    result.views.append(view)
    result.by_name[name] = view
    result.root_view = name


def minimal_argument_set(
    head: Atom, run_literals: list[Atom], rest_literals: list[Atom]
) -> list[Var]:
    """``A = (H ∪ B) ∩ D``, ordered by first occurrence in the run."""
    h = head.variables()
    d_ordered: list[Var] = []
    for literal in run_literals:
        for arg in literal.args:
            if isinstance(arg, Var) and arg not in d_ordered:
                d_ordered.append(arg)
    b: set[Var] = set()
    for literal in rest_literals:
        b |= literal.variables()
    keep = h | b
    return [v for v in d_ordered if v in keep]


def _specify_or(
    node: OrNode,
    kb: KnowledgeBase,
    config: SpecifierConfig,
    bound: set[Var],
    result: SpecifierResult,
) -> None:
    goal_bound = {v for v in node.goal.variables() if v in bound}
    for alternative in node.alternatives:
        _specify_and(alternative, kb, config, set(goal_bound), result)


def _specify_and(
    node: AndNode,
    kb: KnowledgeBase,
    config: SpecifierConfig,
    bound: set[Var],
    result: SpecifierResult,
) -> None:
    node.runs = []
    body = node.body
    index = 0
    while index < len(body):
        child = body[index]
        if _starts_run(child):
            start = index
            end, run_literals = _extend_run(body, index, bound, config.max_conjuncts)
            rest_literals = [
                body[i].goal for i in range(len(body)) if not start <= i < end
            ]
            answers = minimal_argument_set(node.head, run_literals, rest_literals)
            view = _make_view(node, run_literals, answers, bound, result)
            node.runs.append((start, end, view.name, tuple(answers)))
            for literal in run_literals:
                bound |= literal.variables()
            index = end
            continue
        if child.kind == USER:
            _specify_or(child, kb, config, bound, result)
        # After any conjunct is solved, its variables are bound.
        bound |= child.goal.variables()
        index += 1


def _starts_run(child: OrNode) -> bool:
    return child.kind == DATABASE and not child.goal.negated


def _is_run_comparison(child: OrNode, seen_vars: set[Var], bound: set[Var]) -> bool:
    if child.kind != BUILTIN or child.goal.negated:
        return False
    if child.goal.pred not in COMPARISON_PREDS:
        return False
    return all(
        isinstance(arg, Const) or arg in seen_vars or arg in bound
        for arg in child.goal.args
    )


def _extend_run(
    body: list[OrNode], start: int, bound: set[Var], max_conjuncts: int | None
) -> tuple[int, list[Atom]]:
    literals = [body[start].goal]
    seen_vars = set(body[start].goal.variables())
    database_count = 1
    index = start + 1
    while index < len(body):
        child = body[index]
        if _starts_run(child):
            if max_conjuncts is not None and database_count >= max_conjuncts:
                break
            literals.append(child.goal)
            seen_vars |= child.goal.variables()
            database_count += 1
            index += 1
            continue
        if _is_run_comparison(child, seen_vars, bound):
            literals.append(child.goal)
            index += 1
            continue
        break
    return index, literals


def _make_view(
    node: AndNode,
    run_literals: list[Atom],
    answers: list[Var],
    bound: set[Var],
    result: SpecifierResult,
) -> ViewSpecification:
    annotations = tuple(
        Binding.CONSUMER if var in bound else Binding.PRODUCER for var in answers
    )
    # Structurally identical runs (same rule, same literal shape, same
    # binding pattern) share a view name across graph instances, so
    # re-expanded recursion keeps emitting the advertised names.
    key = (
        node.rule_id,
        tuple((l.pred, l.arity, l.negated) for l in run_literals),
        annotations,
    )
    existing = result.run_index.get(key)
    if existing is not None:
        return result.by_name[existing]
    name = result.next_name()
    definition = ConjunctiveQuery(name, tuple(answers), tuple(run_literals))
    view = ViewSpecification(definition, annotations, rule_ids=(node.rule_id,))
    result.views.append(view)
    result.by_name[name] = view
    result.run_index[key] = name
    return view
