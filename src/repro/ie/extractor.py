"""The problem graph extractor (Section 4.1).

"The problem graph extractor extracts from the predicate connection graph
that subgraph based on rules and second-order knowledge relevant to the AI
query. ... Problem graphs are constructed by performing partial evaluation
of an AI query. ... the evaluation procedure is applied only to relations
that are user-defined and not to database relations or to built-in
relations."

Partial evaluation here means: each expansion step renames a clause apart,
unifies its head with the goal, and applies the unifier to the body — so
constants already flow downward during extraction (the shaper pushes them
further and culls).
"""

from __future__ import annotations

from repro.common.errors import InferenceError
from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom, rename_apart
from repro.logic.unify import unify
from repro.ie.problem_graph import (
    BUILTIN,
    DATABASE,
    RECURSIVE_REF,
    UNKNOWN,
    USER,
    AndNode,
    OrNode,
)

#: Guard against pathological rule sets (not recursion — that is handled
#: by the single-instance rule — but sheer breadth).
MAX_NODES = 10_000


def extract_problem_graph(kb: KnowledgeBase, query: Atom) -> OrNode:
    """Build the problem graph for an AI query."""
    budget = [MAX_NODES]
    return _expand(kb, query, on_path=frozenset(), budget=budget)


def _expand(kb: KnowledgeBase, goal: Atom, on_path: frozenset, budget: list) -> OrNode:
    budget[0] -= 1
    if budget[0] < 0:
        raise InferenceError("problem graph exceeds the node budget")

    positive = goal.positive()
    kind = kb.classify(positive)
    if kind == "database":
        return OrNode(goal, DATABASE)
    if kind == "builtin":
        return OrNode(goal, BUILTIN)
    if kind == "unknown":
        return OrNode(goal, UNKNOWN)

    signature = positive.signature
    if signature in on_path:
        # One instance of each recursive definition per occurrence: this
        # occurrence is a reference back, not a re-expansion.
        return OrNode(goal, RECURSIVE_REF)

    node = OrNode(goal, USER)
    for clause in kb.clauses_for(positive):
        renamed_atoms, _renaming = rename_apart([clause.head, *clause.body])
        head, *body = renamed_atoms
        unifier = unify(head, positive)
        if unifier is None:
            continue  # head clash with pushed constants: culled already
        and_node = AndNode(
            rule=clause,
            rule_id=kb.rule_id(clause),
            head=unifier.apply(head),
        )
        for literal in body:
            child_goal = unifier.apply(literal)
            and_node.body.append(
                _expand(kb, child_goal, on_path | {signature}, budget)
            )
        node.alternatives.append(and_node)
    return node
