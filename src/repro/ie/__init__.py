"""The inference engine: problem graphs, shaping, advice, strategies."""

from repro.ie.advice_gen import generate_advice, simplest_advice
from repro.ie.controller import DepthFirstController
from repro.ie.engine import InferenceEngine, Solutions
from repro.ie.explain import Explainer, Proof
from repro.ie.extractor import extract_problem_graph
from repro.ie.path_creator import create_path_expression
from repro.ie.problem_graph import (
    BUILTIN,
    DATABASE,
    RECURSIVE_REF,
    UNKNOWN,
    USER,
    AndNode,
    OrNode,
    database_leaves,
    iter_and_nodes,
    iter_or_nodes,
    render,
)
from repro.ie.shaper import shape
from repro.ie.strategies import (
    STRATEGIES,
    CompiledResult,
    CompiledStrategy,
    specifier_config_for,
)
from repro.ie.view_specifier import (
    SpecifierConfig,
    SpecifierResult,
    flatten_graph,
    minimal_argument_set,
    specify_views,
)

__all__ = [
    "AndNode",
    "BUILTIN",
    "CompiledResult",
    "CompiledStrategy",
    "DATABASE",
    "DepthFirstController",
    "Explainer",
    "Proof",
    "InferenceEngine",
    "OrNode",
    "RECURSIVE_REF",
    "STRATEGIES",
    "Solutions",
    "SpecifierConfig",
    "SpecifierResult",
    "UNKNOWN",
    "USER",
    "create_path_expression",
    "database_leaves",
    "extract_problem_graph",
    "flatten_graph",
    "generate_advice",
    "iter_and_nodes",
    "iter_or_nodes",
    "minimal_argument_set",
    "render",
    "shape",
    "simplest_advice",
    "specifier_config_for",
    "specify_views",
]
