"""The path expression creator (Sections 4.1 and 4.2.2).

"The path expression creator constructs a path expression by traversing
the problem graph.  All alternatives under decision points must be
traversed because the path expression creator will not have available the
DBMS contents on which the decision will be based when actual inferencing
is being done."

Construction rules (matching the paper's two worked examples):

* a database **run** contributes its view's query pattern;
* an **AND node** contributes a sequence of its elements in (shaped) body
  order; when the first element produces bindings that drive the rest,
  the rest is wrapped in a repetition ``<0, |V|>`` keyed to the first
  produced variable (example 1's ``(d2, d3)^<0,|Y|>``);
* a **user OR node** with several alternatives contributes a *sequence*
  of the alternative expressions when chronological backtracking fixes
  their order (example 1), but an *alternation* when each alternative is
  guarded by IE-only subgoals whose outcome is unknown in advance
  (example 2) — with selection term 1 when a mutual-exclusion SOA covers
  the guards;
* a **recursive reference** makes the enclosing sequence unbounded.
"""

from __future__ import annotations

from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Var
from repro.advice.path_expression import (
    Alternation,
    Cardinality,
    PathExpr,
    QueryPattern,
    Sequence,
)
from repro.advice.view_spec import Binding, ViewSpecification
from repro.ie.problem_graph import (
    BUILTIN,
    RECURSIVE_REF,
    USER,
    AndNode,
    OrNode,
)
from repro.ie.view_specifier import SpecifierResult


def create_path_expression(
    root: OrNode, kb: KnowledgeBase, views: SpecifierResult
) -> PathExpr | None:
    """The session's path expression, or None when no database access can
    occur."""
    expr = _expr_of_or(root, kb, views)
    if expr is None:
        return None
    if isinstance(expr, Sequence) and expr.lower == 1 and expr.upper == 1:
        return expr
    return Sequence((expr,), lower=1, upper=1)


def _pattern_of(view: ViewSpecification) -> QueryPattern:
    args = tuple(
        f"{term}{annotation}"
        for term, annotation in zip(view.definition.answers, view.annotations)
    )
    return QueryPattern(view.name, args)


def _expr_of_or(node: OrNode, kb: KnowledgeBase, views: SpecifierResult) -> PathExpr | None:
    if node.kind != USER:
        return None  # leaves contribute through their enclosing AND node
    member_exprs: list[PathExpr] = []
    guarded: list[bool] = []
    guard_goals = []
    for alternative in node.alternatives:
        expr = _expr_of_and(alternative, kb, views)
        if expr is None:
            continue
        member_exprs.append(expr)
        has_guard, guard = _leading_guard(alternative)
        guarded.append(has_guard)
        guard_goals.append(guard)
    if not member_exprs:
        return None
    if len(member_exprs) == 1:
        return member_exprs[0]
    if any(guarded):
        # IE-only guards decide which alternative emits queries: an
        # unordered alternation; mutually exclusive guards cap selection.
        selection = None
        real_guards = [g for g in guard_goals if g is not None]
        if len(real_guards) >= 2 and all(
            kb.soas.exclusive_pair(a, b)
            for i, a in enumerate(real_guards)
            for b in real_guards[i + 1:]
        ):
            selection = 1
        return Alternation(tuple(member_exprs), selection=selection)
    # Chronological backtracking tries the alternatives in rule order.
    return Sequence(tuple(member_exprs), lower=1, upper=1)


def _leading_guard(node: AndNode):
    """Does the rule start with subgoals the IE resolves without the DBMS?

    Returns (True, first_guard_goal) when the first body element is a
    user-defined or (non-comparison) built-in subgoal preceding any
    database run.
    """
    run_starts = {run[0] for run in node.runs}
    for index, child in enumerate(node.body):
        if index in run_starts:
            return False, None
        if child.kind in (USER, RECURSIVE_REF):
            return True, child.goal
        if child.kind == BUILTIN:
            return True, child.goal
    return False, None


def _expr_of_and(node: AndNode, kb: KnowledgeBase, views: SpecifierResult) -> PathExpr | None:
    elements: list[PathExpr] = []
    producers: list[list[Var]] = []
    unbounded = False
    runs_by_start = {run[0]: (run[1], run[2]) for run in node.runs}
    index = 0
    while index < len(node.body):
        if index in runs_by_start:
            end, name = runs_by_start[index]
            view = views.by_name[name]
            elements.append(_pattern_of(view))
            producers.append(
                [
                    term
                    for term, annotation in zip(view.definition.answers, view.annotations)
                    if isinstance(term, Var) and annotation is Binding.PRODUCER
                ]
            )
            index = end
            continue
        child = node.body[index]
        if child.kind == RECURSIVE_REF:
            unbounded = True
        elif child.kind == USER:
            sub = _expr_of_or(child, kb, views)
            if sub is not None:
                elements.append(sub)
                producers.append(list(child.goal.variables()))
        index += 1

    if not elements:
        return None
    expr = _with_driving_repetition(elements, producers)
    if unbounded:
        if isinstance(expr, Sequence):
            expr = Sequence(expr.elements, lower=0, upper=None)
        else:
            expr = Sequence((expr,), lower=0, upper=None)
    return expr


def _with_driving_repetition(
    elements: list[PathExpr], producers: list[list[Var]]
) -> PathExpr:
    """Wrap the tail in ``<0, |V|>`` when the head drives it per binding."""
    if len(elements) == 1:
        return elements[0]
    head, *tail = elements
    head_producers = producers[0]
    tail_vars: set[Var] = set()
    for vars_ in producers[1:]:
        tail_vars |= set(vars_)
    driving = next((v for v in head_producers if v in tail_vars), None)
    if driving is None:
        return Sequence(tuple(elements), lower=1, upper=1)
    if len(tail) == 1 and isinstance(tail[0], Sequence) and tail[0].lower == 1 and tail[0].upper == 1:
        inner = Sequence(tail[0].elements, lower=0, upper=Cardinality(driving.name))
    else:
        inner = Sequence(tuple(tail), lower=0, upper=Cardinality(driving.name))
    return Sequence((head, inner), lower=1, upper=1)
