"""The problem graph shaper (Section 4.1).

"The problem graph shaper eagerly constrains the problem graph using
constant propagation techniques. ... constants may also be produced by
evaluating predicates all of whose arguments are bound. ... cardinality
and selectivity information from the DBMS schema and from functional
dependency SOA's ... is used to determine producer-consumer relationships
(which gets translated into conjunct orderings ...).  Finally, parts of
the problem graph under OR nodes are culled away to the extent that this
is logically valid given its constant pushing and mutual exclusion SOAs."

The shaper mutates the graph in place and returns it.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import EvaluationError
from repro.logic.kb import KnowledgeBase
from repro.logic.terms import Atom, Const, Substitution, Var
from repro.relational.statistics import RelationStatistics
from repro.ie.problem_graph import (
    BUILTIN,
    DATABASE,
    USER,
    AndNode,
    OrNode,
)

#: Resolves a database predicate to its remote statistics (may be None).
StatsLookup = Callable[[str], RelationStatistics]

#: Cost rank for subgoals we cannot estimate.
_USER_GOAL_COST = 500.0
_UNKNOWN_DB_COST = 100.0


def shape(
    graph: OrNode,
    kb: KnowledgeBase,
    stats_of: StatsLookup | None = None,
    reorder: bool = True,
) -> OrNode:
    """Cull, constant-fold, and order the problem graph in place."""
    _shape_or(graph, kb, stats_of, reorder)
    return graph


def _shape_or(node: OrNode, kb: KnowledgeBase, stats_of, reorder: bool) -> None:
    survivors = []
    for alternative in node.alternatives:
        if _shape_and(alternative, kb, stats_of, reorder):
            survivors.append(alternative)
    node.alternatives = survivors


def _shape_and(node: AndNode, kb: KnowledgeBase, stats_of, reorder: bool) -> bool:
    """Shape one rule application; returns False when it is culled."""
    # 1. Evaluate ground built-ins; propagate bindings from `=` leaves.
    if not _fold_builtins(node, kb):
        return False

    # 2. Mutual-exclusion culling: two positive conjuncts covered by a
    #    mutual-exclusion SOA can never hold together.
    positive_leaf_goals = [
        child.goal
        for child in node.body
        if not child.goal.negated
    ]
    for i, a in enumerate(positive_leaf_goals):
        for b in positive_leaf_goals[i + 1:]:
            if kb.soas.exclusive_pair(a, b):
                return False

    # 3. Recurse into user-defined children.
    for child in node.body:
        if child.kind == USER:
            _shape_or(child, kb, stats_of, reorder)

    # 4. Producer-consumer ordering.
    if reorder:
        node.body = _order_conjuncts(node, kb, stats_of)
    return True


def _fold_builtins(node: AndNode, kb: KnowledgeBase) -> bool:
    """Evaluate decided built-ins; returns False if one fails."""
    changed = True
    while changed:
        changed = False
        for index, child in enumerate(node.body):
            if child.kind != BUILTIN or child.goal.negated:
                continue
            goal = child.goal
            if goal.is_ground():
                try:
                    holds = any(True for _ in kb.builtins.evaluate(goal, Substitution()))
                except EvaluationError:
                    continue
                if not holds:
                    return False
                del node.body[index]
                changed = True
                break
            if goal.pred == "=" and goal.arity == 2:
                binding = _equality_binding(goal)
                if binding is not None:
                    _substitute_subtree(node, binding)
                    del node.body[index]
                    changed = True
                    break
    return True


def _equality_binding(goal: Atom) -> Substitution | None:
    left, right = goal.args
    if isinstance(left, Var) and isinstance(right, Const):
        return Substitution({left: right})
    if isinstance(right, Var) and isinstance(left, Const):
        return Substitution({right: left})
    return None


def _substitute_subtree(node: AndNode, binding: Substitution) -> None:
    node.head = binding.apply(node.head)
    for child in node.body:
        _substitute_or(child, binding)


def _substitute_or(node: OrNode, binding: Substitution) -> None:
    node.goal = binding.apply(node.goal)
    for alternative in node.alternatives:
        _substitute_subtree(alternative, binding)


def _order_conjuncts(node: AndNode, kb: KnowledgeBase, stats_of) -> list[OrNode]:
    """Greedy cheapest-admissible-first ordering.

    Built-ins are only admissible once their variables are bound (they are
    filters/computations, not generators), so the producer-consumer
    discipline is preserved by construction.
    """
    # Head variables are unbound at shaping time (call-time constants were
    # already pushed into the subtree by unification during extraction).
    bound: set[Var] = set()
    remaining = list(node.body)
    ordered: list[OrNode] = []
    while remaining:
        best_index = None
        best_cost = None
        for index, child in enumerate(remaining):
            admissible, cost = _conjunct_cost(child, bound, kb, stats_of)
            if not admissible:
                continue
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_index = index
        if best_index is None:
            # Only inadmissible built-ins remain: keep original order and
            # hope bindings arrive at run time.
            ordered.extend(remaining)
            break
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.goal.variables()
    return ordered


def _conjunct_cost(
    child: OrNode, bound: set[Var], kb: KnowledgeBase, stats_of
) -> tuple[bool, float]:
    goal = child.goal
    free = {v for v in goal.variables() if v not in bound}
    if goal.negated:
        # Negation-as-failure is a filter, never a generator: it must not
        # run before its (non-existential) variables are bound.  Variables
        # appearing nowhere else stay free; such goals fall through to the
        # end of the ordering via the inadmissible path.
        return (not free), 0.1
    if child.kind == BUILTIN:
        # A builtin with free variables cannot run yet (except `=` which
        # can bind one side).
        if goal.pred == "=" and len(free) == 1:
            return True, 0.5
        return (not free), 0.0
    if child.kind == DATABASE:
        bound_positions = sum(
            1
            for arg in goal.args
            if isinstance(arg, Const) or (isinstance(arg, Var) and arg in bound)
        )
        for fd in kb.soas.fds_for(goal.pred, goal.arity):
            determinants_bound = all(
                isinstance(goal.args[i], Const)
                or (isinstance(goal.args[i], Var) and goal.args[i] in bound)
                for i in fd.determinants
            )
            if determinants_bound:
                return True, 1.0  # key lookup: at most one row
        if stats_of is not None:
            try:
                cardinality = float(stats_of(goal.pred).cardinality)
            except Exception:
                cardinality = _UNKNOWN_DB_COST
        else:
            cardinality = _UNKNOWN_DB_COST
        return True, cardinality * (0.1 ** bound_positions)
    # User-defined / recursive / unknown.
    bound_fraction = 0.0
    if goal.args:
        bound_count = sum(
            1
            for arg in goal.args
            if isinstance(arg, Const) or (isinstance(arg, Var) and arg in bound)
        )
        bound_fraction = bound_count / len(goal.args)
    return True, _USER_GOAL_COST * (1.0 - 0.5 * bound_fraction)
