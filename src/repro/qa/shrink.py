"""Shrinking failing cases to minimal replayable repro files.

Given a failing :class:`~repro.qa.generator.FuzzCase` and a failure
predicate, the shrinker produces the smallest case it can that still
fails *for the same class of reason*:

1. **ddmin over the query sequence** — delta debugging: try dropping
   chunks of queries (halves, then quarters, ...) and keep any reduction
   that still fails;
2. **structure reduction** — drop the advice, the path expression, and
   the fault schedule when the failure survives without them;
3. **garbage collection** — remove base tables no remaining query or
   advice view references.

Shrinking is deterministic (no randomness: reductions are tried in a
fixed order), so the same failing case always shrinks to the same repro.
The result is written as a JSON repro file that :func:`load_repro` reads
back and :func:`replay` re-executes through the differential runner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.qa.generator import FuzzCase, canonical_json
from repro.caql.parser import parse_query

#: A failure oracle: one-line reason the case fails, or None when clean.
FailureFn = Callable[[FuzzCase], "str | None"]

#: Format marker written into repro files.
REPRO_FORMAT = "repro.qa/1"


@dataclass
class ShrinkResult:
    """The minimal failing case plus how it was reached."""

    case: FuzzCase
    reason: str
    #: How many candidate reductions were evaluated.
    attempts: int
    #: Query count before → after.
    original_queries: int

    @property
    def queries(self) -> int:
        return len(self.case.queries)


def _with_queries(case: FuzzCase, queries: list[str]) -> FuzzCase:
    out = FuzzCase.from_dict(case.to_dict())
    out.queries = list(queries)
    return out


def _ddmin(
    case: FuzzCase, is_failing: FailureFn, counter: list[int]
) -> tuple[FuzzCase, str]:
    """Classic delta debugging over the query sequence."""
    queries = list(case.queries)
    reason = is_failing(case)
    assert reason is not None, "ddmin needs a failing case"
    granularity = 2
    while len(queries) >= 2:
        chunk = max(1, len(queries) // granularity)
        reduced = False
        start = 0
        while start < len(queries):
            candidate_queries = queries[:start] + queries[start + chunk:]
            if not candidate_queries:
                start += chunk
                continue
            candidate = _with_queries(case, candidate_queries)
            counter[0] += 1
            candidate_reason = is_failing(candidate)
            if candidate_reason is not None:
                queries = candidate_queries
                reason = candidate_reason
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart scanning the (shorter) sequence
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(queries):
                break
            granularity = min(len(queries), granularity * 2)
    return _with_queries(case, queries), reason


def _referenced_tables(case: FuzzCase) -> set[str]:
    names: set[str] = set()
    for text in list(case.queries) + list(case.advice_views):
        query = parse_query(text)
        for literal in query.relation_literals():
            names.add(literal.pred)
    return names


def shrink(case: FuzzCase, is_failing: FailureFn) -> ShrinkResult:
    """Reduce ``case`` to a minimal sequence that still fails."""
    counter = [0]
    original = len(case.queries)
    current, reason = _ddmin(case, is_failing, counter)

    # Structure reduction: advice, path, faults — in that order, each kept
    # out only when the failure survives its removal.
    for strip in ("path_views", "advice", "fault"):
        candidate = FuzzCase.from_dict(current.to_dict())
        if strip == "path_views":
            if not candidate.path_views:
                continue
            candidate.path_views = []
        elif strip == "advice":
            if not candidate.advice_views:
                continue
            candidate.advice_views = []
            candidate.advice_annotations = []
            candidate.path_views = []
        else:
            if candidate.fault is None:
                continue
            candidate.fault = None
        counter[0] += 1
        candidate_reason = is_failing(candidate)
        if candidate_reason is not None:
            current = candidate
            reason = candidate_reason

    # Garbage-collect unreferenced tables (no re-check needed: a table no
    # query mentions cannot influence any variant, but be conservative and
    # verify anyway so the repro is guaranteed failing).
    referenced = _referenced_tables(current)
    pruned = FuzzCase.from_dict(current.to_dict())
    pruned.tables = [t for t in pruned.tables if t["name"] in referenced]
    if len(pruned.tables) != len(current.tables):
        counter[0] += 1
        pruned_reason = is_failing(pruned)
        if pruned_reason is not None:
            current = pruned
            reason = pruned_reason

    return ShrinkResult(
        case=current, reason=reason, attempts=counter[0], original_queries=original
    )


# -- repro files -----------------------------------------------------------------------


def write_repro(path, case: FuzzCase, reason: str = "") -> None:
    """Write a replayable JSON repro file (canonical, so diff-friendly)."""
    payload = {
        "format": REPRO_FORMAT,
        "reason": reason,
        "case": case.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(payload))
        handle.write("\n")


def load_repro(path) -> FuzzCase:
    """Read a repro file back into a case."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != REPRO_FORMAT:
        raise ValueError(f"{path}: not a {REPRO_FORMAT} repro file")
    return FuzzCase.from_dict(payload["case"])


def replay(path):
    """Re-execute a repro file through the differential runner."""
    from repro.qa.differential import run_case

    return run_case(load_repro(path))
