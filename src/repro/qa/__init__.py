"""repro.qa — deterministic differential fuzzing and invariant auditing.

The correctness backstop for the whole bridge: seeded case generation
(:mod:`repro.qa.generator`), differential execution against an oracle
hierarchy (:mod:`repro.qa.differential`), invariant aggregation
(:mod:`repro.qa.invariants`), and failure shrinking + replayable repro
files (:mod:`repro.qa.shrink`).  ``scripts/braid_fuzz.py`` is the CLI.
"""

from repro.qa.generator import (
    CaseConfig,
    CaseGenerator,
    FuzzCase,
    canonical_json,
    encode_rows,
    fingerprint,
    mutate_equivalent,
    render_query,
)
from repro.qa.differential import (
    COLUMNAR_VARIANT,
    FEDERATED_VARIANT,
    VARIANTS,
    CaseReport,
    Divergence,
    FuzzReport,
    QueryOutcome,
    case_failure,
    run_case,
    run_corpus,
    variants_for,
)
from repro.qa.invariants import (
    InvariantViolation,
    audit,
    audit_cms,
    audit_stream,
    collect_violations,
)
from repro.qa.shrink import (
    ShrinkResult,
    load_repro,
    replay,
    shrink,
    write_repro,
)

__all__ = [
    "CaseConfig",
    "CaseGenerator",
    "FuzzCase",
    "canonical_json",
    "encode_rows",
    "fingerprint",
    "mutate_equivalent",
    "render_query",
    "COLUMNAR_VARIANT",
    "FEDERATED_VARIANT",
    "VARIANTS",
    "variants_for",
    "CaseReport",
    "Divergence",
    "FuzzReport",
    "QueryOutcome",
    "case_failure",
    "run_case",
    "run_corpus",
    "InvariantViolation",
    "audit",
    "audit_cms",
    "audit_stream",
    "collect_violations",
    "ShrinkResult",
    "load_repro",
    "replay",
    "shrink",
    "write_repro",
]
