"""Seeded generation of random-but-reproducible fuzz cases.

One :class:`FuzzCase` is everything a differential run needs: base tables
(typed columns, concrete rows), a sequence of concrete CAQL queries, the
session advice (view specifications + an optional path expression), an
optional fault schedule for the remote link, and a cache capacity.  Every
artifact is derived from a single integer seed through one
``random.Random`` stream, and the whole case round-trips through plain
JSON (:meth:`FuzzCase.to_dict` / :meth:`FuzzCase.from_dict`), so a failing
case can be written to disk and replayed bit-for-bit.

Queries are generated *as source text* and parsed with
:func:`repro.caql.parser.parse_query` — the repro file stays readable and
the generator cannot produce anything the public query interface would
not accept.  Columns are typed (int, str, or float) and conditions/joins
only ever relate same-typed operands, so generated queries never trip
Python's mixed-type comparison errors; the deliberate mixed-type probes
live in the hand-written edge-case tests instead.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, asdict

from repro.advice.language import AdviceSet
from repro.advice.path_expression import QueryPattern, Sequence
from repro.advice.view_spec import annotate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.faults import FaultPolicy
from repro.logic.terms import Atom, Const, Term, Var
from repro.caql.ast import COMPARISON_PREDS, ConjunctiveQuery
from repro.caql.parser import parse_query

#: Column type tags used in serialized cases.
COLUMN_TYPES = ("int", "str", "float")


def canonical_json(obj) -> str:
    """Canonical JSON: sorted keys, fixed separators, no NaN/Infinity.

    Two structurally equal objects always serialize to the same bytes, so
    SHA-256 over this text is a stable fingerprint across runs and
    machines.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def fingerprint(obj) -> str:
    """SHA-256 hex digest of an object's canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def encode_value(value) -> list:
    """A JSON-safe, type-preserving rendering of one column value.

    ``(type-name, repr)`` keeps ``1``, ``1.0``, and ``"1"`` distinct even
    though some of them ``repr``-collide with each other under other
    encodings — the same trick :func:`repro.core.rdi.canonical_bindings`
    uses for its ordering.
    """
    return [type(value).__name__, repr(value)]


def encode_rows(rows) -> list:
    """Rows as a sorted, canonical, JSON-safe structure (set semantics)."""
    return sorted([encode_value(v) for v in row] for row in rows)


@dataclass
class CaseConfig:
    """Size and shape knobs for generated cases (all ranges inclusive)."""

    tables: tuple[int, int] = (2, 4)
    rows: tuple[int, int] = (4, 20)
    arity: tuple[int, int] = (2, 3)
    #: Query templates per case (each one a named "view" the sequence
    #: re-instantiates, so exact hits and subsumption chains occur).
    views: tuple[int, int] = (2, 4)
    queries: tuple[int, int] = (4, 10)
    int_domain: int = 10
    str_domain: int = 7
    float_domain: int = 8
    #: Probability a case carries session advice at all.
    advice_rate: float = 0.6
    #: Given advice, probability it includes a path expression.
    path_rate: float = 0.5
    #: Probability a table gets a full-scan template (cache fodder that
    #: later join queries can partially match — the hybrid-plan driver).
    scan_rate: float = 0.4
    #: Cache capacities to draw from; small ones force eviction churn.
    cache_bytes_choices: tuple[int, ...] = (800, 3_000, 30_000, 4_000_000)
    #: Probability a case gets a fault schedule (0 = always-healthy link).
    fault_rate: float = 0.0
    #: Federated backends to spread tables over, as an inclusive range.
    #: ``(1, 1)`` (the default) keeps cases single-backend and draws
    #: nothing from the RNG, so pre-federation corpora are bit-identical.
    backends: tuple[int, int] = (1, 1)
    #: Probability a repeated view is re-asked as a provably-equivalent
    #: *variant spelling* (shuffled conjuncts, renamed variables,
    #: redundant predicates, respelled constants) of its previous source
    #: instead of verbatim or with fresh constants.  ``0.0`` (the
    #: default) draws nothing from the RNG, so pre-variants corpora are
    #: bit-identical.
    variant_rate: float = 0.0

    @classmethod
    def faulty(cls) -> "CaseConfig":
        """The PR-1 fault-schedule profile used by the degraded-mode fuzz."""
        return cls(fault_rate=0.6)

    @classmethod
    def federated(cls) -> "CaseConfig":
        """The federation profile: tables spread over 2–3 backends, so the
        federated variant exercises routing and cross-backend joins."""
        return cls(backends=(2, 3))

    @classmethod
    def churny(cls) -> "CaseConfig":
        """The eviction-churn profile: more views and queries over small
        caches, with scans on most tables so hybrid plans (and therefore
        operator-level intermediates — cache-derived parts, semijoin
        fetches, lineage chains) form and then get evicted mid-sequence.
        Exercises cost-based replacement and the pinned-descendant
        invariant under sustained pressure."""
        return cls(
            views=(3, 6),
            queries=(8, 16),
            scan_rate=0.7,
            cache_bytes_choices=(800, 1_200, 2_000, 3_000),
        )

    @classmethod
    def variants(cls) -> "CaseConfig":
        """The canonicalization profile: long sequences that re-ask each
        view as equivalent variant spellings, so the canonical cache tier
        (and its answer preservation) is exercised on most queries."""
        return cls(
            queries=(8, 16),
            variant_rate=0.6,
        )


@dataclass
class FuzzCase:
    """One self-contained differential-testing case (JSON round-trippable)."""

    seed: int
    index: int
    #: ``[{"name", "columns": [type tags], "rows": [[...], ...]}, ...]``
    tables: list[dict] = field(default_factory=list)
    #: Concrete CAQL query sources, in execution order.
    queries: list[str] = field(default_factory=list)
    #: General (uninstantiated) view definitions backing the advice.
    advice_views: list[str] = field(default_factory=list)
    #: One annotation pattern (``^?.`` characters) per advice view.
    advice_annotations: list[str] = field(default_factory=list)
    #: View names forming a path-expression sequence ([] = no path).
    path_views: list[str] = field(default_factory=list)
    #: :class:`FaultPolicy` kwargs, or None for a healthy link.
    fault: dict | None = None
    #: Query index at which the fault policy is installed (an outage that
    #: starts mid-sequence leaves a healthy prefix in the cache — the
    #: population degraded answers are served from).
    fault_onset: int = 0
    cache_bytes: int = 4_000_000
    #: Table name → backend name; {} = everything on one backend.  Only
    #: the federated differential variant consumes this.
    backends: dict = field(default_factory=dict)

    # -- serialization ---------------------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        return cls(
            seed=data["seed"],
            index=data["index"],
            tables=[dict(t) for t in data["tables"]],
            queries=list(data["queries"]),
            advice_views=list(data.get("advice_views", ())),
            advice_annotations=list(data.get("advice_annotations", ())),
            path_views=list(data.get("path_views", ())),
            fault=dict(data["fault"]) if data.get("fault") else None,
            fault_onset=data.get("fault_onset", 0),
            cache_bytes=data.get("cache_bytes", 4_000_000),
            backends=dict(data.get("backends") or {}),
        )

    def fingerprint(self) -> str:
        """Stable identity of this case's full content."""
        return fingerprint(self.to_dict())

    # -- materialization --------------------------------------------------------------
    def build_tables(self) -> list[Relation]:
        """The base tables as concrete relations (rows become tuples)."""
        out = []
        for table in self.tables:
            columns = tuple(f"a{i}" for i in range(len(table["columns"])))
            schema = Schema(table["name"], columns)
            out.append(Relation(schema, [tuple(row) for row in table["rows"]]))
        return out

    def database(self) -> dict[str, Relation]:
        """Name → relation mapping (the oracle's lookup)."""
        return {relation.schema.name: relation for relation in self.build_tables()}

    def parsed_queries(self) -> list[ConjunctiveQuery]:
        return [parse_query(text) for text in self.queries]

    def build_advice(self) -> AdviceSet | None:
        """The session advice, or None when the case carries none."""
        if not self.advice_views:
            return None
        views = [
            annotate(parse_query(text), pattern)
            for text, pattern in zip(self.advice_views, self.advice_annotations)
        ]
        path = None
        if self.path_views:
            path = Sequence(
                tuple(QueryPattern(name) for name in self.path_views),
                lower=1,
                upper=None,
            )
        return AdviceSet.from_views(views, path_expression=path)

    def build_fault_policy(self) -> FaultPolicy | None:
        if not self.fault:
            return None
        return FaultPolicy(**self.fault)


def case_from_relations(
    relations: dict[str, "Relation"],
    queries: list[str],
    seed: int = 0,
    index: int = 0,
    **kwargs,
) -> FuzzCase:
    """A case built from concrete relations and query texts.

    Used to persist hand-constructed or property-test counterexamples as
    the same replayable repro files the fuzzer writes.  Column type tags
    are inferred from the first row (a column of an empty relation is
    tagged ``int``; the tag only matters to the generator, not to replay).
    """
    tables = []
    for name in sorted(relations):
        relation = relations[name]
        rows = relation.rows
        arity = relation.schema.arity
        columns = [
            type(rows[0][i]).__name__ if rows else "int" for i in range(arity)
        ]
        tables.append(
            {"name": name, "columns": columns, "rows": [list(r) for r in rows]}
        )
    return FuzzCase(seed=seed, index=index, tables=tables, queries=list(queries), **kwargs)


# -- the equivalent-query mutator -----------------------------------------------------


def render_query(query: ConjunctiveQuery) -> str:
    """A parsed query back as CAQL source (``parse_query``'s inverse).

    Comparison literals are rendered infix (``X =< 3``) — their parsed
    ``Atom`` form would print prefix, which the grammar rejects.
    """

    def term(t: Term) -> str:
        return str(t)

    parts = []
    for literal in query.literals:
        if literal.pred in COMPARISON_PREDS:
            left, right = literal.args
            parts.append(f"{term(left)} {literal.pred} {term(right)}")
        else:
            inner = ", ".join(term(a) for a in literal.args)
            parts.append(f"{literal.pred}({inner})")
    head = ", ".join(term(a) for a in query.answers)
    return f"{query.name}({head}) :- {', '.join(parts)}"


def _respell(value: object) -> object:
    """The float spelling of an int when exact (``3`` → ``3.0``)."""
    if type(value) is int and float(value) == value:
        return float(value)
    return value


def _weaker_bounds(literal: Atom, rng: random.Random) -> list[Atom]:
    """Redundant comparisons implied by ``literal`` (numeric only).

    * a strictly looser copy of a bound (``X < 5`` → also ``X < 8``);
    * the exclusion of a strict bound's own endpoint (``X < 5`` → also
      ``X \\= 5``);
    * the non-strict bounds an equality pin implies (``X = 5`` → also
      ``X >= 5`` / ``X =< 5``).

    Every emitted conjunct folds away during canonicalization, so the
    mutated query keeps both its answers and its canonical key.
    """
    left, right = literal.args
    if not isinstance(left, Var) or not isinstance(right, Const):
        return []
    value = right.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return []
    slack = rng.randint(1, 4)
    out: list[Atom] = []
    if literal.pred in ("<", "=<"):
        out.append(Atom(literal.pred, (left, Const(value + slack))))
    elif literal.pred in (">", ">="):
        out.append(Atom(literal.pred, (left, Const(value - slack))))
    elif literal.pred == "=":
        out.append(Atom(rng.choice((">=", "=<")), (left, Const(value))))
    if literal.pred in ("<", ">"):
        out.append(Atom("\\=", (left, Const(value))))
    return out


def mutate_equivalent(source: str, rng: random.Random) -> str:
    """A provably-equivalent variant spelling of a CAQL query.

    Applies a seeded mix of answer-preserving, canonical-key-preserving
    rewrites: conjunct shuffling, bijective variable renaming, redundant
    comparison insertion (duplicates, looser bounds, pin-implied
    bounds), and constant respelling (``1`` → ``1.0``) in body
    positions.  Head constants are never respelled — they are output
    values, and the differential fuzzer encodes answers
    type-preservingly.  The result is returned as source text, so a
    mutated case stays JSON-round-trippable and replayable like any
    other.
    """
    query = parse_query(source)
    literals = list(query.literals)

    # Redundant comparison conjuncts (insertion points are drawn after
    # content, so the subsequent shuffle owns final placement).
    extra: list[Atom] = []
    for literal in literals:
        if literal.pred in COMPARISON_PREDS and rng.random() < 0.4:
            if rng.random() < 0.4:
                extra.append(literal)  # verbatim duplicate
            else:
                implied = _weaker_bounds(literal, rng)
                if implied:
                    extra.append(rng.choice(implied))
    literals.extend(extra)

    # Constant respelling in body positions (relation arguments and
    # comparison right-hand sides both become selection conditions).
    def respell_atom(literal: Atom) -> Atom:
        args = tuple(
            Const(_respell(a.value))
            if isinstance(a, Const) and rng.random() < 0.5
            else a
            for a in literal.args
        )
        return Atom(literal.pred, args, negated=literal.negated)

    literals = [respell_atom(l) if rng.random() < 0.6 else l for l in literals]

    # Conjunct shuffling.  Comparisons move freely; relation literals may
    # reorder only while each answer variable's *first-binding* literal
    # stays first among its binders — the projection takes its output
    # spelling from that representative occurrence, so moving it is not
    # answer-preserving on rows that join ==-equal values of different
    # types (1 vs 1.0), and correspondingly not key-preserving.
    relations = [l for l in literals if l.pred not in COMPARISON_PREDS]
    comparisons = [l for l in literals if l.pred in COMPARISON_PREDS]
    shuffled = list(relations)
    rng.shuffle(shuffled)

    def first_binder(sequence: list[Atom], var: Var) -> Atom:
        return next(l for l in sequence if var in l.variables())

    answer_vars = [t for t in query.answers if isinstance(t, Var)]
    if any(
        first_binder(shuffled, v) != first_binder(relations, v)
        for v in answer_vars
    ):
        shuffled = relations
    literals = list(shuffled)
    for comparison in comparisons:
        literals.insert(rng.randrange(len(literals) + 1), comparison)

    # Bijective variable renaming (never colliding with the originals).
    variables = sorted(
        {t for l in literals for t in l.args if isinstance(t, Var)}
        | {t for t in query.answers if isinstance(t, Var)},
        key=lambda v: v.name,
    )
    fresh = [f"W{k}" for k in range(len(variables))]
    rng.shuffle(fresh)
    renaming: dict[Var, Var] = {v: Var(n) for v, n in zip(variables, fresh)}

    def rename(term: Term) -> Term:
        return renaming.get(term, term) if isinstance(term, Var) else term

    literals = [
        Atom(l.pred, tuple(rename(a) for a in l.args), negated=l.negated)
        for l in literals
    ]
    answers = tuple(rename(a) for a in query.answers)
    return render_query(ConjunctiveQuery(query.name, answers, tuple(literals)))


class CaseGenerator:
    """Derives an unbounded stream of :class:`FuzzCase` from one seed."""

    def __init__(self, seed: int, config: CaseConfig | None = None):
        self.seed = seed
        self.config = config if config is not None else CaseConfig()

    # -- public API -------------------------------------------------------------------
    def generate(self, index: int) -> FuzzCase:
        """Case number ``index`` (depends only on seed, config, and index)."""
        rng = random.Random(self.seed * 1_000_003 + index)
        cfg = self.config
        tables = self._gen_tables(rng, cfg)
        templates = self._gen_templates(rng, cfg, tables)
        queries = self._gen_sequence(rng, cfg, templates)
        advice_views: list[str] = []
        annotations: list[str] = []
        path_views: list[str] = []
        if templates and rng.random() < cfg.advice_rate:
            for template in templates:
                advice_views.append(template["general"])
                annotations.append(
                    "".join(rng.choice("^?.") for _ in range(template["arity"]))
                )
            if rng.random() < cfg.path_rate:
                path_views = [t["name"] for t in templates]
        fault = None
        fault_onset = 0
        if rng.random() < cfg.fault_rate:
            fault_onset = rng.randrange(0, max(len(queries), 1))
            fault = {
                "seed": rng.randrange(1 << 16),
                "transient_rate": round(rng.uniform(0.1, 0.5), 3),
                "permanent_rate": round(rng.uniform(0.0, 0.15), 3),
                "stall_rate": round(rng.uniform(0.0, 0.3), 3),
                "stall_seconds": 0.05,
                "disconnect_rate": round(rng.uniform(0.0, 0.3), 3),
                "disconnect_after_buffers": rng.randrange(0, 3),
            }
        backends: dict[str, str] = {}
        if cfg.backends[1] > 1:
            # Drawn only under a federated config, so single-backend
            # profiles keep their exact pre-federation RNG streams.
            count = rng.randint(*cfg.backends)
            names = [f"s{k}" for k in range(count)]
            backends = {table["name"]: rng.choice(names) for table in tables}
        return FuzzCase(
            seed=self.seed,
            index=index,
            tables=tables,
            queries=queries,
            advice_views=advice_views,
            advice_annotations=annotations,
            path_views=path_views,
            fault=fault,
            fault_onset=fault_onset,
            cache_bytes=rng.choice(list(cfg.cache_bytes_choices)),
            backends=backends,
        )

    def corpus(self, count: int, start: int = 0) -> list[FuzzCase]:
        """Cases ``start .. start+count-1`` (each independent of the rest)."""
        return [self.generate(start + i) for i in range(count)]

    # -- values ------------------------------------------------------------------------
    def _pool(self, kind: str) -> list:
        cfg = self.config
        if kind == "int":
            return list(range(cfg.int_domain))
        if kind == "str":
            return [f"v{k}" for k in range(cfg.str_domain)]
        return [k + 0.5 for k in range(cfg.float_domain)]

    @staticmethod
    def _render(value) -> str:
        """A constant as CAQL source (strings are lowercase atoms)."""
        return value if isinstance(value, str) else repr(value)

    # -- tables ------------------------------------------------------------------------
    def _gen_tables(self, rng: random.Random, cfg: CaseConfig) -> list[dict]:
        count = rng.randint(*cfg.tables)
        tables = []
        for i in range(count):
            arity = rng.randint(*cfg.arity)
            columns = [rng.choice(COLUMN_TYPES) for _ in range(arity)]
            pools = [self._pool(kind) for kind in columns]
            n_rows = rng.randint(*cfg.rows)
            seen = set()
            rows = []
            for _ in range(n_rows):
                row = tuple(rng.choice(pool) for pool in pools)
                if row not in seen:  # base tables are sets too
                    seen.add(row)
                    rows.append(list(row))
            tables.append({"name": f"b{i}", "columns": columns, "rows": rows})
        return tables

    # -- query templates ---------------------------------------------------------------
    def _gen_templates(
        self, rng: random.Random, cfg: CaseConfig, tables: list[dict]
    ) -> list[dict]:
        count = rng.randint(*cfg.views)
        templates = []
        # Full-scan templates first: once cached, they partially cover
        # later join queries over the same table (hybrid plans, semijoin).
        for table in tables:
            if len(templates) >= count:
                break
            if rng.random() < cfg.scan_rate:
                templates.append(self._scan_template(table, f"d{len(templates)}"))
        attempts = 0
        while len(templates) < count and attempts < count * 4:
            attempts += 1
            template = self._gen_template(
                rng, cfg, tables, f"d{len(templates)}"
            )
            if template is not None:
                templates.append(template)
        return templates

    @staticmethod
    def _scan_template(table: dict, name: str) -> dict:
        variables = [f"V{i}" for i in range(len(table["columns"]))]
        body = f"{table['name']}({', '.join(variables)})"
        return {
            "name": name,
            "arity": len(variables),
            "general": f"{name}({', '.join(variables)}) :- {body}",
            "holes": [],
        }

    def _gen_template(
        self, rng: random.Random, cfg: CaseConfig, tables: list[dict], name: str
    ) -> dict | None:
        """One named query shape: fixed body, plus typed "holes" whose
        constants are re-drawn at every instantiation (the repetition is
        what exercises exact hits, subsumption, and generalization)."""
        n_occurrences = 1 if len(tables) < 2 or rng.random() < 0.5 else 2
        occurrences = rng.sample(tables, n_occurrences)

        # Assign one variable per column; a two-occurrence template joins
        # on a same-typed column pair when one exists.
        var_names: list[list[str]] = []
        var_types: dict[str, str] = {}
        counter = 0
        for table in occurrences:
            names = []
            for kind in table["columns"]:
                var = f"V{counter}"
                counter += 1
                names.append(var)
                var_types[var] = kind
            var_names.append(names)
        if n_occurrences == 2:
            pairs = [
                (i, j)
                for i, left in enumerate(occurrences[0]["columns"])
                for j, right in enumerate(occurrences[1]["columns"])
                if left == right
            ]
            if not pairs:
                return None  # no same-typed join column: skip this shape
            i, j = rng.choice(pairs)
            dropped = var_names[1][j]
            var_types.pop(dropped)
            var_names[1][j] = var_names[0][i]

        # Occasionally pin an argument position to a constant.
        literals = []
        for table, names in zip(occurrences, var_names):
            args = []
            for position, var in enumerate(names):
                shared = sum(n.count(var) for n in var_names) > 1
                if not shared and rng.random() < 0.15:
                    pool = self._pool(table["columns"][position])
                    args.append(self._render(rng.choice(pool)))
                    var_types.pop(var, None)
                else:
                    args.append(var)
            literals.append(f"{table['name']}({', '.join(args)})")

        candidates = sorted(var_types)
        if not candidates:
            return None  # every position got pinned: not a useful shape
        head = rng.sample(candidates, rng.randint(1, len(candidates)))

        # Fixed conditions stay in the general form; holes do not.
        fixed: list[str] = []
        holes: list[dict] = []
        for var in candidates:
            if rng.random() >= 0.45:
                continue
            kind = var_types[var]
            op = rng.choice(("<", "=<", ">", ">=", "=") if kind != "str" else ("=", "<", ">"))
            condition = {"var": var, "op": op, "type": kind}
            if rng.random() < 0.6:
                holes.append(condition)
            else:
                pool = self._pool(kind)
                fixed.append(f"{var} {op} {self._render(rng.choice(pool))}")

        body = ", ".join(literals + fixed)
        general = f"{name}({', '.join(head)}) :- {body}"
        return {
            "name": name,
            "arity": len(head),
            "general": general,
            "holes": holes,
        }

    # -- the query sequence ------------------------------------------------------------
    def _gen_sequence(
        self, rng: random.Random, cfg: CaseConfig, templates: list[dict]
    ) -> list[str]:
        if not templates:
            return []
        count = rng.randint(*cfg.queries)
        queries: list[str] = []
        previous: dict[str, str] = {}
        for _ in range(count):
            template = rng.choice(templates)
            name = template["name"]
            if (
                cfg.variant_rate > 0  # gate first: profiles without
                # variants draw nothing extra and keep their exact
                # pre-variants RNG streams (same convention as backends)
                and name in previous
                and rng.random() < cfg.variant_rate
            ):
                # An equivalent variant spelling of the last ask: the
                # canonical cache tier must serve it with identical rows.
                queries.append(mutate_equivalent(previous[name], rng))
                continue
            if name in previous and rng.random() < 0.25:
                queries.append(previous[name])  # verbatim repeat: exact hit
                continue
            extra = [
                f"{h['var']} {h['op']} {self._render(rng.choice(self._pool(h['type'])))}"
                for h in template["holes"]
            ]
            text = template["general"]
            if extra:
                text = f"{text}, {', '.join(extra)}"
            previous[name] = text
            queries.append(text)
        return queries
