"""Differential execution of fuzz cases across independent oracles.

Every query of a case runs through five implementations that must agree:

* ``full`` — the complete CMS (caching, subsumption, lazy evaluation,
  prefetch, generalization, indexing, parallel tracks, semijoin,
  batching), with the case's fault schedule installed when it has one;
* ``nocache`` — the CMS with every technique off (``CMSFeatures.none()``),
  a loose-coupling shim through the same code paths;
* ``loose`` / ``exact-cache`` / ``relation-buffer`` — the three
  comparison baselines;
* the **oracle** — direct evaluation over the case's base tables via
  :func:`repro.caql.eval.evaluate_conjunctive`, no caching machinery at
  all.

The contract: a non-degraded answer must be tuple-set-equal to the
oracle's; an answer that diverges must be tagged ``degraded`` (and only
faulted runs may degrade); a faulted variant may error, a healthy one may
not.  The full CMS additionally has its planner audited on every plan and
its cache/metrics/plan/stream invariants checked after every query.
Reports carry canonical fingerprints, so byte-identical same-seed reruns
are asserted by comparing two strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.exact_cache import ExactMatchCache
from repro.baselines.loose import LooseCoupling
from repro.baselines.relation_cache import SingleRelationBuffer
from repro.common.errors import BraidError, InvariantViolation
from repro.caql.eval import evaluate_conjunctive
from repro.core.cms import CacheManagementSystem, CMSFeatures
from repro.remote.server import RemoteDBMS
from repro.qa.generator import FuzzCase, encode_rows, fingerprint
from repro.qa.invariants import audit_cms, audit_stream

#: Variant names, in report order.  ``full`` first: it is the system under
#: test; the rest are the cross-checks.
VARIANTS = ("full", "nocache", "loose", "exact-cache", "relation-buffer")

#: The engine axis: the full CMS again, but with local execution on the
#: columnar batch engine (compiled predicates, vectorized kernels).  Not
#: part of :data:`VARIANTS` for compatibility of existing report shapes;
#: :func:`variants_for` adds it when the engine axis is requested.
COLUMNAR_VARIANT = "columnar"

#: The federation axis: the full CMS again, but with the case's base
#: tables spread across several backends (``FuzzCase.backends``) behind a
#: :class:`~repro.federation.interface.FederatedInterface`.  Cross-backend
#: joins go through scatter/gather and semijoin ship-bindings; the answers
#: must still be tuple-set-equal to the single-backend oracle.  Added by
#: ``braid_fuzz.py --profile federated``.
FEDERATED_VARIANT = "federated"


def variants_for(engine: str) -> tuple[str, ...]:
    """The variant tuple for an ``--engine`` selection.

    * ``tuple`` — the historical five variants (no engine axis);
    * ``both`` — those five plus the columnar engine, every answer
      cross-checked against all of them and the oracle;
    * ``columnar`` — just the two full-CMS engines head to head (a fast
      engine-equivalence run).
    """
    if engine == "tuple":
        return VARIANTS
    if engine == "both":
        return VARIANTS + (COLUMNAR_VARIANT,)
    if engine == "columnar":
        return ("full", COLUMNAR_VARIANT)
    raise ValueError(f"unknown engine {engine!r} (expected tuple/columnar/both)")


@dataclass
class QueryOutcome:
    """One (query, variant) execution."""

    query_index: int
    variant: str
    #: ``ok``, ``degraded``, or ``error``.
    status: str
    #: Canonical digest of the produced row set ("" for errors).
    digest: str = ""
    #: Error type name when status == "error".
    error: str = ""

    def to_dict(self) -> dict:
        return {
            "query_index": self.query_index,
            "variant": self.variant,
            "status": self.status,
            "digest": self.digest,
            "error": self.error,
        }


@dataclass
class Divergence:
    """A disagreement the contract does not excuse."""

    query_index: int
    variant: str
    #: ``wrong-rows``, ``unexpected-error``, or ``invariant``.
    kind: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "query_index": self.query_index,
            "variant": self.variant,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class CaseReport:
    """Everything the differential runner observed for one case."""

    case_index: int
    case_fingerprint: str
    outcomes: list[QueryOutcome] = field(default_factory=list)
    divergences: list[Divergence] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: Degraded answers observed (allowed divergences, for reporting).
    degraded_answers: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.divergences or self.violations)

    def to_dict(self) -> dict:
        return {
            "case_index": self.case_index,
            "case_fingerprint": self.case_fingerprint,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "divergences": [d.to_dict() for d in self.divergences],
            "violations": list(self.violations),
            "degraded_answers": self.degraded_answers,
        }

    def fingerprint(self) -> str:
        return fingerprint(self.to_dict())


@dataclass
class FuzzReport:
    """The aggregate over a corpus run."""

    seed: int
    cases: int = 0
    divergences: int = 0
    violations: int = 0
    degraded_answers: int = 0
    failed_cases: list[int] = field(default_factory=list)
    reports: list[CaseReport] = field(default_factory=list)
    corpus_fingerprint: str = ""

    @property
    def clean(self) -> bool:
        return not self.failed_cases

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "cases": self.cases,
            "divergences": self.divergences,
            "violations": self.violations,
            "degraded_answers": self.degraded_answers,
            "failed_cases": list(self.failed_cases),
            "corpus_fingerprint": self.corpus_fingerprint,
            "reports": [r.to_dict() for r in self.reports],
        }

    def fingerprint(self) -> str:
        return fingerprint(self.to_dict())


# -- building the systems under test ------------------------------------------------


def _load_server(case: FuzzCase) -> RemoteDBMS:
    server = RemoteDBMS()
    for relation in case.build_tables():
        server.load_table(relation)
    return server


def _build_federation(case: FuzzCase):
    """The case's tables spread over their assigned backends.

    Tables not named in ``case.backends`` (single-backend corpora) land on
    a default ``s0`` backend, so the variant degenerates to one backend
    behind the federated plumbing — still a useful smoke of the routing
    layer.  Backends are deterministic pure-Python engines, healthy: the
    federation axis tests scatter/gather equivalence, not fault handling.
    """
    from repro.federation import BackendSpec, build_federation

    grouped: dict[str, list] = {}
    for relation in case.build_tables():
        home = case.backends.get(relation.schema.name, "s0")
        grouped.setdefault(home, []).append(relation)
    specs = [
        BackendSpec(name=name, tables=tuple(grouped[name]))
        for name in sorted(grouped)
    ]
    return build_federation(specs)


def build_variant(case: FuzzCase, variant: str):
    """A fresh system of the named variant, loaded with the case's tables.

    Only ``full`` ever gets the fault schedule (installed by the runner at
    ``case.fault_onset``, modelling an outage window): the cross-checks
    establish what the answers *should* be, so their links stay healthy.
    """
    if variant == "full":
        cms = CacheManagementSystem(
            _load_server(case),
            capacity_bytes=case.cache_bytes,
            features=CMSFeatures(),
        )
        cms.planner.audit = True
        return cms
    if variant == "nocache":
        cms = CacheManagementSystem(
            _load_server(case),
            capacity_bytes=case.cache_bytes,
            features=CMSFeatures.none(),
        )
        cms.planner.audit = True
        return cms
    if variant == COLUMNAR_VARIANT:
        # The full CMS on the columnar batch engine.  Its link stays
        # healthy (like every cross-check): the engine axis tests engine
        # equivalence, not fault handling.
        cms = CacheManagementSystem(
            _load_server(case),
            capacity_bytes=case.cache_bytes,
            features=CMSFeatures(columnar=True),
        )
        cms.planner.audit = True
        return cms
    if variant == FEDERATED_VARIANT:
        # The full CMS over the case's tables scattered across backends.
        # Healthy links (like every cross-check): the federation axis
        # tests cross-backend join equivalence, not fault handling.
        cms = _build_federation(case).cms(
            capacity_bytes=case.cache_bytes, features=CMSFeatures()
        )
        cms.planner.audit = True
        return cms
    if variant == "loose":
        return LooseCoupling(_load_server(case))
    if variant == "exact-cache":
        return ExactMatchCache(_load_server(case))
    if variant == "relation-buffer":
        return SingleRelationBuffer(_load_server(case))
    raise ValueError(f"unknown variant: {variant}")


# -- running one case ------------------------------------------------------------------


def run_case(case: FuzzCase, variants: tuple[str, ...] = VARIANTS) -> CaseReport:
    """Execute the case through every variant and the oracle; compare."""
    report = CaseReport(case_index=case.index, case_fingerprint=case.fingerprint())
    queries = case.parsed_queries()
    database = case.database()
    advice = case.build_advice()
    faulted = case.fault is not None

    expected: list[str] = []
    for query in queries:
        rows = evaluate_conjunctive(query, database.__getitem__)
        expected.append(fingerprint(encode_rows(rows.rows)))

    systems = {name: build_variant(case, name) for name in variants}
    for system in systems.values():
        system.begin_session(advice)

    for q_index, query in enumerate(queries):
        if faulted and "full" in systems and q_index == case.fault_onset:
            # The outage begins: the healthy prefix is already cached (and
            # archived), which is exactly what degraded answers draw on.
            systems["full"].remote.set_fault_policy(case.build_fault_policy())
        for name, system in systems.items():
            may_fault = faulted and name == "full" and q_index >= case.fault_onset
            try:
                stream = system.query(query)
                rows = stream.fetch_all()
            except BraidError as error:
                report.outcomes.append(
                    QueryOutcome(q_index, name, "error", error=type(error).__name__)
                )
                if not may_fault:
                    report.divergences.append(
                        Divergence(
                            q_index,
                            name,
                            "unexpected-error",
                            f"{type(error).__name__}: {error}",
                        )
                    )
                continue
            digest = fingerprint(encode_rows(rows))
            degraded = bool(getattr(stream, "degraded", False))
            status = "degraded" if degraded else "ok"
            report.outcomes.append(QueryOutcome(q_index, name, status, digest=digest))
            if degraded:
                # Allowed to diverge, but only a faulted link may degrade.
                report.degraded_answers += 1
                if not may_fault:
                    report.divergences.append(
                        Divergence(
                            q_index, name, "unexpected-error",
                            "degraded answer on a healthy link",
                        )
                    )
            elif digest != expected[q_index]:
                report.divergences.append(
                    Divergence(
                        q_index,
                        name,
                        "wrong-rows",
                        f"non-degraded answer differs from oracle "
                        f"({digest[:12]} != {expected[q_index][:12]})",
                    )
                )
            try:
                audit_stream(stream)
                if name in ("full", "nocache", COLUMNAR_VARIANT, FEDERATED_VARIANT):
                    audit_cms(system)
            except InvariantViolation as violation:
                report.violations.append(f"q{q_index}/{name}: {violation}")

    return report


def run_corpus(
    cases: list[FuzzCase],
    seed: int,
    variants: tuple[str, ...] = VARIANTS,
    keep_reports: bool = True,
) -> FuzzReport:
    """Run every case; aggregate divergences, violations, fingerprints."""
    report = FuzzReport(
        seed=seed,
        corpus_fingerprint=fingerprint([case.to_dict() for case in cases]),
    )
    for case in cases:
        case_report = run_case(case, variants)
        report.cases += 1
        report.divergences += len(case_report.divergences)
        report.violations += len(case_report.violations)
        report.degraded_answers += case_report.degraded_answers
        if case_report.failed:
            report.failed_cases.append(case.index)
        if keep_reports or case_report.failed:
            report.reports.append(case_report)
    return report


def case_failure(case: FuzzCase, variants: tuple[str, ...] = VARIANTS) -> str | None:
    """The shrinker's oracle: a one-line failure reason, or None if clean."""
    try:
        report = run_case(case, variants)
    except BraidError as error:  # a crash is a failure too
        return f"crash: {type(error).__name__}: {error}"
    if report.violations:
        return f"invariant: {report.violations[0]}"
    if report.divergences:
        first = report.divergences[0]
        return f"{first.kind} at q{first.query_index}/{first.variant}"
    return None
