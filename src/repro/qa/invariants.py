"""The invariant auditor: one place to run every ``check_invariants`` hook.

The hooks themselves live on the audited classes — cheap, read-only
methods that raise :class:`~repro.common.errors.InvariantViolation` when
an internal consistency property is broken:

* :meth:`repro.core.cache.Cache.check_invariants` — index bijections,
  refcount sanity, condemned-set disjointness;
* :meth:`repro.core.plan.QueryPlan.check_invariants` — every occurrence
  covered by exactly one part, epoch stamps, semijoin binding sources
  (enabled on every plan via :attr:`QueryPlanner.audit`);
* :meth:`repro.core.executor.ResultStream.check_invariants` — set
  semantics, schema arity, and the drain-once contract (a drained
  generator replays its memo exactly and produces nothing new);
* :meth:`repro.common.metrics.Metrics.check_invariants` — no negative or
  non-finite counters, recursive over session scopes.

This module only *aggregates*: it walks a CMS (or any collection of
auditable objects) and either raises on the first violation or collects
every violation message for reporting.  The differential runner calls
:func:`audit_cms` and :func:`audit_stream` after every query.
"""

from __future__ import annotations

from repro.common.errors import InvariantViolation

__all__ = [
    "InvariantViolation",
    "audit",
    "audit_cms",
    "audit_stream",
    "collect_violations",
]


def audit(*objects) -> None:
    """Run ``check_invariants`` on every argument; raise on the first
    violation.  Objects without a hook are skipped (baselines, say), so a
    mixed fleet of systems can be audited with one call."""
    for obj in objects:
        hook = getattr(obj, "check_invariants", None)
        if hook is not None:
            hook()


def audit_cms(cms) -> None:
    """Audit one CMS end to end: cache, metrics ledger (from its root),
    and the last produced plan.  Raises :class:`InvariantViolation`."""
    audit(cms)


def audit_stream(stream) -> None:
    """Audit one result stream.  Raises :class:`InvariantViolation`."""
    audit(stream)


def collect_violations(*objects) -> list[str]:
    """Like :func:`audit`, but returns every violation message instead of
    raising — each object is checked even when an earlier one failed."""
    violations: list[str] = []
    for obj in objects:
        hook = getattr(obj, "check_invariants", None)
        if hook is None:
            continue
        try:
            hook()
        except InvariantViolation as violation:
            violations.append(str(violation))
    return violations
