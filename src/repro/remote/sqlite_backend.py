"""A sqlite3-backed remote DBMS engine.

The paper's prototype talked to an unmodified INGRES server and an IDM-500
database machine; the point was that the remote DBMS is a *conventional*
system used as-is.  This backend demonstrates the same property with a real
SQL engine: base tables live in an in-memory sqlite3 database and every
request is rendered to SQL text and executed by sqlite.

Behaviourally interchangeable with
:class:`~repro.remote.engine.PurePythonEngine` (same requests, same result
relations); the server-work metric is approximated as the sum of scanned
base-table cardinalities plus the result size, since sqlite does not expose
touched-tuple counts.
"""

from __future__ import annotations

import sqlite3

from repro.common.errors import RemoteDBMSError, UnknownRelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.engine import EngineResult, _qualified
from repro.remote.sql import (
    FetchTableQuery,
    SelectQuery,
    SqlCol,
    SqlInList,
    SqlLit,
    render_literal,
)


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


class SqliteEngine:
    """Stores base tables in sqlite and executes rendered SQL."""

    def __init__(self) -> None:
        self._connection = sqlite3.connect(":memory:")
        self._schemas: dict[str, Schema] = {}
        self._cardinalities: dict[str, int] = {}

    # -- data definition ---------------------------------------------------------
    def create_table(self, relation: Relation) -> None:
        """(Re)create a base table in sqlite and bulk-load its rows."""
        name = relation.schema.name
        cursor = self._connection.cursor()
        cursor.execute(f"DROP TABLE IF EXISTS {_quote(name)}")
        columns = ", ".join(_quote(a) for a in relation.schema.attributes)
        cursor.execute(f"CREATE TABLE {_quote(name)} ({columns})")
        placeholders = ", ".join("?" for _ in relation.schema.attributes)
        cursor.executemany(
            f"INSERT INTO {_quote(name)} VALUES ({placeholders})", relation.rows
        )
        self._connection.commit()
        self._schemas[name] = relation.schema
        self._cardinalities[name] = len(relation)

    def table_schema(self, name: str) -> Schema:
        """The schema a table was loaded with."""
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def tables(self) -> list[str]:
        """Names of all loaded tables, sorted."""
        return sorted(self._schemas)

    # -- execution ------------------------------------------------------------------
    def execute(self, request: SelectQuery | FetchTableQuery) -> EngineResult:
        """Execute a DML request via rendered SQL."""
        if isinstance(request, FetchTableQuery):
            schema = self.table_schema(request.table)
            cursor = self._connection.execute(f"SELECT * FROM {_quote(request.table)}")
            relation = Relation(schema, (tuple(row) for row in cursor))
            return EngineResult(relation, tuples_touched=len(relation))
        return self._execute_select(request)

    def _execute_select(self, query: SelectQuery) -> EngineResult:
        for ref in query.tables:
            if ref.table not in self._schemas:
                raise UnknownRelationError(ref.table)
        sql = self._render(query)
        try:
            cursor = self._connection.execute(sql)
        except sqlite3.Error as exc:
            raise RemoteDBMSError(f"sqlite rejected {sql!r}: {exc}") from exc
        attrs = tuple(_qualified(c.alias, c.attr) for c in query.select)
        relation = Relation(Schema("result", attrs), (tuple(row) for row in cursor))
        touched = sum(self._cardinalities[ref.table] for ref in query.tables)
        touched += len(relation)
        return EngineResult(relation, tuples_touched=touched)

    def _render(self, query: SelectQuery) -> str:
        head = "SELECT DISTINCT" if query.distinct else "SELECT"
        columns = ", ".join(
            f"{_quote(c.alias)}.{_quote(c.attr)}" for c in query.select
        )
        tables = ", ".join(
            f"{_quote(t.table)} AS {_quote(t.alias)}" for t in query.tables
        )
        sql = f"{head} {columns} FROM {tables}"
        if query.where:
            parts = []
            for condition in query.where:
                if isinstance(condition, SqlInList):
                    column = f"{_quote(condition.column.alias)}.{_quote(condition.column.attr)}"
                    values = ", ".join(render_literal(v) for v in condition.values)
                    parts.append(f"{column} IN ({values})")
                    continue
                left = self._render_operand(condition.left)
                right = self._render_operand(condition.right)
                parts.append(f"{left} {condition.op} {right}")
            sql += " WHERE " + " AND ".join(parts)
        return sql

    @staticmethod
    def _render_operand(operand) -> str:
        if isinstance(operand, SqlCol):
            return f"{_quote(operand.alias)}.{_quote(operand.attr)}"
        if isinstance(operand, SqlLit):
            return render_literal(operand.value)
        raise RemoteDBMSError(f"bad condition operand: {operand!r}")

    def close(self) -> None:
        """Close the sqlite connection."""
        self._connection.close()
