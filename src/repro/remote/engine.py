"""The remote DBMS's query engine (pure-Python implementation).

Executes DML requests (:class:`~repro.remote.sql.SelectQuery`) against
stored relations using the relational substrate.  The engine also reports a
``tuples_touched`` count — the server-side work metric that the network
model converts into simulated server time.

This is deliberately a plain conventional engine: selections are pushed
down, joins are executed in FROM-clause order with hash joins, and there is
no caching, no subsumption, and no lazy interface — those are exactly the
capabilities the CMS adds on the workstation side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import RemoteDBMSError, UnknownRelationError
from repro.relational.expressions import Col, Comparison, Lit
from repro.relational.operators import join, project, select
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.remote.sql import FetchTableQuery, SelectQuery, SqlCol, SqlInList, SqlLit


@dataclass
class EngineResult:
    """A query result plus the server work it took to produce."""

    relation: Relation
    tuples_touched: int


def _qualified(alias: str, attr: str) -> str:
    return f"{alias}.{attr}"


class PurePythonEngine:
    """Stores base tables and executes PSJ requests over them."""

    def __init__(self) -> None:
        self._tables: dict[str, Relation] = {}

    # -- data definition ---------------------------------------------------------
    def create_table(self, relation: Relation) -> None:
        """Install (or replace) a base table."""
        self._tables[relation.schema.name] = relation

    def table(self, name: str) -> Relation:
        """The stored extension of ``name``; raises when unknown."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def tables(self) -> list[str]:
        """Names of all stored tables, sorted."""
        return sorted(self._tables)

    # -- execution ------------------------------------------------------------------
    def execute(self, request: SelectQuery | FetchTableQuery) -> EngineResult:
        """Execute a DML request against the stored tables."""
        if isinstance(request, FetchTableQuery):
            base = self.table(request.table)
            return EngineResult(base.copy(), tuples_touched=len(base))
        return self._execute_select(request)

    def _execute_select(self, query: SelectQuery) -> EngineResult:
        touched = 0

        # Load each FROM entry under alias-qualified attribute names.
        loaded: dict[str, Relation] = {}
        for ref in query.tables:
            base = self.table(ref.table)
            attrs = tuple(_qualified(ref.alias, a) for a in base.schema.attributes)
            schema = Schema(ref.alias, attrs)
            loaded[ref.alias] = Relation(schema, iter(base))
            touched += len(base)

        # Apply shipped binding sets (semijoin IN-lists) as pushed-down
        # selections on their table before any join work.
        for term in query.where:
            if not isinstance(term, SqlInList):
                continue
            alias = term.column.alias
            if alias not in loaded:
                raise RemoteDBMSError(f"IN-list references unknown alias: {term}")
            relation = loaded[alias]
            position = relation.schema.position(
                _qualified(alias, term.column.attr)
            )
            allowed = set(term.values)
            loaded[alias] = Relation(
                relation.schema,
                (row for row in relation if row[position] in allowed),
            )

        # Classify WHERE conditions.
        local: dict[str, list[Comparison]] = {alias: [] for alias in loaded}
        join_conditions: list[Comparison] = []
        for condition in query.where:
            if isinstance(condition, SqlInList):
                continue
            comparison, aliases = _to_comparison(condition)
            if len(aliases) <= 1:
                alias = next(iter(aliases), None)
                if alias is None:
                    # Constant-only condition: treat as a global filter on
                    # the first table (it is either always true or false).
                    alias = query.tables[0].alias
                if alias not in local:
                    raise RemoteDBMSError(f"condition references unknown alias: {condition}")
                local[alias].append(comparison)
            else:
                join_conditions.append(comparison)

        # Push selections down.
        for alias, conditions in local.items():
            if conditions:
                loaded[alias] = select(loaded[alias], conditions)

        # Join in FROM order, using whatever equi-join conditions apply.
        combined = loaded[query.tables[0].alias]
        joined_attrs = set(combined.schema.attributes)
        pending = list(join_conditions)
        for ref in query.tables[1:]:
            right = loaded[ref.alias]
            right_attrs = set(right.schema.attributes)
            pairs = []
            residual_here = []
            remaining = []
            for comparison in pending:
                cols = comparison.columns()
                if cols <= (joined_attrs | right_attrs):
                    left_cols = cols & joined_attrs
                    right_cols = cols & right_attrs
                    if (
                        comparison.op == "="
                        and comparison.is_col_col()
                        and len(left_cols) == 1
                        and len(right_cols) == 1
                    ):
                        pairs.append((left_cols.pop(), right_cols.pop()))
                    else:
                        residual_here.append(comparison)
                else:
                    remaining.append(comparison)
            combined = join(combined, right, pairs, name="join", conditions=residual_here)
            joined_attrs |= right_attrs
            pending = remaining
            touched += len(combined)
        if pending:
            # Conditions that never became joinable (should not happen for
            # well-formed requests, but filter rather than silently drop).
            combined = select(combined, pending)

        out_attrs = [_qualified(c.alias, c.attr) for c in query.select]
        result = project(combined, out_attrs, name="result")
        return EngineResult(result, tuples_touched=touched)


def _to_comparison(condition) -> tuple[Comparison, set[str]]:
    """Convert an SQL condition to a row comparison over qualified names."""
    aliases: set[str] = set()

    def operand(x):
        if isinstance(x, SqlCol):
            aliases.add(x.alias)
            return Col(_qualified(x.alias, x.attr))
        if isinstance(x, SqlLit):
            return Lit(x.value)
        raise RemoteDBMSError(f"bad condition operand: {x!r}")

    left = operand(condition.left)
    right = operand(condition.right)
    op = "!=" if condition.op == "!=" else condition.op
    return Comparison(left, op, right), aliases
