"""Remote DBMS simulator: network model, catalog, engines, DML, server."""

from repro.remote.catalog import Catalog
from repro.remote.engine import EngineResult, PurePythonEngine
from repro.remote.faults import (
    CircuitBreaker,
    FaultDecision,
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
)
from repro.remote.network import REMOTE_TRACK, NetworkModel
from repro.remote.server import RemoteDBMS, RemoteResultStream
from repro.remote.sql import (
    FetchTableQuery,
    SelectQuery,
    SqlCol,
    SqlCondition,
    SqlLit,
    TableRef,
    render_literal,
    render_sql,
)
from repro.remote.sqlite_backend import SqliteEngine

__all__ = [
    "Catalog",
    "CircuitBreaker",
    "EngineResult",
    "FaultDecision",
    "FaultInjector",
    "FaultPolicy",
    "FetchTableQuery",
    "NetworkModel",
    "PurePythonEngine",
    "RetryPolicy",
    "REMOTE_TRACK",
    "RemoteDBMS",
    "RemoteResultStream",
    "SelectQuery",
    "SqlCol",
    "SqlCondition",
    "SqlLit",
    "SqliteEngine",
    "TableRef",
    "render_literal",
    "render_sql",
]
