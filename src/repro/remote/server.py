"""The remote DBMS facade: an independent system component.

Section 3 of the paper: "since the DBMS is treated as an independent system
component, it does not access any information from any other BrAID
component".  Correspondingly this class only *answers* requests:

* DML execution (:meth:`execute` / :meth:`execute_stream`),
* schema lookups, and
* statistics lookups,

and every answer is charged through the :class:`NetworkModel`.  The
streaming form models Section 5.5: "The interface also allows pipelining if
the DBMS supports it.  In that case, the DBMS starts returning the data
before the complete result to the DBMS query has been processed."
"""

from __future__ import annotations

from typing import Protocol

from repro.common.clock import CostProfile, SimClock
from repro.common.errors import RemoteDBMSError, TransientRemoteError
from repro.common.metrics import REMOTE_BATCHED_REQUESTS, Metrics
from repro.obs.tracer import Tracer
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics
from repro.remote.catalog import Catalog
from repro.remote.engine import EngineResult, PurePythonEngine
from repro.remote.faults import FaultInjector, FaultPolicy
from repro.remote.network import REMOTE_TRACK, NetworkModel
from repro.remote.sql import DMLRequest, FetchTableQuery, SelectQuery


class Engine(Protocol):
    """What the server needs from a query engine (pure-Python or sqlite)."""

    def create_table(self, relation: Relation) -> None:
        """Install a base table."""

    def execute(self, request: DMLRequest) -> EngineResult:
        """Execute one DML request."""


class RemoteResultStream:
    """A buffered, possibly pipelined result being shipped to the workstation.

    With pipelining, transfer cost is charged per buffer as buffers are
    pulled — the consumer can stop early and pay only for what was shipped.
    Without pipelining, the whole result is shipped (and charged) when the
    stream is created, and pulls merely walk the local buffer.
    """

    def __init__(
        self,
        rows: list[tuple],
        schema: Schema,
        network: NetworkModel,
        buffer_size: int,
        pipelined: bool,
        fail_after_buffers: int | None = None,
    ):
        self.schema = schema
        self._rows = rows
        self._network = network
        self._buffer_size = max(1, buffer_size)
        self._pipelined = pipelined
        self._position = 0
        self._fail_after = fail_after_buffers
        self._buffers_pulled = 0
        if not pipelined:
            network.charge_transfer(len(rows))

    def next_buffer(self) -> list[tuple]:
        """The next buffer of rows; empty when the result is exhausted."""
        if self._position >= len(self._rows):
            return []
        if self._fail_after is not None and self._buffers_pulled >= self._fail_after:
            raise TransientRemoteError(
                f"connection dropped mid-stream after {self._buffers_pulled} buffers"
            )
        chunk = self._rows[self._position:self._position + self._buffer_size]
        self._position += len(chunk)
        self._buffers_pulled += 1
        if self._pipelined:
            self._network.charge_transfer(len(chunk))
        return chunk

    @property
    def exhausted(self) -> bool:
        """True once every row has been pulled."""
        return self._position >= len(self._rows)

    @property
    def total_rows(self) -> int:
        """Size of the full result (known server-side)."""
        return len(self._rows)


class RemoteDBMS:
    """A conventional relational DBMS on the far side of the network."""

    def __init__(
        self,
        engine: Engine | None = None,
        clock: SimClock | None = None,
        profile: CostProfile | None = None,
        metrics: Metrics | None = None,
        supports_pipelining: bool = True,
        faults: FaultPolicy | None = None,
        tracer=None,
        name: str = "",
    ):
        self.engine: Engine = engine if engine is not None else PurePythonEngine()
        self.clock = clock if clock is not None else SimClock()
        self.profile = profile if profile is not None else CostProfile()
        self.metrics = metrics if metrics is not None else Metrics()
        #: Shared trace sink; the whole bridge adopts the server's tracer so
        #: remote round trips nest inside the spans of whoever called them.
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        #: Backend identity in a federation ("" for a lone server).  A named
        #: server charges the ``remote.<name>`` clock track so per-backend
        #: time is attributable inside parallel regions, and its breaker
        #: transitions carry the backend tag.
        self.name = name
        track = f"{REMOTE_TRACK}.{name}" if name else REMOTE_TRACK
        self.network = NetworkModel(self.clock, self.profile, self.metrics, track=track)
        self.catalog = Catalog()
        self.supports_pipelining = supports_pipelining
        self.fault_injector: FaultInjector | None = None
        self.set_fault_policy(faults)

    def set_fault_policy(self, faults: FaultPolicy | None) -> None:
        """Install (or clear) the link's fault policy.

        May be called mid-run to model an outage window.  A ``None`` or
        all-zero policy restores the exact pre-fault request path.
        """
        if faults is None or faults.is_none():
            self.fault_injector = None
        else:
            self.fault_injector = FaultInjector(faults, self.metrics)

    def _inject(self, allow_disconnect: bool, metadata: bool = False) -> int | None:
        """Consult the fault injector for one request.

        Charges any latency spike, raises injected errors, and returns the
        buffer count after which a stream should disconnect (or None).
        """
        injector = self.fault_injector
        if injector is None:
            return None
        if metadata and not injector.policy.metadata_faults:
            return None
        decision = injector.on_request()
        if decision.extra_latency:
            self.network.charge_stall(decision.extra_latency)
            self.tracer.event(
                "fault.stall", seconds=decision.extra_latency
            )
        if decision.kind == "transient":
            self.tracer.event("fault.injected", kind="transient")
            raise TransientRemoteError("injected transient link failure")
        if decision.kind == "permanent":
            self.tracer.event("fault.injected", kind="permanent")
            raise RemoteDBMSError("injected permanent remote failure")
        if decision.disconnect_after is not None and allow_disconnect:
            self.tracer.event(
                "fault.disconnect_armed", after_buffers=decision.disconnect_after
            )
        return decision.disconnect_after if allow_disconnect else None

    # -- data definition (done by the DBA, not charged) ----------------------------
    def load_table(self, relation: Relation) -> None:
        """Install a base table (bulk load; not part of measured work)."""
        self.engine.create_table(relation)
        self.catalog.register(relation)

    def refresh_statistics(self) -> None:
        """Recompute catalog statistics from current engine contents.

        DBA maintenance work — no network charges, no faults.  Catalog
        statistics are otherwise frozen at :meth:`load_table` time, so an
        engine-side reload (``engine.create_table`` called directly) leaves
        the planner costing against stale cardinalities until this runs.
        """
        self.catalog.refresh_all(
            lambda table: self.engine.execute(FetchTableQuery(table)).relation
        )

    # -- metadata requests ------------------------------------------------------------
    def schema_of(self, table: str) -> Schema:
        """Answer a schema lookup (one round trip)."""
        self.network.charge_request()
        self._inject(allow_disconnect=False, metadata=True)
        return self.catalog.schema(table)

    def statistics_of(self, table: str) -> RelationStatistics:
        """Answer a statistics lookup (one round trip)."""
        self.network.charge_request()
        self._inject(allow_disconnect=False, metadata=True)
        return self.catalog.statistics(table)

    def has_table(self, table: str) -> bool:
        """True when the catalog knows ``table`` (not charged)."""
        return self.catalog.has(table)

    # -- DML requests -------------------------------------------------------------------
    def _charge_uplink(self, request: DMLRequest) -> None:
        """Pay the wire cost of any binding values the request carries."""
        if isinstance(request, SelectQuery):
            self.network.charge_uplink(request.binding_values_shipped())

    def execute(self, request: DMLRequest) -> Relation:
        """Execute a request and ship the entire result."""
        self.network.charge_request()
        self._charge_uplink(request)
        self._inject(allow_disconnect=False)
        result = self.engine.execute(request)
        self.network.charge_server_work(result.tuples_touched)
        self.network.charge_transfer(len(result.relation))
        return result.relation

    def execute_stream(self, request: DMLRequest, buffer_size: int = 32) -> RemoteResultStream:
        """Execute a request, shipping the result in buffers.

        The server computes the full result (a conventional DBMS "may
        perform more evaluation ... than required by the inference engine",
        Section 5.5) but with pipelining only shipped buffers pay transfer.
        """
        self.network.charge_request()
        self._charge_uplink(request)
        fail_after = self._inject(allow_disconnect=True)
        result = self.engine.execute(request)
        self.network.charge_server_work(result.tuples_touched)
        return RemoteResultStream(
            result.relation.rows,
            result.relation.schema,
            self.network,
            buffer_size,
            pipelined=self.supports_pipelining,
            fail_after_buffers=fail_after,
        )

    def execute_batch(
        self, requests: list[DMLRequest], buffer_size: int = 32
    ) -> list[RemoteResultStream]:
        """Execute several independent requests in **one round trip**.

        The round-trip latency is paid once and amortized over every
        sub-request; server work, uplink bindings, and transfer are still
        charged per sub-request (the wire carries the same payloads, just
        without the per-request latency).  An injected mid-stream
        disconnect is armed on the first stream only — the wire drops once.
        """
        if not requests:
            return []
        self.network.charge_request()
        if len(requests) > 1:
            self.metrics.incr(REMOTE_BATCHED_REQUESTS, len(requests))
        fail_after = self._inject(allow_disconnect=True)
        streams: list[RemoteResultStream] = []
        for index, request in enumerate(requests):
            self._charge_uplink(request)
            result = self.engine.execute(request)
            self.network.charge_server_work(result.tuples_touched)
            streams.append(
                RemoteResultStream(
                    result.relation.rows,
                    result.relation.schema,
                    self.network,
                    buffer_size,
                    pipelined=self.supports_pipelining,
                    fail_after_buffers=fail_after if index == 0 else None,
                )
            )
        return streams
