"""The remote database's schema catalog and statistics.

Section 3: "the remote DBMS controls the database and the database schema";
the IE "can access the schema information from the DBMS (via the CMS)" and
the shaper uses "cardinality and selectivity information from the DBMS
schema".  The catalog is that information surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import UnknownRelationError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.statistics import RelationStatistics


@dataclass
class Catalog:
    """Schemas and statistics for every table in the remote database."""

    _schemas: dict[str, Schema] = field(default_factory=dict)
    _statistics: dict[str, RelationStatistics] = field(default_factory=dict)

    def register(self, relation: Relation) -> None:
        """Add (or replace) a table; statistics are computed immediately."""
        name = relation.schema.name
        self._schemas[name] = relation.schema
        self._statistics[name] = RelationStatistics.from_relation(relation)

    def refresh_statistics(self, relation: Relation) -> None:
        """Recompute statistics after the table's contents changed."""
        self._statistics[relation.schema.name] = RelationStatistics.from_relation(relation)

    def refresh_all(self, lookup: Callable[[str], Relation]) -> None:
        """Recompute statistics for **every** registered table.

        Statistics are captured at :meth:`register` time; a table whose
        contents changed since (an engine-side reload, say) keeps serving
        stale cardinalities to the planner's cost model.  ``lookup``
        resolves a table name to its *current* contents — the federation
        bootstrap passes the server's engine so per-backend estimates used
        by semijoin costing are honest.
        """
        for table in self.tables():
            self.refresh_statistics(lookup(table))

    def schema(self, table: str) -> Schema:
        """The schema of ``table``; raises when unknown."""
        try:
            return self._schemas[table]
        except KeyError:
            raise UnknownRelationError(table) from None

    def statistics(self, table: str) -> RelationStatistics:
        """The statistics of ``table``; raises when unknown."""
        try:
            return self._statistics[table]
        except KeyError:
            raise UnknownRelationError(table) from None

    def has(self, table: str) -> bool:
        """True when ``table`` is registered."""
        return table in self._schemas

    def tables(self) -> list[str]:
        """All registered table names, sorted."""
        return sorted(self._schemas)

    def cardinality(self, table: str) -> int:
        """Row count of ``table`` per its statistics."""
        return self.statistics(table).cardinality
