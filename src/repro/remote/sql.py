"""The remote DBMS's data manipulation language (DML).

The paper requires the CMS to perform "query translation to [the] data
manipulation language (DML) of the remote DBMS" (Section 3).  The DML here
is the PSJ subset of SQL — SELECT/FROM/WHERE over aliased tables — which is
what a conventional late-1980s relational DBMS (INGRES, IDM-500) accepted.

The structures below are the *wire format* of a request; they can also be
rendered to SQL text (:func:`render_sql`), which is what the sqlite backend
executes and what logs show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.common.errors import TranslationError

_VALID_OPS = {"=", "!=", "<", ">", "<=", ">="}


@dataclass(frozen=True, slots=True)
class TableRef:
    """``table AS alias`` in the FROM clause."""

    table: str
    alias: str

    def __str__(self) -> str:
        if self.table == self.alias:
            return self.table
        return f"{self.table} AS {self.alias}"


@dataclass(frozen=True, slots=True)
class SqlCol:
    """A column reference ``alias.attr``."""

    alias: str
    attr: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.attr}"


@dataclass(frozen=True, slots=True)
class SqlLit:
    """A literal value in a condition."""

    value: object

    def __str__(self) -> str:
        return render_literal(self.value)


SqlOperand = Union[SqlCol, SqlLit]


@dataclass(frozen=True, slots=True)
class SqlCondition:
    """``left op right`` in the WHERE clause."""

    left: SqlOperand
    op: str
    right: SqlOperand

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise TranslationError(f"operator {self.op!r} is not in the remote DML")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class SqlInList:
    """``alias.attr IN (v1, v2, ...)`` — a shipped binding set.

    This is the semijoin reduction carrier: the workstation ships the
    distinct join-column values a cache part pinned, and the server returns
    only matching tuples.  The value tuple must be non-empty (an empty
    binding set means the join result is provably empty, so the request
    should never be shipped at all) and deduplicated by the sender.
    """

    column: SqlCol
    values: tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise TranslationError(
                f"empty IN-list for {self.column}: short-circuit instead of shipping"
            )
        if len(set(self.values)) != len(self.values):
            raise TranslationError(
                f"IN-list for {self.column} contains duplicate binding values"
            )

    def __str__(self) -> str:
        rendered = ", ".join(render_literal(v) for v in self.values)
        return f"{self.column} IN ({rendered})"


#: Anything the WHERE conjunction may contain.
WhereTerm = Union[SqlCondition, SqlInList]


@dataclass(frozen=True)
class SelectQuery:
    """A PSJ request: SELECT columns FROM tables WHERE conjunction.

    ``distinct`` defaults to True because CAQL (like the relational model)
    has set semantics while SQL has bag semantics.
    """

    tables: tuple[TableRef, ...]
    select: tuple[SqlCol, ...]
    where: tuple[WhereTerm, ...] = ()
    distinct: bool = True

    def __post_init__(self) -> None:
        if not self.tables:
            raise TranslationError("a SELECT needs at least one table")
        if not self.select:
            raise TranslationError("a SELECT needs at least one output column")
        aliases = [t.alias for t in self.tables]
        if len(set(aliases)) != len(aliases):
            raise TranslationError(f"duplicate table aliases: {aliases}")
        known = set(aliases)
        for col in self.select:
            if col.alias not in known:
                raise TranslationError(f"SELECT column {col} references unknown alias")
        for condition in self.where:
            if isinstance(condition, SqlInList):
                if condition.column.alias not in known:
                    raise TranslationError(
                        f"IN-list column {condition.column} references unknown alias"
                    )
                continue
            for operand in (condition.left, condition.right):
                if isinstance(operand, SqlCol) and operand.alias not in known:
                    raise TranslationError(f"WHERE operand {operand} references unknown alias")

    def referenced_tables(self) -> set[str]:
        """The set of table names in the FROM clause."""
        return {t.table for t in self.tables}

    def binding_values_shipped(self) -> int:
        """Total IN-list values this request ships to the server."""
        return sum(
            len(term.values) for term in self.where if isinstance(term, SqlInList)
        )

    def __str__(self) -> str:
        return render_sql(self)


def render_literal(value: object) -> str:
    """SQL literal syntax for a Python value."""
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if value is None:
        return "NULL"
    raise TranslationError(f"cannot render literal of type {type(value).__name__}: {value!r}")


def render_sql(query: SelectQuery) -> str:
    """Render a request as SQL text (executable by the sqlite backend)."""
    head = "SELECT DISTINCT" if query.distinct else "SELECT"
    columns = ", ".join(str(c) for c in query.select)
    tables = ", ".join(str(t) for t in query.tables)
    sql = f"{head} {columns} FROM {tables}"
    if query.where:
        conjunction = " AND ".join(str(c) for c in query.where)
        sql += f" WHERE {conjunction}"
    return sql


@dataclass(frozen=True)
class FetchTableQuery:
    """A degenerate request for a whole base table (schema discovery path)."""

    table: str


#: Any request the remote DBMS accepts.
DMLRequest = Union[SelectQuery, FetchTableQuery]
