"""The simulated workstation–server communication link.

The paper's cost model (Section 3) makes "volume of communication between
the workstation and the remote system" a first-class cost.  The prototype
ran over Ethernet to an INGRES server or an IDM-500 database machine; this
reproduction substitutes a deterministic link model: each request pays a
fixed round-trip latency, and each shipped tuple pays a transfer cost.

All charges go to the shared :class:`~repro.common.clock.SimClock` under the
track name ``"remote"`` so that, inside a parallel region opened by the
Execution Monitor, remote time overlaps with local cache work (Section
5.3.3's parallel subquery execution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import CostProfile, SimClock
from repro.common.metrics import (
    REMOTE_BINDINGS_SHIPPED,
    REMOTE_REQUESTS,
    REMOTE_SERVER_TUPLES,
    REMOTE_TUPLES,
    Metrics,
)

#: Clock track used for all remote-side work.
REMOTE_TRACK = "remote"


@dataclass
class NetworkModel:
    """Charges communication and server costs for remote requests."""

    clock: SimClock
    profile: CostProfile
    metrics: Metrics
    #: Cumulative remote-side seconds ever charged through this model.
    #: Monotone even inside parallel regions (where ``clock.now`` is
    #: frozen), so clients can meter per-request timeouts against it.
    charged_seconds: float = 0.0
    #: Clock track this link charges to.  A federated backend uses
    #: ``remote.<name>`` so the per-backend share of remote time (half-open
    #: probes included) is attributable inside parallel regions.
    track: str = REMOTE_TRACK

    def _charge(self, seconds: float) -> None:
        self.charged_seconds += seconds
        self.clock.charge(self.track, seconds)

    def charge_request(self) -> None:
        """One round trip: pay latency, count the request."""
        self.metrics.incr(REMOTE_REQUESTS)
        self._charge(self.profile.remote_latency)

    def charge_server_work(self, tuples_touched: int) -> None:
        """Server-side execution cost for a request."""
        if tuples_touched < 0:
            raise ValueError("tuples_touched must be non-negative")
        self.metrics.incr(REMOTE_SERVER_TUPLES, tuples_touched)
        self._charge(self.profile.server_per_tuple * tuples_touched)

    def charge_transfer(self, tuples_shipped: int) -> None:
        """Wire cost of shipping result tuples to the workstation."""
        if tuples_shipped < 0:
            raise ValueError("tuples_shipped must be non-negative")
        self.metrics.incr(REMOTE_TUPLES, tuples_shipped)
        self._charge(self.profile.transfer_per_tuple * tuples_shipped)

    def charge_uplink(self, values_shipped: int) -> None:
        """Wire cost of shipping binding values *to* the server (the
        semijoin IN-list).  Charged so a semijoin reduction only ever wins
        when the bindings really are cheaper than the unreduced result."""
        if values_shipped < 0:
            raise ValueError("values_shipped must be non-negative")
        if values_shipped:
            self.metrics.incr(REMOTE_BINDINGS_SHIPPED, values_shipped)
            self._charge(self.profile.uplink_per_value * values_shipped)

    def charge_stall(self, seconds: float) -> None:
        """An injected latency spike: dead time on the wire."""
        if seconds < 0:
            raise ValueError("stall seconds must be non-negative")
        self._charge(seconds)

    def charge_backoff(self, seconds: float) -> None:
        """Client-side wait between retries (still remote-track time: the
        workstation is free to do parallel cache work meanwhile)."""
        if seconds < 0:
            raise ValueError("backoff seconds must be non-negative")
        self._charge(seconds)

    def request_cost(
        self,
        tuples_touched: float,
        tuples_shipped: float,
        bindings_shipped: float = 0.0,
    ) -> float:
        """The simulated seconds a request would cost (for the planner).

        Pure estimation — charges nothing.  ``bindings_shipped`` is the
        uplink term: IN-list values a semijoin-reduced request would carry.
        """
        return (
            self.profile.remote_latency
            + self.profile.server_per_tuple * tuples_touched
            + self.profile.transfer_per_tuple * tuples_shipped
            + self.profile.uplink_per_value * bindings_shipped
        )
