"""Fault injection and resilience policies for the workstation–server link.

The paper treats the remote DBMS as "an independent system component"
reached over a real network (Ethernet to INGRES or an IDM-500) — a link
that can fail, stall, or drop a connection mid-result.  This module makes
those behaviours first-class and *deterministic*:

* :class:`FaultPolicy` — a seeded description of how often and how the
  link misbehaves (transient vs. permanent errors, latency stalls,
  mid-stream disconnects).
* :class:`FaultInjector` — draws one decision per remote request from a
  private ``random.Random(seed)``; the same seed and request sequence
  always produce the same faults, so every experiment is reproducible.
* :class:`RetryPolicy` — the client side: bounded retries, exponential
  backoff with (seeded) jitter, per-request timeouts, and circuit-breaker
  thresholds used by the resilient RDI.
* :class:`CircuitBreaker` — classic closed → open → half-open automaton
  driven by simulated time, so a dead server is not hammered and recovery
  is probed with single trial requests.

All injected delays and backoff waits are charged to the shared
:class:`~repro.common.clock.SimClock` (on the ``remote`` track), so fault
handling shows up in the same cost model as regular work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.metrics import (
    REMOTE_BREAKER_STATE_CHANGES,
    REMOTE_FAULTS_INJECTED,
    Metrics,
)


@dataclass(frozen=True)
class FaultPolicy:
    """A seeded, declarative description of link misbehaviour.

    Rates are independent per-request probabilities.  ``transient_rate``
    and ``permanent_rate`` compete for the same draw (a request fails at
    most once), so their sum must not exceed 1.
    """

    #: Seed for the injector's private RNG (decision stream).
    seed: int = 0
    #: Probability a request fails with a retryable link error.
    transient_rate: float = 0.0
    #: Probability a request fails with a non-retryable server error.
    permanent_rate: float = 0.0
    #: Probability a request is hit by a latency spike.
    stall_rate: float = 0.0
    #: Extra simulated seconds added by one latency spike.
    stall_seconds: float = 0.5
    #: Probability a streamed result disconnects part-way through.
    disconnect_rate: float = 0.0
    #: Buffers delivered before an injected disconnect fires.
    disconnect_after_buffers: int = 1
    #: Also inject faults into schema/statistics lookups.
    metadata_faults: bool = False

    def __post_init__(self) -> None:
        for name in ("transient_rate", "permanent_rate", "stall_rate", "disconnect_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.transient_rate + self.permanent_rate > 1.0:
            raise ValueError("transient_rate + permanent_rate must not exceed 1")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be non-negative")
        if self.disconnect_after_buffers < 0:
            raise ValueError("disconnect_after_buffers must be non-negative")

    @classmethod
    def none(cls) -> "FaultPolicy":
        """The default healthy link: no faults ever (zero-overhead)."""
        return cls()

    def is_none(self) -> bool:
        """True when this policy can never inject anything."""
        return (
            self.transient_rate == 0.0
            and self.permanent_rate == 0.0
            and self.stall_rate == 0.0
            and self.disconnect_rate == 0.0
        )


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one remote request."""

    #: One of ``"ok"``, ``"transient"``, ``"permanent"``.
    kind: str = "ok"
    #: Latency-spike seconds to charge before answering (0 = none).
    extra_latency: float = 0.0
    #: Deliver this many buffers, then disconnect (None = no disconnect).
    disconnect_after: int | None = None


class FaultInjector:
    """Draws deterministic fault decisions for a request stream.

    Exactly three RNG draws are consumed per request regardless of the
    outcome, so decision ``k`` depends only on the seed and ``k`` — not on
    which faults actually fired before it.
    """

    def __init__(self, policy: FaultPolicy, metrics: Metrics | None = None):
        self.policy = policy
        self.metrics = metrics if metrics is not None else Metrics()
        self._rng = random.Random(policy.seed)
        self.requests_seen = 0

    def reset(self) -> None:
        """Rewind the decision stream to the beginning (same seed)."""
        self._rng = random.Random(self.policy.seed)
        self.requests_seen = 0

    def on_request(self) -> FaultDecision:
        """Decide the fate of the next remote request."""
        policy = self.policy
        self.requests_seen += 1
        u_fail = self._rng.random()
        u_stall = self._rng.random()
        u_drop = self._rng.random()

        kind = "ok"
        if u_fail < policy.transient_rate:
            kind = "transient"
        elif u_fail < policy.transient_rate + policy.permanent_rate:
            kind = "permanent"
        extra = policy.stall_seconds if u_stall < policy.stall_rate else 0.0
        disconnect = (
            policy.disconnect_after_buffers
            if kind == "ok" and u_drop < policy.disconnect_rate
            else None
        )

        injected = (kind != "ok") + (extra > 0.0) + (disconnect is not None)
        if injected:
            self.metrics.incr(REMOTE_FAULTS_INJECTED, injected)
        return FaultDecision(kind, extra, disconnect)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side resilience knobs for the Remote DBMS Interface.

    The defaults retry transient failures but change nothing on a healthy
    link: with no faults there are no retries, no RNG draws, and no extra
    charges, so pre-existing runs are bit-identical.
    """

    #: Retries after the first failed attempt (0 = fail fast).
    max_retries: int = 3
    #: First backoff wait, in simulated seconds.
    backoff_base: float = 10e-3
    #: Multiplier applied to the wait after each retry.
    backoff_multiplier: float = 2.0
    #: Fraction of each wait randomized (±) to avoid synchronized retries.
    backoff_jitter: float = 0.25
    #: Per-request budget of simulated remote seconds (None = unlimited).
    timeout_seconds: float | None = None
    #: Consecutive failures that open the circuit breaker (0 = disabled).
    breaker_threshold: int = 5
    #: Simulated seconds the breaker stays open before a half-open trial
    #: (the default is ~10 remote round trips under the default profile).
    breaker_cooldown: float = 0.5
    #: Locally-refused requests after which the breaker probes anyway.
    #: Cache-served work advances simulated time very slowly, so an open
    #: breaker also recovers by request count, not only by elapsed time.
    breaker_probe_after: int = 8
    #: Seed for the jitter RNG.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_multiplier < 0:
            raise ValueError("backoff parameters must be non-negative")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")
        if self.breaker_probe_after < 1:
            raise ValueError("breaker_probe_after must be at least 1")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail-fast client: no retries, no timeout, no breaker."""
        return cls(max_retries=0, breaker_threshold=0)

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """The wait before retry ``attempt`` (0-based), jitter applied."""
        wait = self.backoff_base * (self.backoff_multiplier ** attempt)
        if self.backoff_jitter:
            wait *= 1.0 + self.backoff_jitter * (2.0 * rng.random() - 1.0)
        return wait


class CircuitBreaker:
    """Closed → open → half-open failure automaton for the remote link.

    Time is whatever monotone simulated-seconds function the owner
    provides (the RDI passes the SimClock), so open/half-open transitions
    are as deterministic as everything else.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int,
        cooldown: float,
        time_fn,
        metrics: Metrics,
        probe_after: int = 8,
        tracer=None,
        name: str = "",
    ):
        self.threshold = threshold  # 0 disables the breaker entirely
        self.cooldown = cooldown
        self.probe_after = probe_after
        self._time = time_fn
        self.metrics = metrics
        #: Backend id in a federation; tags transition events ("" = untagged
        #: single-backend breaker, keeping pre-federation traces unchanged).
        self.name = name
        if tracer is None:
            from repro.obs.tracer import Tracer

            tracer = Tracer.disabled()
        self.tracer = tracer
        self.state = self.CLOSED
        self.failures = 0
        self.refusals = 0
        self.opened_at = 0.0
        self.state_changes = 0

    def _transition(self, state: str) -> None:
        if state != self.state:
            attrs = {"before": self.state, "after": state}
            if self.name:
                attrs["backend"] = self.name
            self.tracer.event("breaker.transition", **attrs)
            self.state = state
            self.state_changes += 1
            self.metrics.incr(REMOTE_BREAKER_STATE_CHANGES)

    def _cooled_down(self) -> bool:
        return (
            self._time() - self.opened_at >= self.cooldown
            or self.refusals >= self.probe_after
        )

    def allow(self) -> bool:
        """May a request go out now?  (Open → half-open after cooldown or
        after ``probe_after`` locally-refused requests.)"""
        if self.threshold <= 0 or self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._cooled_down():
                self._transition(self.HALF_OPEN)
            else:
                self.refusals += 1
        return self.state != self.OPEN

    def would_allow(self) -> bool:
        """Read-only :meth:`allow` (no state transition) for the planner."""
        if self.threshold <= 0 or self.state != self.OPEN:
            return True
        return self._cooled_down()

    def record_success(self) -> None:
        """A request completed: reset the failure streak, close if probing."""
        self.failures = 0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A request failed: trip the breaker at the threshold (or on a
        failed half-open trial)."""
        if self.threshold <= 0:
            return
        self.failures += 1
        if self.state == self.HALF_OPEN or self.failures >= self.threshold:
            self._transition(self.OPEN)
            self.opened_at = self._time()
            self.failures = 0
            self.refusals = 0
