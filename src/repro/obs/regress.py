"""The benchmark regression gate: BENCH_summary.json vs a committed baseline.

The E-series reports two kinds of numbers.  **Simulated** metrics (sim
seconds, requests, tuples shipped, hit counts) are fully deterministic —
same seed, same bytes — so the gate compares them *exactly* (within a
tiny float epsilon).  **Wall-clock** metrics (E18's kernel timings, E16's
wall column) vary run to run and are ignored by default.

A baseline (``benchmarks/results/BASELINE.json``) is a frozen copy of the
summary's experiments plus comparison policy: a default tolerance,
per-metric tolerance overrides, and extra ignore patterns.  The gate
flattens both documents to dotted numeric leaf paths
(``E17.chain/semijoin-on.tuples shipped``), then reports:

* **regressions** — a metric moved beyond its tolerance band,
* **missing** — a baseline metric absent from the fresh summary (a
  silently dropped experiment must not pass),
* **new** — fresh metrics the baseline has never seen (informational;
  they start gating once the baseline is regenerated).

``scripts/braid_regress.py`` is the CLI; CI runs it on every push.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Path substrings ignored by default: wall-clock quantities.  E18 is the
#: wall-clock kernel benchmark end to end; "wall" catches E16's column.
DEFAULT_IGNORE = ("E18.", "wall")

#: Relative band treated as float noise even at tolerance 0.
EPSILON = 1e-9

BASELINE_SCHEMA_VERSION = 1


# -- flattening ---------------------------------------------------------------------
def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _row_keys(rows: list) -> list[str]:
    """Stable, unique, human-readable keys for table rows: the row's
    string cells joined with "/", disambiguated by occurrence, falling
    back to the row index for all-numeric rows."""
    keys: list[str] = []
    seen: dict[str, int] = {}
    for index, row in enumerate(rows):
        base = "/".join(str(c) for c in row if isinstance(c, str))
        if not base:
            base = f"row{index}"
        count = seen.get(base, 0)
        seen[base] = count + 1
        keys.append(base if count == 0 else f"{base}#{count + 1}")
    return keys


def flatten(document: dict) -> dict[str, float]:
    """Numeric leaves of a summary document as dotted paths.

    ``{"headers": [...], "rows": [...]}`` tables are special-cased so a
    cell's path names its row and column rather than positional indexes.
    """
    out: dict[str, float] = {}

    def walk(node, path: str) -> None:
        if isinstance(node, dict):
            headers = node.get("headers")
            rows = node.get("rows")
            if (
                isinstance(headers, list)
                and isinstance(rows, list)
                and all(isinstance(r, list) for r in rows)
            ):
                for key, row in zip(_row_keys(rows), rows):
                    for header, cell in zip(headers, row):
                        if _is_number(cell):
                            out[f"{path}.{key}.{header}"] = cell
                for extra_key, extra in node.items():
                    if extra_key not in ("headers", "rows"):
                        walk(extra, f"{path}.{extra_key}")
                return
            for key in sorted(node):
                walk(node[key], f"{path}.{key}" if path else str(key))
            return
        if isinstance(node, list):
            for index, item in enumerate(node):
                walk(item, f"{path}[{index}]")
            return
        if _is_number(node):
            out[path] = node

    experiments = document.get("experiments", {})
    for name in sorted(experiments):
        walk(experiments[name].get("results", {}), name)
    return out


# -- comparison ---------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One metric's verdict."""

    path: str
    kind: str  # "regression" | "missing" | "new"
    baseline: float | None = None
    fresh: float | None = None
    tolerance: float = 0.0

    def line(self) -> str:
        if self.kind == "missing":
            return f"MISSING  {self.path}  (baseline {self.baseline:g})"
        if self.kind == "new":
            return f"new      {self.path}  ({self.fresh:g})"
        delta = self.fresh - self.baseline
        rel = delta / self.baseline if self.baseline else float("inf")
        return (
            f"REGRESS  {self.path}  {self.baseline:g} -> {self.fresh:g}  "
            f"(delta {delta:+g}, {rel * 100:+.3f}%, tolerance "
            f"{self.tolerance * 100:g}%)"
        )


@dataclass
class RegressionReport:
    """The gate's full verdict over one summary/baseline pair."""

    regressions: list[Finding] = field(default_factory=list)
    missing: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    compared: int = 0
    ignored: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing

    def render(self) -> str:
        lines = [
            f"bench-regress: {self.compared} metrics compared, "
            f"{self.ignored} ignored (wall-clock), "
            f"{len(self.new)} new, {len(self.missing)} missing, "
            f"{len(self.regressions)} regressed"
        ]
        for finding in self.missing + self.regressions:
            lines.append("  " + finding.line())
        for finding in self.new:
            lines.append("  " + finding.line())
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "compared": self.compared,
            "ignored": self.ignored,
            "regressions": [f.line() for f in self.regressions],
            "missing": [f.line() for f in self.missing],
            "new": [f.line() for f in self.new],
        }


def _ignored(path: str, patterns: tuple[str, ...]) -> bool:
    return any(pattern in path for pattern in patterns)


def compare(
    baseline: dict,
    summary: dict,
    default_tolerance: float = 0.0,
    tolerances: dict[str, float] | None = None,
    ignore: tuple[str, ...] = DEFAULT_IGNORE,
) -> RegressionReport:
    """Diff a fresh summary against a baseline document.

    ``baseline`` is a document written by :func:`make_baseline` (its own
    policy fields extend the arguments); ``summary`` is a parsed
    ``BENCH_summary.json``.  A metric regresses when it differs from the
    baseline by more than ``max(tolerance * |baseline|, EPSILON)`` in
    either direction — an unexplained improvement is a determinism break,
    worth failing just as loudly as a slowdown.
    """
    tolerances = dict(tolerances or {})
    tolerances.update(baseline.get("tolerances", {}))
    default_tolerance = max(
        default_tolerance, baseline.get("default_tolerance", 0.0)
    )
    ignore = tuple(ignore) + tuple(baseline.get("ignore", []))

    base_flat = flatten(baseline)
    fresh_flat = flatten(summary)
    report = RegressionReport()

    for path in sorted(base_flat):
        if _ignored(path, ignore):
            report.ignored += 1
            continue
        expected = base_flat[path]
        if path not in fresh_flat:
            report.missing.append(Finding(path, "missing", baseline=expected))
            continue
        actual = fresh_flat[path]
        report.compared += 1
        tolerance = tolerances.get(path, default_tolerance)
        band = max(abs(expected) * tolerance, EPSILON)
        if abs(actual - expected) > band:
            report.regressions.append(
                Finding(
                    path,
                    "regression",
                    baseline=expected,
                    fresh=actual,
                    tolerance=tolerance,
                )
            )
    for path in sorted(set(fresh_flat) - set(base_flat)):
        if not _ignored(path, ignore):
            report.new.append(Finding(path, "new", fresh=fresh_flat[path]))
    return report


# -- baseline IO --------------------------------------------------------------------
def make_baseline(
    summary: dict,
    default_tolerance: float = 0.0,
    tolerances: dict[str, float] | None = None,
    ignore: tuple[str, ...] = (),
) -> dict:
    """Freeze a summary into a baseline document (experiments + policy)."""
    return {
        "baseline_schema_version": BASELINE_SCHEMA_VERSION,
        "generated_from": "BENCH_summary.json",
        "summary_schema_version": summary.get("schema_version"),
        "default_tolerance": default_tolerance,
        "tolerances": dict(sorted((tolerances or {}).items())),
        "ignore": sorted(ignore),
        "experiments": summary.get("experiments", {}),
    }


def dump_baseline(baseline: dict) -> str:
    """Canonical serialization (sorted keys, fixed separators)."""
    return json.dumps(baseline, sort_keys=True, separators=(",", ":")) + "\n"
