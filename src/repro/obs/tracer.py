"""Deterministic hierarchical tracing on the simulated clock.

The paper evaluates BrAID along three cost dimensions (communication
volume, server load, workstation work) and by *why* the CMS chose cache
over remote, lazy over eager.  Counters aggregate those costs;
:class:`Tracer` preserves their *structure*: every stage of a query's
life — inference step, CAQL query, subsumption probe, planner decision,
executor parts, remote round trips, stream drain — becomes a span or an
event stamped with :class:`~repro.common.clock.SimClock` simulated time.

Two disciplines make traces first-class experiment artifacts rather than
debug noise:

* **Determinism** — span ids come from a counter, timestamps from the
  simulated clock, attribute encodings are canonical; the same seed and
  submissions therefore produce *byte-identical* trace exports, which is
  asserted with a SHA-256 fingerprint exactly like the server's schedule
  fingerprint.
* **Zero-cost opt-out** — :meth:`Tracer.disabled` returns a no-op tracer
  whose ``span``/``event`` hooks allocate nothing and record nothing, so
  instrumented components cost the same as uninstrumented ones when
  tracing is off.  Hot paths additionally guard attribute computation
  behind :attr:`Tracer.enabled`.

Tracing never touches the clock or the metrics ledger: enabling it can
never change a run's simulated totals, only describe them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.common.clock import SimClock


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation inside (or outside) a span."""

    time: float
    name: str
    attributes: tuple[tuple[str, object], ...] = ()

    def attributes_dict(self) -> dict[str, object]:
        return dict(self.attributes)


@dataclass
class Span:
    """One timed stage of work, possibly nested under a parent span."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    def set(self, key: str, value: object) -> "Span":
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value
        return self

    def event(self, name: str, **attributes: object) -> None:
        """Record a point event at the current simulated time."""
        time = self._tracer.clock.now if self._tracer is not None else self.start
        self.events.append(
            SpanEvent(time, name, tuple(sorted(attributes.items())))
        )

    @property
    def duration(self) -> float:
        """Simulated seconds between start and end (0 while open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def closed(self) -> bool:
        return self.end is not None

    # -- context manager ----------------------------------------------------------
    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            self.parent_id = (
                tracer._stack[-1].span_id if tracer._stack else None
            )
            self.start = tracer.clock.now
            tracer.spans.append(self)
            tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if tracer is not None:
            self.end = tracer.clock.now
            if tracer._stack and tracer._stack[-1] is self:
                tracer._stack.pop()
            elif self in tracer._stack:  # defensive: mismatched nesting
                tracer._stack.remove(self)
            if exc_type is not None:
                self.attributes["error"] = exc_type.__name__
        return False


class _NullSpan:
    """The shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    attributes: dict[str, object] = {}
    events: tuple = ()
    duration = 0.0
    closed = True

    def set(self, key: str, value: object) -> "_NullSpan":
        return self

    def event(self, name: str, **attributes: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _DisabledTracer:
    """A tracer whose every hook is a no-op (and allocates nothing)."""

    __slots__ = ()

    enabled = False
    spans: tuple = ()
    orphan_events: tuple = ()

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes: object) -> None:
        pass

    def current(self) -> None:
        return None

    def reset(self) -> None:
        pass

    # Exports of nothing, so callers need no special-casing.
    def to_jsonl(self) -> str:
        return ""

    def to_chrome(self) -> str:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def fingerprint(self) -> str:
        from repro.obs.export import trace_fingerprint

        return trace_fingerprint(self)

    def __repr__(self) -> str:
        return "Tracer.disabled()"


_DISABLED = _DisabledTracer()


class Tracer:
    """Collects hierarchical spans stamped with simulated time.

    One tracer is shared by every component of a system (remote DBMS,
    CMS, server): nesting follows the call structure through a span
    stack, so a remote fetch traced inside an executor part traced
    inside a CMS query renders as one tree.
    """

    enabled = True

    def __init__(self, clock: SimClock):
        self.clock = clock
        #: All spans ever opened, in opening order (open ones included).
        self.spans: list[Span] = []
        #: Events recorded while no span was open.
        self.orphan_events: list[SpanEvent] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    @staticmethod
    def disabled() -> _DisabledTracer:
        """The shared no-op tracer: every hook is zero-cost."""
        return _DISABLED

    # -- recording ----------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        """Open a new span (use as a context manager); nests under the
        currently open span, if any."""
        return Span(
            span_id=next(self._ids),
            parent_id=None,  # resolved at __enter__
            name=name,
            start=self.clock.now,
            attributes=dict(attributes),
            _tracer=self,
        )

    def event(self, name: str, **attributes: object) -> None:
        """Record a point event on the current span (or as an orphan)."""
        if self._stack:
            self._stack[-1].event(name, **attributes)
        else:
            self.orphan_events.append(
                SpanEvent(self.clock.now, name, tuple(sorted(attributes.items())))
            )

    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop every recorded span and event (open spans included)."""
        self.spans.clear()
        self.orphan_events.clear()
        self._stack.clear()
        self._ids = itertools.count(1)

    # -- exports (delegated, so the formats live in one module) -------------------
    def to_jsonl(self) -> str:
        from repro.obs.export import jsonl_trace

        return jsonl_trace(self)

    def to_chrome(self) -> str:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def fingerprint(self) -> str:
        from repro.obs.export import trace_fingerprint

        return trace_fingerprint(self)

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.spans)} spans, {len(self._stack)} open, "
            f"clock={self.clock.now:.6f})"
        )
